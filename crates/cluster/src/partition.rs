use crate::shifts::ExponentialShifts;
use rand::Rng;
use rn_graph::{traversal, Graph, NodeId, INVALID_NODE};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Total-order wrapper for `f64` race keys (shifts are continuous, so ties
/// are measure-zero; `total_cmp` still makes the race fully deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(f64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A clustering of the network produced by Partition(β).
///
/// Guarantees (the paper's §2.1 requirements, upheld by construction and
/// checked by tests):
///
/// * each node identifies exactly one cluster center;
/// * any node that is a cluster center to anyone is its own center;
/// * the subgraph of each cluster is connected, and moreover each node has a
///   shortest path to its center that stays inside the cluster (so *strong*
///   distance to the center equals graph distance).
#[derive(Debug, Clone)]
pub struct Partition {
    beta: f64,
    /// Cluster center per node.
    center: Vec<NodeId>,
    /// Dense cluster index per node.
    cluster_of: Vec<u32>,
    /// Distinct centers; `centers[cluster_of[v]] == center[v]`.
    centers: Vec<NodeId>,
    /// CSR member lists: cluster `i` owns
    /// `member_data[member_start[i]..member_start[i + 1]]`, in ascending
    /// node-id order. Flat (rather than `Vec<Vec<_>>`) so pooled recomputes
    /// reuse two `n`-bounded buffers even when the cluster count changes.
    member_start: Vec<u32>,
    member_data: Vec<NodeId>,
}

/// Reusable workspace for [`Partition::recompute`] /
/// [`Partition::recompute_within`]: the race heap, the shift vector, and the
/// center-index table. All buffers are bounded by the graph (`n + 2m` heap
/// entries, `n` shifts/indices), so after the first recompute on a given
/// graph subsequent recomputes perform no heap allocation.
#[derive(Debug, Default)]
pub struct PartitionScratch {
    shifts: Option<ExponentialShifts>,
    heap: BinaryHeap<Reverse<(Key, NodeId, NodeId)>>,
    index_of_center: Vec<u32>,
}

/// Fills (or refreshes) the pooled shift slot and returns a shared borrow.
/// The slot starts `None` so the first use goes through the ordinary
/// [`ExponentialShifts::sample`]; thereafter `resample` replays the same
/// draw sequence with zero heap traffic.
fn resample_into<'s>(
    slot: &'s mut Option<ExponentialShifts>,
    n: usize,
    beta: f64,
    rng: &mut impl rand::Rng,
) -> &'s ExponentialShifts {
    if let Some(s) = slot.as_mut() {
        s.resample(n, beta, rng);
    } else {
        *slot = Some(ExponentialShifts::sample(n, beta, rng));
    }
    slot.as_ref().expect("slot was just filled")
}

impl Partition {
    /// Runs the oracle Partition(β) construction: samples fresh exponential
    /// shifts and resolves the shifted BFS race exactly.
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 0`.
    pub fn compute(g: &Graph, beta: f64, rng: &mut impl Rng) -> Partition {
        let shifts = ExponentialShifts::sample(g.n(), beta, rng);
        Partition::with_shifts(g, &shifts)
    }

    /// Resolves the race for pre-sampled shifts: node `v` joins the cluster
    /// of `argmin_u (dist(u, v) − δ_u)` (equivalently `argmax δ_u − dist`),
    /// ties broken by smaller node id.
    pub fn with_shifts(g: &Graph, shifts: &ExponentialShifts) -> Partition {
        Partition::race(g, shifts, None)
    }

    /// Partition(β) **within regions**: the race never crosses a region
    /// boundary, so every cluster is contained in one region. This is how
    /// the paper computes *fine* clusterings inside each *coarse* cluster
    /// (Algorithm 1, step 3): pass the coarse cluster indices as `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region.len() != g.n()` or `beta <= 0`.
    pub fn compute_within(g: &Graph, beta: f64, region: &[u32], rng: &mut impl Rng) -> Partition {
        assert_eq!(region.len(), g.n(), "one region label per node");
        let shifts = ExponentialShifts::sample(g.n(), beta, rng);
        Partition::race(g, &shifts, Some(region))
    }

    /// In-place [`Partition::compute`]: byte-identical result (single shared
    /// race code path), but every buffer — shifts, heap, per-node tables,
    /// member CSR — is reused from `self` and `scratch`.
    pub fn recompute(
        &mut self,
        g: &Graph,
        beta: f64,
        rng: &mut impl Rng,
        scratch: &mut PartitionScratch,
    ) {
        let PartitionScratch { shifts, heap, index_of_center } = scratch;
        let shifts = resample_into(shifts, g.n(), beta, rng);
        self.race_in_place(g, shifts, None, heap, index_of_center);
    }

    /// In-place [`Partition::compute_within`] (see [`Partition::recompute`]).
    ///
    /// # Panics
    ///
    /// Panics if `region.len() != g.n()` or `beta <= 0`.
    pub fn recompute_within(
        &mut self,
        g: &Graph,
        beta: f64,
        region: &[u32],
        rng: &mut impl Rng,
        scratch: &mut PartitionScratch,
    ) {
        assert_eq!(region.len(), g.n(), "one region label per node");
        let PartitionScratch { shifts, heap, index_of_center } = scratch;
        let shifts = resample_into(shifts, g.n(), beta, rng);
        self.race_in_place(g, shifts, Some(region), heap, index_of_center);
    }

    fn race(g: &Graph, shifts: &ExponentialShifts, region: Option<&[u32]>) -> Partition {
        let mut p = Partition::shell(shifts.beta());
        let mut heap = BinaryHeap::new();
        let mut index_of_center = Vec::new();
        p.race_in_place(g, shifts, region, &mut heap, &mut index_of_center);
        p
    }

    /// An empty partition to be filled by `race_in_place` or
    /// [`Partition::finish_rebuild`] (pooled extraction slots start here).
    pub(crate) fn shell(beta: f64) -> Partition {
        Partition {
            beta,
            center: Vec::new(),
            cluster_of: Vec::new(),
            centers: Vec::new(),
            member_start: Vec::new(),
            member_data: Vec::new(),
        }
    }

    fn race_in_place(
        &mut self,
        g: &Graph,
        shifts: &ExponentialShifts,
        region: Option<&[u32]>,
        heap: &mut BinaryHeap<Reverse<(Key, NodeId, NodeId)>>,
        index_of_center: &mut Vec<u32>,
    ) {
        assert_eq!(shifts.len(), g.n(), "one shift per node");
        let n = g.n();
        // Lazy-deletion Dijkstra over (key, center) with unit edge weights.
        // Total pushes are bounded by n seeds + 2m relaxations, so one
        // reservation covers every recompute on this graph.
        heap.clear();
        heap.reserve(n + 2 * g.m());
        for u in g.nodes() {
            heap.push(Reverse((Key(-shifts.delta(u)), u, u)));
        }
        self.beta = shifts.beta();
        self.center.clear();
        self.center.resize(n, INVALID_NODE);
        let center = &mut self.center;
        while let Some(Reverse((key, c, v))) = heap.pop() {
            if center[v as usize] != INVALID_NODE {
                continue;
            }
            center[v as usize] = c;
            for &w in g.neighbors(v) {
                let crosses = region.is_some_and(|r| r[w as usize] != r[v as usize]);
                if center[w as usize] == INVALID_NODE && !crosses {
                    heap.push(Reverse((Key(key.0 + 1.0), c, w)));
                }
            }
        }
        self.rebuild_bookkeeping(index_of_center);
    }

    /// The raw center assignment, writable. Callers that fill it directly
    /// must follow up with [`Partition::finish_rebuild`] — the pooled
    /// extraction path in `distributed.rs` does exactly that.
    pub(crate) fn center_vec_mut(&mut self) -> &mut Vec<NodeId> {
        &mut self.center
    }

    /// Rebuilds every derived table from `self.center` (reusing existing
    /// buffer capacity) after a caller wrote a new center assignment.
    pub(crate) fn finish_rebuild(&mut self, beta: f64, index_of_center: &mut Vec<u32>) {
        self.beta = beta;
        self.rebuild_bookkeeping(index_of_center);
    }

    /// Recomputes `cluster_of` / `centers` / the member CSR from
    /// `self.center`. `index_of_center` is caller-provided scratch (reused
    /// as the counting-sort cursor array, so `n` entries cover both uses).
    fn rebuild_bookkeeping(&mut self, index_of_center: &mut Vec<u32>) {
        let n = self.center.len();
        index_of_center.clear();
        index_of_center.resize(n, u32::MAX);
        if self.cluster_of.len() != n {
            self.cluster_of.clear();
            self.cluster_of.resize(n, u32::MAX);
        }
        self.centers.clear();
        self.centers.reserve(n);
        for v in 0..n {
            let c = self.center[v] as usize;
            debug_assert!(self.center[c] == c as NodeId, "center of anyone is center of itself");
            if index_of_center[c] == u32::MAX {
                index_of_center[c] = self.centers.len() as u32;
                self.centers.push(c as NodeId);
            }
            self.cluster_of[v] = index_of_center[c];
        }
        // Counting sort into the member CSR (ascending node id per cluster).
        let k = self.centers.len();
        self.member_start.clear();
        self.member_start.reserve(n + 1);
        self.member_start.resize(k + 1, 0);
        for v in 0..n {
            self.member_start[self.cluster_of[v] as usize + 1] += 1;
        }
        for i in 0..k {
            self.member_start[i + 1] += self.member_start[i];
        }
        if self.member_data.len() != n {
            self.member_data.clear();
            self.member_data.resize(n, 0);
        }
        // `index_of_center` doubles as the per-cluster write cursor.
        index_of_center[..k].copy_from_slice(&self.member_start[..k]);
        for v in 0..n {
            let cursor = &mut index_of_center[self.cluster_of[v] as usize];
            self.member_data[*cursor as usize] = v as NodeId;
            *cursor += 1;
        }
    }

    /// The β this partition was computed with.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.center.len()
    }

    /// The cluster center of `v`.
    #[inline]
    pub fn center_of(&self, v: NodeId) -> NodeId {
        self.center[v as usize]
    }

    /// Dense index (in `0..num_clusters()`) of `v`'s cluster.
    #[inline]
    pub fn cluster_index(&self, v: NodeId) -> u32 {
        self.cluster_of[v as usize]
    }

    /// Whether `u` and `v` are in the same cluster.
    #[inline]
    pub fn same_cluster(&self, u: NodeId, v: NodeId) -> bool {
        self.cluster_of[u as usize] == self.cluster_of[v as usize]
    }

    /// Whether `v` is a cluster center.
    #[inline]
    pub fn is_center(&self, v: NodeId) -> bool {
        self.center[v as usize] == v
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centers.len()
    }

    /// The distinct cluster centers (index = cluster index).
    pub fn centers(&self) -> &[NodeId] {
        &self.centers
    }

    /// The members of cluster `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_clusters()`.
    pub fn members(&self, idx: u32) -> &[NodeId] {
        let i = idx as usize;
        assert!(i < self.centers.len(), "cluster index {idx} out of range");
        &self.member_data[self.member_start[i] as usize..self.member_start[i + 1] as usize]
    }

    /// Strong (intra-cluster) BFS distance from every node to its cluster
    /// center. With the exact oracle construction this equals the global
    /// graph distance (MPX shortest-path property); entries are `u32::MAX`
    /// if a cluster is internally disconnected, which the oracle
    /// construction never produces.
    pub fn strong_dist_to_center(&self, g: &Graph) -> Vec<u32> {
        let mut scratch = ValidateScratch::default();
        self.strong_dist_into(g, &mut scratch);
        std::mem::take(&mut scratch.dist)
    }

    /// [`Partition::strong_dist_to_center`] into pooled buffers: the result
    /// lands in `scratch.dist`, and per-cluster BFS state reuses
    /// `scratch.bfs_dist` / `scratch.queue`.
    fn strong_dist_into(&self, g: &Graph, scratch: &mut ValidateScratch) {
        scratch.dist.clear();
        scratch.dist.resize(g.n(), u32::MAX);
        for (idx, &c) in self.centers.iter().enumerate() {
            let idx = idx as u32;
            traversal::bfs_filtered_into(
                g,
                &[c],
                |v| self.cluster_of[v as usize] == idx,
                &mut scratch.bfs_dist,
                &mut scratch.queue,
            );
            for &m in self.members(idx) {
                scratch.dist[m as usize] = scratch.bfs_dist[m as usize];
            }
        }
    }

    /// Validates the three §2.1 invariants; returns a human-readable reason
    /// on failure. Used by tests and by the distributed construction's
    /// repair logic.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        self.validate_pooled(g, &mut ValidateScratch::default())
    }

    /// [`Partition::validate`] with caller-pooled traversal buffers: a
    /// passing validation performs no heap allocation once `scratch` has
    /// been warmed on a graph of this size (failures allocate only the
    /// returned diagnostic string).
    pub fn validate_pooled(&self, g: &Graph, scratch: &mut ValidateScratch) -> Result<(), String> {
        for v in g.nodes() {
            let c = self.center_of(v);
            if self.center_of(c) != c {
                return Err(format!("center {c} of node {v} is not its own center"));
            }
            if self.cluster_of[v as usize] != self.cluster_of[c as usize] {
                return Err(format!("node {v} not in its center {c}'s cluster"));
            }
        }
        self.strong_dist_into(g, scratch);
        if let Some(v) = (0..g.n()).find(|&v| scratch.dist[v] == u32::MAX) {
            return Err(format!("cluster of node {v} is internally disconnected"));
        }
        Ok(())
    }
}

/// Reusable traversal buffers for [`Partition::validate_pooled`]: the
/// strong-distance result, one BFS distance array, and the BFS queue — all
/// bounded by `n`, so steady-state validation stays off the heap.
#[derive(Debug, Default)]
pub struct ValidateScratch {
    dist: Vec<u32>,
    bfs_dist: Vec<u32>,
    queue: VecDeque<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rn_graph::generators;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn partition_covers_all_nodes_exactly_once() {
        let g = generators::grid(15, 15);
        let p = Partition::compute(&g, 0.3, &mut rng(1));
        let total: usize = (0..p.num_clusters() as u32).map(|i| p.members(i).len()).sum();
        assert_eq!(total, g.n());
        for v in g.nodes() {
            assert!(p.members(p.cluster_index(v)).contains(&v));
        }
    }

    #[test]
    fn invariants_hold_across_graphs_and_betas() {
        let mut r = rng(2);
        let graphs = vec![
            generators::path(100),
            generators::grid(12, 12),
            generators::random_geometric(150, 0.12, &mut r),
            generators::random_tree(120, &mut r),
            generators::barbell(20, 15),
        ];
        for g in &graphs {
            for beta in [0.05, 0.2, 0.7] {
                let p = Partition::compute(g, beta, &mut r);
                p.validate(g).expect("invariants");
            }
        }
    }

    #[test]
    fn strong_distance_equals_graph_distance() {
        // The MPX property: the shortest path to your center stays in your
        // cluster, so strong distance = BFS distance.
        let g = generators::grid(14, 14);
        let p = Partition::compute(&g, 0.2, &mut rng(3));
        let strong = p.strong_dist_to_center(&g);
        for v in g.nodes() {
            let c = p.center_of(v);
            let global = traversal::bfs(&g, c)[v as usize];
            assert_eq!(strong[v as usize], global, "node {v} center {c}");
        }
    }

    #[test]
    fn beta_one_half_gives_many_clusters_beta_tiny_gives_one() {
        let g = generators::grid(16, 16);
        let many = Partition::compute(&g, 0.9, &mut rng(4));
        let few = Partition::compute(&g, 1e-6, &mut rng(4));
        assert!(many.num_clusters() > 20, "large beta fragments: {}", many.num_clusters());
        assert_eq!(few.num_clusters(), 1, "tiny beta produces one giant cluster");
    }

    #[test]
    fn with_shifts_is_deterministic() {
        let g = generators::grid(10, 10);
        let shifts = ExponentialShifts::sample(g.n(), 0.3, &mut rng(5));
        let p1 = Partition::with_shifts(&g, &shifts);
        let p2 = Partition::with_shifts(&g, &shifts);
        assert_eq!(p1.center, p2.center);
    }

    #[test]
    fn winner_has_max_shifted_distance() {
        // Brute-force check of the defining argmax on a small graph.
        let g = generators::grid(6, 6);
        let shifts = ExponentialShifts::sample(g.n(), 0.4, &mut rng(6));
        let p = Partition::with_shifts(&g, &shifts);
        for v in g.nodes() {
            let dist = traversal::bfs(&g, v);
            let winner = p.center_of(v);
            let wkey = shifts.delta(winner) - dist[winner as usize] as f64;
            for u in g.nodes() {
                let ukey = shifts.delta(u) - dist[u as usize] as f64;
                assert!(
                    ukey <= wkey + 1e-9,
                    "node {v}: center {winner} (key {wkey}) beaten by {u} (key {ukey})"
                );
            }
        }
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let p = Partition::compute(&g, 0.5, &mut rng(7));
        assert_eq!(p.num_clusters(), 1);
        assert!(p.is_center(0));
    }

    #[test]
    fn compute_within_respects_region_boundaries() {
        // Coarse: grid split into left/right halves. Fine clusters must not
        // span the boundary.
        let g = generators::grid(12, 6);
        let region: Vec<u32> = g.nodes().map(|v| if v % 12 < 6 { 0 } else { 1 }).collect();
        for seed in 0..5 {
            let p = Partition::compute_within(&g, 0.2, &region, &mut rng(seed));
            p.validate(&g).expect("valid partition");
            for idx in 0..p.num_clusters() as u32 {
                let members = p.members(idx);
                let r0 = region[members[0] as usize];
                assert!(
                    members.iter().all(|&m| region[m as usize] == r0),
                    "cluster {idx} spans regions"
                );
            }
        }
    }

    #[test]
    fn recompute_matches_fresh_compute_exactly() {
        let g = generators::grid(12, 12);
        let region: Vec<u32> = g.nodes().map(|v| if v % 12 < 6 { 0 } else { 1 }).collect();
        let mut scratch = PartitionScratch::default();
        // Warm the pool on an unrelated graph, then recompute across seeds
        // and betas: every result must equal the fresh construction.
        let warm = generators::path(30);
        let mut pooled = Partition::compute(&warm, 0.5, &mut rng(0));
        pooled.recompute(&warm, 0.5, &mut rng(0), &mut scratch);
        for seed in 0..4 {
            for beta in [0.1, 0.4] {
                pooled.recompute(&g, beta, &mut rng(seed), &mut scratch);
                let fresh = Partition::compute(&g, beta, &mut rng(seed));
                assert_eq!(pooled.center, fresh.center, "seed {seed} beta {beta}");
                assert_eq!(pooled.cluster_of, fresh.cluster_of);
                assert_eq!(pooled.centers, fresh.centers);
                assert_eq!(pooled.member_start, fresh.member_start);
                assert_eq!(pooled.member_data, fresh.member_data);

                pooled.recompute_within(&g, beta, &region, &mut rng(seed), &mut scratch);
                let fresh = Partition::compute_within(&g, beta, &region, &mut rng(seed));
                assert_eq!(pooled.center, fresh.center, "within: seed {seed} beta {beta}");
                assert_eq!(pooled.member_data, fresh.member_data);
            }
        }
    }

    #[test]
    fn compute_within_single_region_matches_unrestricted_shape() {
        let g = generators::grid(10, 10);
        let region = vec![0u32; g.n()];
        let p = Partition::compute_within(&g, 0.3, &region, &mut rng(8));
        p.validate(&g).expect("valid partition");
        // With one region the restriction is vacuous: same invariants,
        // plausible cluster count.
        assert!(p.num_clusters() >= 1 && p.num_clusters() <= g.n());
    }
}
