use rand::Rng;
use serde::{Deserialize, Serialize};

/// The per-node exponential random shifts `δ_v ~ Exp(β)` driving
/// Partition(β).
///
/// `P[δ_v ≤ y] = 1 − e^{−βy}`, so `E[δ_v] = 1/β`: smaller `β` means larger
/// shifts and therefore larger clusters.
///
/// # Example
///
/// ```
/// use rn_cluster::ExponentialShifts;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let shifts = ExponentialShifts::sample(1000, 0.5, &mut rng);
/// let mean: f64 = (0..1000).map(|v| shifts.delta(v)).sum::<f64>() / 1000.0;
/// assert!((mean - 2.0).abs() < 0.3, "sample mean near 1/β = 2");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExponentialShifts {
    beta: f64,
    delta: Vec<f64>,
}

impl ExponentialShifts {
    /// Samples `n` independent `Exp(beta)` shifts.
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 0` or `n == 0`.
    pub fn sample(n: usize, beta: f64, rng: &mut impl Rng) -> ExponentialShifts {
        assert!(beta > 0.0, "beta must be positive");
        assert!(n > 0, "need at least one node");
        let delta = (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                -u.ln() / beta
            })
            .collect();
        ExponentialShifts { beta, delta }
    }

    /// Re-samples in place: after this call the value is indistinguishable
    /// from [`ExponentialShifts::sample`]`(n, beta, rng)` (same draw
    /// sequence), but the backing vector is reused — pooled trial loops pay
    /// no heap traffic once capacity covers `n`.
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 0` or `n == 0`.
    pub fn resample(&mut self, n: usize, beta: f64, rng: &mut impl Rng) {
        assert!(beta > 0.0, "beta must be positive");
        assert!(n > 0, "need at least one node");
        self.beta = beta;
        self.delta.clear();
        self.delta.extend((0..n).map(|_| {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            -u.ln() / beta
        }));
    }

    /// The rate parameter β.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The shift of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn delta(&self, v: rn_graph::NodeId) -> f64 {
        self.delta[v as usize]
    }

    /// Number of shifts.
    pub fn len(&self) -> usize {
        self.delta.len()
    }

    /// Whether the collection is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.delta.is_empty()
    }

    /// The largest shift (cluster radii are bounded by this).
    pub fn max_delta(&self) -> f64 {
        self.delta.iter().copied().fold(0.0, f64::max)
    }

    /// Caps every shift at `cap` (the distributed construction conditions on
    /// `δ_max ≤ K`, which holds whp; capping implements that conditioning).
    /// Returns how many shifts were clipped.
    pub fn clamp_max(&mut self, cap: f64) -> usize {
        let mut clipped = 0;
        for d in &mut self.delta {
            if *d > cap {
                *d = cap;
                clipped += 1;
            }
        }
        clipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn shifts_are_nonnegative_and_beta_scaled() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s1 = ExponentialShifts::sample(2000, 1.0, &mut rng);
        let s2 = ExponentialShifts::sample(2000, 0.25, &mut rng);
        assert!((0..2000).all(|v| s1.delta(v) >= 0.0));
        let m1: f64 = (0..2000).map(|v| s1.delta(v)).sum::<f64>() / 2000.0;
        let m2: f64 = (0..2000).map(|v| s2.delta(v)).sum::<f64>() / 2000.0;
        assert!((m1 - 1.0).abs() < 0.15, "mean {m1} vs 1.0");
        assert!((m2 - 4.0).abs() < 0.5, "mean {m2} vs 4.0");
    }

    #[test]
    fn tail_matches_exponential_distribution() {
        // P[δ > t] = e^{-βt}; check at t = 1/β (should be e^{-1} ≈ 0.368).
        let mut rng = SmallRng::seed_from_u64(3);
        let s = ExponentialShifts::sample(5000, 0.5, &mut rng);
        let over = (0..5000).filter(|&v| s.delta(v) > 2.0).count() as f64 / 5000.0;
        assert!((over - (-1.0f64).exp()).abs() < 0.03, "tail fraction {over}");
    }

    #[test]
    fn clamp_caps_and_counts() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut s = ExponentialShifts::sample(1000, 1.0, &mut rng);
        let clipped = s.clamp_max(1.0);
        assert!(clipped > 200, "about e^{{-1}} of draws exceed 1/β");
        assert!(s.max_delta() <= 1.0);
        assert_eq!(s.clamp_max(1.0), 0, "idempotent");
    }

    #[test]
    fn resample_matches_fresh_sample_exactly() {
        let mut s = ExponentialShifts::sample(16, 1.0, &mut SmallRng::seed_from_u64(9));
        s.resample(500, 0.3, &mut SmallRng::seed_from_u64(10));
        let fresh = ExponentialShifts::sample(500, 0.3, &mut SmallRng::seed_from_u64(10));
        assert_eq!(s, fresh, "resample replays the sample draw sequence");
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn invalid_beta_rejected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = ExponentialShifts::sample(10, 0.0, &mut rng);
    }
}
