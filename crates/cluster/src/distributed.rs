//! Distributed radio-protocol construction of Partition(β).
//!
//! Implements the discretized exponential race of Haeupler–Wajc §3 as a real
//! [`rn_sim::Protocol`]: each node delays by (a capped version of) its shift,
//! then floods its candidacy one hop per *phase*, where every phase is a
//! window of repeated Decay rounds so that announcements survive collisions
//! with high probability. Nodes adopt the best (earliest, in shifted time)
//! announcement they hear and forward it in the next phase.
//!
//! Cost: `O(K · R · log n)` rounds with `K = O(log n / β)` phases and `R`
//! decay repetitions per phase — the paper's `O(log³ n / β)` when
//! `R = Θ(log n)`.
//!
//! The discretization and residual collision losses make this an
//! *approximate* sampler of the MPX distribution; `Partition::compute` is
//! the exact oracle. Tests compare the two statistically, and the Compete
//! pipeline can run on either (`DESIGN.md` §4.3).

use crate::partition::Partition;
use crate::shifts::ExponentialShifts;
use rand::rngs::SmallRng;
use rn_graph::NodeId;
use rn_sim::{rng, rng::bernoulli_indices, NetParams, Protocol, Round, TxBuf};

/// Tuning for the distributed construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedPartitionConfig {
    /// Decay-round repetitions per phase (`R`); the paper's whp guarantee
    /// corresponds to `Θ(log n)`, smaller values trade fidelity for rounds.
    pub repeats_per_phase: u32,
    /// Shift cap multiplier: shifts are capped at `cap_factor · ln n / β`
    /// (the race conditions on `δ_max ≤ K`, true whp).
    pub cap_factor: f64,
}

impl Default for DistributedPartitionConfig {
    fn default() -> Self {
        DistributedPartitionConfig { repeats_per_phase: 2, cap_factor: 3.0 }
    }
}

/// One node's best-known candidacy.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Claim {
    /// Shifted birth time `K − δ_c` of the originating center `c`.
    birth: f64,
    /// Hops travelled from the center.
    hops: u32,
    /// The center.
    center: NodeId,
}

impl Claim {
    /// Total arrival key: smaller wins; ties by center id (deterministic).
    fn key(&self) -> (f64, NodeId) {
        (self.birth + self.hops as f64, self.center)
    }

    fn beats(&self, other: &Claim) -> bool {
        let (a, ac) = self.key();
        let (b, bc) = other.key();
        a < b || (a == b && ac < bc)
    }
}

/// Announcement message: "center `center`, born at shifted time `birth`, is
/// `hops` hops away from me".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Announce {
    center: NodeId,
    birth: f64,
    hops: u32,
}

/// The Partition(β) radio protocol. Run it for [`DistributedPartition::total_rounds`]
/// rounds, then extract the clustering with
/// [`DistributedPartition::into_partition`].
#[derive(Debug)]
pub struct DistributedPartition {
    beta: f64,
    phase_len: u64,
    num_phases: u64,
    /// Activation phase per node (`⌊K − δ_v⌋`).
    activation: Vec<u64>,
    /// Own birth time per node (`K − δ_v`).
    own_birth: Vec<f64>,
    /// Best claim adopted so far.
    claim: Vec<Option<Claim>>,
    /// Whether the node's claim changed and must be (re)announced.
    dirty: Vec<bool>,
    /// Snapshot of announcers for the current phase.
    announcers: Vec<NodeId>,
    depth: u32,
    rng: SmallRng,
    scratch: Vec<usize>,
    /// Pooled shift buffer: [`DistributedPartition::reset`] resamples into
    /// it so repeated trials pay no shift allocation.
    shifts: Option<ExponentialShifts>,
}

impl DistributedPartition {
    /// Prepares the protocol: samples shifts from `seed` and derives the
    /// phase structure from `params` and `config`.
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 0` or the config's `repeats_per_phase` is 0.
    pub fn new(
        params: NetParams,
        beta: f64,
        config: DistributedPartitionConfig,
        seed: u64,
    ) -> DistributedPartition {
        let mut p = DistributedPartition {
            beta,
            phase_len: 0,
            num_phases: 0,
            activation: Vec::new(),
            own_birth: Vec::new(),
            claim: Vec::new(),
            dirty: Vec::new(),
            announcers: Vec::new(),
            depth: 0,
            rng: rng::rng_from_seed(seed),
            scratch: Vec::new(),
            shifts: None,
        };
        p.reset(params, beta, config, seed);
        p
    }

    /// In-place [`DistributedPartition::new`]: byte-identical protocol state
    /// (the shift resample replays the sample draw sequence), but every
    /// buffer is reused, so pooled trial loops re-arm the construction with
    /// zero heap traffic once capacity covers `params.n()`.
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 0` or the config's `repeats_per_phase` is 0.
    pub fn reset(
        &mut self,
        params: NetParams,
        beta: f64,
        config: DistributedPartitionConfig,
        seed: u64,
    ) {
        assert!(config.repeats_per_phase > 0, "need at least one decay repeat per phase");
        let n = params.n();
        let mut shift_rng = rng::rng_from_seed(seed);
        let shifts = match &mut self.shifts {
            Some(s) => {
                s.resample(n, beta, &mut shift_rng);
                s
            }
            slot @ None => {
                *slot = Some(ExponentialShifts::sample(n, beta, &mut shift_rng));
                slot.as_mut().expect("slot was just filled")
            }
        };
        let cap = (config.cap_factor * (n.max(2) as f64).ln() / beta).max(1.0);
        shifts.clamp_max(cap);
        let k = cap.ceil();

        self.beta = beta;
        self.depth = params.log2_n();
        self.phase_len = (config.repeats_per_phase * self.depth) as u64;
        // Activation spread over K phases, flood for up to K more.
        self.num_phases = (2.0 * k).ceil() as u64 + 2;

        self.activation.clear();
        self.activation
            .extend((0..n).map(|v| (k - shifts.delta(v as NodeId)).floor().max(0.0) as u64));
        self.own_birth.clear();
        self.own_birth.extend((0..n).map(|v| k - shifts.delta(v as NodeId)));
        self.claim.clear();
        self.claim.resize(n, None);
        self.dirty.clear();
        self.dirty.resize(n, false);
        // Both are bounded by n; reserving up front keeps later trials with
        // more announcers (a per-seed quantity) from reallocating.
        self.announcers.clear();
        self.announcers.reserve(n);
        self.scratch.clear();
        self.scratch.reserve(n);
        self.rng = rng::rng_from_seed(seed ^ 0x9E37_79B9_7F4A_7C15);
    }

    /// Total number of rounds the protocol needs.
    pub fn total_rounds(&self) -> u64 {
        self.num_phases * self.phase_len
    }

    /// Number of phases (`≈ 2K`).
    pub fn num_phases(&self) -> u64 {
        self.num_phases
    }

    /// Rounds per phase (`R · ⌈log n⌉`).
    pub fn phase_len(&self) -> u64 {
        self.phase_len
    }

    fn begin_phase(&mut self, phase: u64) {
        // Activate centers whose time has come and nobody claimed them yet
        // with a strictly better key.
        for v in 0..self.claim.len() {
            if self.activation[v] == phase {
                let own = Claim { birth: self.own_birth[v], hops: 0, center: v as NodeId };
                let adopt = match &self.claim[v] {
                    None => true,
                    Some(c) => own.beats(c),
                };
                if adopt {
                    self.claim[v] = Some(own);
                    self.dirty[v] = true;
                }
            }
        }
        // Snapshot this phase's announcers.
        self.announcers.clear();
        for v in 0..self.claim.len() {
            if self.dirty[v] {
                self.announcers.push(v as NodeId);
                self.dirty[v] = false;
            }
        }
    }

    /// Extracts the clustering. Nodes that never adopted a claim (possible
    /// only if the budget was cut short) become singleton centers; centers
    /// that themselves adopted another cluster are *repaired* to be their own
    /// center, preserving the paper's §2.1 invariant. Returns the partition
    /// and the number of repairs performed.
    pub fn into_partition(self) -> (Partition, usize) {
        let mut out = Partition::shell(self.beta);
        let repairs = self.extract_partition(&mut out, &mut Vec::new(), &mut Vec::new());
        (out, repairs)
    }

    /// Non-consuming [`DistributedPartition::into_partition`]: writes the
    /// clustering into `out` (reusing its buffers) and returns the repair
    /// count. `used` and `idx_scratch` are caller-pooled scratch, both
    /// bounded by `n` — steady-state extraction performs no heap allocation.
    pub fn extract_partition(
        &self,
        out: &mut Partition,
        used: &mut Vec<NodeId>,
        idx_scratch: &mut Vec<u32>,
    ) -> usize {
        let n = self.claim.len();
        let center = out.center_vec_mut();
        center.clear();
        center.extend((0..n).map(|v| self.claim[v].map_or(v as NodeId, |c| c.center)));
        // Repair pass: any node used as a center must be its own center.
        used.clear();
        used.extend_from_slice(center);
        used.sort_unstable();
        used.dedup();
        let mut repairs = 0;
        for &c in used.iter() {
            if center[c as usize] != c {
                center[c as usize] = c;
                repairs += 1;
            }
        }
        out.finish_rebuild(self.beta, idx_scratch);
        repairs
    }
}

impl Protocol for DistributedPartition {
    type Msg = Announce;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<Announce>) {
        if round >= self.total_rounds() {
            return;
        }
        let phase = round / self.phase_len;
        let step_in_phase = round % self.phase_len;
        if step_in_phase == 0 {
            self.begin_phase(phase);
        }
        // Decay step within the phase window.
        let i = (step_in_phase % self.depth as u64) as i32;
        let p = (2.0f64).powi(-(i + 1));
        self.scratch.clear();
        bernoulli_indices(&mut self.rng, self.announcers.len(), p, &mut self.scratch);
        for &idx in &self.scratch {
            let v = self.announcers[idx];
            let c = self.claim[v as usize].expect("announcers have claims");
            tx.send(v, Announce { center: c.center, birth: c.birth, hops: c.hops });
        }
    }

    fn deliver(&mut self, _round: Round, node: NodeId, _from: NodeId, msg: &Announce) {
        let candidate = Claim { birth: msg.birth, hops: msg.hops + 1, center: msg.center };
        let adopt = match &self.claim[node as usize] {
            None => true,
            Some(current) => candidate.beats(current),
        };
        if adopt {
            self.claim[node as usize] = Some(candidate);
            self.dirty[node as usize] = true;
        }
    }

    fn done(&self, round: Round) -> bool {
        round >= self.total_rounds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::PartitionStats;
    use rand::SeedableRng;
    use rn_graph::generators;
    use rn_sim::{CollisionModel, Simulator};

    fn build(
        g: &rn_graph::Graph,
        beta: f64,
        seed: u64,
        config: DistributedPartitionConfig,
    ) -> (Partition, usize) {
        let params = NetParams::of_graph(g);
        let mut proto = DistributedPartition::new(params, beta, config, seed);
        let budget = proto.total_rounds();
        let mut sim = Simulator::new(g, CollisionModel::NoCollisionDetection, seed);
        sim.run(&mut proto, budget);
        proto.into_partition()
    }

    #[test]
    fn produces_valid_partition_on_grid() {
        let g = generators::grid(10, 10);
        let (p, _repairs) = build(&g, 0.3, 7, DistributedPartitionConfig::default());
        p.validate(&g).expect("partition invariants");
        assert!(p.num_clusters() >= 1);
    }

    #[test]
    fn produces_valid_partition_on_rgg() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::random_geometric(120, 0.15, &mut rng);
        let (p, _) = build(&g, 0.25, 11, DistributedPartitionConfig::default());
        p.validate(&g).expect("partition invariants");
    }

    #[test]
    fn respects_beta_scaling_like_the_oracle() {
        let g = generators::path(200);
        let (coarse, _) = build(&g, 0.05, 3, DistributedPartitionConfig::default());
        let (fine, _) = build(&g, 0.5, 3, DistributedPartitionConfig::default());
        assert!(
            fine.num_clusters() > 2 * coarse.num_clusters(),
            "large beta should fragment: {} vs {}",
            fine.num_clusters(),
            coarse.num_clusters()
        );
    }

    #[test]
    fn statistics_comparable_to_oracle() {
        // Distributed and oracle constructions should land in the same
        // ballpark for cut fraction and radius on the same graph/β.
        let g = generators::grid(16, 16);
        let beta = 0.25;
        let mut cut_d = 0.0;
        let mut cut_o = 0.0;
        let trials = 10;
        for seed in 0..trials {
            let (pd, _) = build(&g, beta, seed, DistributedPartitionConfig::default());
            cut_d += PartitionStats::measure(&g, &pd).cut_fraction;
            let mut rng = SmallRng::seed_from_u64(seed + 1000);
            let po = Partition::compute(&g, beta, &mut rng);
            cut_o += PartitionStats::measure(&g, &po).cut_fraction;
        }
        cut_d /= trials as f64;
        cut_o /= trials as f64;
        assert!(
            (cut_d - cut_o).abs() < 0.15,
            "cut fractions diverge: distributed {cut_d} vs oracle {cut_o}"
        );
    }

    #[test]
    fn round_cost_matches_formula() {
        let g = generators::grid(8, 8);
        let params = NetParams::of_graph(&g);
        let config = DistributedPartitionConfig { repeats_per_phase: 3, cap_factor: 2.0 };
        let proto = DistributedPartition::new(params, 0.5, config, 1);
        assert_eq!(proto.phase_len(), 3 * params.log2_n() as u64);
        assert_eq!(proto.total_rounds(), proto.num_phases() * proto.phase_len());
    }

    #[test]
    fn zero_budget_degrades_to_singletons() {
        let g = generators::path(10);
        let params = NetParams::of_graph(&g);
        let proto =
            DistributedPartition::new(params, 0.3, DistributedPartitionConfig::default(), 5);
        // Never run: every node is its own singleton center.
        let (p, repairs) = proto.into_partition();
        assert_eq!(p.num_clusters(), 10);
        assert_eq!(repairs, 0);
        p.validate(&g).expect("singletons are valid");
    }
}
