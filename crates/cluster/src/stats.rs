//! Measurement of clustering properties: everything the paper's Lemmas 2.1,
//! 4.2–4.4 and Corollaries 3.8/3.9 (of \[12\]) quantify.

use crate::partition::Partition;
use rn_graph::{traversal, Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Aggregate statistics of one partition on one graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionStats {
    /// β used.
    pub beta: f64,
    /// Number of clusters.
    pub num_clusters: usize,
    /// Maximum strong distance from a node to its cluster center
    /// (the cluster *radius*; strong diameter is at most twice this).
    pub max_radius: u32,
    /// Mean strong distance to the cluster center over all nodes.
    pub mean_dist_to_center: f64,
    /// Number of cut edges (endpoints in different clusters).
    pub cut_edges: usize,
    /// Fraction of edges cut.
    pub cut_fraction: f64,
    /// Nodes adjacent to at least one other cluster ("risky" nodes in the
    /// paper's Lemma 4.2 terminology).
    pub boundary_nodes: usize,
    /// Maximum number of *other* clusters any single node borders
    /// (Corollary 3.9 of \[12\] bounds this by `O(log n / log D)` whp).
    pub max_bordering_clusters: usize,
}

impl PartitionStats {
    /// Measures `partition` over `g`.
    pub fn measure(g: &Graph, partition: &Partition) -> PartitionStats {
        let dist = partition.strong_dist_to_center(g);
        let max_radius = dist.iter().copied().filter(|&d| d != u32::MAX).max().unwrap_or(0);
        let mean_dist_to_center =
            dist.iter().copied().map(|d| d as f64).sum::<f64>() / g.n() as f64;

        let mut cut_edges = 0;
        for (u, v) in g.edges() {
            if !partition.same_cluster(u, v) {
                cut_edges += 1;
            }
        }
        let cut_fraction = if g.m() == 0 { 0.0 } else { cut_edges as f64 / g.m() as f64 };

        let mut boundary_nodes = 0;
        let mut max_bordering = 0;
        let mut seen: Vec<u32> = Vec::new();
        for v in g.nodes() {
            seen.clear();
            let mine = partition.cluster_index(v);
            for &w in g.neighbors(v) {
                let c = partition.cluster_index(w);
                if c != mine && !seen.contains(&c) {
                    seen.push(c);
                }
            }
            if !seen.is_empty() {
                boundary_nodes += 1;
            }
            max_bordering = max_bordering.max(seen.len());
        }

        PartitionStats {
            beta: partition.beta(),
            num_clusters: partition.num_clusters(),
            max_radius,
            mean_dist_to_center,
            cut_edges,
            cut_fraction,
            boundary_nodes,
            max_bordering_clusters: max_bordering,
        }
    }
}

/// Number of distinct clusters with a node within distance `d` of `v`
/// (including `v`'s own) — the quantity of the paper's Lemma 4.3.
pub fn clusters_within(g: &Graph, partition: &Partition, v: NodeId, d: u32) -> usize {
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = VecDeque::new();
    dist[v as usize] = 0;
    queue.push_back(v);
    let mut clusters = Vec::new();
    while let Some(u) = queue.pop_front() {
        let c = partition.cluster_index(u);
        if !clusters.contains(&c) {
            clusters.push(c);
        }
        let du = dist[u as usize];
        if du == d {
            continue;
        }
        for &w in g.neighbors(u) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
    clusters.len()
}

/// The number of distinct neighboring clusters of `v` (excluding its own):
/// the `q` of the paper's Lemma 4.2 background-process analysis.
pub fn bordering_clusters(g: &Graph, partition: &Partition, v: NodeId) -> usize {
    let mine = partition.cluster_index(v);
    let mut seen = Vec::new();
    for &w in g.neighbors(v) {
        let c = partition.cluster_index(w);
        if c != mine && !seen.contains(&c) {
            seen.push(c);
        }
    }
    seen.len()
}

/// Result of classifying the subpaths of one path (paper's §4 terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubpathBadness {
    /// Total number of length-`sub_len` subpaths the path splits into.
    pub total: usize,
    /// How many are *bad*: some node within `nbhd_radius` of the subpath lies
    /// in a different coarse cluster than the rest of the neighborhood.
    pub bad: usize,
}

/// Splits `path` (a node sequence) into consecutive subpaths of `sub_len`
/// nodes and classifies each as good/bad with respect to the coarse
/// `partition`: a subpath is **good** iff all nodes within distance
/// `nbhd_radius` of it belong to one single coarse cluster (paper §4,
/// before Lemma 4.4).
///
/// # Panics
///
/// Panics if `sub_len == 0` or `path` is empty.
pub fn classify_subpaths(
    g: &Graph,
    partition: &Partition,
    path: &[NodeId],
    sub_len: usize,
    nbhd_radius: u32,
) -> SubpathBadness {
    assert!(sub_len > 0, "subpath length must be positive");
    assert!(!path.is_empty(), "path must be nonempty");
    let mut total = 0;
    let mut bad = 0;
    for chunk in path.chunks(sub_len) {
        total += 1;
        if !neighborhood_is_monochromatic(g, partition, chunk, nbhd_radius) {
            bad += 1;
        }
    }
    SubpathBadness { total, bad }
}

/// Whether the ball of radius `r` around the node set `seeds` lies entirely
/// in one cluster.
fn neighborhood_is_monochromatic(
    g: &Graph,
    partition: &Partition,
    seeds: &[NodeId],
    r: u32,
) -> bool {
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = VecDeque::new();
    let want = partition.cluster_index(seeds[0]);
    for &s in seeds {
        if dist[s as usize] == u32::MAX {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        if partition.cluster_index(u) != want {
            return false;
        }
        let du = dist[u as usize];
        if du == r {
            continue;
        }
        for &w in g.neighbors(u) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
    true
}

/// Empirical Lemma 4.3 check: the upper bound `(1 − e^{−β(2d+1)})^{t−1}` on
/// `P[t distinct clusters within distance d]`.
pub fn lemma_4_3_bound(beta: f64, d: u32, t: usize) -> f64 {
    if t <= 1 {
        return 1.0;
    }
    (1.0 - (-beta * (2.0 * d as f64 + 1.0)).exp()).powi(t as i32 - 1)
}

/// Mean distance to cluster center over many partition trials of one node —
/// the expectation Theorem 2.2 bounds.
pub fn mean_dist_to_center_of(
    g: &Graph,
    beta: f64,
    v: NodeId,
    trials: u32,
    rng: &mut impl rand::Rng,
) -> f64 {
    let mut total = 0u64;
    for _ in 0..trials {
        let p = Partition::compute(g, beta, rng);
        let c = p.center_of(v);
        total += traversal::bfs(g, v)[c as usize] as u64;
    }
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rn_graph::generators;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn stats_are_internally_consistent() {
        let g = generators::grid(12, 12);
        let p = Partition::compute(&g, 0.3, &mut rng(1));
        let s = PartitionStats::measure(&g, &p);
        assert_eq!(s.num_clusters, p.num_clusters());
        assert!(s.cut_fraction >= 0.0 && s.cut_fraction <= 1.0);
        assert!(s.boundary_nodes <= g.n());
        assert!(s.mean_dist_to_center <= s.max_radius as f64);
    }

    #[test]
    fn single_cluster_has_no_cuts_or_boundaries() {
        let g = generators::grid(8, 8);
        let p = Partition::compute(&g, 1e-9, &mut rng(2));
        assert_eq!(p.num_clusters(), 1);
        let s = PartitionStats::measure(&g, &p);
        assert_eq!(s.cut_edges, 0);
        assert_eq!(s.boundary_nodes, 0);
        assert_eq!(s.max_bordering_clusters, 0);
    }

    #[test]
    fn cut_fraction_scales_with_beta() {
        // Lemma 2.1: each edge is cut with probability O(β). Halving β
        // should roughly halve the cut fraction.
        let g = generators::grid(25, 25);
        let mut r = rng(3);
        let avg = |beta: f64, r: &mut SmallRng| {
            let mut total = 0.0;
            for _ in 0..30 {
                let p = Partition::compute(&g, beta, r);
                total += PartitionStats::measure(&g, &p).cut_fraction;
            }
            total / 30.0
        };
        let hi = avg(0.4, &mut r);
        let lo = avg(0.1, &mut r);
        assert!(hi > lo, "cut fraction grows with beta ({lo} vs {hi})");
        let ratio = hi / lo;
        assert!(ratio > 2.0 && ratio < 8.0, "roughly linear in beta, ratio {ratio}");
    }

    #[test]
    fn radius_scales_inversely_with_beta() {
        let g = generators::path(400);
        let mut r = rng(4);
        let avg = |beta: f64, r: &mut SmallRng| {
            let mut total = 0.0;
            for _ in 0..20 {
                let p = Partition::compute(&g, beta, r);
                total += PartitionStats::measure(&g, &p).max_radius as f64;
            }
            total / 20.0
        };
        let small_beta = avg(0.05, &mut r);
        let large_beta = avg(0.4, &mut r);
        assert!(
            small_beta > 2.0 * large_beta,
            "radius should shrink with beta: {small_beta} vs {large_beta}"
        );
    }

    #[test]
    fn clusters_within_counts_at_least_own() {
        let g = generators::grid(10, 10);
        let p = Partition::compute(&g, 0.3, &mut rng(5));
        for v in [0u32, 37, 99] {
            assert!(clusters_within(&g, &p, v, 0) == 1, "radius 0 sees own cluster only");
            let c3 = clusters_within(&g, &p, v, 3);
            assert!(c3 >= 1 && c3 <= p.num_clusters());
        }
    }

    #[test]
    fn bordering_clusters_zero_iff_interior() {
        let g = generators::grid(10, 10);
        let p = Partition::compute(&g, 0.25, &mut rng(6));
        let s = PartitionStats::measure(&g, &p);
        let computed_boundary = g.nodes().filter(|&v| bordering_clusters(&g, &p, v) > 0).count();
        assert_eq!(computed_boundary, s.boundary_nodes);
    }

    #[test]
    fn classify_subpaths_counts_chunks() {
        let g = generators::path(100);
        let p = Partition::compute(&g, 0.1, &mut rng(7));
        let path: Vec<NodeId> = (0..100).collect();
        let b = classify_subpaths(&g, &p, &path, 10, 2);
        assert_eq!(b.total, 10);
        assert!(b.bad <= b.total);
    }

    #[test]
    fn monochromatic_neighborhood_detects_boundaries() {
        // With one giant cluster every subpath is good.
        let g = generators::path(60);
        let p = Partition::compute(&g, 1e-9, &mut rng(8));
        let path: Vec<NodeId> = (0..60).collect();
        let b = classify_subpaths(&g, &p, &path, 6, 3);
        assert_eq!(b.bad, 0);
    }

    #[test]
    fn lemma_4_3_bound_shape() {
        assert_eq!(lemma_4_3_bound(0.1, 5, 1), 1.0);
        let b2 = lemma_4_3_bound(0.1, 5, 2);
        let b3 = lemma_4_3_bound(0.1, 5, 3);
        assert!(b2 > b3, "more clusters are less likely");
        assert!(b2 > 0.0 && b2 < 1.0);
        // Smaller beta → bound decreases (clusters are bigger).
        assert!(lemma_4_3_bound(0.01, 5, 2) < lemma_4_3_bound(0.5, 5, 2));
    }
}
