//! [`Runnable`] scenario + [`ProtocolFamily`] registration for the cluster
//! sub-protocol: `partition(BETA)` runs the **distributed** Partition(β)
//! construction as a real radio protocol and reports its cost and quality
//! as a [`TrialRecord`] — so the registry can measure the primitive the
//! paper's headline algorithms are built from, on the same footing (same
//! topologies, collision models and fault plans) as the algorithms
//! themselves.

use crate::distributed::{Announce, DistributedPartition, DistributedPartitionConfig};
use crate::partition::{Partition, ValidateScratch};
use rn_graph::{Graph, NodeId};
use rn_sim::family::{ParsedArgs, ProtocolFamily};
use rn_sim::{
    CollisionModel, FaultSchedule, NetParams, Runnable, Simulator, TrialPool, TrialRecord, TxBuf,
};

/// `partition(BETA)`: one trial runs the discretized Haeupler–Wajc race
/// ([`DistributedPartition`]) to its full phase budget, extracts the
/// clustering, and scores it.
///
/// * `rounds` — the radio rounds the construction consumed (its
///   `O(log³ n / β)` budget), plus the channel metrics;
/// * `completed` — whether the extracted clustering is a *valid* §2.1
///   partition with **no repairs**: every node adopted a claim, every used
///   center is its own center, and each cluster is connected with strong
///   center distances (checked by [`crate::Partition::validate`]). Collisions
///   losing announcements — or faults silencing nodes — surface as
///   incomplete trials, which is exactly the quality signal the cell's
///   `completed` column is for.
#[derive(Debug, Clone)]
pub struct PartitionScenario {
    /// The clustering parameter β ∈ (0, 1].
    pub beta: f64,
    /// Registry name (e.g. `"partition(0.5)"`).
    pub label: String,
}

impl PartitionScenario {
    /// A scenario for `beta`, named `partition(BETA)`.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not in `(0, 1]`.
    pub fn new(beta: f64) -> PartitionScenario {
        assert!(
            beta > 0.0 && beta <= 1.0 && beta.is_finite(),
            "partition beta {beta} not in (0, 1]"
        );
        PartitionScenario { beta, label: format!("partition({beta})") }
    }
}

impl Runnable for PartitionScenario {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_trial_scheduled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
    ) -> TrialRecord {
        let mut p =
            DistributedPartition::new(net, self.beta, DistributedPartitionConfig::default(), seed);
        let budget = p.total_rounds();
        let mut sim = Simulator::with_faults(g, model, seed, faults.cloned());
        let stats = sim.run(&mut p, budget);
        let (partition, repairs) = p.into_partition();
        let valid = repairs == 0 && partition.validate(g).is_ok();
        TrialRecord::new(valid, stats.rounds, stats.metrics)
    }

    fn run_trial_pooled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
        pool: &mut TrialPool,
    ) -> TrialRecord {
        let (engine, st) = pool.parts(PartitionPool::default);
        let config = DistributedPartitionConfig::default();
        match &mut st.protocol {
            Some(p) => p.reset(net, self.beta, config, seed),
            slot @ None => *slot = Some(DistributedPartition::new(net, self.beta, config, seed)),
        }
        let p = st.protocol.as_mut().expect("slot was just filled");
        let budget = p.total_rounds();
        st.tx.clear();
        st.tx.reserve(g.n());
        let mut sim = Simulator::reuse(engine, g, model, seed, faults.cloned());
        let stats = sim.run_with_buf(p, &mut st.tx, budget);
        let partition = st.partition.get_or_insert_with(|| Partition::shell(self.beta));
        let repairs = p.extract_partition(partition, &mut st.used, &mut st.idx);
        let valid = repairs == 0 && partition.validate_pooled(g, &mut st.validate).is_ok();
        TrialRecord::new(valid, stats.rounds, stats.metrics)
    }
}

/// Per-worker reusable state behind [`PartitionScenario`]'s pooled trials:
/// the protocol (re-armed in place per trial), the transmission buffer, the
/// extracted partition slot, and the extraction/validation scratch.
#[derive(Debug, Default)]
struct PartitionPool {
    protocol: Option<DistributedPartition>,
    tx: TxBuf<Announce>,
    partition: Option<Partition>,
    used: Vec<NodeId>,
    idx: Vec<u32>,
    validate: ValidateScratch,
}

/// `partition(BETA)` — the family registration.
pub struct PartitionFamily;

impl PartitionFamily {
    fn parse_beta(args: Option<&str>) -> Result<f64, String> {
        let a = args.ok_or("partition needs a beta argument, e.g. partition(0.5)")?;
        let beta: f64 = a.parse().map_err(|_| format!("partition: {a:?} is not a number"))?;
        if !(beta > 0.0 && beta <= 1.0 && beta.is_finite()) {
            return Err(format!("partition: beta {a} not in (0, 1]"));
        }
        Ok(beta)
    }
}

impl ProtocolFamily for PartitionFamily {
    fn name(&self) -> &'static str {
        "partition"
    }

    fn grammar(&self) -> &'static str {
        "partition(BETA)"
    }

    fn about(&self) -> &'static str {
        "distributed Partition(beta) construction; completed = valid clustering"
    }

    fn canonical_instances(&self) -> &'static [Option<&'static str>] {
        &[Some("0.5")]
    }

    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String> {
        let beta = PartitionFamily::parse_beta(args)?;
        Ok(ParsedArgs::with_args(beta.to_string()))
    }

    fn instantiate(
        &self,
        args: Option<&str>,
        _overrides: &[(&'static rn_sim::OverrideSpec, f64)],
        _label: &str,
    ) -> Box<dyn Runnable> {
        let beta = PartitionFamily::parse_beta(args).expect("canonical partition args");
        Box::new(PartitionScenario::new(beta))
    }
}

/// The protocol families this crate contributes to the registry.
pub fn families() -> Vec<&'static dyn ProtocolFamily> {
    vec![&PartitionFamily]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    #[test]
    fn partition_scenario_runs_and_scores_validity() {
        let g = generators::grid(10, 10);
        let net = NetParams::of_graph(&g);
        let s = PartitionScenario::new(0.5);
        assert_eq!(s.name(), "partition(0.5)");
        let r = s.run_trial(&g, net, CollisionModel::NoCollisionDetection, 7);
        assert!(r.rounds > 0, "the construction consumes radio rounds");
        assert!(r.metrics.transmissions > 0, "announcements really go on the air");
        // Determinism in the trial seed.
        let again = s.run_trial(&g, net, CollisionModel::NoCollisionDetection, 7);
        assert_eq!(r, again);
    }

    #[test]
    fn partition_scenario_fails_honestly_when_jammed_flat() {
        use rn_sim::FaultPlan;
        let g = generators::grid(6, 6);
        let net = NetParams::of_graph(&g);
        let s = PartitionScenario::new(0.5);
        // Every node jamming: no announcement survives, so nodes fall back
        // to singletons — still a valid partition? No: nodes never adopt a
        // claim and become singleton centers, which *is* §2.1-valid. The
        // honest failure signal is the repair/validity path under partial
        // jamming; under total jamming every node is its own center and the
        // trial may legitimately complete. What must never happen is a
        // panic — the scenario degrades, it does not crash.
        let r = s.run_trial_under_faults(
            &g,
            net,
            CollisionModel::NoCollisionDetection,
            3,
            &FaultPlan::jam(36, 1.0),
        );
        assert_eq!(r.metrics.deliveries, 0, "nothing is ever delivered under total jamming");
    }

    #[test]
    fn pooled_trials_match_fresh_trials_exactly() {
        let g = generators::grid(10, 10);
        let net = NetParams::of_graph(&g);
        let s = PartitionScenario::new(0.5);
        let mut pool = TrialPool::new();
        for seed in 0..3 {
            let fresh = s.run_trial(&g, net, CollisionModel::NoCollisionDetection, seed);
            let pooled = s.run_trial_pooled(
                &g,
                net,
                CollisionModel::NoCollisionDetection,
                seed,
                None,
                &mut pool,
            );
            assert_eq!(fresh, pooled, "seed {seed}");
        }
    }

    #[test]
    fn family_parses_and_canonicalizes_beta() {
        let f = PartitionFamily;
        let p = f.parse_args(Some("0.50")).expect("parses");
        assert_eq!(p.canonical.as_deref(), Some("0.5"), "beta canonicalizes via f64 Display");
        assert!(f.parse_args(None).is_err());
        assert!(f.parse_args(Some("0")).is_err());
        assert!(f.parse_args(Some("1.5")).is_err());
        assert!(f.parse_args(Some("x")).is_err());
        let r = f.instantiate(Some("0.25"), &[], "partition(0.25)");
        assert_eq!(r.name(), "partition(0.25)");
    }

    #[test]
    #[should_panic(expected = "not in (0, 1]")]
    fn scenario_rejects_out_of_range_beta() {
        PartitionScenario::new(0.0);
    }
}
