//! Executable form of the paper's Section 6 — the analysis that proves
//! Theorem 2.2 (the `O(log n / (β log D))` expected distance to the cluster
//! center, removing Haeupler–Wajc's extra `log log n` factor).
//!
//! All quantities operate on a *layer vector* `x` where `x[i] = |A_i(v)|` is
//! the number of nodes at distance exactly `i` from a fixed node `v`
//! (compute one with [`layer_vector`]). The paper bounds the expected
//! distance from `v` to its cluster center by `5·S_{x,β}` (Lemma 6.1) and
//! then controls `S_{x,β}` through two norm-preserving transformations `f`
//! and `g` and the ratio sequence `k_i` of the transformed vector.
//!
//! Because these are concrete, finite computations, the inequalities of
//! Lemmas 6.2, 6.4 and 6.5 are *property-tested* here — the analysis is
//! reproduced as running code, not just prose.

use rn_graph::{traversal::LayerHistogram, Graph, NodeId};

/// `T_{x,β} = Σ_i i·x_i·e^{−iβ}` (numerator of `S_{x,β}`).
pub fn t_value(x: &[f64], beta: f64) -> f64 {
    x.iter().enumerate().map(|(i, &xi)| i as f64 * xi * (-(i as f64) * beta).exp()).sum()
}

/// `B_{x,β} = Σ_i x_i·e^{−iβ}` (denominator of `S_{x,β}`).
pub fn b_value(x: &[f64], beta: f64) -> f64 {
    x.iter().enumerate().map(|(i, &xi)| xi * (-(i as f64) * beta).exp()).sum()
}

/// `S_{x,β} = T_{x,β} / B_{x,β}` — the exponentially-damped mean layer index.
/// Lemma 6.1: the expected distance from `v` to its Partition(β) cluster
/// center is at most `5·S_{x,β}`.
///
/// # Panics
///
/// Panics if `B_{x,β} = 0` (e.g. `x` identically zero).
pub fn s_value(x: &[f64], beta: f64) -> f64 {
    let b = b_value(x, beta);
    assert!(b > 0.0, "S undefined: B_x,beta is zero");
    t_value(x, beta) / b
}

/// The paper's first transformation `f`: collates coefficients into
/// power-of-two indices, `f(x)_i = Σ_{ℓ=2i}^{4i−1} x_ℓ` for `i = 2^k`, else 0.
/// Lemma 6.2: `S_{x,β} ≤ 11·S_{f(x),β}`.
pub fn transform_f(x: &[f64]) -> Vec<f64> {
    let len = x.len();
    let mut out = vec![0.0; len];
    let mut i = 1usize;
    while i < len {
        let lo = 2 * i;
        let hi = (4 * i).min(len); // exclusive; paper's 4i−1 inclusive
        if lo < len {
            out[i] = x[lo..hi].iter().sum();
        }
        i *= 2;
    }
    out
}

/// The paper's second transformation `g`: prefix-averages onto power-of-two
/// indices, `g(x)_i = (Σ_{ℓ≤i} ℓ·x_ℓ)/i` for `i = 2^k`, else 0. Guarantees
/// the "not too decreasing" property `2·g(x)_{2i} ≥ g(x)_i`. Lemma 6.4 (for
/// `x` supported on powers of two): `S_{x,β} ≤ 2·S_{g(x),β}`.
pub fn transform_g(x: &[f64]) -> Vec<f64> {
    let len = x.len();
    // prefix[i] = Σ_{ℓ≤i} ℓ·x_ℓ.
    let mut prefix = vec![0.0; len];
    let mut acc = 0.0;
    for (l, &xl) in x.iter().enumerate() {
        acc += l as f64 * xl;
        prefix[l] = acc;
    }
    let mut out = vec![0.0; len];
    let mut i = 1usize;
    while i < len {
        out[i] = prefix[i] / i as f64;
        i *= 2;
    }
    out
}

/// The composite `x' = g(f(x))` the paper analyzes (Lemma 6.5 lists its four
/// structural properties; see the tests below).
pub fn x_prime(x: &[f64]) -> Vec<f64> {
    transform_g(&transform_f(x))
}

/// The ratio sequence `k_i = log₂(x'_{2^{i+1}} / x'_{2^i})`, for as long as
/// both entries exist and the denominator is positive.
pub fn ratio_sequence(xp: &[f64]) -> Vec<f64> {
    let mut ks = Vec::new();
    let mut i = 1usize;
    while 2 * i < xp.len() {
        if xp[i] <= 0.0 {
            break;
        }
        ks.push((xp[2 * i] / xp[i]).log2());
        i *= 2;
    }
    ks
}

/// Checks the Lemma 6.6 condition for a fixed `j`: for all `m ≥ 8`,
/// `Σ_{ℓ=start}^{start+m} k_ℓ ≤ 2^m · log n / log D`, where
/// `start = j + log₂(log n / log D)` (rounded). Out-of-range indices are
/// clamped. When the condition holds, Lemma 6.6 yields
/// `S_{x',2^{-j}} = O(2^j · log n / log D)`.
pub fn lemma_6_6_condition(ks: &[f64], j: i64, log_n: f64, log_d: f64) -> bool {
    let ratio = log_n / log_d;
    let start = j + ratio.log2().round() as i64;
    for m in 8..(ks.len() as i64) {
        let lo = start.max(0) as usize;
        let hi = ((start + m).min(ks.len() as i64 - 1)) as usize;
        if lo > hi {
            continue;
        }
        let sum: f64 = ks[lo..=hi].iter().sum();
        if sum > (2.0f64).powi(m as i32) * ratio {
            return false;
        }
    }
    true
}

/// Counts the `j` in `j_min..=j_max` violating the Lemma 6.6 condition.
/// Lemma 6.7 bounds this by `0.04·log D` for the paper's range
/// `[0.01·log D, 0.1·log D]`.
pub fn count_bad_j(ks: &[f64], j_min: i64, j_max: i64, log_n: f64, log_d: f64) -> usize {
    (j_min..=j_max).filter(|&j| !lemma_6_6_condition(ks, j, log_n, log_d)).count()
}

/// The layer vector `x` of node `v`: `x[i] = |A_i(v)|` as `f64`s.
pub fn layer_vector(g: &Graph, v: NodeId) -> Vec<f64> {
    LayerHistogram::of(g, v).counts.iter().map(|&c| c as f64).collect()
}

/// Lemma 6.1's bound on the expected distance from `v` to its cluster
/// center: `5·S_{x,β}`.
pub fn lemma_6_1_bound(x: &[f64], beta: f64) -> f64 {
    5.0 * s_value(x, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    #[test]
    fn s_value_of_point_mass() {
        // All mass at layer 3: S = 3 regardless of beta.
        let mut x = vec![0.0; 10];
        x[3] = 5.0;
        assert!((s_value(&x, 0.2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn s_value_decreases_with_beta() {
        // Exponential damping pulls the weighted mean toward small layers.
        let x: Vec<f64> = (0..64).map(|_| 1.0).collect();
        let s_small = s_value(&x, 0.01);
        let s_large = s_value(&x, 0.5);
        assert!(s_large < s_small);
    }

    #[test]
    fn transform_f_collates_doubling_windows() {
        // x = indicator of layer 5: lands in f at index 2 (window 4..=7).
        let mut x = vec![0.0; 32];
        x[5] = 3.0;
        let f = transform_f(&x);
        assert_eq!(f[2], 3.0);
        assert_eq!(f[1], 0.0);
        assert_eq!(f[4], 0.0);
        // Non-powers stay zero.
        assert!(f.iter().enumerate().all(|(i, &v)| i.is_power_of_two() || v == 0.0));
    }

    #[test]
    fn transform_f_preserves_l1_up_to_truncation() {
        let x: Vec<f64> = (0..64).map(|i| (i % 5) as f64).collect();
        let f = transform_f(&x);
        let sum_f: f64 = f.iter().sum();
        let sum_x: f64 = x.iter().sum();
        assert!(sum_f <= sum_x + 1e-9, "f does not increase the L1 norm");
    }

    #[test]
    fn transform_g_prefix_average() {
        // x = e_1 (one unit at layer 1): g_1 = 1, g_2 = 1/2, g_4 = 1/4 …
        let mut x = vec![0.0; 16];
        x[1] = 1.0;
        let g = transform_g(&x);
        assert!((g[1] - 1.0).abs() < 1e-12);
        assert!((g[2] - 0.5).abs() < 1e-12);
        assert!((g[4] - 0.25).abs() < 1e-12);
        assert!((g[8] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn g_output_is_not_too_decreasing() {
        // The defining property: 2·g(x)_{2i} ≥ g(x)_i.
        let x: Vec<f64> = (0..128).map(|i| ((i * 7) % 11) as f64).collect();
        let g = transform_g(&x);
        let mut i = 1;
        while 2 * i < g.len() {
            assert!(2.0 * g[2 * i] + 1e-9 >= g[i], "2·g[{}] ≥ g[{}]", 2 * i, i);
            i *= 2;
        }
    }

    #[test]
    fn lemma_6_5_structural_properties_on_graph_layers() {
        // On real layer vectors (connected graphs, ecc ≥ 3): the four
        // properties of Lemma 6.5.
        let graphs =
            vec![generators::path(200), generators::grid(16, 16), generators::binary_tree(127)];
        for g in &graphs {
            let x = layer_vector(g, 0);
            let n: f64 = x.iter().sum();
            let xp = x_prime(&x);
            // (1) supported on powers of two
            assert!(xp.iter().enumerate().all(|(i, &v)| i.is_power_of_two() || v == 0.0));
            // (2) x'_1 ≥ 2
            assert!(xp[1] >= 2.0, "x'_1 = {} on graph", xp[1]);
            // (3) ||x'||_1 ≤ 2n
            let l1: f64 = xp.iter().sum();
            assert!(l1 <= 2.0 * n + 1e-6);
            // (4) 2x'_{2i} ≥ x'_i
            let mut i = 1;
            while 2 * i < xp.len() {
                assert!(2.0 * xp[2 * i] + 1e-9 >= xp[i]);
                i *= 2;
            }
        }
    }

    #[test]
    fn lemma_6_2_inequality_on_graph_layers() {
        // S_{x,β} ≤ 11·S_{f(x),β} on real layer vectors across betas.
        let graphs =
            vec![generators::path(300), generators::grid(20, 20), generators::binary_tree(255)];
        for g in &graphs {
            let x = layer_vector(g, 0);
            for j in 1..6 {
                let beta = (2.0f64).powi(-j);
                let f = transform_f(&x);
                if b_value(&f, beta) == 0.0 {
                    continue;
                }
                let s_x = s_value(&x, beta);
                let s_f = s_value(&f, beta);
                assert!(
                    s_x <= 11.0 * s_f + 1e-6,
                    "Lemma 6.2 violated: S_x={s_x}, S_f={s_f}, beta={beta}"
                );
            }
        }
    }

    #[test]
    fn lemma_6_4_inequality_on_power_supported_vectors() {
        // S_{x,β} ≤ 2·S_{g(x),β} for x supported on powers of two.
        let graphs = vec![generators::path(300), generators::grid(20, 20)];
        for g in &graphs {
            let x = transform_f(&layer_vector(g, 0)); // power-supported by construction
            for j in 1..6 {
                let beta = (2.0f64).powi(-j);
                if b_value(&x, beta) == 0.0 {
                    continue;
                }
                let s_x = s_value(&x, beta);
                let s_g = s_value(&transform_g(&x), beta);
                assert!(
                    s_x <= 2.0 * s_g + 1e-6,
                    "Lemma 6.4 violated: S_x={s_x}, S_g={s_g}, beta={beta}"
                );
            }
        }
    }

    #[test]
    fn ratio_sequence_bounded_below_by_minus_one() {
        // k_i ≥ -1 follows from property (4) of Lemma 6.5.
        let x = layer_vector(&generators::grid(24, 24), 10);
        let ks = ratio_sequence(&x_prime(&x));
        assert!(!ks.is_empty());
        for (i, &k) in ks.iter().enumerate() {
            assert!(k >= -1.0 - 1e-9, "k_{i} = {k} < -1");
        }
    }

    #[test]
    fn lemma_6_6_condition_trivially_holds_for_flat_vectors() {
        // A path's layer vector is flat (all ones): every k_i ≈ log(2)=1 …
        // actually x'_i are prefix averages; the condition comfortably holds.
        let x = layer_vector(&generators::path(1024), 0);
        let ks = ratio_sequence(&x_prime(&x));
        let log_n = 10.0;
        let log_d = 10.0;
        for j in 0..4 {
            assert!(lemma_6_6_condition(&ks, j, log_n, log_d));
        }
        assert_eq!(count_bad_j(&ks, 0, 3, log_n, log_d), 0);
    }

    #[test]
    fn layer_vector_matches_histogram() {
        let g = generators::grid(3, 3);
        let x = layer_vector(&g, 0);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 2.0, 1.0]);
        assert_eq!(lemma_6_1_bound(&x, 1.0) / 5.0, s_value(&x, 1.0));
    }
}
