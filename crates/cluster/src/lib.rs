//! **Partition(β)** — the exponential-shift graph clustering of Miller, Peng
//! & Xu (SPAA 2013), as used by Haeupler–Wajc (PODC 2016) and Czumaj–Davies
//! (PODC 2017) for radio-network broadcasting, together with the full
//! analysis machinery of the paper's Section 6.
//!
//! Every node `v` draws an independent exponential shift `δ_v ~ Exp(β)` and
//! joins the cluster of the node `u` maximizing `δ_u − dist(u, v)`. The
//! resulting partition satisfies (paper's Lemma 2.1):
//!
//! * every cluster has strong diameter `O(log n / β)` with high probability;
//! * every edge is cut (endpoints in different clusters) with probability
//!   `O(β)`.
//!
//! Two constructions are provided:
//!
//! * [`Partition::compute`] — the exact *oracle* construction (a shifted
//!   multi-source Dijkstra race). The paper notes its clustering results
//!   "apply … in any setting, not just radio networks"; clustering-property
//!   experiments use this form, and the Compete algorithm uses it in its
//!   `Charged` precomputation mode (`DESIGN.md` §4.3).
//! * [`DistributedPartition`] — a genuine radio protocol (discretized race
//!   with per-phase Decay windows, as in Haeupler–Wajc §3) costing
//!   `O(log³ n / β)` rounds, used to validate the charged mode.
//!
//! The [`theory`] module implements the quantities of the paper's Section 6
//! (`S_{x,β}`, the transformations `f` and `g`, the `k_i` ratio sequence and
//! the Lemma 6.6/6.7 conditions) so that Theorem 2.2 — the paper's key
//! improvement over Haeupler–Wajc — can be checked computationally.
//!
//! # Example
//!
//! ```
//! use rn_cluster::Partition;
//! use rn_graph::generators;
//! use rand::SeedableRng;
//!
//! let g = generators::grid(20, 20);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
//! let p = Partition::compute(&g, 0.25, &mut rng);
//! assert!(p.num_clusters() >= 1);
//! // Every cluster center is its own center.
//! for v in g.nodes() {
//!     let c = p.center_of(v);
//!     assert_eq!(p.center_of(c), c);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distributed;
mod partition;
mod scenario;
mod shifts;
pub mod stats;
pub mod theory;

pub use distributed::{DistributedPartition, DistributedPartitionConfig};
pub use partition::{Partition, PartitionScratch, ValidateScratch};
pub use scenario::{families, PartitionFamily, PartitionScenario};
pub use shifts::ExponentialShifts;
