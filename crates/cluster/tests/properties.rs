//! Property-based tests: Partition invariants and the Section 6 lemmas.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rn_cluster::{theory, Partition};
use rn_graph::{generators, traversal, Graph};

/// A connected graph built from a spanning path plus arbitrary chords.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (3usize..48).prop_flat_map(|n| {
        let edge = (0..n as u32, 1..n as u32).prop_map(move |(u, k)| {
            let v = (u + k) % n as u32;
            if u < v {
                (u, v)
            } else {
                (v, u)
            }
        });
        proptest::collection::vec(edge, 0..80).prop_map(move |mut edges| {
            for v in 1..n as u32 {
                edges.push((v - 1, v));
            }
            Graph::from_edges(n, &edges).expect("valid edges")
        })
    })
}

/// A layer-like vector: strictly positive entries (as every connected
/// graph's layer vector is, up to its eccentricity), length ≥ 8.
fn arb_layer_vector() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1u32..1000, 8..200)
        .prop_map(|v| v.into_iter().map(|x| x as f64).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_invariants_hold(g in arb_connected_graph(), seed in any::<u64>(),
                                 beta_milli in 10u32..900) {
        let beta = beta_milli as f64 / 1000.0;
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = Partition::compute(&g, beta, &mut rng);
        prop_assert!(p.validate(&g).is_ok());
        // Strong distance equals global distance (MPX shortest-path property).
        let strong = p.strong_dist_to_center(&g);
        for v in g.nodes() {
            let c = p.center_of(v);
            let global = traversal::bfs(&g, c)[v as usize];
            prop_assert_eq!(strong[v as usize], global);
        }
    }

    #[test]
    fn clusters_partition_the_vertex_set(g in arb_connected_graph(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = Partition::compute(&g, 0.3, &mut rng);
        let mut seen = vec![false; g.n()];
        for idx in 0..p.num_clusters() as u32 {
            for &m in p.members(idx) {
                prop_assert!(!seen[m as usize], "node in two clusters");
                seen[m as usize] = true;
                prop_assert_eq!(p.cluster_index(m), idx);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn lemma_6_2_s_x_le_11_s_fx(x in arb_layer_vector(), j in 1u32..8) {
        let beta = (2.0f64).powi(-(j as i32));
        let s_x = theory::s_value(&x, beta);
        // The paper's Claim 6.3 step needs S_x ≥ 4 for integrality of p.
        prop_assume!(s_x >= 4.0);
        let f = theory::transform_f(&x);
        prop_assume!(theory::b_value(&f, beta) > 0.0);
        let s_f = theory::s_value(&f, beta);
        prop_assert!(s_x <= 11.0 * s_f + 1e-6,
            "S_x = {}, 11 S_f = {}", s_x, 11.0 * s_f);
    }

    #[test]
    fn lemma_6_4_s_x_le_2_s_gx(x in arb_layer_vector(), j in 1u32..8) {
        let beta = (2.0f64).powi(-(j as i32));
        // Lemma 6.4 requires x supported on powers of two: apply f first.
        let xf = theory::transform_f(&x);
        prop_assume!(theory::b_value(&xf, beta) > 0.0);
        let s_x = theory::s_value(&xf, beta);
        let g = theory::transform_g(&xf);
        let s_g = theory::s_value(&g, beta);
        prop_assert!(s_x <= 2.0 * s_g + 1e-6,
            "S_x = {}, 2 S_g = {}", s_x, 2.0 * s_g);
    }

    #[test]
    fn lemma_6_5_properties(x in arb_layer_vector()) {
        let n: f64 = x.iter().sum();
        let xp = theory::x_prime(&x);
        // Supported on powers of two.
        for (i, &v) in xp.iter().enumerate() {
            if !(i.is_power_of_two()) {
                prop_assert_eq!(v, 0.0);
            }
        }
        // x'_1 = x_2 + x_3 ≥ 2 for strictly positive layer vectors.
        prop_assert!(xp[1] >= 2.0);
        // L1 norm at most doubled.
        let l1: f64 = xp.iter().sum();
        prop_assert!(l1 <= 2.0 * n + 1e-6);
        // Not too decreasing.
        let mut i = 1usize;
        while 2 * i < xp.len() {
            prop_assert!(2.0 * xp[2 * i] + 1e-9 >= xp[i]);
            i *= 2;
        }
    }

    #[test]
    fn ratio_sequence_lower_bound(x in arb_layer_vector()) {
        let ks = theory::ratio_sequence(&theory::x_prime(&x));
        for &k in &ks {
            prop_assert!(k >= -1.0 - 1e-9, "k = {}", k);
        }
    }

    #[test]
    fn s_value_is_a_weighted_mean(x in arb_layer_vector(), j in 0u32..10) {
        // 0 ≤ S ≤ max index with nonzero coefficient.
        let beta = (2.0f64).powi(-(j as i32));
        let s = theory::s_value(&x, beta);
        prop_assert!(s >= 0.0);
        prop_assert!(s <= (x.len() - 1) as f64 + 1e-9);
    }
}

#[test]
fn theorem_2_2_shape_on_path() {
    // Monte-Carlo sanity check of Theorem 2.2's *form* on a path: for most
    // choices of j, E[dist to center] · β · log D / log n stays below a
    // modest constant (the paper proves ≥ 55% of j are good with constant
    // 258-ish; empirically the constant is small).
    let g = generators::path(512);
    let log_n = (512f64).log2();
    let log_d = (511f64).log2();
    let mut rng = SmallRng::seed_from_u64(99);
    let mut good = 0;
    let js = [2u32, 3, 4];
    for &j in &js {
        let beta = (2.0f64).powi(-(j as i32));
        let mut total = 0.0;
        let trials = 15;
        for _ in 0..trials {
            let p = Partition::compute(&g, beta, &mut rng);
            let strong = p.strong_dist_to_center(&g);
            let v = 256; // middle node
            total += strong[v] as f64;
        }
        let mean = total / trials as f64;
        let normalized = mean * beta * log_d / log_n;
        if normalized < 6.0 {
            good += 1;
        }
    }
    assert!(good >= 2, "at least 2 of 3 js give O(log n/(beta log D)) distance");
}
