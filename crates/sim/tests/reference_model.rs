//! Differential testing of the engine against a brute-force reference model.
//!
//! The optimized engine processes only transmitters and their neighborhoods
//! (stamp arrays, sparse touch lists). The reference below recomputes each
//! round from the definition: *for every node*, count transmitting
//! neighbors; deliver iff the node listens and the count is exactly one.
//! Property tests drive both with identical random transmission patterns on
//! random graphs and require identical outcomes.

use proptest::prelude::*;
use rn_graph::{Graph, NodeId};
use rn_sim::{CollisionModel, Protocol, Round, Simulator, TxBuf};

/// A scripted protocol: transmits exactly the given `(round, node, msg)`
/// triples and records everything it observes.
#[derive(Debug, Clone)]
struct Scripted {
    /// sends[r] = list of (node, msg) transmitting in round r.
    sends: Vec<Vec<(NodeId, u64)>>,
    received: Vec<(Round, NodeId, NodeId, u64)>,
    collisions: Vec<(Round, NodeId)>,
}

impl Scripted {
    fn new(sends: Vec<Vec<(NodeId, u64)>>) -> Scripted {
        Scripted { sends, received: Vec::new(), collisions: Vec::new() }
    }
}

impl Protocol for Scripted {
    type Msg = u64;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<u64>) {
        if let Some(batch) = self.sends.get(round as usize) {
            for &(u, m) in batch {
                tx.send(u, m);
            }
        }
    }

    fn deliver(&mut self, round: Round, node: NodeId, from: NodeId, msg: &u64) {
        self.received.push((round, node, from, *msg));
    }

    fn collision(&mut self, round: Round, node: NodeId) {
        self.collisions.push((round, node));
    }
}

type Deliveries = Vec<(Round, NodeId, NodeId, u64)>;
type Collisions = Vec<(Round, NodeId)>;

/// The definitional reference: returns (deliveries, collisions) per round.
fn reference(g: &Graph, sends: &[Vec<(NodeId, u64)>], cd: bool) -> (Deliveries, Collisions) {
    let mut deliveries = Vec::new();
    let mut collisions = Vec::new();
    for (r, batch) in sends.iter().enumerate() {
        let transmitting: Vec<bool> = {
            let mut t = vec![false; g.n()];
            for &(u, _) in batch {
                t[u as usize] = true;
            }
            t
        };
        for v in g.nodes() {
            if transmitting[v as usize] {
                continue; // transmitters cannot listen
            }
            let heard: Vec<&(NodeId, u64)> =
                batch.iter().filter(|(u, _)| g.has_edge(*u, v)).collect();
            match heard.len() {
                0 => {}
                1 => deliveries.push((r as Round, v, heard[0].0, heard[0].1)),
                _ => {
                    if cd {
                        collisions.push((r as Round, v));
                    }
                }
            }
        }
    }
    (deliveries, collisions)
}

/// Strategy: a connected graph and a 1–6 round transmission script with
/// each node transmitting at most once per round.
fn arb_scenario() -> impl Strategy<Value = (Graph, Vec<Vec<(NodeId, u64)>>)> {
    (2usize..24).prop_flat_map(|n| {
        let edge = (0..n as u32, 1..n as u32).prop_map(move |(u, k)| {
            let v = (u + k) % n as u32;
            if u < v {
                (u, v)
            } else {
                (v, u)
            }
        });
        let graph = proptest::collection::vec(edge, 0..40).prop_map(move |mut edges| {
            for v in 1..n as u32 {
                edges.push((v - 1, v));
            }
            Graph::from_edges(n, &edges).expect("valid")
        });
        let round = proptest::collection::btree_map(0..n as u32, 0u64..100, 0..=n)
            .prop_map(|m| m.into_iter().collect::<Vec<(NodeId, u64)>>());
        let script = proptest::collection::vec(round, 1..6);
        (graph, script)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_matches_reference_no_cd((g, sends) in arb_scenario()) {
        let mut p = Scripted::new(sends.clone());
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.run(&mut p, sends.len() as u64);
        let (expect_deliv, _) = reference(&g, &sends, false);
        let mut got = p.received.clone();
        let mut want = expect_deliv;
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert!(p.collisions.is_empty(), "no CD notifications in the no-CD model");
    }

    #[test]
    fn engine_matches_reference_cd((g, sends) in arb_scenario()) {
        let mut p = Scripted::new(sends.clone());
        let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, 1);
        sim.run(&mut p, sends.len() as u64);
        let (expect_deliv, expect_coll) = reference(&g, &sends, true);
        let mut got_d = p.received.clone();
        let mut want_d = expect_deliv;
        got_d.sort_unstable();
        want_d.sort_unstable();
        prop_assert_eq!(got_d, want_d);
        let mut got_c = p.collisions.clone();
        let mut want_c = expect_coll;
        got_c.sort_unstable();
        want_c.sort_unstable();
        prop_assert_eq!(got_c, want_c);
    }

    #[test]
    fn metrics_match_reference_counts((g, sends) in arb_scenario()) {
        let mut p = Scripted::new(sends.clone());
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let stats = sim.run(&mut p, sends.len() as u64);
        let (expect_deliv, _) = reference(&g, &sends, false);
        let (_, expect_coll) = reference(&g, &sends, true);
        prop_assert_eq!(stats.metrics.deliveries, expect_deliv.len() as u64);
        prop_assert_eq!(stats.metrics.collisions, expect_coll.len() as u64);
        let total_tx: usize = sends.iter().map(|b| b.len()).sum();
        prop_assert_eq!(stats.metrics.transmissions, total_tx as u64);
    }
}
