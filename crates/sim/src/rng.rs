//! Deterministic seed derivation.
//!
//! Every randomized component of the workspace (generators, protocols,
//! experiment trials) is seeded from a single master seed through the
//! [`fn@derive`] function, so whole experiment tables are reproducible from one
//! recorded `u64`. Derivation uses the SplitMix64 finalizer, which maps
//! nearby inputs to statistically independent outputs.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 output function: a high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives an independent sub-seed for logical `stream` from `master`.
///
/// # Example
///
/// ```
/// let a = rn_sim::rng::derive(42, 0);
/// let b = rn_sim::rng::derive(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, rn_sim::rng::derive(42, 0), "pure function");
/// ```
#[inline]
pub fn derive(master: u64, stream: u64) -> u64 {
    splitmix64(master ^ splitmix64(stream.wrapping_add(0xA5A5_A5A5_5A5A_5A5A)))
}

/// A seeded [`SmallRng`] for logical `stream` of `master`.
#[inline]
pub fn stream_rng(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive(master, stream))
}

/// A [`SmallRng`] seeded directly from a raw `u64` — the one sanctioned
/// home of bare RNG construction (the `rng-discipline` lint denies
/// `seed_from_u64` everywhere else).
///
/// Prefer [`stream_rng`] for new code: it derives per-axis independent
/// streams from a master seed. `rng_from_seed` exists for legacy seed
/// schemes whose byte output is pinned by committed baselines, where the
/// caller's `u64` *is* the contract.
#[inline]
pub fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// A sequential SplitMix64 word generator: the batched-coin counterpart of
/// [`stream_rng`], drawing raw 64-bit words instead of going through a
/// `rand` adapter. One word is 64 independent fair coin lanes, so decay-style
/// "each of `k` nodes flips Bernoulli(2^-j)" draws batch into `⌈k/64⌉·j`
/// word draws and word ANDs — see [`bernoulli_pow2_indices`].
///
/// The stream for `(master, stream)` is independent of (and different from)
/// the [`stream_rng`] stream for the same pair, so a protocol can expose
/// both samplers side by side without coin reuse.
#[derive(Debug, Clone)]
pub struct WordStream {
    state: u64,
}

/// Dedicated sub-stream tag so `WordStream` and [`stream_rng`] never share
/// a seed even for identical `(master, stream)` pairs.
const WORD_STREAM_TAG: u64 = 0x30D5_7EA1;

impl WordStream {
    /// A word stream for logical `stream` of `master` (same derivation
    /// discipline as [`stream_rng`]).
    pub fn new(master: u64, stream: u64) -> WordStream {
        WordStream { state: derive(derive(master, WORD_STREAM_TAG), stream) }
    }

    /// The next 64 independent fair coin lanes.
    #[inline]
    pub fn next_word(&mut self) -> u64 {
        let w = splitmix64(self.state);
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        w
    }
}

/// One word of 64 independent Bernoulli(`2^-j`) lanes: the AND of `j` raw
/// words (each lane succeeds iff all `j` of its fair coins do). `j = 0`
/// yields all-ones (probability 1).
#[inline]
pub fn bernoulli_pow2_word(ws: &mut WordStream, j: u32) -> u64 {
    let mut w = !0u64;
    for _ in 0..j {
        w &= ws.next_word();
    }
    w
}

/// Samples the success indices of `k` independent Bernoulli(`2^-j`) trials
/// by drawing whole 64-lane words — `⌈k/64⌉·j` word draws total, instead of
/// `k` per-index coin flips. Indices are appended to `out` in increasing
/// order, like [`bernoulli_indices`].
///
/// The word-batched draw is the fast shape for *dense* steps (small `j`,
/// where a constant fraction of lanes succeed); for large `j` the geometric
/// skipping of [`bernoulli_indices`] does less work per success. Callers
/// pick per step; the two samplers draw from different streams and are not
/// interchangeable mid-run.
pub fn bernoulli_pow2_indices(ws: &mut WordStream, k: usize, j: u32, out: &mut Vec<usize>) {
    let mut base = 0usize;
    while base < k {
        let mut w = bernoulli_pow2_word(ws, j);
        if base + 64 > k {
            w &= (1u64 << (k - base)) - 1; // partial last word: drop lanes >= k
        }
        while w != 0 {
            out.push(base + w.trailing_zeros() as usize);
            w &= w - 1;
        }
        base += 64;
    }
}

/// Samples the index set of successes among `k` independent Bernoulli(`p`)
/// trials, in `O(successes)` expected time via geometric skipping. The joint
/// distribution is exactly that of `k` independent coin flips, which lets
/// decay-style protocols ("every informed node transmits with probability
/// `2^-i`") be simulated in time proportional to the transmitters rather
/// than to the population.
///
/// Indices are appended to `out` in increasing order.
pub fn bernoulli_indices(rng: &mut impl rand::Rng, k: usize, p: f64, out: &mut Vec<usize>) {
    if k == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        out.extend(0..k);
        return;
    }
    let ln_q = (1.0 - p).ln();
    let mut i = 0usize;
    loop {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = (u.ln() / ln_q).floor();
        if !skip.is_finite() || skip >= (k - i) as f64 {
            return;
        }
        i += skip as usize;
        if i >= k {
            return;
        }
        out.push(i);
        i += 1;
        if i >= k {
            return;
        }
    }
}

/// Samples `k` **distinct** values from `0..n` in `O(k)` time and `O(k²)`
/// comparisons (Floyd's algorithm). The returned *set* is uniform over all
/// `k`-subsets; the order is not a uniform permutation. Used for source and
/// jammer placement, where sampling with replacement would silently merge
/// roles onto one node.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_distinct(rng: &mut impl rand::Rng, k: usize, n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    sample_distinct_into(rng, k, n, &mut out);
    out
}

/// [`sample_distinct`] into a caller-owned buffer (cleared first): pooled
/// trial loops reuse one buffer across trials so steady-state placement
/// stays off the heap. Draw-for-draw identical to [`sample_distinct`].
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_distinct_into(rng: &mut impl rand::Rng, k: usize, n: usize, out: &mut Vec<usize>) {
    assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
    out.clear();
    out.reserve(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if out.contains(&t) {
            out.push(j);
        } else {
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic_and_stream_sensitive() {
        assert_eq!(derive(7, 3), derive(7, 3));
        assert_ne!(derive(7, 3), derive(7, 4));
        assert_ne!(derive(7, 3), derive(8, 3));
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        // Consecutive masters should produce wildly different first draws.
        let mut prev: Option<u64> = None;
        for master in 0..16u64 {
            let x: u64 = stream_rng(master, 0).gen();
            if let Some(p) = prev {
                assert_ne!(p, x);
            }
            prev = Some(x);
        }
    }

    #[test]
    fn splitmix_known_nonfixed_points() {
        // Sanity: the mixer is not the identity and spreads zero.
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), 1);
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = stream_rng(5, 0);
        for (k, n) in [(0usize, 0usize), (0, 10), (1, 1), (4, 10), (10, 10), (7, 1000)] {
            let s = sample_distinct(&mut rng, k, n);
            assert_eq!(s.len(), k, "k={k} n={n}");
            assert!(s.iter().all(|&v| v < n));
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "all distinct for k={k} n={n}");
        }
    }

    #[test]
    fn sample_distinct_covers_every_element_eventually() {
        let mut rng = stream_rng(6, 0);
        let mut seen = [false; 10];
        for _ in 0..200 {
            for v in sample_distinct(&mut rng, 3, 10) {
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every index reachable: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_rejects_oversized_k() {
        let mut rng = stream_rng(7, 0);
        sample_distinct(&mut rng, 11, 10);
    }

    #[test]
    fn word_stream_is_deterministic_and_distinct_from_stream_rng() {
        let a: Vec<u64> = {
            let mut ws = WordStream::new(9, 4);
            (0..8).map(|_| ws.next_word()).collect()
        };
        let b: Vec<u64> = {
            let mut ws = WordStream::new(9, 4);
            (0..8).map(|_| ws.next_word()).collect()
        };
        assert_eq!(a, b, "pure function of (master, stream)");
        let other: u64 = WordStream::new(9, 5).next_word();
        assert_ne!(a[0], other, "stream-sensitive");
        // The first word must not equal the first draw of the SmallRng
        // stream for the same pair — the two samplers own disjoint coins.
        let small: u64 = stream_rng(9, 4).gen();
        assert_ne!(a[0], small);
    }

    #[test]
    fn word_stream_lanes_are_fair() {
        let mut ws = WordStream::new(3, 0);
        let words = 4000;
        let ones: u64 = (0..words).map(|_| ws.next_word().count_ones() as u64).sum();
        let total = words * 64;
        let freq = ones as f64 / total as f64;
        assert!((freq - 0.5).abs() < 0.01, "bit frequency {freq}");
    }

    #[test]
    fn bernoulli_pow2_word_halves_density_per_level() {
        let mut ws = WordStream::new(4, 0);
        for j in 0..6u32 {
            let trials = 2000;
            let ones: u64 =
                (0..trials).map(|_| bernoulli_pow2_word(&mut ws, j).count_ones() as u64).sum();
            let freq = ones as f64 / (trials * 64) as f64;
            let expect = 0.5f64.powi(j as i32);
            assert!(
                (freq - expect).abs() < 0.05 * expect.max(0.05),
                "j={j}: density {freq} vs {expect}"
            );
        }
        assert_eq!(bernoulli_pow2_word(&mut WordStream::new(1, 1), 0), !0, "j=0 is certainty");
    }

    #[test]
    fn bernoulli_pow2_indices_shape_and_mean() {
        let mut ws = WordStream::new(5, 0);
        let mut out = Vec::new();
        // k = 0: nothing. Partial word: indices stay < k.
        bernoulli_pow2_indices(&mut ws, 0, 1, &mut out);
        assert!(out.is_empty());
        bernoulli_pow2_indices(&mut ws, 70, 0, &mut out);
        assert_eq!(out, (0..70).collect::<Vec<_>>(), "j=0 selects everything");
        let trials = 3000;
        let (k, j) = (100usize, 3u32);
        let mut total = 0usize;
        for _ in 0..trials {
            out.clear();
            bernoulli_pow2_indices(&mut ws, k, j, &mut out);
            assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            assert!(out.iter().all(|&i| i < k));
            total += out.len();
        }
        let mean = total as f64 / trials as f64;
        let expect = k as f64 * 0.125;
        assert!((mean - expect).abs() < 0.3, "mean {mean} vs {expect}");
    }

    #[test]
    fn bernoulli_indices_edge_probabilities() {
        let mut rng = stream_rng(1, 1);
        let mut out = Vec::new();
        bernoulli_indices(&mut rng, 100, 0.0, &mut out);
        assert!(out.is_empty());
        bernoulli_indices(&mut rng, 100, 1.0, &mut out);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        out.clear();
        bernoulli_indices(&mut rng, 0, 0.5, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn bernoulli_indices_mean_matches_p() {
        let mut rng = stream_rng(2, 0);
        let trials = 2000;
        let k = 50;
        let p = 0.3;
        let mut total = 0usize;
        let mut out = Vec::new();
        for _ in 0..trials {
            out.clear();
            bernoulli_indices(&mut rng, k, p, &mut out);
            assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            assert!(out.iter().all(|&i| i < k));
            total += out.len();
        }
        let mean = total as f64 / trials as f64;
        let expect = k as f64 * p;
        // 2000 trials of Binomial(50, .3): std of the mean ≈ 0.07.
        assert!((mean - expect).abs() < 0.5, "mean {mean} vs {expect}");
    }

    #[test]
    fn bernoulli_indices_per_index_frequency_is_uniform() {
        let mut rng = stream_rng(3, 0);
        let trials = 4000;
        let k = 10;
        let p = 0.5;
        let mut counts = vec![0u32; k];
        let mut out = Vec::new();
        for _ in 0..trials {
            out.clear();
            bernoulli_indices(&mut rng, k, p, &mut out);
            for &i in &out {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!((freq - p).abs() < 0.05, "index {i} frequency {freq}");
        }
    }
}
