//! A synchronous multi-hop radio-network simulator.
//!
//! This crate implements, exactly, the classical radio-network model used by
//! Czumaj & Davies (PODC 2017) and the literature it builds on:
//!
//! * nodes operate in discrete, synchronous **rounds**;
//! * in each round a node either **transmits** a message to all of its
//!   neighbors at once, or stays silent and **listens**;
//! * **no collision detection** (default): a listening node receives a
//!   message iff *exactly one* of its neighbors transmits in that round; it
//!   cannot distinguish silence from collision;
//! * a **collision detection** variant is provided for ablations
//!   ([`CollisionModel::CollisionDetection`]), where a listening node with
//!   two or more transmitting neighbors is notified of the collision;
//! * **spontaneous transmissions are allowed**: the simulator never restricts
//!   who may transmit — restraint (e.g. "only informed nodes speak") is a
//!   property of individual protocols;
//! * running time is the number of rounds; local computation is free.
//!
//! An orthogonal **fault axis** (adversarial jammers, per-round node
//! dropout) can be imposed on any protocol at the channel level — see
//! [`faults`] and [`Runnable::run_trial_under_faults`].
//!
//! Algorithms implement the [`Protocol`] trait and are executed by
//! [`Simulator::run`]. Protocols only ever see the knowledge the model grants
//! them — [`NetParams`] (`n` and `D`), their own node ids, their own random
//! bits, and messages they receive; the graph itself stays inside the engine.
//!
//! # Example: one-round delivery vs collision
//!
//! ```
//! use rn_graph::generators;
//! use rn_sim::{testing::OneShot, CollisionModel, Simulator};
//!
//! let g = generators::star(4); // hub 0, leaves 1..=3
//! // Exactly one leaf transmits: the hub hears it.
//! let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 42);
//! let mut p = OneShot::new(4, vec![(1, 7u64)]);
//! sim.run(&mut p, 1);
//! assert_eq!(p.received(0), &[(1, 7)]);
//!
//! // Two leaves transmit: collision, the hub hears nothing.
//! let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 42);
//! let mut p = OneShot::new(4, vec![(1, 7u64), (2, 9u64)]);
//! sim.run(&mut p, 1);
//! assert!(p.received(0).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod combinators;
mod engine;
pub mod family;
pub mod faults;
mod params;
mod protocol;
pub mod rng;
mod runnable;
pub mod testing;
mod trace;
mod values;

pub use bitset::WordBitset;
pub use combinators::{Either, Faulty, Interleave, Jammer, Noise};
pub use engine::{
    with_default_engine_mode, CollisionModel, EngineMode, Metrics, RoundView, RunOutcome, RunStats,
    SimScratch, Simulator,
};
pub use family::{OverrideClass, OverrideSpec, ParsedArgs, ProtocolFamily};
pub use faults::{FaultError, FaultPlan, FaultSchedule};
pub use params::NetParams;
pub use protocol::{Protocol, Round, TxBuf};
pub use runnable::{Runnable, TrialPool, TrialRecord};
pub use trace::{Event, Trace};
pub use values::NodeValues;
