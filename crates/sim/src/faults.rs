//! Fault injection: declarative fault plans (adversarial jammers, per-round
//! node dropout, crash-stop failures) that any protocol can be run under
//! without protocol-side code.
//!
//! A [`FaultPlan`] is pure data — *how many* jammers, with what noise
//! probability, what per-round dropout probability, and what per-round
//! crash-stop probability — with a stable string form (`jam(3,0.5)`,
//! `drop(0.1)`, `crash(0.01)`, `jam(3,0.5)!drop(0.1)!crash(0.01)`, `none`;
//! `Display` and `FromStr` round-trip), so fault configurations travel
//! through scenario strings, campaign definitions and JSON results exactly
//! like topologies and protocols do.
//!
//! Resolving a plan against a concrete graph size and seed yields a
//! [`FaultSchedule`]: concrete jammer node ids plus a *stateless* source of
//! per-`(round, node)` fault coins (SplitMix64-hashed, so querying a coin is
//! `O(1)`, order-independent, and perfectly reproducible). The schedule is
//! consumed in two places:
//!
//! * the [`crate::Simulator`] engine applies it at the channel level —
//!   dropped nodes neither transmit nor receive that round, jammers never
//!   perform protocol actions and instead emit noise with their firing
//!   probability (noise collides with real traffic; a *uniquely* heard noise
//!   burst is garbage and delivers nothing);
//! * the [`crate::Faulty`] combinator applies the same semantics at the
//!   protocol layer, for tests that want an explicit wrapper. Protocol
//!   behavior and transmission/collision accounting match the engine path
//!   coin for coin, but the *deliveries* metric differs: the combinator's
//!   noise is an ordinary message to the (fault-unaware) engine, so a
//!   uniquely heard burst counts as a channel delivery there, while the
//!   engine path counts it as nothing. Measurements should use the engine
//!   path (campaigns do).
//!
//! The engine receives its schedule **explicitly**: either at construction
//! via [`crate::Simulator::with_faults`] or afterwards via
//! [`crate::Simulator::set_faults`]. Scenario implementations accept an
//! `Option<&FaultSchedule>` in
//! [`crate::Runnable::run_trial_scheduled`] and hand it to every simulator
//! they build, so the campaign executor can run trials from any worker
//! thread without ambient (thread-local) state. `FaultSchedule` is plain
//! data — `Send + Sync` — and cheap to clone.
//!
//! Fault semantics in detail:
//!
//! * **Jammers** are adversarial nodes. They never execute the wrapped
//!   protocol's actions; each round, each jammer independently transmits
//!   noise with probability `P`. Noise collides with real transmissions like
//!   any other packet; a listener whose only transmitting neighbor is a
//!   noise burst hears garbage (no delivery, no collision notification).
//!   Jammers are exempt from dropout — the adversary is reliable.
//! * **Dropout** is transient: each round, each non-jammer node is
//!   independently *down* with probability `P` (the unreliable-node regime
//!   of the dual-graph literature). A down node's transmission is
//!   suppressed and it hears nothing that round.
//! * **Crash-stop** is permanent: each round, each still-alive non-jammer
//!   node independently *crashes* with probability `P` and stays down for
//!   the rest of the trial (the fail-stop regime). Equivalently, each
//!   node's crash round is an independent geometric draw — which is exactly
//!   how the schedule evaluates it, from a single stateless per-node coin,
//!   so crash queries stay `O(1)` and order-independent like the other
//!   fault coins.

use crate::rng;
use rn_graph::NodeId;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Declarative fault configuration: jammer count + firing probability, a
/// per-round dropout probability and a per-round crash-stop probability.
/// Construct via [`FaultPlan::none`], [`FaultPlan::jam`],
/// [`FaultPlan::drop`], [`FaultPlan::crash`] or [`FaultPlan::try_new`];
/// fields are validated invariants, not raw data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    jammers: usize,
    jam_prob: f64,
    drop_prob: f64,
    crash_prob: f64,
}

/// Error from validating or parsing a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    msg: String,
}

impl FaultError {
    fn new(msg: impl Into<String>) -> FaultError {
        FaultError { msg: msg.into() }
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.msg)
    }
}

impl Error for FaultError {}

impl FaultPlan {
    /// The string forms accepted by [`FromStr`], for help text.
    pub const GRAMMAR: &'static [&'static str] = &["jam(K,P)", "drop(P)", "crash(P)", "none"];

    /// The fault-free plan (the default everywhere).
    pub fn none() -> FaultPlan {
        FaultPlan { jammers: 0, jam_prob: 0.0, drop_prob: 0.0, crash_prob: 0.0 }
    }

    /// Validating constructor.
    ///
    /// # Errors
    ///
    /// [`FaultError`] if a probability is outside `[0, 1]` (or NaN). A plan
    /// with zero jammers normalizes its jam probability to 0, so plans are
    /// canonical by construction.
    pub fn try_new(
        jammers: usize,
        jam_prob: f64,
        drop_prob: f64,
        crash_prob: f64,
    ) -> Result<FaultPlan, FaultError> {
        if !(0.0..=1.0).contains(&jam_prob) {
            return Err(FaultError::new(format!("jam probability {jam_prob} not in [0, 1]")));
        }
        if !(0.0..=1.0).contains(&drop_prob) {
            return Err(FaultError::new(format!("drop probability {drop_prob} not in [0, 1]")));
        }
        if !(0.0..=1.0).contains(&crash_prob) {
            return Err(FaultError::new(format!("crash probability {crash_prob} not in [0, 1]")));
        }
        let jam_prob = if jammers == 0 { 0.0 } else { jam_prob };
        Ok(FaultPlan { jammers, jam_prob, drop_prob, crash_prob })
    }

    /// `count` jammers, each firing noise with probability `prob` per round.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]`.
    pub fn jam(count: usize, prob: f64) -> FaultPlan {
        FaultPlan::try_new(count, prob, 0.0, 0.0).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Per-round node dropout with probability `prob`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]`.
    pub fn drop(prob: f64) -> FaultPlan {
        FaultPlan::try_new(0, 0.0, prob, 0.0).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Crash-stop failures: each round, each alive non-jammer node crashes
    /// with probability `prob` and stays down for the rest of the trial.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]`.
    pub fn crash(prob: f64) -> FaultPlan {
        FaultPlan::try_new(0, 0.0, 0.0, prob).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Whether this plan injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.jammers == 0 && self.drop_prob == 0.0 && self.crash_prob == 0.0
    }

    /// Number of jammer nodes.
    pub fn jammers(&self) -> usize {
        self.jammers
    }

    /// Per-round noise probability of each jammer.
    pub fn jam_prob(&self) -> f64 {
        self.jam_prob
    }

    /// Per-round per-node dropout probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Per-round per-node crash-stop probability.
    pub fn crash_prob(&self) -> f64 {
        self.crash_prob
    }

    /// Resolves the plan against an `n`-node graph: samples the distinct
    /// jammer ids from `seed` and packages the coin source. Placement is
    /// part of trial randomness — derive `seed` from the trial seed.
    ///
    /// # Panics
    ///
    /// Panics if the plan wants more jammers than the graph has nodes
    /// (callers going through the scenario-spec grammar are rejected at
    /// parse time instead).
    pub fn resolve(&self, n: usize, seed: u64) -> FaultSchedule {
        assert!(
            self.jammers <= n,
            "fault plan wants {} jammers but the graph has only {n} nodes",
            self.jammers
        );
        let mut r = rng::stream_rng(seed, 0x7A44);
        let ids = rng::sample_distinct(&mut r, self.jammers, n)
            .into_iter()
            .map(|v| v as NodeId)
            .collect();
        FaultSchedule::new(n, ids, self.jam_prob, self.drop_prob, self.crash_prob, seed)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "none");
        }
        let mut sep = "";
        if self.jammers > 0 {
            write!(f, "jam({},{})", self.jammers, self.jam_prob)?;
            sep = "!";
        }
        if self.drop_prob > 0.0 {
            write!(f, "{sep}drop({})", self.drop_prob)?;
            sep = "!";
        }
        if self.crash_prob > 0.0 {
            write!(f, "{sep}crash({})", self.crash_prob)?;
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = FaultError;

    fn from_str(s: &str) -> Result<FaultPlan, FaultError> {
        let s = s.trim();
        if s == "none" {
            return Ok(FaultPlan::none());
        }
        if s.is_empty() {
            return Err(FaultError::new("empty fault spec"));
        }
        let mut jam: Option<(usize, f64)> = None;
        let mut dropout: Option<f64> = None;
        let mut crash: Option<f64> = None;
        for item in s.split('!') {
            let item = item.trim();
            let open = item
                .find('(')
                .ok_or_else(|| FaultError::new(format!("{item:?} has no parameter list")))?;
            if !item.ends_with(')') {
                return Err(FaultError::new(format!("{item:?} is missing a closing parenthesis")));
            }
            let name = &item[..open];
            let args: Vec<&str> =
                item[open + 1..item.len() - 1].split(',').map(str::trim).collect();
            match name {
                "jam" => {
                    if jam.is_some() {
                        return Err(FaultError::new("duplicate jam(...) clause"));
                    }
                    if args.len() != 2 {
                        return Err(FaultError::new(format!(
                            "jam takes 2 arguments (count, probability), got {}",
                            args.len()
                        )));
                    }
                    let k: usize = args[0].parse().map_err(|_| {
                        FaultError::new(format!("jam: {:?} is not an integer", args[0]))
                    })?;
                    if k == 0 {
                        return Err(FaultError::new("jam needs at least one jammer"));
                    }
                    jam = Some((k, parse_prob("jam", args[1])?));
                }
                "drop" => {
                    if dropout.is_some() {
                        return Err(FaultError::new("duplicate drop(...) clause"));
                    }
                    if args.len() != 1 {
                        return Err(FaultError::new(format!(
                            "drop takes 1 argument (probability), got {}",
                            args.len()
                        )));
                    }
                    dropout = Some(parse_prob("drop", args[0])?);
                }
                "crash" => {
                    if crash.is_some() {
                        return Err(FaultError::new("duplicate crash(...) clause"));
                    }
                    if args.len() != 1 {
                        return Err(FaultError::new(format!(
                            "crash takes 1 argument (probability), got {}",
                            args.len()
                        )));
                    }
                    crash = Some(parse_prob("crash", args[0])?);
                }
                other => {
                    return Err(FaultError::new(format!(
                        "unknown fault {other:?} (known: {})",
                        FaultPlan::GRAMMAR.join(" | ")
                    )))
                }
            }
        }
        let (jammers, jam_prob) = jam.unwrap_or((0, 0.0));
        FaultPlan::try_new(jammers, jam_prob, dropout.unwrap_or(0.0), crash.unwrap_or(0.0))
    }
}

fn parse_prob(what: &str, s: &str) -> Result<f64, FaultError> {
    let p: f64 =
        s.parse().map_err(|_| FaultError::new(format!("{what}: {s:?} is not a number")))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(FaultError::new(format!("{what}: probability {s} not in [0, 1]")));
    }
    Ok(p)
}

/// A [`FaultPlan`] resolved against a concrete graph: explicit jammer ids
/// plus a stateless per-`(round, node)` coin source. Cheap to clone (one
/// small id list, one `n`-bit membership table).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    n: usize,
    jammer_ids: Vec<NodeId>,
    is_jammer: Vec<bool>,
    jam_prob: f64,
    drop_prob: f64,
    crash_prob: f64,
    /// Per-node crash round (empty when `crash_prob == 0`), precomputed at
    /// construction so the per-(round, node) hot path never pays the
    /// geometric-quantile `ln()` math.
    crash_round: Vec<u64>,
    seed: u64,
}

/// Coin streams must not collide: jam, drop and crash decisions for the
/// same `(round, node)` are independent draws.
const STREAM_JAM: u64 = 0x4A40;
const STREAM_DROP: u64 = 0xD209;
const STREAM_CRASH: u64 = 0xC2A5;

impl FaultSchedule {
    /// Builds a schedule over an `n`-node graph with explicit `jammer_ids`.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if a probability is outside
    /// `[0, 1]`, a jammer id is `>= n`, or an id is listed twice.
    pub fn new(
        n: usize,
        jammer_ids: Vec<NodeId>,
        jam_prob: f64,
        drop_prob: f64,
        crash_prob: f64,
        seed: u64,
    ) -> FaultSchedule {
        assert!((0.0..=1.0).contains(&jam_prob), "jam probability {jam_prob} not in [0, 1]");
        assert!((0.0..=1.0).contains(&drop_prob), "drop probability {drop_prob} not in [0, 1]");
        assert!((0.0..=1.0).contains(&crash_prob), "crash probability {crash_prob} not in [0, 1]");
        let mut is_jammer = vec![false; n];
        for &j in &jammer_ids {
            assert!((j as usize) < n, "jammer id {j} out of range for a {n}-node graph");
            assert!(!is_jammer[j as usize], "jammer id {j} listed twice");
            is_jammer[j as usize] = true;
        }
        let mut schedule = FaultSchedule {
            n,
            jammer_ids,
            is_jammer,
            jam_prob,
            drop_prob,
            crash_prob,
            crash_round: Vec::new(),
            seed,
        };
        // Crash rounds are per-node constants; precompute them once so the
        // per-(round, node) hot path stays a vector read rather than two
        // `ln()` calls.
        if crash_prob > 0.0 {
            schedule.crash_round =
                (0..n).map(|v| schedule.sample_crash_round(v as NodeId)).collect();
        }
        schedule
    }

    /// Number of nodes the schedule was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The jammer node ids.
    pub fn jammer_ids(&self) -> &[NodeId] {
        &self.jammer_ids
    }

    /// Whether `node` is a jammer (jammers never perform protocol actions).
    pub fn is_jammer(&self, node: NodeId) -> bool {
        self.is_jammer[node as usize]
    }

    /// A uniform coin in `[0, 1)` for `(stream, round, node)` — stateless,
    /// so coins can be queried lazily in any order without perturbing each
    /// other (this is what keeps the engine's per-round cost proportional to
    /// activity, not to `n`).
    fn coin(&self, stream: u64, round: u64, node: NodeId) -> f64 {
        let z = rng::derive(rng::derive(rng::derive(self.seed, stream), round), node as u64);
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether jammer `node` fires noise in `round`. Only meaningful for
    /// nodes in [`FaultSchedule::jammer_ids`].
    pub fn jam_fires(&self, round: u64, node: NodeId) -> bool {
        self.jam_prob > 0.0 && self.coin(STREAM_JAM, round, node) < self.jam_prob
    }

    /// The round in which `node` crash-stops (it is down from that round
    /// on), or `u64::MAX` if it never crashes under this schedule —
    /// precomputed at construction, so the query is a vector read.
    pub fn crash_round(&self, node: NodeId) -> u64 {
        if self.crash_round.is_empty() {
            return u64::MAX;
        }
        self.crash_round[node as usize]
    }

    /// The geometric crash-round draw for `node`: the quantile of one
    /// stateless per-node coin — exactly the distribution of "crash each
    /// round with probability `P`". Called once per node at construction.
    fn sample_crash_round(&self, node: NodeId) -> u64 {
        if self.crash_prob <= 0.0 || self.is_jammer[node as usize] {
            return u64::MAX;
        }
        if self.crash_prob >= 1.0 {
            return 0;
        }
        let u = self.coin(STREAM_CRASH, 0, node);
        let t = ((1.0 - u).ln() / (1.0 - self.crash_prob).ln()).floor();
        if t.is_finite() && t < u64::MAX as f64 {
            t as u64
        } else {
            u64::MAX
        }
    }

    /// Whether `node` is down (neither transmits nor receives) in `round` —
    /// transiently via dropout, or permanently once its crash round has
    /// passed. Jammers are exempt: the adversary is reliable.
    pub fn is_down(&self, round: u64, node: NodeId) -> bool {
        self.is_dropped(round, node) || round >= self.crash_round(node)
    }

    /// The transient-dropout component of [`FaultSchedule::is_down`] alone:
    /// whether `node`'s dropout coin fires in `round` (always `false` for
    /// jammers). The engine's frontier mode evaluates the permanent
    /// crash-stop component through an incrementally maintained crashed-node
    /// bitset instead of the per-query `crash_round` vector read, so for
    /// every non-jammer `is_down(r, v) == is_dropped(r, v) || r >=
    /// crash_round(v)` is the invariant both paths share (jammers never
    /// crash — their crash round is `u64::MAX`).
    pub fn is_dropped(&self, round: u64, node: NodeId) -> bool {
        if self.is_jammer[node as usize] {
            return false;
        }
        self.drop_prob > 0.0 && self.coin(STREAM_DROP, round, node) < self.drop_prob
    }

    /// Whether a protocol transmission from `node` in `round` is suppressed
    /// (the node is a jammer — which never executes protocol actions — or
    /// down this round).
    pub fn suppresses_tx(&self, round: u64, node: NodeId) -> bool {
        self.is_jammer[node as usize] || self.is_down(round, node)
    }
}

// The executor runs trials from arbitrary worker threads and hands the
// schedule around by reference; this fails to compile if `FaultSchedule`
// ever stops being freely shareable.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FaultSchedule>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_string_forms_round_trip() {
        for s in [
            "none",
            "jam(3,0.5)",
            "drop(0.1)",
            "crash(0.01)",
            "jam(3,0.5)!drop(0.1)",
            "jam(3,0.5)!drop(0.1)!crash(0.01)",
            "drop(0.1)!crash(0.5)",
            "jam(1,1)",
            "drop(1)",
            "crash(1)",
        ] {
            let plan: FaultPlan = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(plan.to_string(), s, "display(parse({s:?}))");
            let back: FaultPlan = plan.to_string().parse().expect("reparses");
            assert_eq!(back, plan);
        }
        // Clause order is free on input; display is canonical
        // (jam, then drop, then crash).
        let plan: FaultPlan = "drop(0.1)!jam(2,0.25)".parse().expect("parses");
        assert_eq!(plan.to_string(), "jam(2,0.25)!drop(0.1)");
        let plan: FaultPlan = "crash(0.2)!jam(2,0.25)".parse().expect("parses");
        assert_eq!(plan.to_string(), "jam(2,0.25)!crash(0.2)");
    }

    #[test]
    fn crash_is_permanent_and_monotone() {
        // Crash-stop: once a node goes down it never comes back. With no
        // dropout in the plan, is_down must be monotone in the round.
        let s = FaultSchedule::new(32, vec![], 0.0, 0.0, 0.05, 13);
        for v in 0..32u32 {
            let first = (0..400u64).find(|&r| s.is_down(r, v));
            assert_eq!(
                s.crash_round(v),
                first.unwrap_or(u64::MAX),
                "is_down flips exactly at the crash round"
            );
            if let Some(r0) = first {
                assert!((r0..r0 + 200).all(|r| s.is_down(r, v)), "node {v} stays down");
            }
        }
        // A 5% per-round hazard kills most of 32 nodes within 400 rounds.
        let crashed = (0..32u32).filter(|&v| s.is_down(400, v)).count();
        assert!(crashed > 16, "only {crashed}/32 crashed after 400 rounds");
        // Deterministic in the seed, sensitive to it.
        let again = FaultSchedule::new(32, vec![], 0.0, 0.0, 0.05, 13);
        assert_eq!(
            (0..32u32).map(|v| s.crash_round(v)).collect::<Vec<_>>(),
            (0..32u32).map(|v| again.crash_round(v)).collect::<Vec<_>>()
        );
        let other = FaultSchedule::new(32, vec![], 0.0, 0.0, 0.05, 14);
        assert_ne!(
            (0..32u32).map(|v| s.crash_round(v)).collect::<Vec<_>>(),
            (0..32u32).map(|v| other.crash_round(v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn crash_edge_probabilities_and_jammer_exemption() {
        // P = 1: everyone (except jammers) is down from round 0.
        let all = FaultSchedule::new(8, vec![3], 0.5, 0.0, 1.0, 5);
        for v in 0..8u32 {
            if v == 3 {
                assert_eq!(all.crash_round(v), u64::MAX, "jammers never crash");
                assert!(!all.is_down(50, v));
            } else {
                assert_eq!(all.crash_round(v), 0);
                assert!(all.is_down(0, v));
            }
        }
        // P = 0: nobody ever crashes.
        let none = FaultSchedule::new(8, vec![], 0.0, 0.0, 0.0, 5);
        assert!((0..8u32).all(|v| none.crash_round(v) == u64::MAX));
        // Tiny P: geometric crash rounds land far out (whp beyond any
        // realistic trial budget; deterministic for this seed).
        let rare = FaultSchedule::new(64, vec![], 0.0, 0.0, 1e-6, 5);
        assert!((0..64u32).all(|v| rare.crash_round(v) > 1000));
    }

    #[test]
    fn plan_parse_rejects_malformed_specs() {
        for bad in [
            "",
            "jam",
            "jam(3)",
            "jam(0,0.5)",
            "jam(3,1.5)",
            "jam(3,-0.1)",
            "jam(3,nan)",
            "jam(x,0.5)",
            "drop()",
            "drop(2)",
            "drop(0.1,0.2)",
            "crash()",
            "crash(2)",
            "crash(-0.1)",
            "crash(0.1,0.2)",
            "crash(0.1)!crash(0.2)",
            "jam(3,0.5)!jam(2,0.5)",
            "drop(0.1)!drop(0.2)",
            "flood(0.5)",
            "jam(3,0.5",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn plan_constructors_validate_probabilities() {
        assert!(FaultPlan::try_new(3, 1.1, 0.0, 0.0).is_err());
        assert!(FaultPlan::try_new(3, 0.5, -0.2, 0.0).is_err());
        assert!(FaultPlan::try_new(3, f64::NAN, 0.0, 0.0).is_err());
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::jam(1, 0.0).is_none(), "a silent jammer still occupies its node");
        // Zero jammers normalize the jam probability away.
        assert_eq!(FaultPlan::try_new(0, 0.9, 0.0, 0.0).expect("valid"), FaultPlan::none());
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn jam_constructor_panics_on_bad_probability() {
        FaultPlan::jam(2, 1.5);
    }

    #[test]
    fn resolve_places_distinct_in_range_jammers() {
        let plan = FaultPlan::jam(5, 0.5);
        let s = plan.resolve(12, 99);
        assert_eq!(s.jammer_ids().len(), 5);
        let mut ids: Vec<_> = s.jammer_ids().to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5, "distinct jammers");
        assert!(ids.iter().all(|&j| (j as usize) < 12));
        // Deterministic in the seed, sensitive to it.
        assert_eq!(plan.resolve(12, 99), s);
        assert_ne!(plan.resolve(12, 100).jammer_ids(), s.jammer_ids());
    }

    #[test]
    #[should_panic(expected = "only 3 nodes")]
    fn resolve_rejects_more_jammers_than_nodes() {
        FaultPlan::jam(4, 0.5).resolve(3, 1);
    }

    #[test]
    #[should_panic(expected = "jammer id 9 out of range")]
    fn schedule_rejects_out_of_range_jammer_ids() {
        FaultSchedule::new(4, vec![1, 9], 0.5, 0.0, 0.0, 7);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn schedule_rejects_duplicate_jammer_ids() {
        FaultSchedule::new(4, vec![1, 1], 0.5, 0.0, 0.0, 7);
    }

    #[test]
    fn coins_are_deterministic_and_respect_edge_probabilities() {
        let s = FaultSchedule::new(8, vec![0, 1], 1.0, 0.0, 0.0, 3);
        for round in 0..50 {
            assert!(s.jam_fires(round, 0), "probability 1 always fires");
            assert!(!s.is_down(round, 5), "drop probability 0 never drops");
        }
        let silent = FaultSchedule::new(8, vec![0], 0.0, 1.0, 0.0, 3);
        for round in 0..50 {
            assert!(!silent.jam_fires(round, 0), "probability 0 never fires");
            assert!(silent.is_down(round, 5), "drop probability 1 always drops");
            assert!(!silent.is_down(round, 0), "jammers are exempt from dropout");
        }
        // Intermediate probabilities are reproducible and round-sensitive.
        let s = FaultSchedule::new(8, vec![2], 0.5, 0.5, 0.0, 11);
        let fires: Vec<bool> = (0..64).map(|r| s.jam_fires(r, 2)).collect();
        assert_eq!(fires, (0..64).map(|r| s.jam_fires(r, 2)).collect::<Vec<_>>());
        assert!(fires.iter().any(|&b| b) && fires.iter().any(|&b| !b), "a fair coin varies");
    }

    #[test]
    fn is_down_decomposes_into_dropout_plus_crash() {
        // The invariant the engine's frontier mode relies on: for every
        // (round, node), is_down == is_dropped || round >= crash_round.
        let s = FaultSchedule::new(24, vec![5, 11], 0.5, 0.3, 0.02, 21);
        for round in 0..200u64 {
            for v in 0..24u32 {
                assert_eq!(
                    s.is_down(round, v),
                    s.is_dropped(round, v) || round >= s.crash_round(v),
                    "round {round} node {v}"
                );
            }
        }
        // Jammers: neither component ever fires.
        assert!((0..200u64).all(|r| !s.is_dropped(r, 5) && s.crash_round(5) == u64::MAX));
    }

    #[test]
    fn jam_and_drop_coins_are_independent_streams() {
        let s = FaultSchedule::new(64, (0..64).collect(), 0.5, 0.5, 0.0, 5);
        // If the streams collided, jam_fires and the raw drop coin would
        // agree everywhere. (is_down exempts jammers, so compare coins.)
        let agree = (0..64u64)
            .filter(|&r| (s.coin(STREAM_JAM, r, 7) < 0.5) == (s.coin(STREAM_DROP, r, 7) < 0.5))
            .count();
        assert!(agree < 64, "streams must not be identical");
    }

    #[test]
    fn schedules_are_shareable_across_threads() {
        // The executor hands one schedule to many workers by reference; the
        // coins must read identically from any thread.
        let s = FaultSchedule::new(16, vec![3], 0.5, 0.5, 0.0, 11);
        let local: Vec<bool> = (0..64).map(|r| s.jam_fires(r, 3)).collect();
        let remote = std::thread::scope(|scope| {
            scope.spawn(|| (0..64).map(|r| s.jam_fires(r, 3)).collect::<Vec<bool>>()).join()
        })
        .expect("worker thread");
        assert_eq!(local, remote);
    }
}
