//! A plain `u64`-word bitset for struct-of-arrays hot paths.
//!
//! The engine's frontier mode and the protocol fast paths keep their node
//! sets (transmitters, listeners touched this round, informed nodes, crashed
//! nodes) as one bit per node instead of a stamp or `Option` per node: at
//! `n = 10⁶` a membership table is 125 KB — resident in L2 — where the
//! stamp-vector equivalent is 8 MB of random-access traffic. Membership
//! flips are done sparsely (the caller clears exactly the bits it set, via
//! its own touched list), so a round's cost stays proportional to activity.

/// A fixed-capacity bitset over `0..len` backed by `u64` words.
///
/// # Example
///
/// ```
/// use rn_sim::WordBitset;
///
/// let mut s = WordBitset::new(100);
/// assert!(s.set(3), "newly set");
/// assert!(!s.set(3), "already present");
/// assert!(s.contains(3));
/// s.clear(3);
/// assert!(!s.contains(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordBitset {
    words: Vec<u64>,
    len: usize,
}

impl WordBitset {
    /// An empty bitset with capacity for indices `0..len`.
    pub fn new(len: usize) -> WordBitset {
        WordBitset { words: vec![0; len.div_ceil(64)], len }
    }

    /// Capacity (the exclusive index bound given at construction).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the capacity is zero (clippy convention; an all-zero bitset
    /// with positive capacity is *not* "empty" in this sense).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether bit `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` (via the word-index bounds check).
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range for capacity {}", self.len);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Sets bit `i`; returns `true` iff it was previously clear.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range for capacity {}", self.len);
        let w = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range for capacity {}", self.len);
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Clears every bit (dense `O(len/64)` sweep; hot paths prefer clearing
    /// sparsely through their touched lists).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Resizes the capacity to `n`, zeroing every bit — but only when the
    /// capacity actually changes. Pooled reuse paths whose bits are already
    /// clear (the engine's between-rounds invariant) pay nothing on an
    /// unchanged `n`; callers that need a guaranteed-empty set at the same
    /// capacity call [`WordBitset::clear_all`] instead.
    pub fn reset_capacity(&mut self, n: usize) {
        if self.len != n {
            self.words.clear();
            self.words.resize(n.div_ceil(64), 0);
            self.len = n;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the set bits in increasing index order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi << 6;
            std::iter::successors((w != 0).then_some(w), |&rest| {
                let next = rest & (rest - 1);
                (next != 0).then_some(next)
            })
            .map(move |rest| base + rest.trailing_zeros() as usize)
        })
    }

    /// The backing words (low bit of word 0 is index 0). Bits at or above
    /// `len` in the last word are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words, for word-at-a-time kernels
    /// (dense-round OR/AND accumulation over adjacency rows).
    ///
    /// Callers must preserve the invariant that bits at or above `len` in
    /// the last word stay zero — scattering only rows that respect the
    /// bitset's capacity (e.g. adjacency rows of the same graph) does so
    /// automatically.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Debug-build coherence check, compiled to nothing in release: the
    /// backing vector holds exactly `⌈len/64⌉` words and no stray bit is
    /// set at or above `len` in the last word. Word-level kernels that take
    /// [`WordBitset::words_mut`] call this after scattering to prove they
    /// upheld the capacity contract.
    #[inline]
    pub fn debug_validate(&self) {
        debug_assert_eq!(
            self.words.len(),
            self.len.div_ceil(64),
            "WordBitset: backing words out of sync with capacity {}",
            self.len
        );
        #[cfg(debug_assertions)]
        if self.len & 63 != 0 {
            if let Some(&last) = self.words.last() {
                debug_assert_eq!(
                    last & !((1u64 << (self.len & 63)) - 1),
                    0,
                    "WordBitset: stray bits at or above len {}",
                    self.len
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_contains_clear_round_trip() {
        let mut s = WordBitset::new(200);
        assert_eq!(s.len(), 200);
        assert!(!s.is_empty());
        for i in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            assert!(!s.contains(i));
            assert!(s.set(i), "first set of {i} is fresh");
            assert!(!s.set(i), "second set of {i} is not");
            assert!(s.contains(i));
        }
        assert_eq!(s.count_ones(), 8);
        s.clear(64);
        assert!(!s.contains(64));
        assert!(s.contains(63) && s.contains(65), "neighbors untouched");
        s.clear_all();
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn iter_ones_is_sorted_and_complete() {
        let mut s = WordBitset::new(300);
        let bits = [299usize, 0, 64, 7, 128, 191, 192, 63];
        for &b in &bits {
            s.set(b);
        }
        let got: Vec<usize> = s.iter_ones().collect();
        let mut want = bits.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_full_edges() {
        let s = WordBitset::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter_ones().count(), 0);
        let mut s = WordBitset::new(64);
        for i in 0..64 {
            s.set(i);
        }
        assert_eq!(s.count_ones(), 64);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), (0..64).collect::<Vec<_>>());
        assert_eq!(s.words(), &[u64::MAX]);
    }

    #[test]
    fn capacity_not_multiple_of_64() {
        let mut s = WordBitset::new(65);
        s.set(64);
        assert_eq!(s.words().len(), 2);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![64]);
    }
}
