//! The open **protocol-family registry API**: the trait a crate implements
//! to contribute its protocols to the scenario-string grammar.
//!
//! A [`ProtocolFamily`] is one *name* of the grammar (`broadcast`,
//! `compete`, `partition`, …) together with everything the registry needs to
//! treat that name as data: its positional-argument grammar, its typed
//! override schema ([`OverrideSpec`]), parse-time validation (argument
//! ranges, the number of distinct nodes the protocol demands of a topology)
//! and a factory producing the matching [`Runnable`].
//!
//! Families live next to their algorithms — `rn_core` registers the paper's
//! protocols, `rn_baselines` the comparators, `rn_decay` the decay family
//! and the CD-exploiting variants, `rn_cluster` the `Partition(β)`
//! sub-protocol and `rn_schedule` the Downcast/Upcast executors — and
//! `rn_bench` merely *assembles* the lists. Adding an algorithm anywhere in
//! the workspace is one `ProtocolFamily` impl plus one line in that crate's
//! `families()`; no registry code changes.
//!
//! The trait lives here (not in `rn_bench`) because `rn_sim` is the one
//! crate every protocol crate already depends on: it is the lowest layer at
//! which "a runnable scenario" is meaningful.

use crate::Runnable;

/// Value class of an override key: what values `{key=value}` accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverrideClass {
    /// Any finite float.
    Float,
    /// `0` or `1`.
    Flag,
    /// An integer ≥ 1.
    Int,
    /// One of a fixed set of symbolic names; the stored value is the
    /// chosen variant's index into the listed names. `{key=name}` parses by
    /// name; canonical `Display` re-emits the name, never the index.
    Enum(&'static [&'static str]),
}

/// One key of a family's typed override schema: name, help text and value
/// class. Schemas are `'static` tables declared next to the family.
#[derive(Debug, PartialEq, Eq)]
pub struct OverrideSpec {
    /// The key's string form (short — it lives inside scenario strings).
    pub key: &'static str,
    /// One-line description of the targeted parameter (for `--list`).
    pub about: &'static str,
    /// What values the key accepts.
    pub class: OverrideClass,
}

impl OverrideSpec {
    /// Declares a schema entry (const-friendly, for `'static` tables).
    pub const fn new(key: &'static str, about: &'static str, class: OverrideClass) -> OverrideSpec {
        OverrideSpec { key, about, class }
    }

    /// Validates `value` against this key's class.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violation.
    pub fn validate(&self, value: f64) -> Result<(), String> {
        if !value.is_finite() {
            return Err(format!("{}: value must be finite", self.key));
        }
        match self.class {
            OverrideClass::Flag if value != 0.0 && value != 1.0 => {
                Err(format!("{} is a flag: use 0 or 1", self.key))
            }
            OverrideClass::Int if value < 1.0 || value.fract() != 0.0 => {
                Err(format!("{} takes an integer ≥ 1", self.key))
            }
            OverrideClass::Enum(names)
                if value < 0.0 || value.fract() != 0.0 || value >= names.len() as f64 =>
            {
                Err(format!("{} takes one of: {}", self.key, names.join(", ")))
            }
            _ => Ok(()),
        }
    }

    /// The symbolic name an [`OverrideClass::Enum`] value displays as, if
    /// this key is an enum and `value` indexes a variant.
    pub fn enum_name(&self, value: f64) -> Option<&'static str> {
        match self.class {
            OverrideClass::Enum(names) => names.get(value as usize).copied(),
            _ => None,
        }
    }
}

/// The parse-time outcome of a family validating its positional arguments:
/// the canonical argument string plus everything the registry checks before
/// any graph exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// Canonical text inside the parentheses (`None` for a bare name).
    /// `Display` of the spec re-emits exactly this, so non-canonical input
    /// (`compete(4,uniform)`) normalizes on the first round trip.
    pub canonical: Option<String>,
    /// Distinct nodes the protocol needs the topology to provide (source
    /// placement); the registry rejects pairings with smaller topologies at
    /// parse time.
    pub required_nodes: usize,
}

impl ParsedArgs {
    /// A bare name: no arguments, one required node.
    pub fn bare() -> ParsedArgs {
        ParsedArgs { canonical: None, required_nodes: 1 }
    }

    /// Canonical argument text with one required node.
    pub fn with_args(canonical: impl Into<String>) -> ParsedArgs {
        ParsedArgs { canonical: Some(canonical.into()), required_nodes: 1 }
    }

    /// Overrides the required-node count (builder style).
    pub fn needing_nodes(mut self, n: usize) -> ParsedArgs {
        self.required_nodes = n;
        self
    }
}

/// One protocol family of the open registry. See the [module docs](self).
///
/// Implementations are unit-like structs registered as `&'static dyn
/// ProtocolFamily` in their crate's `families()` list; all methods take
/// `&self` so a single static serves every spec of the family.
pub trait ProtocolFamily: Send + Sync {
    /// The family name — the identifier before any `(...)` / `{...}` in a
    /// spec. Must be unique across the assembled registry (checked at
    /// assembly time).
    fn name(&self) -> &'static str;

    /// The positional-argument grammar, for help output — e.g.
    /// `"compete(K[,uniform|clustered|corner])"`. Bare-name families return
    /// just the name.
    fn grammar(&self) -> &'static str;

    /// One-line description for `--list`.
    fn about(&self) -> &'static str;

    /// The family's typed override schema; empty (the default) means the
    /// family takes no `{key=value}` overrides.
    fn overrides(&self) -> &'static [OverrideSpec] {
        &[]
    }

    /// Canonical argument forms enumerated by registry listings and
    /// `ProtocolSpec::all()` — one entry per representative instance
    /// (`None` = the bare name). Every entry must parse via
    /// [`ProtocolFamily::parse_args`].
    fn canonical_instances(&self) -> &'static [Option<&'static str>] {
        &[None]
    }

    /// Validates and canonicalizes the positional arguments (the text
    /// between the parentheses; `None` when absent).
    ///
    /// # Errors
    ///
    /// A human-readable description of what is wrong with the arguments.
    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String>;

    /// Builds the family's [`Runnable`] for previously validated canonical
    /// `args`, with `overrides` (pairs from this family's own schema,
    /// already class-validated) applied. `label` is the full canonical spec
    /// string; the returned object's [`Runnable::name`] must equal it.
    ///
    /// # Panics
    ///
    /// May panic on arguments that did not come out of
    /// [`ProtocolFamily::parse_args`] — the registry never passes any
    /// others.
    fn instantiate(
        &self,
        args: Option<&str>,
        overrides: &[(&'static OverrideSpec, f64)],
        label: &str,
    ) -> Box<dyn Runnable>;
}

/// The `parse_args` body of a bare-name family (shared by several
/// families): no arguments allowed, one required node.
///
/// # Errors
///
/// A description naming `family` when arguments were given.
pub fn reject_args(family: &str, args: Option<&str>) -> Result<ParsedArgs, String> {
    match args {
        None => Ok(ParsedArgs::bare()),
        Some(_) => Err(format!("{family} takes no arguments")),
    }
}

/// Parses a `K`-style positive count argument (shared by several families).
///
/// # Errors
///
/// A description naming `family` when `arg` is absent, non-integer or zero.
pub fn parse_count(family: &str, arg: Option<&str>) -> Result<usize, String> {
    let a = arg.ok_or_else(|| format!("{family} needs a source count"))?;
    let k: usize = a.parse().map_err(|_| format!("{family}: {a:?} is not an integer"))?;
    if k == 0 {
        return Err(format!("{family} needs at least one source"));
    }
    Ok(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_spec_validates_by_class() {
        let f = OverrideSpec::new("x", "", OverrideClass::Float);
        assert!(f.validate(0.5).is_ok());
        assert!(f.validate(f64::NAN).is_err());
        assert!(f.validate(f64::INFINITY).is_err());
        let flag = OverrideSpec::new("b", "", OverrideClass::Flag);
        assert!(flag.validate(0.0).is_ok() && flag.validate(1.0).is_ok());
        assert!(flag.validate(2.0).is_err());
        let int = OverrideSpec::new("i", "", OverrideClass::Int);
        assert!(int.validate(3.0).is_ok());
        assert!(int.validate(0.0).is_err());
        assert!(int.validate(1.5).is_err());
        let e = OverrideSpec::new("c", "", OverrideClass::Enum(&["a", "b"]));
        assert!(e.validate(0.0).is_ok() && e.validate(1.0).is_ok());
        assert!(e.validate(2.0).is_err());
        assert!(e.validate(-1.0).is_err());
        assert!(e.validate(0.5).is_err());
        assert_eq!(e.enum_name(1.0), Some("b"));
        assert_eq!(e.enum_name(2.0), None);
        assert_eq!(int.enum_name(1.0), None);
    }

    #[test]
    fn parsed_args_builders() {
        assert_eq!(ParsedArgs::bare(), ParsedArgs { canonical: None, required_nodes: 1 });
        let p = ParsedArgs::with_args("4,corner").needing_nodes(4);
        assert_eq!(p.canonical.as_deref(), Some("4,corner"));
        assert_eq!(p.required_nodes, 4);
    }

    #[test]
    fn count_parser_rejects_bad_counts() {
        assert_eq!(parse_count("decay", Some("3")), Ok(3));
        assert!(parse_count("decay", None).unwrap_err().contains("source count"));
        assert!(parse_count("decay", Some("x")).unwrap_err().contains("not an integer"));
        assert!(parse_count("decay", Some("0")).unwrap_err().contains("at least one"));
    }
}
