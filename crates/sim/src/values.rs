//! Frontier-native per-node value state for broadcast-style protocols.
//!
//! The recurring protocol-state shape in this workspace is "each node either
//! knows nothing or knows a `u64` it max-merges on reception". The obvious
//! layout, `Vec<Option<u64>>`, costs 16 bytes per node and a branchy
//! discriminant read on the deliver hot path. [`NodeValues`] is the
//! struct-of-arrays form: an `informed` [`WordBitset`] (one bit per node)
//! over a plain `Vec<u64>` of values — membership queries stay in cache at
//! `10⁵`–`10⁶` nodes, and the value vector is only touched for informed
//! nodes. See the README's "protocol state layout" notes for how family
//! authors combine this with [`crate::RoundView`].

use crate::bitset::WordBitset;
use rn_graph::NodeId;

/// An informed-set bitset over a dense value array: `get`/`merge_max`
/// behave exactly like a `Vec<Option<u64>>` with max-merge semantics, laid
/// out for the deliver hot path.
///
/// # Example
///
/// ```
/// use rn_sim::NodeValues;
///
/// let mut vals = NodeValues::new(10);
/// assert!(vals.merge_max(3, 7), "first value informs the node");
/// assert!(!vals.merge_max(3, 5), "smaller values are absorbed");
/// assert_eq!(vals.get(3), Some(7));
/// assert_eq!(vals.get(4), None);
/// assert_eq!(vals.informed_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct NodeValues {
    informed: WordBitset,
    val: Vec<u64>,
    count: usize,
}

impl NodeValues {
    /// All-uninformed state for `n` nodes.
    pub fn new(n: usize) -> NodeValues {
        NodeValues { informed: WordBitset::new(n), val: vec![0; n], count: 0 }
    }

    /// Resets to the all-uninformed state for `n` nodes, reusing the
    /// backing storage (pooled trial loops call this instead of
    /// constructing fresh — no heap traffic unless `n` changes). Stale
    /// values behind cleared informed bits are unobservable: every accessor
    /// gates on the bit.
    pub fn reset(&mut self, n: usize) {
        self.informed.reset_capacity(n);
        self.informed.clear_all();
        if self.val.len() != n {
            self.val.clear();
            self.val.resize(n, 0);
        }
        self.count = 0;
        self.debug_validate();
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.val.len()
    }

    /// Whether the node count is zero.
    pub fn is_empty(&self) -> bool {
        self.val.is_empty()
    }

    /// The value `node` knows, or `None` if uninformed.
    #[inline]
    pub fn get(&self, node: NodeId) -> Option<u64> {
        self.informed.contains(node as usize).then(|| self.val[node as usize])
    }

    /// Whether `node` knows a value.
    #[inline]
    pub fn is_informed(&self, node: NodeId) -> bool {
        self.informed.contains(node as usize)
    }

    /// Max-merges `value` into `node`'s knowledge; returns `true` iff the
    /// node was newly informed (callers push onto their own informed list
    /// on `true`, preserving their coin-index discipline).
    #[inline]
    pub fn merge_max(&mut self, node: NodeId, value: u64) -> bool {
        let vi = node as usize;
        if self.informed.set(vi) {
            self.val[vi] = value;
            self.count += 1;
            true
        } else {
            if value > self.val[vi] {
                self.val[vi] = value;
            }
            false
        }
    }

    /// Number of informed nodes.
    #[inline]
    pub fn informed_count(&self) -> usize {
        self.count
    }

    /// Whether every node is informed.
    pub fn all_informed(&self) -> bool {
        self.debug_validate();
        self.count == self.val.len()
    }

    /// Whether every node is informed *and* knows a value `>= target` (the
    /// multi-source completion oracle: all nodes converged to the max).
    pub fn all_know_at_least(&self, target: u64) -> bool {
        self.all_informed() && self.val.iter().all(|&v| v >= target)
    }

    /// The informed set as a bitset (for word-level observers).
    pub fn informed(&self) -> &WordBitset {
        &self.informed
    }

    /// Debug-build coherence check, compiled to nothing in release: the
    /// cached `count` equals the informed bitset's popcount, and the value
    /// array tracks the bitset's capacity.
    #[inline]
    pub fn debug_validate(&self) {
        self.informed.debug_validate();
        debug_assert_eq!(
            self.val.len(),
            self.informed.len(),
            "NodeValues: value array out of sync with informed capacity"
        );
        debug_assert_eq!(
            self.count,
            self.informed.count_ones(),
            "NodeValues: cached informed count diverged from bitset popcount"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_option_vec_with_max_merge() {
        let mut soa = NodeValues::new(50);
        let mut reference: Vec<Option<u64>> = vec![None; 50];
        // A little deterministic churn covering inform / absorb / raise.
        for step in 0..200u64 {
            let node = ((step * 7) % 50) as NodeId;
            let value = (step * 13) % 40;
            let newly = soa.merge_max(node, value);
            let slot = &mut reference[node as usize];
            match slot {
                None => {
                    assert!(newly);
                    *slot = Some(value);
                }
                Some(old) => {
                    assert!(!newly);
                    if value > *old {
                        *old = value;
                    }
                }
            }
        }
        for v in 0..50u32 {
            assert_eq!(soa.get(v), reference[v as usize], "node {v}");
            assert_eq!(soa.is_informed(v), reference[v as usize].is_some());
        }
        assert_eq!(soa.informed_count(), reference.iter().flatten().count());
        assert_eq!(soa.informed().count_ones(), soa.informed_count());
    }

    #[test]
    fn completion_oracles() {
        let mut vals = NodeValues::new(3);
        assert!(!vals.all_informed());
        assert_eq!(vals.len(), 3);
        assert!(!vals.is_empty());
        for v in 0..3 {
            vals.merge_max(v, 2);
        }
        assert!(vals.all_informed());
        assert!(vals.all_know_at_least(2));
        assert!(!vals.all_know_at_least(3));
        vals.merge_max(1, 9);
        assert!(!vals.all_know_at_least(3), "only node 1 knows 9");
        assert!(vals.all_know_at_least(2));
    }

    #[test]
    fn zero_is_a_real_value_not_uninformed() {
        let mut vals = NodeValues::new(2);
        assert!(vals.merge_max(0, 0), "informing with value 0 works");
        assert_eq!(vals.get(0), Some(0));
        assert!(vals.get(1).is_none());
        assert!(!vals.all_informed());
    }
}
