use crate::engine::RoundView;
use rn_graph::NodeId;

/// A simulation round number (0-based).
pub type Round = u64;

/// Buffer into which a protocol pushes this round's transmissions.
///
/// Each node may transmit at most once per round; violating this is a
/// protocol bug and the engine panics on it.
#[derive(Debug)]
pub struct TxBuf<M> {
    entries: Vec<(NodeId, M)>,
}

impl<M> TxBuf<M> {
    /// Creates an empty buffer.
    pub fn new() -> TxBuf<M> {
        TxBuf { entries: Vec::new() }
    }

    /// Records that `node` transmits `msg` this round.
    #[inline]
    pub fn send(&mut self, node: NodeId, msg: M) {
        self.entries.push((node, msg));
    }

    /// Number of transmissions recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no node transmits this round.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears the buffer (retaining capacity).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Reserves room for at least `additional` further transmissions.
    /// Pooled trial loops reserve the worst-case bound (`n`, every node
    /// transmitting) once, so per-round `send` calls never reallocate.
    pub fn reserve(&mut self, additional: usize) {
        // rn-lint: allow(clear-before-reserve) — forwarding API; callers clear per round (SimScratch::prepare)
        self.entries.reserve(additional);
    }

    /// The recorded `(node, message)` pairs.
    pub fn entries(&self) -> &[(NodeId, M)] {
        &self.entries
    }

    /// Drains the recorded pairs (used by combinators that re-wrap messages).
    pub fn drain(&mut self) -> std::vec::Drain<'_, (NodeId, M)> {
        self.entries.drain(..)
    }
}

impl<M> Default for TxBuf<M> {
    fn default() -> Self {
        TxBuf::new()
    }
}

/// A distributed algorithm running on every node of the radio network.
///
/// One `Protocol` value holds the state of *all* nodes (struct-of-vectors is
/// the typical layout); the engine calls it once per round to collect
/// transmissions and then reports what each listening node heard under the
/// radio collision semantics.
///
/// ## Model discipline
///
/// Implementations must derive behavior only from the knowledge the model
/// grants nodes: [`crate::NetParams`], per-node state accumulated from
/// received messages, and the protocol's own random bits. The engine
/// deliberately does not pass the graph here.
///
/// ## Determinism
///
/// Protocols own their randomness (seed them at construction). Given equal
/// seeds and an equal graph, an execution is bit-for-bit reproducible.
pub trait Protocol {
    /// Message payload transmitted on the channel.
    type Msg: Clone;

    /// Collects the transmissions of all nodes for `round` into `tx`.
    fn transmit(&mut self, round: Round, tx: &mut TxBuf<Self::Msg>);

    /// Notifies that `node` (listening, with exactly one transmitting
    /// neighbor) received `msg` from neighbor `from` in `round`.
    fn deliver(&mut self, round: Round, node: NodeId, from: NodeId, msg: &Self::Msg);

    /// Notifies that listening `node` detected a collision (two or more
    /// transmitting neighbors). Only called under
    /// [`crate::CollisionModel::CollisionDetection`]; in the default model
    /// collisions are indistinguishable from silence and nothing is called.
    fn collision(&mut self, _round: Round, _node: NodeId) {}

    /// End-of-round hook: called once per round after every
    /// [`Protocol::deliver`] / [`Protocol::collision`] of that round, with a
    /// read-only [`RoundView`] of the channel outcome — per-node
    /// heard/collided/transmitted/down bits plus the round's frontier (the
    /// nodes that heard energy). Both engine modes call it identically.
    ///
    /// This is the seam for *frontier-native* protocol state: a protocol
    /// keeping its per-node state as struct-of-arrays vectors + bitsets can
    /// advance bookkeeping by walking [`RoundView::frontier`] (cost
    /// proportional to the round's activity) instead of scanning all `n`
    /// nodes. The default is a no-op.
    ///
    /// Model discipline still applies: the view only exposes what nodes
    /// could observe locally (their own channel outcome), aggregated for the
    /// whole network the same way `deliver` already is.
    fn round_end(&mut self, _round: Round, _view: &RoundView<'_>) {}

    /// Optional early-termination signal, polled once per round before
    /// [`Protocol::transmit`]. Most radio protocols cannot detect their own
    /// completion (that is part of the model!) and keep the default `false`,
    /// running until their fixed budget; measurement harnesses instead stop
    /// runs externally via [`crate::Simulator::run_until`].
    fn done(&self, _round: Round) -> bool {
        false
    }
}

/// Blanket impl so `&mut P` can be passed where a protocol is consumed.
impl<P: Protocol + ?Sized> Protocol for &mut P {
    type Msg = P::Msg;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<Self::Msg>) {
        (**self).transmit(round, tx)
    }

    fn deliver(&mut self, round: Round, node: NodeId, from: NodeId, msg: &Self::Msg) {
        (**self).deliver(round, node, from, msg)
    }

    fn collision(&mut self, round: Round, node: NodeId) {
        (**self).collision(round, node)
    }

    fn round_end(&mut self, round: Round, view: &RoundView<'_>) {
        (**self).round_end(round, view)
    }

    fn done(&self, round: Round) -> bool {
        (**self).done(round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txbuf_basics() {
        let mut buf: TxBuf<u32> = TxBuf::default();
        assert!(buf.is_empty());
        buf.send(3, 10);
        buf.send(5, 20);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.entries(), &[(3, 10), (5, 20)]);
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn txbuf_drain_moves_entries() {
        let mut buf: TxBuf<&'static str> = TxBuf::new();
        buf.send(0, "a");
        buf.send(1, "b");
        let drained: Vec<_> = buf.drain().collect();
        assert_eq!(drained, vec![(0, "a"), (1, "b")]);
        assert!(buf.is_empty());
    }
}
