//! Protocol combinators.
//!
//! The paper's Compete algorithm runs two processes "concurrently,
//! alternating between steps of each" (main on even steps, background on odd
//! steps). [`Interleave`] implements exactly that time-slicing at the engine
//! level. [`Jammer`] is a failure-injection wrapper used by robustness tests.

use crate::protocol::{Protocol, Round, TxBuf};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rn_graph::NodeId;

/// A tagged union of two message types sharing one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<L, R> {
    /// A message of the first protocol.
    Left(L),
    /// A message of the second protocol.
    Right(R),
}

/// Runs protocol `A` on even rounds and protocol `B` on odd rounds.
///
/// Each sub-protocol sees its own contiguous round numbering (`0, 1, 2, …`
/// counting only its slots), so protocols need no awareness of being
/// interleaved. Deliveries are routed by message tag; in a well-formed
/// execution `Left` messages only ever arrive on even global rounds.
///
/// # Example
///
/// ```
/// use rn_graph::generators;
/// use rn_sim::{testing::OneShot, CollisionModel, Interleave, Simulator};
///
/// let g = generators::star(3);
/// let a = OneShot::new(3, vec![(0, 1u64)]);
/// let b = OneShot::new(3, vec![(0, 2u64)]);
/// let mut both = Interleave::new(a, b);
/// let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 9);
/// sim.run(&mut both, 2); // round 0 runs A, round 1 runs B
/// assert_eq!(both.first().received(1), &[(0, 1)]);
/// assert_eq!(both.second().received(1), &[(0, 2)]);
/// ```
#[derive(Debug)]
pub struct Interleave<A: Protocol, B: Protocol> {
    a: A,
    b: B,
    buf_a: TxBuf<A::Msg>,
    buf_b: TxBuf<B::Msg>,
}

impl<A: Protocol, B: Protocol> Interleave<A, B> {
    /// Combines `a` (even rounds) and `b` (odd rounds).
    pub fn new(a: A, b: B) -> Interleave<A, B> {
        Interleave { a, b, buf_a: TxBuf::new(), buf_b: TxBuf::new() }
    }

    /// The even-slot protocol.
    pub fn first(&self) -> &A {
        &self.a
    }

    /// The odd-slot protocol.
    pub fn second(&self) -> &B {
        &self.b
    }

    /// Mutable access to the even-slot protocol.
    pub fn first_mut(&mut self) -> &mut A {
        &mut self.a
    }

    /// Mutable access to the odd-slot protocol.
    pub fn second_mut(&mut self) -> &mut B {
        &mut self.b
    }

    /// Consumes the combinator, returning both protocols.
    pub fn into_parts(self) -> (A, B) {
        (self.a, self.b)
    }
}

impl<A: Protocol, B: Protocol> Protocol for Interleave<A, B> {
    type Msg = Either<A::Msg, B::Msg>;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<Self::Msg>) {
        if round.is_multiple_of(2) {
            self.buf_a.clear();
            self.a.transmit(round / 2, &mut self.buf_a);
            for (u, m) in self.buf_a.drain() {
                tx.send(u, Either::Left(m));
            }
        } else {
            self.buf_b.clear();
            self.b.transmit(round / 2, &mut self.buf_b);
            for (u, m) in self.buf_b.drain() {
                tx.send(u, Either::Right(m));
            }
        }
    }

    fn deliver(&mut self, round: Round, node: NodeId, from: NodeId, msg: &Self::Msg) {
        match msg {
            Either::Left(m) => self.a.deliver(round / 2, node, from, m),
            Either::Right(m) => self.b.deliver(round / 2, node, from, m),
        }
    }

    fn collision(&mut self, round: Round, node: NodeId) {
        if round.is_multiple_of(2) {
            self.a.collision(round / 2, node);
        } else {
            self.b.collision(round / 2, node);
        }
    }

    fn done(&self, round: Round) -> bool {
        // Both sub-protocols must be done at their respective local clocks.
        self.a.done(round / 2 + round % 2) && self.b.done(round / 2)
    }
}

/// Failure injection: a set of adversarial nodes that transmit noise with a
/// per-round probability, overriding whatever the wrapped protocol wanted
/// them to do. Robustness tests use this to check that protocols degrade
/// gracefully (no panics, no false completion) under jamming.
#[derive(Debug)]
pub struct Jammer<P: Protocol> {
    inner: P,
    jammers: Vec<NodeId>,
    is_jammer: Vec<bool>,
    prob: f64,
    rng: SmallRng,
    buf: TxBuf<P::Msg>,
}

impl<P: Protocol> Jammer<P> {
    /// Wraps `inner`; each node in `jammers` transmits noise with
    /// probability `prob` each round (instead of its protocol action).
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]`.
    pub fn new(inner: P, n: usize, jammers: Vec<NodeId>, prob: f64, seed: u64) -> Jammer<P> {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        let mut is_jammer = vec![false; n];
        for &j in &jammers {
            is_jammer[j as usize] = true;
        }
        Jammer {
            inner,
            jammers,
            is_jammer,
            prob,
            rng: SmallRng::seed_from_u64(seed),
            buf: TxBuf::new(),
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the wrapper, returning the protocol.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

/// Noise payload transmitted by jammers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Noise;

impl<P: Protocol> Protocol for Jammer<P> {
    type Msg = Either<P::Msg, Noise>;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<Self::Msg>) {
        self.buf.clear();
        self.inner.transmit(round, &mut self.buf);
        for (u, m) in self.buf.drain() {
            if !self.is_jammer[u as usize] {
                tx.send(u, Either::Left(m));
            }
        }
        for i in 0..self.jammers.len() {
            if self.rng.gen::<f64>() < self.prob {
                tx.send(self.jammers[i], Either::Right(Noise));
            }
        }
    }

    fn deliver(&mut self, round: Round, node: NodeId, from: NodeId, msg: &Self::Msg) {
        match msg {
            Either::Left(m) => self.inner.deliver(round, node, from, m),
            Either::Right(_) => {} // noise carries no information
        }
    }

    fn collision(&mut self, round: Round, node: NodeId) {
        self.inner.collision(round, node);
    }

    fn done(&self, round: Round) -> bool {
        self.inner.done(round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CollisionModel, Simulator};
    use crate::testing::{EveryRound, OneShot};
    use rn_graph::generators;

    #[test]
    fn interleave_routes_rounds_by_parity() {
        let g = generators::star(3);
        let a = EveryRound::new(0, 10u64); // hub transmits every A-slot
        let b = EveryRound::new(0, 20u64);
        let mut p = Interleave::new(a, b);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut p, 4);
        // A saw rounds 0,1 (global 0,2); B saw rounds 0,1 (global 1,3).
        assert_eq!(p.first().rounds_seen(), 2);
        assert_eq!(p.second().rounds_seen(), 2);
        assert_eq!(sim.metrics().transmissions, 4);
    }

    #[test]
    fn interleave_deliveries_reach_the_right_protocol() {
        let g = generators::star(3);
        let a = OneShot::new(3, vec![(0, 1u64)]);
        let b = OneShot::new(3, vec![(0, 2u64)]);
        let mut p = Interleave::new(a, b);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut p, 2);
        assert_eq!(p.first().received(1), &[(0, 1)]);
        assert_eq!(p.first().received(2), &[(0, 1)]);
        assert_eq!(p.second().received(1), &[(0, 2)]);
    }

    #[test]
    fn interleave_sub_round_numbering_is_contiguous() {
        let g = generators::path(2);
        let a = EveryRound::new(0, 0u64);
        let b = EveryRound::new(1, 0u64);
        let mut p = Interleave::new(a, b);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut p, 9);
        assert_eq!(p.first().rounds_seen(), 5); // global rounds 0,2,4,6,8
        assert_eq!(p.second().rounds_seen(), 4); // global rounds 1,3,5,7
    }

    #[test]
    fn jammer_overrides_inner_transmissions() {
        let g = generators::star(3);
        // Hub wants to broadcast every round, but the hub is a jammer with prob 0.
        let inner = EveryRound::new(0, 7u64);
        let mut p = Jammer::new(inner, 3, vec![0], 0.0, 11);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut p, 4);
        assert_eq!(sim.metrics().transmissions, 0, "jammer silenced the hub");
    }

    #[test]
    fn jammer_noise_collides_with_real_traffic() {
        // Star: leaf 1 transmits every round; leaf 2 jams with prob 1.
        let g = generators::star(3);
        let inner = EveryRound::new(1, 7u64);
        let mut p = Jammer::new(inner, 3, vec![2], 1.0, 11);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut p, 8);
        assert_eq!(sim.metrics().deliveries, 0, "hub always hears a collision");
        assert_eq!(sim.metrics().collisions, 8);
    }
}
