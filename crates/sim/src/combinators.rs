//! Protocol combinators.
//!
//! The paper's Compete algorithm runs two processes "concurrently,
//! alternating between steps of each" (main on even steps, background on odd
//! steps). [`Interleave`] implements exactly that time-slicing at the engine
//! level. [`Faulty`] runs a protocol under a [`FaultSchedule`] (jammers +
//! per-round dropout); [`Jammer`] is its jam-only historical form, used by
//! robustness tests.

use crate::faults::FaultSchedule;
use crate::protocol::{Protocol, Round, TxBuf};
use rn_graph::NodeId;

/// A tagged union of two message types sharing one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<L, R> {
    /// A message of the first protocol.
    Left(L),
    /// A message of the second protocol.
    Right(R),
}

/// Runs protocol `A` on even rounds and protocol `B` on odd rounds.
///
/// Each sub-protocol sees its own contiguous round numbering (`0, 1, 2, …`
/// counting only its slots), so protocols need no awareness of being
/// interleaved. Deliveries are routed by message tag; in a well-formed
/// execution `Left` messages only ever arrive on even global rounds.
///
/// # Example
///
/// ```
/// use rn_graph::generators;
/// use rn_sim::{testing::OneShot, CollisionModel, Interleave, Simulator};
///
/// let g = generators::star(3);
/// let a = OneShot::new(3, vec![(0, 1u64)]);
/// let b = OneShot::new(3, vec![(0, 2u64)]);
/// let mut both = Interleave::new(a, b);
/// let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 9);
/// sim.run(&mut both, 2); // round 0 runs A, round 1 runs B
/// assert_eq!(both.first().received(1), &[(0, 1)]);
/// assert_eq!(both.second().received(1), &[(0, 2)]);
/// ```
#[derive(Debug)]
pub struct Interleave<A: Protocol, B: Protocol> {
    a: A,
    b: B,
    buf_a: TxBuf<A::Msg>,
    buf_b: TxBuf<B::Msg>,
}

impl<A: Protocol, B: Protocol> Interleave<A, B> {
    /// Combines `a` (even rounds) and `b` (odd rounds).
    pub fn new(a: A, b: B) -> Interleave<A, B> {
        Interleave { a, b, buf_a: TxBuf::new(), buf_b: TxBuf::new() }
    }

    /// The even-slot protocol.
    pub fn first(&self) -> &A {
        &self.a
    }

    /// The odd-slot protocol.
    pub fn second(&self) -> &B {
        &self.b
    }

    /// Mutable access to the even-slot protocol.
    pub fn first_mut(&mut self) -> &mut A {
        &mut self.a
    }

    /// Mutable access to the odd-slot protocol.
    pub fn second_mut(&mut self) -> &mut B {
        &mut self.b
    }

    /// Consumes the combinator, returning both protocols.
    pub fn into_parts(self) -> (A, B) {
        (self.a, self.b)
    }
}

impl<A: Protocol, B: Protocol> Protocol for Interleave<A, B> {
    type Msg = Either<A::Msg, B::Msg>;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<Self::Msg>) {
        if round.is_multiple_of(2) {
            self.buf_a.clear();
            self.a.transmit(round / 2, &mut self.buf_a);
            for (u, m) in self.buf_a.drain() {
                tx.send(u, Either::Left(m));
            }
        } else {
            self.buf_b.clear();
            self.b.transmit(round / 2, &mut self.buf_b);
            for (u, m) in self.buf_b.drain() {
                tx.send(u, Either::Right(m));
            }
        }
    }

    fn deliver(&mut self, round: Round, node: NodeId, from: NodeId, msg: &Self::Msg) {
        match msg {
            Either::Left(m) => self.a.deliver(round / 2, node, from, m),
            Either::Right(m) => self.b.deliver(round / 2, node, from, m),
        }
    }

    fn collision(&mut self, round: Round, node: NodeId) {
        if round.is_multiple_of(2) {
            self.a.collision(round / 2, node);
        } else {
            self.b.collision(round / 2, node);
        }
    }

    fn round_end(&mut self, round: Round, view: &crate::engine::RoundView<'_>) {
        // Like `collision`: the slot's owner observes its local round end.
        if round.is_multiple_of(2) {
            self.a.round_end(round / 2, view);
        } else {
            self.b.round_end(round / 2, view);
        }
    }

    fn done(&self, round: Round) -> bool {
        // Both sub-protocols must be done at their respective local clocks.
        self.a.done(round / 2 + round % 2) && self.b.done(round / 2)
    }
}

/// Noise payload transmitted by jammers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Noise;

/// Protocol-layer fault injection: runs the wrapped protocol under a
/// [`FaultSchedule`] — jammer nodes never perform protocol actions and
/// instead transmit [`Noise`] with their firing probability, and nodes that
/// are down in a round neither transmit nor receive. Robustness tests use
/// this to check that protocols degrade gracefully (no panics, no false
/// completion) under interference.
///
/// This is the protocol-combinator form of the fault model; the
/// [`crate::Simulator`] engine applies the same [`FaultSchedule`] semantics
/// directly at the channel level when a schedule is passed to
/// [`crate::Simulator::with_faults`] (see [`crate::faults`]), which is what
/// campaign trials use. One accounting caveat: to a fault-unaware engine
/// the combinator's [`Noise`] is an ordinary message, so a *uniquely* heard
/// burst counts toward `metrics.deliveries` here (the wrapper discards it
/// before the protocol sees anything), whereas the engine path counts
/// garbage as nothing. Read deliveries from the engine path when the number
/// matters.
#[derive(Debug)]
pub struct Faulty<P: Protocol> {
    inner: P,
    schedule: FaultSchedule,
    buf: TxBuf<P::Msg>,
}

impl<P: Protocol> Faulty<P> {
    /// Wraps `inner` to run under `schedule`.
    pub fn new(inner: P, schedule: FaultSchedule) -> Faulty<P> {
        Faulty { inner, schedule, buf: TxBuf::new() }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped protocol.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// The fault schedule in force.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Consumes the wrapper, returning the protocol.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Protocol> Protocol for Faulty<P> {
    type Msg = Either<P::Msg, Noise>;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<Self::Msg>) {
        self.buf.clear();
        self.inner.transmit(round, &mut self.buf);
        for (u, m) in self.buf.drain() {
            if !self.schedule.suppresses_tx(round, u) {
                tx.send(u, Either::Left(m));
            }
        }
        for i in 0..self.schedule.jammer_ids().len() {
            let j = self.schedule.jammer_ids()[i];
            if self.schedule.jam_fires(round, j) {
                tx.send(j, Either::Right(Noise));
            }
        }
    }

    fn deliver(&mut self, round: Round, node: NodeId, from: NodeId, msg: &Self::Msg) {
        if self.schedule.is_down(round, node) {
            return; // down nodes hear nothing
        }
        match msg {
            Either::Left(m) => self.inner.deliver(round, node, from, m),
            Either::Right(_) => {} // noise carries no information
        }
    }

    fn collision(&mut self, round: Round, node: NodeId) {
        if self.schedule.is_down(round, node) {
            return;
        }
        self.inner.collision(round, node);
    }

    fn round_end(&mut self, round: Round, view: &crate::engine::RoundView<'_>) {
        self.inner.round_end(round, view);
    }

    fn done(&self, round: Round) -> bool {
        self.inner.done(round)
    }
}

/// Jam-only failure injection, kept as the historical name for robustness
/// tests: a thin wrapper over [`Faulty`] with dropout disabled.
pub struct Jammer<P: Protocol> {
    inner: Faulty<P>,
}

impl<P: Protocol> std::fmt::Debug for Jammer<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Jammer").field("schedule", self.inner.schedule()).finish_non_exhaustive()
    }
}

impl<P: Protocol> Jammer<P> {
    /// Wraps `inner`; each node in `jammers` transmits noise with
    /// probability `prob` each round (instead of its protocol action).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if `prob` is not in `[0, 1]`, any
    /// jammer id is `>= n`, or an id is listed twice.
    pub fn new(inner: P, n: usize, jammers: Vec<NodeId>, prob: f64, seed: u64) -> Jammer<P> {
        Jammer { inner: Faulty::new(inner, FaultSchedule::new(n, jammers, prob, 0.0, 0.0, seed)) }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        self.inner.inner()
    }

    /// Consumes the wrapper, returning the protocol.
    pub fn into_inner(self) -> P {
        self.inner.into_inner()
    }
}

impl<P: Protocol> Protocol for Jammer<P> {
    type Msg = Either<P::Msg, Noise>;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<Self::Msg>) {
        self.inner.transmit(round, tx);
    }

    fn deliver(&mut self, round: Round, node: NodeId, from: NodeId, msg: &Self::Msg) {
        self.inner.deliver(round, node, from, msg);
    }

    fn collision(&mut self, round: Round, node: NodeId) {
        self.inner.collision(round, node);
    }

    fn round_end(&mut self, round: Round, view: &crate::engine::RoundView<'_>) {
        self.inner.round_end(round, view);
    }

    fn done(&self, round: Round) -> bool {
        self.inner.done(round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CollisionModel, Simulator};
    use crate::testing::{EveryRound, OneShot};
    use rn_graph::generators;

    #[test]
    fn interleave_routes_rounds_by_parity() {
        let g = generators::star(3);
        let a = EveryRound::new(0, 10u64); // hub transmits every A-slot
        let b = EveryRound::new(0, 20u64);
        let mut p = Interleave::new(a, b);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut p, 4);
        // A saw rounds 0,1 (global 0,2); B saw rounds 0,1 (global 1,3).
        assert_eq!(p.first().rounds_seen(), 2);
        assert_eq!(p.second().rounds_seen(), 2);
        assert_eq!(sim.metrics().transmissions, 4);
    }

    #[test]
    fn interleave_deliveries_reach_the_right_protocol() {
        let g = generators::star(3);
        let a = OneShot::new(3, vec![(0, 1u64)]);
        let b = OneShot::new(3, vec![(0, 2u64)]);
        let mut p = Interleave::new(a, b);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut p, 2);
        assert_eq!(p.first().received(1), &[(0, 1)]);
        assert_eq!(p.first().received(2), &[(0, 1)]);
        assert_eq!(p.second().received(1), &[(0, 2)]);
    }

    #[test]
    fn interleave_sub_round_numbering_is_contiguous() {
        let g = generators::path(2);
        let a = EveryRound::new(0, 0u64);
        let b = EveryRound::new(1, 0u64);
        let mut p = Interleave::new(a, b);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut p, 9);
        assert_eq!(p.first().rounds_seen(), 5); // global rounds 0,2,4,6,8
        assert_eq!(p.second().rounds_seen(), 4); // global rounds 1,3,5,7
    }

    #[test]
    fn jammer_overrides_inner_transmissions() {
        let g = generators::star(3);
        // Hub wants to broadcast every round, but the hub is a jammer with prob 0.
        let inner = EveryRound::new(0, 7u64);
        let mut p = Jammer::new(inner, 3, vec![0], 0.0, 11);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut p, 4);
        assert_eq!(sim.metrics().transmissions, 0, "jammer silenced the hub");
    }

    #[test]
    fn jammer_noise_collides_with_real_traffic() {
        // Star: leaf 1 transmits every round; leaf 2 jams with prob 1.
        let g = generators::star(3);
        let inner = EveryRound::new(1, 7u64);
        let mut p = Jammer::new(inner, 3, vec![2], 1.0, 11);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut p, 8);
        assert_eq!(sim.metrics().deliveries, 0, "hub always hears a collision");
        assert_eq!(sim.metrics().collisions, 8);
    }

    #[test]
    #[should_panic(expected = "jammer id 7 out of range")]
    fn jammer_rejects_out_of_range_ids_with_a_clear_message() {
        // Regression: this used to panic with a raw index-out-of-bounds.
        let inner = EveryRound::new(0, 1u64);
        let _ = Jammer::new(inner, 3, vec![7], 0.5, 1);
    }

    #[test]
    fn faulty_blocks_completion_under_heavy_jamming_in_both_models() {
        use crate::faults::FaultSchedule;
        use crate::testing::NaiveFlood;
        // Path 0-1-2-3: node 1 jams with probability 1, so nothing the
        // source says ever gets past it — the flood must NOT report all
        // nodes informed, under either collision model.
        let g = generators::path(4);
        for model in [CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection] {
            let schedule = FaultSchedule::new(4, vec![1], 1.0, 0.0, 0.0, 9);
            let mut p = Faulty::new(NaiveFlood::new(4, 0), schedule);
            let mut sim = Simulator::new(&g, model, 5);
            sim.run(&mut p, 256);
            assert!(
                p.inner().informed_count() < 4,
                "no false completion under heavy jamming ({model:?}); \
                 informed {}",
                p.inner().informed_count()
            );
            assert_eq!(p.inner().informed_count(), 1, "only the source knows the message");
        }
    }

    #[test]
    fn faulty_dropout_silences_and_deafens_down_nodes() {
        use crate::faults::FaultSchedule;
        // Total dropout: every protocol transmission is suppressed and
        // nothing is ever heard.
        let g = generators::path(2);
        let all_down = FaultSchedule::new(2, vec![], 0.0, 1.0, 0.0, 9);
        let a = EveryRound::new(0, 1u64);
        let b = EveryRound::new(1, 2u64);
        let mut p = Faulty::new(Interleave::new(a, b), all_down);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut p, 8);
        assert_eq!(sim.metrics().transmissions, 0, "down nodes are silent");
        assert_eq!(sim.metrics().deliveries, 0);

        // Jammers are exempt from dropout: node 1 keeps jamming through
        // total dropout, and down node 0 receives none of it.
        let jam_through = FaultSchedule::new(2, vec![1], 1.0, 1.0, 0.0, 9);
        let mut p = Faulty::new(EveryRound::new(0, 1u64), jam_through);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut p, 8);
        assert_eq!(sim.metrics().transmissions, 8, "the adversary is reliable");
        assert_eq!(p.inner().rounds_seen(), 8, "the wrapped protocol still runs");
    }

    #[test]
    fn faulty_and_engine_fault_paths_agree_on_jamming() {
        use crate::faults::FaultSchedule;
        use crate::testing::NaiveFlood;
        // The combinator and the engine key their coins identically, so a
        // jam-only schedule produces the same transmission pattern either
        // way (dropout differs only in channel accounting).
        let g = generators::grid(4, 4);
        let schedule = FaultSchedule::new(16, vec![5, 10], 0.5, 0.0, 0.0, 21);

        let mut wrapped = Faulty::new(NaiveFlood::new(16, 0), schedule.clone());
        let mut sim_a = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim_a.run(&mut wrapped, 64);

        let mut plain = NaiveFlood::new(16, 0);
        let mut sim_b = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim_b.set_faults(Some(schedule));
        sim_b.run(&mut plain, 64);

        assert_eq!(sim_a.metrics().transmissions, sim_b.metrics().transmissions);
        assert_eq!(sim_a.metrics().collisions, sim_b.metrics().collisions);
        assert_eq!(wrapped.inner().informed_count(), plain.informed_count());
        // Known, documented divergence: uniquely heard noise counts as a
        // channel delivery in the combinator path (the engine can't know
        // it is garbage) but as nothing in the engine path — so the
        // combinator reports at least as many deliveries, never fewer.
        assert!(
            sim_a.metrics().deliveries >= sim_b.metrics().deliveries,
            "combinator deliveries include uniquely heard noise"
        );
    }
}
