use serde::{Deserialize, Serialize};

/// The network knowledge the model grants every node.
///
/// In the ad-hoc radio model nodes know nothing about the topology except the
/// two global parameters `n` (number of nodes) and `D` (diameter). Protocols
/// receive a `NetParams` at construction and must derive all their tuning
/// (decay depths, schedule lengths, cluster radii, …) from it — never from
/// the graph, which only the engine sees.
///
/// # Example
///
/// ```
/// use rn_sim::NetParams;
///
/// let p = NetParams::new(1000, 50);
/// assert_eq!(p.log2_n(), 10);  // ⌈log₂ 1000⌉
/// assert_eq!(p.log2_d(), 6);   // ⌈log₂ 50⌉, never below 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NetParams {
    n: usize,
    diameter: u32,
}

impl NetParams {
    /// Creates parameters for a network with `n` nodes and diameter `diameter`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, diameter: u32) -> NetParams {
        assert!(n > 0, "network must have at least one node");
        NetParams { n, diameter }
    }

    /// Derives parameters from a graph (exact diameter). Convenience for
    /// tests and experiment setup; the values handed to protocols are the
    /// same `n`/`D` the model assumes known.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn of_graph(g: &rn_graph::Graph) -> NetParams {
        NetParams::new(g.n(), g.diameter())
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Diameter `D`.
    #[inline]
    pub fn diameter(&self) -> u32 {
        self.diameter
    }

    /// `⌈log₂ n⌉`, at least 1 — the length of one Decay round and the
    /// ubiquitous "log n" of the paper's bounds.
    #[inline]
    pub fn log2_n(&self) -> u32 {
        ceil_log2(self.n as u64).max(1)
    }

    /// `⌈log₂ D⌉`, at least 1.
    #[inline]
    pub fn log2_d(&self) -> u32 {
        ceil_log2(self.diameter.max(1) as u64).max(1)
    }

    /// `D^exp` rounded to the nearest integer, at least `min` — the paper's
    /// `D^0.2`, `D^0.5`, `D^0.99`-style quantities as practical integers.
    pub fn d_pow(&self, exp: f64, min: u64) -> u64 {
        ((self.diameter.max(1) as f64).powf(exp).round() as u64).max(min)
    }

    /// A whp round budget generous enough for every decay-style broadcast:
    /// `64·(D + log n)·log n + 4096`. The single shared definition used by
    /// the baseline entry points and the scenario registry, so tuning the
    /// constant cannot drift between call sites.
    pub fn decay_broadcast_budget(&self) -> u64 {
        let log_n = self.log2_n() as u64;
        64 * (self.diameter as u64 + log_n) * log_n + 4096
    }
}

/// `⌈log₂ x⌉` for `x ≥ 1`; 0 for `x ∈ {0, 1}`.
pub(crate) fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn params_accessors() {
        let p = NetParams::new(1, 0);
        assert_eq!(p.log2_n(), 1, "log n floored at 1");
        assert_eq!(p.log2_d(), 1, "log D floored at 1");

        let p = NetParams::new(4096, 256);
        assert_eq!(p.log2_n(), 12);
        assert_eq!(p.log2_d(), 8);
    }

    #[test]
    fn decay_budget_scales_with_d() {
        let small = NetParams::new(256, 16).decay_broadcast_budget();
        let large = NetParams::new(256, 1024).decay_broadcast_budget();
        assert!(large > small);
        // Exact formula: 64·(D + log n)·log n + 4096.
        assert_eq!(small, 64 * (16 + 8) * 8 + 4096);
    }

    #[test]
    fn d_pow_is_monotone_and_floored() {
        let p = NetParams::new(1000, 1024);
        assert_eq!(p.d_pow(0.5, 1), 32);
        assert_eq!(p.d_pow(0.0, 1), 1);
        assert_eq!(p.d_pow(1.0, 1), 1024);
        assert_eq!(p.d_pow(0.2, 10), 10, "floor applies");
    }

    #[test]
    fn of_graph_matches_manual() {
        let g = rn_graph::generators::grid(5, 5);
        let p = NetParams::of_graph(&g);
        assert_eq!(p.n(), 25);
        assert_eq!(p.diameter(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = NetParams::new(0, 0);
    }
}
