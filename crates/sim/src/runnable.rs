//! The [`Runnable`] protocol-factory trait: the uniform entry point every
//! algorithm crate implements so campaigns can cross *any* protocol with
//! *any* topology and collision model without naming either in code.
//!
//! A `Runnable` is a self-contained scenario: given a graph, the network
//! knowledge ([`NetParams`]) the model grants nodes, a collision model and a
//! trial seed, it sets up its protocol (sources, parameters, budgets), runs
//! it to completion or budget exhaustion, and reports one machine-readable
//! [`TrialRecord`]. Implementations live next to their algorithms —
//! `rn_core` (Compete / broadcast / leader election), `rn_baselines` (BGI,
//! truncated decay, binary-search leader election), `rn_decay` (raw
//! multi-source decay) — and are registered by name in `rn_bench`'s scenario
//! registry.

use crate::engine::SimScratch;
use crate::faults::{FaultPlan, FaultSchedule};
use crate::{rng, CollisionModel, Metrics, NetParams};
use rn_graph::Graph;
use std::any::Any;

/// Per-worker reusable trial state: one [`SimScratch`] of engine scratch
/// plus one type-erased slot for whatever protocol/scenario state the
/// scenario's [`Runnable::run_trial_pooled`] override wants to carry across
/// trials (protocol bitsets, value vectors, transmission buffers, …).
///
/// Campaign executors keep one pool per `(worker, topology, protocol)` so a
/// multi-trial cell allocates its state once and every further trial runs
/// allocation-free. The pool is plain data — dropping it is always safe,
/// and a scenario that ignores it just runs the fresh path.
#[derive(Debug, Default)]
pub struct TrialPool {
    engine: SimScratch,
    protocol: Option<Box<dyn Any + Send>>,
}

impl TrialPool {
    /// An empty pool; the first pooled trial populates it.
    pub fn new() -> TrialPool {
        TrialPool::default()
    }

    /// Splits the pool into its engine scratch and the scenario-state slot,
    /// creating the latter with `make` when the pool is fresh or was last
    /// used by a scenario with a different state type.
    pub fn parts<T: Send + 'static>(
        &mut self,
        make: impl FnOnce() -> T,
    ) -> (&mut SimScratch, &mut T) {
        if !self.protocol.as_deref().is_some_and(|b| b.is::<T>()) {
            self.protocol = Some(Box::new(make()));
        }
        let state = self
            .protocol
            .as_deref_mut()
            .and_then(|b| b.downcast_mut::<T>())
            .expect("slot was just ensured to hold a T");
        (&mut self.engine, state)
    }
}

/// Machine-readable outcome of one scenario trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrialRecord {
    /// Whether the scenario reached its goal (all informed, unique leader,
    /// …) within its budget.
    pub completed: bool,
    /// Rounds consumed, including any charged precomputation.
    pub rounds: u64,
    /// Channel statistics, when the scenario runs packet-level through the
    /// simulator (scenarios that only account rounds leave this zeroed).
    pub metrics: Metrics,
    /// Whether [`TrialRecord::metrics`] holds real channel statistics.
    /// `false` for rounds-accounted scenarios (e.g. `binsearch_le`), whose
    /// zeroed `Metrics` are a placeholder, not a sample — aggregators must
    /// not fold them into delivery/collision/transmission distributions.
    pub metrics_recorded: bool,
}

impl TrialRecord {
    /// A record for a packet-level run: rounds and metrics from the
    /// simulator, plus the goal predicate.
    pub fn new(completed: bool, rounds: u64, metrics: Metrics) -> TrialRecord {
        TrialRecord { completed, rounds, metrics, metrics_recorded: true }
    }

    /// A record for a rounds-accounted run with no channel metrics.
    pub fn rounds_only(completed: bool, rounds: u64) -> TrialRecord {
        TrialRecord { completed, rounds, metrics: Metrics::default(), metrics_recorded: false }
    }
}

/// A named, repeatable scenario: one protocol family plus its setup policy,
/// runnable on any graph under any collision model.
///
/// Implementations must be cheap to construct and reusable across trials —
/// `run_trial` takes `&self` and is called concurrently from the campaign
/// runner's worker threads (hence the `Send + Sync` supertraits). All
/// randomness must derive from the passed `seed` so a `(scenario, graph,
/// model, seed)` tuple pins the trial exactly.
pub trait Runnable: Send + Sync {
    /// The scenario's stable registry name (e.g. `"leader_election"`,
    /// `"binsearch_le(bgi)"`). Used in tables, JSON results and CLI specs.
    fn name(&self) -> String;

    /// The collision model a trial actually runs under when `requested` is
    /// asked for. Most scenarios honor the request (the default); scenarios
    /// whose probe dictates a fixed model (e.g. a beep wave needs collision
    /// detection) override this so campaign records stay truthful — the
    /// campaign runner records and passes the *effective* model.
    fn effective_model(&self, requested: CollisionModel) -> CollisionModel {
        requested
    }

    /// Runs one trial of the scenario on `g` under an optional fault
    /// schedule — the single required execution method.
    ///
    /// `net` carries the `n`/`D` knowledge the model grants every node
    /// (callers typically derive it from `g`); `model` selects the collision
    /// semantics the channel enforces and is always the value
    /// [`Runnable::effective_model`] mapped the caller's request to.
    ///
    /// Implementations must hand `faults` to every [`crate::Simulator`] they
    /// construct (via [`crate::Simulator::with_faults`]) — fault injection is
    /// explicit parameter passing, never ambient state, so trials can run
    /// from any executor worker thread.
    fn run_trial_scheduled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
    ) -> TrialRecord;

    /// Runs one trial reusing a caller's [`TrialPool`] — the steady-state
    /// entry point campaign executors call when they hold one pool per
    /// `(worker, topology, protocol)`.
    ///
    /// Overrides **must** produce a [`TrialRecord`] byte-identical to
    /// [`Runnable::run_trial_scheduled`] for every `(graph, net, model,
    /// seed, faults)` tuple — pooling moves allocations, never results. The
    /// default ignores the pool and runs the fresh path, so scenarios adopt
    /// pooling incrementally.
    fn run_trial_pooled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
        pool: &mut TrialPool,
    ) -> TrialRecord {
        let _ = pool;
        self.run_trial_scheduled(g, net, model, seed, faults)
    }

    /// Runs one fault-free trial: [`Runnable::run_trial_scheduled`] with no
    /// schedule.
    fn run_trial(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
    ) -> TrialRecord {
        self.run_trial_scheduled(g, net, model, seed, None)
    }

    /// Runs one trial under a declarative fault plan (jammers / per-round
    /// dropout).
    ///
    /// This provided method is the uniform fault-injection seam: it resolves
    /// `plan` against the graph (jammer placement derives from the trial
    /// seed, so it is part of trial randomness) and passes the resulting
    /// [`crate::FaultSchedule`] explicitly into
    /// [`Runnable::run_trial_scheduled`]. No scenario implements anything
    /// fault-specific. A fault-free plan is exactly [`Runnable::run_trial`].
    fn run_trial_under_faults(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        plan: &FaultPlan,
    ) -> TrialRecord {
        if plan.is_none() {
            return self.run_trial(g, net, model, seed);
        }
        let schedule = plan.resolve(g.n(), rng::derive(seed, 0xFA17));
        self.run_trial_scheduled(g, net, model, seed, Some(&schedule))
    }

    /// [`Runnable::run_trial_under_faults`] through the pooled trial path —
    /// identical fault resolution, records byte-identical to the fresh
    /// method; the campaign executor's per-worker entry point.
    fn run_trial_under_faults_pooled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        plan: &FaultPlan,
        pool: &mut TrialPool,
    ) -> TrialRecord {
        if plan.is_none() {
            return self.run_trial_pooled(g, net, model, seed, None, pool);
        }
        let schedule = plan.resolve(g.n(), rng::derive(seed, 0xFA17));
        self.run_trial_pooled(g, net, model, seed, Some(&schedule), pool)
    }
}

// Campaign executors move boxed scenarios across worker threads; this fails
// to compile if the trait object ever stops being `Send + Sync`.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<dyn Runnable>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::NaiveFlood;
    use crate::Simulator;
    use rn_graph::generators;

    /// A minimal in-crate Runnable over the testing flood protocol.
    struct FloodScenario;

    impl Runnable for FloodScenario {
        fn name(&self) -> String {
            "naive_flood".into()
        }

        fn run_trial_scheduled(
            &self,
            g: &Graph,
            net: NetParams,
            model: CollisionModel,
            seed: u64,
            faults: Option<&FaultSchedule>,
        ) -> TrialRecord {
            let mut p = NaiveFlood::new(g.n(), 0);
            let mut sim = Simulator::with_faults(g, model, seed, faults.cloned());
            let stats = sim.run(&mut p, 4 * net.diameter() as u64 + 8);
            TrialRecord::new(p.informed_count() == g.n(), stats.rounds, stats.metrics)
        }
    }

    #[test]
    fn runnable_objects_are_usable_through_dyn() {
        let g = generators::path(8);
        let net = NetParams::of_graph(&g);
        let scenario: Box<dyn Runnable> = Box::new(FloodScenario);
        assert_eq!(scenario.name(), "naive_flood");
        // A path floods fine (each frontier node is alone); a record with
        // metrics comes back.
        let r = scenario.run_trial(&g, net, CollisionModel::NoCollisionDetection, 1);
        assert!(r.completed);
        assert!(r.rounds > 0);
        assert!(r.metrics.deliveries > 0);
    }

    #[test]
    fn run_trial_under_faults_defaults_to_plain_and_degrades_under_jam() {
        use crate::faults::FaultPlan;
        let g = generators::path(12);
        let net = NetParams::of_graph(&g);
        let scenario = FloodScenario;
        let plain = scenario.run_trial(&g, net, CollisionModel::NoCollisionDetection, 1);
        let none = scenario.run_trial_under_faults(
            &g,
            net,
            CollisionModel::NoCollisionDetection,
            1,
            &FaultPlan::none(),
        );
        assert_eq!(plain, none, "a fault-free plan is exactly run_trial");
        // Half the path jamming at probability 1 makes completion
        // impossible: every non-source segment is fenced off eventually.
        let jammed = scenario.run_trial_under_faults(
            &g,
            net,
            CollisionModel::NoCollisionDetection,
            1,
            &FaultPlan::jam(12, 1.0),
        );
        assert!(!jammed.completed, "no false completion when every node jams");
        // Determinism: the same (seed, plan) reproduces the trial exactly.
        let again = scenario.run_trial_under_faults(
            &g,
            net,
            CollisionModel::NoCollisionDetection,
            1,
            &FaultPlan::jam(12, 1.0),
        );
        assert_eq!(jammed, again);
    }

    #[test]
    fn trial_record_constructors() {
        let r = TrialRecord::rounds_only(true, 42);
        assert!(r.completed);
        assert_eq!(r.rounds, 42);
        assert_eq!(r.metrics, Metrics::default());
        assert!(!r.metrics_recorded, "rounds-only records carry placeholder metrics");
        let m = TrialRecord::new(true, 7, Metrics::default());
        assert!(m.metrics_recorded, "packet-level records carry real metrics");
    }
}
