//! Minimal protocols for testing the engine and composing fixtures.
//!
//! These are deliberately simple: they let tests construct exact channel
//! configurations (who transmits when) and observe exact outcomes.

use crate::protocol::{Protocol, Round, TxBuf};
use rn_graph::NodeId;

/// A protocol where nobody ever transmits.
#[derive(Debug, Clone, Copy, Default)]
pub struct Silence;

impl Protocol for Silence {
    type Msg = u64;

    fn transmit(&mut self, _round: Round, _tx: &mut TxBuf<u64>) {}

    fn deliver(&mut self, _round: Round, _node: NodeId, _from: NodeId, _msg: &u64) {}
}

/// Transmits a fixed set of `(node, message)` pairs in round 0, then stays
/// silent; records everything every node receives and every collision
/// notification (CD model).
#[derive(Debug, Clone)]
pub struct OneShot {
    sends: Vec<(NodeId, u64)>,
    received: Vec<Vec<(NodeId, u64)>>,
    collisions: Vec<u32>,
}

impl OneShot {
    /// Creates the fixture for an `n`-node network.
    pub fn new(n: usize, sends: Vec<(NodeId, u64)>) -> OneShot {
        OneShot { sends, received: vec![Vec::new(); n], collisions: vec![0; n] }
    }

    /// Messages received by `node`, in delivery order.
    pub fn received(&self, node: NodeId) -> &[(NodeId, u64)] {
        &self.received[node as usize]
    }

    /// Collision notifications seen by `node` (CD model only).
    pub fn collisions(&self, node: NodeId) -> u32 {
        self.collisions[node as usize]
    }
}

impl Protocol for OneShot {
    type Msg = u64;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<u64>) {
        if round == 0 {
            for &(u, m) in &self.sends {
                tx.send(u, m);
            }
        }
    }

    fn deliver(&mut self, _round: Round, node: NodeId, from: NodeId, msg: &u64) {
        self.received[node as usize].push((from, *msg));
    }

    fn collision(&mut self, _round: Round, node: NodeId) {
        self.collisions[node as usize] += 1;
    }
}

/// A single node transmitting the same message every round. Counts how many
/// rounds it has been asked to act in (used to verify interleaving).
#[derive(Debug, Clone)]
pub struct EveryRound {
    node: NodeId,
    msg: u64,
    rounds_seen: u64,
}

impl EveryRound {
    /// `node` transmits `msg` every round.
    pub fn new(node: NodeId, msg: u64) -> EveryRound {
        EveryRound { node, msg, rounds_seen: 0 }
    }

    /// Number of `transmit` calls observed.
    pub fn rounds_seen(&self) -> u64 {
        self.rounds_seen
    }
}

impl Protocol for EveryRound {
    type Msg = u64;

    fn transmit(&mut self, _round: Round, tx: &mut TxBuf<u64>) {
        self.rounds_seen += 1;
        tx.send(self.node, self.msg);
    }

    fn deliver(&mut self, _round: Round, _node: NodeId, _from: NodeId, _msg: &u64) {}
}

/// Naive flooding: the source transmits in round 0; every node transmits in
/// the round after it first receives. On trees and paths this succeeds; on
/// dense graphs it collides — both behaviors are useful fixtures.
#[derive(Debug, Clone)]
pub struct NaiveFlood {
    /// Round in which each node is due to transmit (source: round 0;
    /// receivers: the round after first reception). `None` = uninformed.
    transmit_at: Vec<Option<Round>>,
}

impl NaiveFlood {
    /// Creates a flood from `source` on an `n`-node network.
    pub fn new(n: usize, source: NodeId) -> NaiveFlood {
        let mut transmit_at = vec![None; n];
        transmit_at[source as usize] = Some(0);
        NaiveFlood { transmit_at }
    }

    /// Whether `node` has received (or originated) the flood.
    pub fn is_informed(&self, node: NodeId) -> bool {
        self.transmit_at[node as usize].is_some()
    }

    /// Number of informed nodes.
    pub fn informed_count(&self) -> usize {
        self.transmit_at.iter().filter(|x| x.is_some()).count()
    }
}

impl Protocol for NaiveFlood {
    type Msg = u64;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<u64>) {
        for (v, &at) in self.transmit_at.iter().enumerate() {
            if at == Some(round) {
                tx.send(v as NodeId, 1);
            }
        }
    }

    fn deliver(&mut self, round: Round, node: NodeId, _from: NodeId, _msg: &u64) {
        let slot = &mut self.transmit_at[node as usize];
        if slot.is_none() {
            *slot = Some(round + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CollisionModel, Simulator};
    use rn_graph::generators;

    #[test]
    fn naive_flood_crosses_a_path() {
        let g = generators::path(6);
        let mut p = NaiveFlood::new(6, 0);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 3);
        sim.run(&mut p, 10);
        assert_eq!(p.informed_count(), 6);
    }

    #[test]
    fn naive_flood_stalls_on_even_cycles() {
        // On a 4-cycle, the two neighbors of the source get informed in round
        // 0 and both transmit in round 1: permanent collision at the antipode.
        let g = generators::cycle(4);
        let mut p = NaiveFlood::new(4, 0);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 3);
        sim.run(&mut p, 20);
        assert_eq!(p.informed_count(), 3, "antipodal node starves under collisions");
        assert!(!p.is_informed(2));
    }
}
