use crate::protocol::Round;
use rn_graph::NodeId;
use std::collections::VecDeque;

/// A channel-level event observed by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// `node` transmitted.
    Transmit {
        /// The transmitting node.
        node: NodeId,
    },
    /// `node` successfully received from `from`.
    Receive {
        /// The receiving node.
        node: NodeId,
        /// The unique transmitting neighbor.
        from: NodeId,
    },
    /// `node` was listening while ≥ 2 neighbors transmitted.
    Collision {
        /// The node experiencing the collision.
        node: NodeId,
    },
}

/// A bounded ring buffer of recent channel events, for debugging protocols.
///
/// When full, the oldest events are dropped (the most recent window is what
/// you want when a long run misbehaves at the end).
#[derive(Debug)]
pub struct Trace {
    capacity: usize,
    events: VecDeque<(Round, Event)>,
    dropped: u64,
}

impl Trace {
    /// Creates a trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Trace {
        Trace { capacity: capacity.max(1), events: VecDeque::new(), dropped: 0 }
    }

    pub(crate) fn push(&mut self, round: Round, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((round, event));
    }

    /// Iterates events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &(Round, Event)> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut t = Trace::new(2);
        t.push(0, Event::Transmit { node: 0 });
        t.push(1, Event::Transmit { node: 1 });
        t.push(2, Event::Transmit { node: 2 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let rounds: Vec<u64> = t.iter().map(|&(r, _)| r).collect();
        assert_eq!(rounds, vec![1, 2]);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut t = Trace::new(0);
        t.push(0, Event::Collision { node: 3 });
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
