use crate::protocol::{Protocol, Round, TxBuf};
use crate::trace::{Event, Trace};
use rn_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Which interference model the channel follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollisionModel {
    /// The model of the paper: a listening node receives iff exactly one
    /// neighbor transmits; collisions are indistinguishable from silence.
    NoCollisionDetection,
    /// A listening node with ≥ 2 transmitting neighbors is told a collision
    /// happened (via [`Protocol::collision`]). Used for ablations only.
    CollisionDetection,
}

/// Cumulative channel statistics for a simulator instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Rounds executed.
    pub rounds: u64,
    /// Individual node transmissions.
    pub transmissions: u64,
    /// Successful receptions (exactly-one-transmitter events).
    pub deliveries: u64,
    /// Listener-side collision events (≥ 2 transmitting neighbors).
    pub collisions: u64,
}

impl Metrics {
    fn diff(self, earlier: Metrics) -> Metrics {
        Metrics {
            rounds: self.rounds - earlier.rounds,
            transmissions: self.transmissions - earlier.transmissions,
            deliveries: self.deliveries - earlier.deliveries,
            collisions: self.collisions - earlier.collisions,
        }
    }
}

/// Why a [`Simulator::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The protocol reported [`Protocol::done`].
    ProtocolDone,
    /// The external stop predicate fired (see [`Simulator::run_until`]).
    StopConditionMet,
    /// The round budget was exhausted.
    BudgetExhausted,
}

/// Result of one [`Simulator::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Rounds executed by this call.
    pub rounds: u64,
    /// Metrics accumulated during this call only.
    pub metrics: Metrics,
    /// Why the run stopped.
    pub outcome: RunOutcome,
}

/// The radio-channel engine: executes a [`Protocol`] over a [`Graph`] under
/// exact radio collision semantics.
///
/// Per-round cost is proportional to the degree sum of the transmitting
/// nodes, not to `n` — protocols with sparse activity (decay frontiers,
/// schedule waves) simulate cheaply even on large networks.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    model: CollisionModel,
    round: Round,
    metrics: Metrics,
    trace: Option<Trace>,
    // Stamp-based scratch state, reset implicitly each round.
    hear_stamp: Vec<u64>,
    hear_count: Vec<u32>,
    hear_from: Vec<u32>,
    tx_stamp: Vec<u64>,
    touched: Vec<NodeId>,
    seed: u64,
}

impl<'g> Simulator<'g> {
    /// Creates an engine over `graph` with the given interference `model`.
    ///
    /// `seed` is recorded for reproducibility metadata (protocols own their
    /// actual randomness; see [`crate::rng`] for seed derivation helpers).
    pub fn new(graph: &'g Graph, model: CollisionModel, seed: u64) -> Simulator<'g> {
        let n = graph.n();
        Simulator {
            graph,
            model,
            round: 0,
            metrics: Metrics::default(),
            trace: None,
            hear_stamp: vec![0; n],
            hear_count: vec![0; n],
            hear_from: vec![0; n],
            tx_stamp: vec![0; n],
            touched: Vec::new(),
            seed,
        }
    }

    /// The graph being simulated (measurement/observer use only; protocols
    /// must not see this).
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Current round (total rounds executed since construction).
    pub fn round(&self) -> Round {
        self.round
    }

    /// The interference model in force.
    pub fn model(&self) -> CollisionModel {
        self.model
    }

    /// Master seed recorded at construction.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Cumulative metrics since construction.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Enables event tracing with the given capacity (newest events win).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Runs `protocol` for at most `max_rounds` rounds.
    pub fn run<P: Protocol>(&mut self, protocol: &mut P, max_rounds: u64) -> RunStats {
        self.run_until(protocol, max_rounds, |_, _| false)
    }

    /// Runs `protocol` until `stop(round, protocol)` returns true (checked
    /// before each round), the protocol reports done, or the budget runs out.
    ///
    /// The protocol sees a fresh clock starting at round 0 for this call
    /// (the engine's global round keeps advancing across calls), so one
    /// protocol corresponds to one `run`/`run_until` invocation.
    ///
    /// The stop predicate is *measurement instrumentation* — e.g. "all nodes
    /// informed" oracles — and is allowed to inspect global protocol state
    /// that real nodes could not observe.
    pub fn run_until<P: Protocol>(
        &mut self,
        protocol: &mut P,
        max_rounds: u64,
        mut stop: impl FnMut(Round, &P) -> bool,
    ) -> RunStats {
        let before = self.metrics;
        let start = self.round;
        let mut tx = TxBuf::new();
        let outcome = loop {
            let local = self.round - start;
            if local >= max_rounds {
                break RunOutcome::BudgetExhausted;
            }
            if stop(local, protocol) {
                break RunOutcome::StopConditionMet;
            }
            if protocol.done(local) {
                break RunOutcome::ProtocolDone;
            }
            self.step_at(protocol, &mut tx, local);
        };
        RunStats { rounds: self.round - start, metrics: self.metrics.diff(before), outcome }
    }

    /// Executes exactly one round of `protocol`, presenting the engine's
    /// global round as the protocol's round (manual stepping; prefer
    /// [`Simulator::run`] which gives the protocol a fresh clock).
    ///
    /// # Panics
    ///
    /// Panics if the protocol transmits twice from one node in one round, or
    /// transmits from an out-of-range node id.
    pub fn step_with<P: Protocol>(&mut self, protocol: &mut P) {
        let mut tx = TxBuf::new();
        let local = self.round;
        self.step_at(protocol, &mut tx, local);
    }

    /// One round of `protocol` with an explicit protocol-local round number,
    /// reusing a caller-provided buffer.
    fn step_at<P: Protocol>(&mut self, protocol: &mut P, tx: &mut TxBuf<P::Msg>, local: Round) {
        tx.clear();
        protocol.transmit(local, tx);
        let stamp = self.round + 1;

        // Mark transmitters.
        for &(u, _) in tx.entries() {
            let ui = u as usize;
            assert!(ui < self.graph.n(), "protocol transmitted from invalid node {u}");
            assert!(
                self.tx_stamp[ui] != stamp,
                "protocol bug: node {u} transmitted twice in round {}",
                self.round
            );
            self.tx_stamp[ui] = stamp;
            if let Some(t) = &mut self.trace {
                t.push(self.round, Event::Transmit { node: u });
            }
        }

        // Count what every potential listener hears.
        self.touched.clear();
        for (idx, &(u, _)) in tx.entries().iter().enumerate() {
            for &v in self.graph.neighbors(u) {
                let vi = v as usize;
                if self.hear_stamp[vi] != stamp {
                    self.hear_stamp[vi] = stamp;
                    self.hear_count[vi] = 1;
                    self.hear_from[vi] = idx as u32;
                    self.touched.push(v);
                } else {
                    self.hear_count[vi] += 1;
                }
            }
        }

        // Deliver / report collisions to listeners.
        let global = self.round;
        for i in 0..self.touched.len() {
            let v = self.touched[i];
            let vi = v as usize;
            if self.tx_stamp[vi] == stamp {
                continue; // transmitters cannot listen
            }
            if self.hear_count[vi] == 1 {
                let (from, msg) = &tx.entries()[self.hear_from[vi] as usize];
                protocol.deliver(local, v, *from, msg);
                self.metrics.deliveries += 1;
                if let Some(t) = &mut self.trace {
                    t.push(global, Event::Receive { node: v, from: *from });
                }
            } else {
                self.metrics.collisions += 1;
                if let Some(t) = &mut self.trace {
                    t.push(global, Event::Collision { node: v });
                }
                if self.model == CollisionModel::CollisionDetection {
                    protocol.collision(local, v);
                }
            }
        }

        self.metrics.transmissions += tx.len() as u64;
        self.metrics.rounds += 1;
        self.round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{OneShot, Silence};
    use rn_graph::generators;

    #[test]
    fn silence_delivers_nothing() {
        let g = generators::complete(5);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let stats = sim.run(&mut Silence, 10);
        assert_eq!(stats.rounds, 10);
        assert_eq!(stats.metrics.deliveries, 0);
        assert_eq!(stats.metrics.transmissions, 0);
        assert_eq!(stats.outcome, RunOutcome::BudgetExhausted);
    }

    #[test]
    fn unique_transmitter_reaches_all_neighbors() {
        let g = generators::star(5);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(5, vec![(0, 99u64)]); // hub speaks
        sim.run(&mut p, 1);
        for leaf in 1..5 {
            assert_eq!(p.received(leaf), &[(0, 99)]);
        }
    }

    #[test]
    fn two_transmitters_collide_at_common_neighbor_only() {
        // Path 0-1-2-3: 0 and 2 transmit. Node 1 hears both (collision);
        // node 3 hears only 2 (delivery). Node 0 and 2 transmit, hear nothing.
        let g = generators::path(4);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(4, vec![(0, 5u64), (2, 6u64)]);
        let stats = sim.run(&mut p, 1);
        assert!(p.received(1).is_empty(), "collision at node 1");
        assert_eq!(p.received(3), &[(2, 6)]);
        assert_eq!(stats.metrics.collisions, 1);
        assert_eq!(stats.metrics.deliveries, 1);
    }

    #[test]
    fn transmitter_does_not_hear_its_neighbor() {
        // Edge 0-1, both transmit: neither receives.
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(2, vec![(0, 1u64), (1, 2u64)]);
        sim.run(&mut p, 1);
        assert!(p.received(0).is_empty());
        assert!(p.received(1).is_empty());
    }

    #[test]
    fn collision_detection_model_notifies_listeners() {
        let g = generators::star(4);
        let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, 1);
        let mut p = OneShot::new(4, vec![(1, 1u64), (2, 2u64)]);
        sim.run(&mut p, 1);
        assert_eq!(p.collisions(0), 1, "hub detects the collision");
        assert_eq!(p.collisions(3), 0, "leaf 3 hears plain silence");
    }

    #[test]
    fn no_cd_model_stays_silent_on_collision() {
        let g = generators::star(4);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(4, vec![(1, 1u64), (2, 2u64)]);
        sim.run(&mut p, 1);
        assert_eq!(p.collisions(0), 0, "no notification without CD");
        assert_eq!(sim.metrics().collisions, 1, "engine still counts it");
    }

    #[test]
    #[should_panic(expected = "transmitted twice")]
    fn double_transmission_is_a_protocol_bug() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(2, vec![(0, 1u64), (0, 2u64)]);
        sim.run(&mut p, 1);
    }

    #[test]
    fn run_until_stop_condition() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let stats = sim.run_until(&mut Silence, 100, |round, _| round == 7);
        assert_eq!(stats.outcome, RunOutcome::StopConditionMet);
        assert_eq!(stats.rounds, 7);
    }

    #[test]
    fn metrics_accumulate_across_runs() {
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(3, vec![(0, 1u64)]);
        sim.run(&mut p, 1);
        let mut p2 = OneShot::new(3, vec![(0, 2u64)]);
        sim.run(&mut p2, 1);
        assert_eq!(sim.metrics().rounds, 2);
        assert_eq!(sim.metrics().transmissions, 2);
        assert_eq!(sim.metrics().deliveries, 4);
        assert_eq!(sim.round(), 2);
    }

    #[test]
    fn trace_records_events_in_order() {
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.enable_trace(16);
        let mut p = OneShot::new(3, vec![(0, 1u64)]);
        sim.run(&mut p, 1);
        let trace = sim.trace().unwrap();
        let events: Vec<_> = trace.iter().collect();
        assert_eq!(events.len(), 3); // 1 transmit + 2 receives
        assert!(matches!(events[0].1, Event::Transmit { node: 0 }));
    }
}
