use crate::faults::FaultSchedule;
use crate::protocol::{Protocol, Round, TxBuf};
use crate::trace::{Event, Trace};
use rn_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Which interference model the channel follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollisionModel {
    /// The model of the paper: a listening node receives iff exactly one
    /// neighbor transmits; collisions are indistinguishable from silence.
    NoCollisionDetection,
    /// A listening node with ≥ 2 transmitting neighbors is told a collision
    /// happened (via [`Protocol::collision`]). Used for ablations only.
    CollisionDetection,
}

/// Cumulative channel statistics for a simulator instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Rounds executed.
    pub rounds: u64,
    /// Individual node transmissions.
    pub transmissions: u64,
    /// Successful receptions (exactly-one-transmitter events).
    pub deliveries: u64,
    /// Listener-side collision events (≥ 2 transmitting neighbors).
    pub collisions: u64,
}

impl Metrics {
    fn diff(self, earlier: Metrics) -> Metrics {
        Metrics {
            rounds: self.rounds - earlier.rounds,
            transmissions: self.transmissions - earlier.transmissions,
            deliveries: self.deliveries - earlier.deliveries,
            collisions: self.collisions - earlier.collisions,
        }
    }
}

/// Why a [`Simulator::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The protocol reported [`Protocol::done`].
    ProtocolDone,
    /// The external stop predicate fired (see [`Simulator::run_until`]).
    StopConditionMet,
    /// The round budget was exhausted.
    BudgetExhausted,
}

/// Result of one [`Simulator::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Rounds executed by this call.
    pub rounds: u64,
    /// Metrics accumulated during this call only.
    pub metrics: Metrics,
    /// Why the run stopped.
    pub outcome: RunOutcome,
}

/// The radio-channel engine: executes a [`Protocol`] over a [`Graph`] under
/// exact radio collision semantics.
///
/// Per-round cost is proportional to the degree sum of the transmitting
/// nodes, not to `n` — protocols with sparse activity (decay frontiers,
/// schedule waves) simulate cheaply even on large networks.
///
/// The engine optionally runs under a [`FaultSchedule`] (jammers + per-round
/// dropout, see [`crate::faults`]): a schedule passed explicitly at
/// construction via [`Simulator::with_faults`] — or installed later with
/// [`Simulator::set_faults`] — is applied at the channel level, so *any*
/// protocol degrades under the same fault model without protocol-side code.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    model: CollisionModel,
    round: Round,
    metrics: Metrics,
    trace: Option<Trace>,
    faults: Option<FaultSchedule>,
    // Stamp-based scratch state, reset implicitly each round.
    hear_stamp: Vec<u64>,
    hear_count: Vec<u32>,
    hear_from: Vec<u32>,
    tx_stamp: Vec<u64>,
    touched: Vec<NodeId>,
    // Effective transmitters this round: (node, index into the protocol's
    // TxBuf, or NOISE_TAG for jammer noise).
    active_tx: Vec<(NodeId, u32)>,
    seed: u64,
}

/// `active_tx` tag marking a jammer noise burst (carries no message).
const NOISE_TAG: u32 = u32::MAX;

impl<'g> Simulator<'g> {
    /// Creates an engine over `graph` with the given interference `model`,
    /// running fault-free.
    ///
    /// `seed` is recorded for reproducibility metadata (protocols own their
    /// actual randomness; see [`crate::rng`] for seed derivation helpers).
    pub fn new(graph: &'g Graph, model: CollisionModel, seed: u64) -> Simulator<'g> {
        Simulator::with_faults(graph, model, seed, None)
    }

    /// As [`Simulator::new`], with an explicit fault schedule (`None` runs
    /// fault-free). This is the constructor scenario implementations use to
    /// honor the schedule [`crate::Runnable::run_trial_scheduled`] hands
    /// them — fault injection is plain parameter passing, safe to drive from
    /// any worker thread.
    ///
    /// # Panics
    ///
    /// Panics if the schedule was resolved for a different node count than
    /// `graph` has.
    pub fn with_faults(
        graph: &'g Graph,
        model: CollisionModel,
        seed: u64,
        faults: Option<FaultSchedule>,
    ) -> Simulator<'g> {
        let n = graph.n();
        if let Some(f) = &faults {
            assert!(f.n() == n, "fault schedule was resolved for {} nodes, graph has {n}", f.n());
        }
        Simulator {
            graph,
            model,
            round: 0,
            metrics: Metrics::default(),
            trace: None,
            faults,
            hear_stamp: vec![0; n],
            hear_count: vec![0; n],
            hear_from: vec![0; n],
            tx_stamp: vec![0; n],
            touched: Vec::new(),
            active_tx: Vec::new(),
            seed,
        }
    }

    /// Installs (or clears) the fault schedule the channel runs under,
    /// replacing whatever [`Simulator::with_faults`] was given.
    ///
    /// # Panics
    ///
    /// Panics if the schedule was resolved for a different node count.
    pub fn set_faults(&mut self, faults: Option<FaultSchedule>) {
        if let Some(f) = &faults {
            assert!(
                f.n() == self.graph.n(),
                "fault schedule was resolved for {} nodes, graph has {}",
                f.n(),
                self.graph.n()
            );
        }
        self.faults = faults;
    }

    /// The fault schedule in force, if any.
    pub fn faults(&self) -> Option<&FaultSchedule> {
        self.faults.as_ref()
    }

    /// The graph being simulated (measurement/observer use only; protocols
    /// must not see this).
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Current round (total rounds executed since construction).
    pub fn round(&self) -> Round {
        self.round
    }

    /// The interference model in force.
    pub fn model(&self) -> CollisionModel {
        self.model
    }

    /// Master seed recorded at construction.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Cumulative metrics since construction.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Enables event tracing with the given capacity (newest events win).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Runs `protocol` for at most `max_rounds` rounds.
    pub fn run<P: Protocol>(&mut self, protocol: &mut P, max_rounds: u64) -> RunStats {
        self.run_until(protocol, max_rounds, |_, _| false)
    }

    /// Runs `protocol` until `stop(round, protocol)` returns true (checked
    /// before each round), the protocol reports done, or the budget runs out.
    ///
    /// The protocol sees a fresh clock starting at round 0 for this call
    /// (the engine's global round keeps advancing across calls), so one
    /// protocol corresponds to one `run`/`run_until` invocation.
    ///
    /// The stop predicate is *measurement instrumentation* — e.g. "all nodes
    /// informed" oracles — and is allowed to inspect global protocol state
    /// that real nodes could not observe.
    pub fn run_until<P: Protocol>(
        &mut self,
        protocol: &mut P,
        max_rounds: u64,
        mut stop: impl FnMut(Round, &P) -> bool,
    ) -> RunStats {
        let before = self.metrics;
        let start = self.round;
        let mut tx = TxBuf::new();
        let outcome = loop {
            let local = self.round - start;
            if local >= max_rounds {
                break RunOutcome::BudgetExhausted;
            }
            if stop(local, protocol) {
                break RunOutcome::StopConditionMet;
            }
            if protocol.done(local) {
                break RunOutcome::ProtocolDone;
            }
            self.step_at(protocol, &mut tx, local);
        };
        RunStats { rounds: self.round - start, metrics: self.metrics.diff(before), outcome }
    }

    /// Executes exactly one round of `protocol`, presenting the engine's
    /// global round as the protocol's round (manual stepping; prefer
    /// [`Simulator::run`] which gives the protocol a fresh clock).
    ///
    /// # Panics
    ///
    /// Panics if the protocol transmits twice from one node in one round, or
    /// transmits from an out-of-range node id.
    pub fn step_with<P: Protocol>(&mut self, protocol: &mut P) {
        let mut tx = TxBuf::new();
        let local = self.round;
        self.step_at(protocol, &mut tx, local);
    }

    /// One round of `protocol` with an explicit protocol-local round number,
    /// reusing a caller-provided buffer.
    fn step_at<P: Protocol>(&mut self, protocol: &mut P, tx: &mut TxBuf<P::Msg>, local: Round) {
        tx.clear();
        protocol.transmit(local, tx);
        let stamp = self.round + 1;
        let global = self.round;
        // Move the schedule and the active-transmitter scratch out of `self`
        // for the round, so they can be read alongside mutable scratch state.
        let faults = self.faults.take();
        let mut active = std::mem::take(&mut self.active_tx);

        // Validate and mark protocol transmitters. Double transmission is a
        // protocol bug whether or not the fault model would suppress it.
        for &(u, _) in tx.entries() {
            let ui = u as usize;
            assert!(ui < self.graph.n(), "protocol transmitted from invalid node {u}");
            assert!(
                self.tx_stamp[ui] != stamp,
                "protocol bug: node {u} transmitted twice in round {}",
                self.round
            );
            self.tx_stamp[ui] = stamp;
        }

        // Effective transmitter set: protocol transmissions that survive the
        // fault model (jammers never act for the protocol; down nodes are
        // silent), plus jammer noise bursts.
        active.clear();
        for (idx, &(u, _)) in tx.entries().iter().enumerate() {
            if let Some(f) = &faults {
                if f.suppresses_tx(global, u) {
                    self.tx_stamp[u as usize] = 0; // physically silent: may listen
                    continue;
                }
            }
            active.push((u, idx as u32));
            if let Some(t) = &mut self.trace {
                t.push(global, Event::Transmit { node: u });
            }
        }
        if let Some(f) = &faults {
            for &j in f.jammer_ids() {
                if f.jam_fires(global, j) {
                    self.tx_stamp[j as usize] = stamp;
                    active.push((j, NOISE_TAG));
                    if let Some(t) = &mut self.trace {
                        t.push(global, Event::Transmit { node: j });
                    }
                }
            }
        }

        // Count what every potential listener hears.
        self.touched.clear();
        for (ai, &(u, _)) in active.iter().enumerate() {
            for &v in self.graph.neighbors(u) {
                let vi = v as usize;
                if self.hear_stamp[vi] != stamp {
                    self.hear_stamp[vi] = stamp;
                    self.hear_count[vi] = 1;
                    self.hear_from[vi] = ai as u32;
                    self.touched.push(v);
                } else {
                    self.hear_count[vi] += 1;
                }
            }
        }

        // Deliver / report collisions to listeners.
        for i in 0..self.touched.len() {
            let v = self.touched[i];
            let vi = v as usize;
            if self.tx_stamp[vi] == stamp {
                continue; // transmitters cannot listen
            }
            if let Some(f) = &faults {
                if f.is_down(global, v) {
                    continue; // down nodes hear nothing
                }
            }
            if self.hear_count[vi] == 1 {
                let (_, tag) = active[self.hear_from[vi] as usize];
                if tag == NOISE_TAG {
                    continue; // a uniquely heard noise burst is garbage
                }
                let (from, msg) = &tx.entries()[tag as usize];
                protocol.deliver(local, v, *from, msg);
                self.metrics.deliveries += 1;
                if let Some(t) = &mut self.trace {
                    t.push(global, Event::Receive { node: v, from: *from });
                }
            } else {
                self.metrics.collisions += 1;
                if let Some(t) = &mut self.trace {
                    t.push(global, Event::Collision { node: v });
                }
                if self.model == CollisionModel::CollisionDetection {
                    protocol.collision(local, v);
                }
            }
        }

        self.metrics.transmissions += active.len() as u64;
        self.metrics.rounds += 1;
        self.round += 1;
        self.active_tx = active;
        self.faults = faults;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{OneShot, Silence};
    use rn_graph::generators;

    #[test]
    fn silence_delivers_nothing() {
        let g = generators::complete(5);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let stats = sim.run(&mut Silence, 10);
        assert_eq!(stats.rounds, 10);
        assert_eq!(stats.metrics.deliveries, 0);
        assert_eq!(stats.metrics.transmissions, 0);
        assert_eq!(stats.outcome, RunOutcome::BudgetExhausted);
    }

    #[test]
    fn unique_transmitter_reaches_all_neighbors() {
        let g = generators::star(5);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(5, vec![(0, 99u64)]); // hub speaks
        sim.run(&mut p, 1);
        for leaf in 1..5 {
            assert_eq!(p.received(leaf), &[(0, 99)]);
        }
    }

    #[test]
    fn two_transmitters_collide_at_common_neighbor_only() {
        // Path 0-1-2-3: 0 and 2 transmit. Node 1 hears both (collision);
        // node 3 hears only 2 (delivery). Node 0 and 2 transmit, hear nothing.
        let g = generators::path(4);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(4, vec![(0, 5u64), (2, 6u64)]);
        let stats = sim.run(&mut p, 1);
        assert!(p.received(1).is_empty(), "collision at node 1");
        assert_eq!(p.received(3), &[(2, 6)]);
        assert_eq!(stats.metrics.collisions, 1);
        assert_eq!(stats.metrics.deliveries, 1);
    }

    #[test]
    fn transmitter_does_not_hear_its_neighbor() {
        // Edge 0-1, both transmit: neither receives.
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(2, vec![(0, 1u64), (1, 2u64)]);
        sim.run(&mut p, 1);
        assert!(p.received(0).is_empty());
        assert!(p.received(1).is_empty());
    }

    #[test]
    fn collision_detection_model_notifies_listeners() {
        let g = generators::star(4);
        let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, 1);
        let mut p = OneShot::new(4, vec![(1, 1u64), (2, 2u64)]);
        sim.run(&mut p, 1);
        assert_eq!(p.collisions(0), 1, "hub detects the collision");
        assert_eq!(p.collisions(3), 0, "leaf 3 hears plain silence");
    }

    #[test]
    fn no_cd_model_stays_silent_on_collision() {
        let g = generators::star(4);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(4, vec![(1, 1u64), (2, 2u64)]);
        sim.run(&mut p, 1);
        assert_eq!(p.collisions(0), 0, "no notification without CD");
        assert_eq!(sim.metrics().collisions, 1, "engine still counts it");
    }

    #[test]
    #[should_panic(expected = "transmitted twice")]
    fn double_transmission_is_a_protocol_bug() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(2, vec![(0, 1u64), (0, 2u64)]);
        sim.run(&mut p, 1);
    }

    #[test]
    fn run_until_stop_condition() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let stats = sim.run_until(&mut Silence, 100, |round, _| round == 7);
        assert_eq!(stats.outcome, RunOutcome::StopConditionMet);
        assert_eq!(stats.rounds, 7);
    }

    #[test]
    fn metrics_accumulate_across_runs() {
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(3, vec![(0, 1u64)]);
        sim.run(&mut p, 1);
        let mut p2 = OneShot::new(3, vec![(0, 2u64)]);
        sim.run(&mut p2, 1);
        assert_eq!(sim.metrics().rounds, 2);
        assert_eq!(sim.metrics().transmissions, 2);
        assert_eq!(sim.metrics().deliveries, 4);
        assert_eq!(sim.round(), 2);
    }

    #[test]
    fn engine_faults_jammer_noise_collides_with_real_traffic() {
        // Star: leaf 1 transmits every round, leaf 2 jams with probability 1
        // — the hub always hears a collision, never a delivery.
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.set_faults(Some(FaultSchedule::new(3, vec![2], 1.0, 0.0, 0.0, 7)));
        let mut p = crate::testing::EveryRound::new(1, 7u64);
        let stats = sim.run(&mut p, 8);
        assert_eq!(stats.metrics.deliveries, 0, "hub always hears a collision");
        assert_eq!(stats.metrics.collisions, 8);
        assert_eq!(stats.metrics.transmissions, 16, "leaf 1 and the jammer each round");
    }

    #[test]
    fn engine_faults_unique_noise_is_garbage_not_delivery() {
        // Only the jammer transmits: listeners hear garbage — no delivery,
        // no collision notification, but the transmission is real.
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, 1);
        sim.set_faults(Some(FaultSchedule::new(3, vec![0], 1.0, 0.0, 0.0, 7)));
        let mut p = OneShot::new(3, vec![]);
        let stats = sim.run(&mut p, 4);
        assert_eq!(stats.metrics.transmissions, 4);
        assert_eq!(stats.metrics.deliveries, 0);
        assert_eq!(stats.metrics.collisions, 0);
        assert_eq!(p.collisions(1), 0, "a single noise burst is not a collision signal");
    }

    #[test]
    fn engine_faults_jammer_suppresses_protocol_transmissions() {
        // The hub wants to broadcast every round, but the hub is a jammer
        // that never fires: total silence.
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.set_faults(Some(FaultSchedule::new(3, vec![0], 0.0, 0.0, 0.0, 7)));
        let mut p = crate::testing::EveryRound::new(0, 7u64);
        let stats = sim.run(&mut p, 4);
        assert_eq!(stats.metrics.transmissions, 0);
        assert_eq!(stats.metrics.deliveries, 0);
    }

    #[test]
    fn engine_faults_down_nodes_neither_transmit_nor_receive() {
        // Path 0-1, node 0 transmitting every round under 40% dropout. The
        // schedule's coins are public and stateless, so the exact expected
        // channel activity can be recomputed independently: a transmission
        // happens iff 0 is up, a delivery iff additionally 1 is up.
        let g = generators::path(2);
        let schedule = FaultSchedule::new(2, vec![], 0.0, 0.4, 0.0, 7);
        let expect_tx = (0..32).filter(|&r| !schedule.is_down(r, 0)).count() as u64;
        let expect_del =
            (0..32).filter(|&r| !schedule.is_down(r, 0) && !schedule.is_down(r, 1)).count() as u64;
        assert!(expect_del < expect_tx && expect_tx < 32, "seed exercises both fault kinds");
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.set_faults(Some(schedule));
        let mut p = crate::testing::EveryRound::new(0, 7u64);
        let stats = sim.run(&mut p, 32);
        assert_eq!(stats.metrics.transmissions, expect_tx);
        assert_eq!(stats.metrics.deliveries, expect_del);
    }

    #[test]
    fn engine_faults_crashed_nodes_stay_silent_forever() {
        // Path 0-1, node 0 transmitting every round under crash-stop only.
        // Channel activity must be a prefix: once either endpoint crashes,
        // deliveries stop for good (unlike transient dropout, which can
        // resume).
        let g = generators::path(2);
        let schedule = FaultSchedule::new(2, vec![], 0.0, 0.0, 0.15, 11);
        let tx_end = schedule.crash_round(0).min(64);
        let del_end = tx_end.min(schedule.crash_round(1));
        assert!(del_end < 64, "seed crashes an endpoint inside the horizon");
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.set_faults(Some(schedule));
        let mut p = crate::testing::EveryRound::new(0, 7u64);
        let stats = sim.run(&mut p, 64);
        assert_eq!(stats.metrics.transmissions, tx_end, "transmissions stop at 0's crash");
        assert_eq!(stats.metrics.deliveries, del_end, "deliveries stop at the first crash");
    }

    #[test]
    fn with_faults_constructor_matches_set_faults() {
        let g = generators::star(3);
        let schedule = FaultSchedule::new(3, vec![2], 1.0, 0.0, 0.0, 7);
        let mut sim =
            Simulator::with_faults(&g, CollisionModel::NoCollisionDetection, 1, Some(schedule));
        assert!(sim.faults().is_some(), "constructor installs the schedule");
        let mut p = crate::testing::EveryRound::new(1, 7u64);
        let jammed = sim.run(&mut p, 8).metrics;
        assert_eq!(jammed.deliveries, 0);
        // `new` is exactly `with_faults(.., None)`.
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        assert!(sim.faults().is_none(), "no schedule unless one is passed");
        let mut p = crate::testing::EveryRound::new(1, 7u64);
        assert!(sim.run(&mut p, 8).metrics.deliveries > 0);
    }

    #[test]
    #[should_panic(expected = "resolved for 5 nodes")]
    fn engine_rejects_mismatched_fault_schedule() {
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.set_faults(Some(FaultSchedule::new(5, vec![0], 0.5, 0.0, 0.0, 7)));
    }

    #[test]
    fn trace_records_events_in_order() {
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.enable_trace(16);
        let mut p = OneShot::new(3, vec![(0, 1u64)]);
        sim.run(&mut p, 1);
        let trace = sim.trace().unwrap();
        let events: Vec<_> = trace.iter().collect();
        assert_eq!(events.len(), 3); // 1 transmit + 2 receives
        assert!(matches!(events[0].1, Event::Transmit { node: 0 }));
    }
}
