use crate::bitset::WordBitset;
use crate::faults::FaultSchedule;
use crate::protocol::{Protocol, Round, TxBuf};
use crate::trace::{Event, Trace};
use rn_graph::{Graph, HybridAdjacency, NodeId};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::OnceLock;

/// Which interference model the channel follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollisionModel {
    /// The model of the paper: a listening node receives iff exactly one
    /// neighbor transmits; collisions are indistinguishable from silence.
    NoCollisionDetection,
    /// A listening node with ≥ 2 transmitting neighbors is told a collision
    /// happened (via [`Protocol::collision`]). Used for ablations only.
    CollisionDetection,
}

/// Which hot-path implementation the engine steps with.
///
/// Both modes implement *identical* channel semantics — same protocol-call
/// order, same metrics, same trace events, coin-for-coin identical fault
/// handling — and differ only in the scratch-state layout the per-round
/// loops touch:
///
/// * [`EngineMode::Reference`] keeps the original per-node stamp vectors
///   (`8`–`24` bytes of scratch per node). It is the executable
///   specification the frontier path is differentially tested against.
/// * [`EngineMode::Frontier`] keeps the transmitter / heard / collided /
///   crashed sets as `u64`-word bitsets (one *bit* per node, cleared
///   sparsely through the round's touched list), so the listener-marking
///   loop — the hot path at `10⁵`–`10⁶` nodes — stays in cache where the
///   stamp vectors thrash it. Permanent crash-stop faults additionally
///   resolve through an incrementally-advanced crashed bitset instead of a
///   per-listener `crash_round` vector read.
///
/// The default is resolved per construction: a
/// [`with_default_engine_mode`] scope override wins, then the
/// `RN_ENGINE_MODE` environment variable (`reference` / `frontier`), then
/// [`EngineMode::Frontier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineMode {
    /// Stamp-vector scratch: the executable specification.
    Reference,
    /// Struct-of-arrays bitset scratch: the large-`n` fast path (default).
    Frontier,
}

thread_local! {
    static MODE_OVERRIDE: Cell<Option<EngineMode>> = const { Cell::new(None) };
}

static ENV_MODE: OnceLock<EngineMode> = OnceLock::new();

impl EngineMode {
    /// The mode new simulators get when none is passed explicitly: a
    /// [`with_default_engine_mode`] scope override if one is active on this
    /// thread, else `RN_ENGINE_MODE` from the environment, else
    /// [`EngineMode::Frontier`].
    ///
    /// # Panics
    ///
    /// Panics when `RN_ENGINE_MODE` is set to anything other than
    /// `reference` or `frontier` (case-insensitive).
    pub fn default_mode() -> EngineMode {
        if let Some(m) = MODE_OVERRIDE.with(|c| c.get()) {
            return m;
        }
        *ENV_MODE.get_or_init(|| match std::env::var("RN_ENGINE_MODE") {
            Ok(v) if v.eq_ignore_ascii_case("reference") => EngineMode::Reference,
            Ok(v) if v.eq_ignore_ascii_case("frontier") => EngineMode::Frontier,
            Ok(v) => panic!("RN_ENGINE_MODE={v:?} (expected \"reference\" or \"frontier\")"),
            Err(_) => EngineMode::Frontier,
        })
    }

    /// Pins the *process-wide* default to `mode` — the seam for CLI flags
    /// (`experiments --engine-mode …`), which must take effect on every
    /// worker thread, where a thread-local [`with_default_engine_mode`]
    /// scope cannot reach. Wins over `RN_ENGINE_MODE` only if called before
    /// the first [`EngineMode::default_mode`] resolution; afterwards the
    /// default is frozen.
    ///
    /// # Errors
    ///
    /// Returns the already-frozen mode when the process default was
    /// resolved earlier (a simulator was built, the environment variable
    /// was read, or a prior call pinned it) to something different —
    /// callers surface this instead of silently racing.
    pub fn set_process_default(mode: EngineMode) -> Result<(), EngineMode> {
        let frozen = *ENV_MODE.get_or_init(|| mode);
        if frozen == mode {
            Ok(())
        } else {
            Err(frozen)
        }
    }

    /// Parses a mode name (`reference` / `frontier`, case-insensitive) —
    /// the spelling `RN_ENGINE_MODE` and `--engine-mode` accept.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the accepted spellings.
    pub fn parse_name(s: &str) -> Result<EngineMode, String> {
        if s.eq_ignore_ascii_case("reference") {
            Ok(EngineMode::Reference)
        } else if s.eq_ignore_ascii_case("frontier") {
            Ok(EngineMode::Frontier)
        } else {
            Err(format!("unknown engine mode {s:?} (expected \"reference\" or \"frontier\")"))
        }
    }
}

/// Runs `f` with [`EngineMode::default_mode`] pinned to `mode` on the
/// current thread — the seam differential tests and benchmarks use to run
/// the *same* scenario code under both engine implementations without
/// touching process-global state. Scopes nest; the previous override is
/// restored when `f` returns or panics.
pub fn with_default_engine_mode<T>(mode: EngineMode, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<EngineMode>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MODE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(MODE_OVERRIDE.with(|c| c.replace(Some(mode))));
    f()
}

/// Cumulative channel statistics for a simulator instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Rounds executed.
    pub rounds: u64,
    /// Individual node transmissions.
    pub transmissions: u64,
    /// Successful receptions (exactly-one-transmitter events).
    pub deliveries: u64,
    /// Listener-side collision events (≥ 2 transmitting neighbors).
    pub collisions: u64,
}

impl Metrics {
    fn diff(self, earlier: Metrics) -> Metrics {
        Metrics {
            rounds: self.rounds - earlier.rounds,
            transmissions: self.transmissions - earlier.transmissions,
            deliveries: self.deliveries - earlier.deliveries,
            collisions: self.collisions - earlier.collisions,
        }
    }
}

/// Why a [`Simulator::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The protocol reported [`Protocol::done`].
    ProtocolDone,
    /// The external stop predicate fired (see [`Simulator::run_until`]).
    StopConditionMet,
    /// The round budget was exhausted.
    BudgetExhausted,
}

/// Result of one [`Simulator::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Rounds executed by this call.
    pub rounds: u64,
    /// Metrics accumulated during this call only.
    pub metrics: Metrics,
    /// Why the run stopped.
    pub outcome: RunOutcome,
}

/// Per-round channel scratch, reset implicitly (reference) or sparsely
/// (frontier) each round. One variant is allocated per simulator, chosen by
/// its [`EngineMode`] — a million-node frontier simulator carries ~4.4 MB of
/// scratch (one `u32` plus three bits per node) where the reference layout
/// carries 24 MB.
#[derive(Debug)]
enum Scratch {
    /// Stamp-based per-node vectors (stamp = round + 1 avoids clearing).
    Reference {
        hear_stamp: Vec<u64>,
        hear_count: Vec<u32>,
        hear_from: Vec<u32>,
        tx_stamp: Vec<u64>,
    },
    /// Struct-of-arrays bitsets, cleared sparsely via the touched/active
    /// lists after every round.
    Frontier {
        /// Effective transmitters this round.
        tx: WordBitset,
        /// Nodes with ≥ 1 transmitting neighbor this round.
        heard: WordBitset,
        /// Nodes with ≥ 2 transmitting neighbors this round.
        collided: WordBitset,
        /// Index into the active list of the unique transmitter heard; only
        /// meaningful where `heard` is set and `collided` is not.
        hear_from: Vec<u32>,
        /// Nodes whose crash round has passed (permanent; grows only).
        crashed: WordBitset,
        /// `(crash_round, node)` pairs of the installed schedule, ascending
        /// by round; `crash_cursor` marks how far `crashed` has absorbed.
        crash_events: Vec<(u64, NodeId)>,
        crash_cursor: usize,
    },
}

impl Scratch {
    fn new(mode: EngineMode, n: usize) -> Scratch {
        match mode {
            EngineMode::Reference => Scratch::Reference {
                hear_stamp: vec![0; n],
                hear_count: vec![0; n],
                hear_from: vec![0; n],
                tx_stamp: vec![0; n],
            },
            EngineMode::Frontier => Scratch::Frontier {
                tx: WordBitset::new(n),
                heard: WordBitset::new(n),
                collided: WordBitset::new(n),
                hear_from: vec![0; n],
                crashed: WordBitset::new(n),
                crash_events: Vec::new(),
                crash_cursor: 0,
            },
        }
    }

    /// (Re)derives the frontier crash queue from `faults`. The crashed
    /// bitset restarts empty; the step loop re-absorbs events up to the
    /// current round on its next call, so installing a schedule mid-run
    /// lands on exactly the same state lazy queries would give.
    fn rebuild_crash_events(&mut self, faults: Option<&FaultSchedule>, n: usize) {
        let Scratch::Frontier { crashed, crash_events, crash_cursor, .. } = self else {
            return;
        };
        crashed.clear_all();
        crash_events.clear();
        *crash_cursor = 0;
        if let Some(f) = faults {
            for v in 0..n as NodeId {
                let r = f.crash_round(v);
                if r < u64::MAX {
                    crash_events.push((r, v));
                }
            }
            crash_events.sort_unstable();
        }
    }
}

/// Scratch for the degree-sum–triggered dense-round kernel of
/// [`Simulator::step_frontier`], built lazily on the first round whose
/// transmitter degree sum rivals `n`. Rounds below the trigger never touch
/// it, so sparse workloads pay nothing.
#[derive(Debug)]
struct DenseScratch {
    /// Hybrid CSR/bitmap adjacency cache (see [`HybridAdjacency`]).
    adj: HybridAdjacency,
    /// `(first-toucher active index, listener, is_collision)` events of the
    /// round, ordered before callback emission to reproduce the reference
    /// order (active index asc, then listener id asc).
    events: Vec<(u32, NodeId, bool)>,
    /// Counting-sort bucket cursors, one per active transmitter (+1 for the
    /// exclusive prefix sum). Under CD nearly every listener emits an event,
    /// so the per-round ordering is a stable O(events + active) counting
    /// sort by active index rather than an O(E log E) comparison sort.
    event_counts: Vec<u32>,
    /// Counting-sort output buffer (same worst case as `events`: one event
    /// per listener).
    events_ordered: Vec<(u32, NodeId, bool)>,
}

/// Reusable engine state: everything a [`Simulator`] would otherwise
/// allocate per construction (channel bitsets or stamp vectors, the
/// dense-kernel adjacency cache, the touched/active lists), hoisted into a
/// value that survives across trials.
///
/// [`Simulator::reuse`] adopts a pool's `SimScratch` for one trial and
/// resets it sparsely — the frontier bitsets are already all-clear between
/// rounds (each step clears exactly the bits it set), so a steady-state
/// trial on an unchanged topology performs **zero heap allocations** for
/// engine state. The dense-kernel cache is keyed by graph identity
/// `(address, n, m)` and survives as long as trials run on the same graph
/// value (pool owners keep one pool per topology; the bench executor keys
/// pools off its per-topology `OnceLock` cache, whose graphs never move).
#[derive(Debug)]
pub struct SimScratch {
    scratch: Scratch,
    dense: Option<DenseScratch>,
    dense_key: (usize, usize, usize),
    touched: Vec<NodeId>,
    active_tx: Vec<(NodeId, u32)>,
}

impl SimScratch {
    /// An empty pool slot; the first adopting [`Simulator::reuse`] sizes it
    /// for its graph and engine mode.
    pub fn new() -> SimScratch {
        SimScratch {
            scratch: Scratch::new(EngineMode::Frontier, 0),
            dense: None,
            dense_key: (0, 0, 0),
            touched: Vec::new(),
            active_tx: Vec::new(),
        }
    }

    /// Readies the scratch for a trial of `mode` over `graph`: reuses every
    /// buffer whose capacity still fits, clears sparsely where the between-
    /// rounds invariant guarantees emptiness, and reserves the worst-case
    /// bounds (`n` touched listeners, `n` active transmitters) so steady-
    /// state rounds can never trigger mid-trial growth.
    fn prepare(&mut self, mode: EngineMode, graph: &Graph) {
        let n = graph.n();
        let key = (graph as *const Graph as usize, n, graph.m());
        if self.dense_key != key {
            self.dense = None;
            self.dense_key = key;
        }
        match (&mut self.scratch, mode) {
            (
                Scratch::Reference { hear_stamp, hear_count, hear_from, tx_stamp },
                EngineMode::Reference,
            ) => {
                // The protocol clock restarts each trial, so stale stamps
                // from a previous trial could alias fresh ones: zero both
                // stamp vectors (hear_count/hear_from are only read behind a
                // matching hear_stamp, so their stale contents are inert).
                hear_stamp.clear();
                hear_stamp.resize(n, 0);
                tx_stamp.clear();
                tx_stamp.resize(n, 0);
                hear_count.resize(n, 0);
                hear_from.resize(n, 0);
            }
            (
                Scratch::Frontier { tx, heard, collided, hear_from, crashed, .. },
                EngineMode::Frontier,
            ) => {
                // tx/heard/collided are all-clear between rounds; only a
                // capacity change forces a re-zero. The crash bitset/queue
                // are rebuilt by `rebuild_crash_events` in every adopting
                // constructor.
                tx.reset_capacity(n);
                heard.reset_capacity(n);
                collided.reset_capacity(n);
                crashed.reset_capacity(n);
                debug_assert!(tx.words().iter().all(|&w| w == 0), "tx bits leak across trials");
                debug_assert!(heard.words().iter().all(|&w| w == 0), "heard bits leak");
                debug_assert!(collided.words().iter().all(|&w| w == 0), "collided bits leak");
                if hear_from.len() != n {
                    hear_from.clear();
                    hear_from.resize(n, 0);
                }
            }
            _ => self.scratch = Scratch::new(mode, n),
        }
        self.touched.clear();
        self.touched.reserve(n);
        self.active_tx.clear();
        self.active_tx.reserve(n);
    }
}

impl Default for SimScratch {
    fn default() -> Self {
        SimScratch::new()
    }
}

/// Where a simulator's [`SimScratch`] lives: owned by the simulator (the
/// fresh-construction path) or borrowed from a caller's pool.
#[derive(Debug)]
enum Store<'s> {
    Owned(Box<SimScratch>),
    Pooled(&'s mut SimScratch),
}

impl Store<'_> {
    fn get(&self) -> &SimScratch {
        match self {
            Store::Owned(s) => s,
            Store::Pooled(s) => s,
        }
    }

    fn get_mut(&mut self) -> &mut SimScratch {
        match self {
            Store::Owned(s) => s,
            Store::Pooled(s) => s,
        }
    }
}

/// A read-only view of one finished round's channel outcome, passed to
/// [`Protocol::round_end`].
///
/// The view abstracts over the engine's two scratch layouts — queries
/// answer from stamp vectors under [`EngineMode::Reference`] and from
/// `u64`-word bitsets under [`EngineMode::Frontier`], with identical
/// results (the differential tests compare them node for node).
///
/// [`RoundView::frontier`] is the round's *unordered* set of nodes that
/// heard channel energy; protocols keeping struct-of-arrays state walk it
/// to advance bookkeeping in time proportional to activity instead of `n`.
pub struct RoundView<'a> {
    inner: ViewInner<'a>,
    frontier: &'a [NodeId],
    faults: Option<&'a FaultSchedule>,
    round: Round,
}

enum ViewInner<'a> {
    Reference {
        hear_stamp: &'a [u64],
        hear_count: &'a [u32],
        tx_stamp: &'a [u64],
        stamp: u64,
    },
    Frontier {
        heard: &'a WordBitset,
        collided: &'a WordBitset,
        tx: &'a WordBitset,
        crashed: &'a WordBitset,
    },
}

impl RoundView<'_> {
    /// The nodes that heard channel energy this round, as an **unordered**
    /// set (the traversal order differs between engine modes and kernels;
    /// sort before relying on order).
    pub fn frontier(&self) -> &[NodeId] {
        self.frontier
    }

    /// Whether `node` had at least one transmitting neighbor this round.
    pub fn heard(&self, node: NodeId) -> bool {
        let vi = node as usize;
        match &self.inner {
            ViewInner::Reference { hear_stamp, stamp, .. } => hear_stamp[vi] == *stamp,
            ViewInner::Frontier { heard, .. } => heard.contains(vi),
        }
    }

    /// Whether `node` had two or more transmitting neighbors this round
    /// (implies [`RoundView::heard`]).
    pub fn collided(&self, node: NodeId) -> bool {
        let vi = node as usize;
        match &self.inner {
            ViewInner::Reference { hear_stamp, hear_count, stamp, .. } => {
                hear_stamp[vi] == *stamp && hear_count[vi] > 1
            }
            ViewInner::Frontier { collided, .. } => collided.contains(vi),
        }
    }

    /// Whether `node` effectively transmitted this round (protocol
    /// transmissions surviving the fault model, plus jammer noise).
    pub fn transmitted(&self, node: NodeId) -> bool {
        let vi = node as usize;
        match &self.inner {
            ViewInner::Reference { tx_stamp, stamp, .. } => tx_stamp[vi] == *stamp,
            ViewInner::Frontier { tx, .. } => tx.contains(vi),
        }
    }

    /// Whether `node` was down this round (crashed or dropped by the fault
    /// schedule) — down nodes heard nothing regardless of the bits above.
    pub fn down(&self, node: NodeId) -> bool {
        match &self.inner {
            ViewInner::Reference { .. } => self.faults.is_some_and(|f| f.is_down(self.round, node)),
            ViewInner::Frontier { crashed, .. } => {
                crashed.contains(node as usize)
                    || self.faults.is_some_and(|f| f.is_dropped(self.round, node))
            }
        }
    }
}

/// The radio-channel engine: executes a [`Protocol`] over a [`Graph`] under
/// exact radio collision semantics.
///
/// Per-round cost is proportional to the degree sum of the transmitting
/// nodes, not to `n` — protocols with sparse activity (decay frontiers,
/// schedule waves) simulate cheaply even on large networks. The scratch the
/// per-round loops touch comes in two layouts (see [`EngineMode`]): the
/// default [`EngineMode::Frontier`] keeps channel sets as one-bit-per-node
/// bitsets so `10⁵`–`10⁶`-node campaigns stay cache-resident, and the
/// [`EngineMode::Reference`] stamp path is retained as the executable
/// specification the fast path is differentially tested against.
///
/// The engine optionally runs under a [`FaultSchedule`] (jammers + per-round
/// dropout, see [`crate::faults`]): a schedule passed explicitly at
/// construction via [`Simulator::with_faults`] — or installed later with
/// [`Simulator::set_faults`] — is applied at the channel level, so *any*
/// protocol degrades under the same fault model without protocol-side code.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    model: CollisionModel,
    round: Round,
    metrics: Metrics,
    trace: Option<Trace>,
    faults: Option<FaultSchedule>,
    // Engine scratch: owned for fresh constructions, borrowed from a
    // caller's pool via `Simulator::reuse`.
    store: Store<'g>,
    seed: u64,
}

/// `active_tx` tag marking a jammer noise burst (carries no message).
const NOISE_TAG: u32 = u32::MAX;

impl<'g> Simulator<'g> {
    /// Creates an engine over `graph` with the given interference `model`,
    /// running fault-free under [`EngineMode::default_mode`].
    ///
    /// `seed` is recorded for reproducibility metadata (protocols own their
    /// actual randomness; see [`crate::rng`] for seed derivation helpers).
    pub fn new(graph: &'g Graph, model: CollisionModel, seed: u64) -> Simulator<'g> {
        Simulator::with_faults(graph, model, seed, None)
    }

    /// As [`Simulator::new`], with an explicit fault schedule (`None` runs
    /// fault-free). This is the constructor scenario implementations use to
    /// honor the schedule [`crate::Runnable::run_trial_scheduled`] hands
    /// them — fault injection is plain parameter passing, safe to drive from
    /// any worker thread.
    ///
    /// # Panics
    ///
    /// Panics if the schedule was resolved for a different node count than
    /// `graph` has.
    pub fn with_faults(
        graph: &'g Graph,
        model: CollisionModel,
        seed: u64,
        faults: Option<FaultSchedule>,
    ) -> Simulator<'g> {
        Simulator::with_mode(graph, model, seed, faults, EngineMode::default_mode())
    }

    /// The fully explicit constructor: schedule *and* engine mode.
    /// Differential tests and benchmarks pin the mode here; everything else
    /// goes through [`Simulator::new`] / [`Simulator::with_faults`] and the
    /// process default.
    ///
    /// # Panics
    ///
    /// Panics if the schedule was resolved for a different node count than
    /// `graph` has.
    pub fn with_mode(
        graph: &'g Graph,
        model: CollisionModel,
        seed: u64,
        faults: Option<FaultSchedule>,
        mode: EngineMode,
    ) -> Simulator<'g> {
        let mut scratch = Box::new(SimScratch::new());
        scratch.prepare(mode, graph);
        Simulator::from_store(Store::Owned(scratch), graph, model, seed, faults)
    }

    /// As [`Simulator::with_faults`], adopting a pooled [`SimScratch`]
    /// instead of allocating fresh engine state — the steady-state trial
    /// constructor. The scratch is reset sparsely (see [`SimScratch`]); on
    /// an unchanged topology the construction performs no heap allocation,
    /// and the dense-kernel adjacency cache survives across trials.
    ///
    /// # Panics
    ///
    /// Panics if the schedule was resolved for a different node count than
    /// `graph` has.
    pub fn reuse(
        scratch: &'g mut SimScratch,
        graph: &'g Graph,
        model: CollisionModel,
        seed: u64,
        faults: Option<FaultSchedule>,
    ) -> Simulator<'g> {
        Simulator::reuse_with_mode(scratch, graph, model, seed, faults, EngineMode::default_mode())
    }

    /// [`Simulator::reuse`] with an explicit engine mode (differential tests
    /// pin the mode here).
    ///
    /// # Panics
    ///
    /// Panics if the schedule was resolved for a different node count than
    /// `graph` has.
    pub fn reuse_with_mode(
        scratch: &'g mut SimScratch,
        graph: &'g Graph,
        model: CollisionModel,
        seed: u64,
        faults: Option<FaultSchedule>,
        mode: EngineMode,
    ) -> Simulator<'g> {
        scratch.prepare(mode, graph);
        Simulator::from_store(Store::Pooled(scratch), graph, model, seed, faults)
    }

    fn from_store(
        mut store: Store<'g>,
        graph: &'g Graph,
        model: CollisionModel,
        seed: u64,
        faults: Option<FaultSchedule>,
    ) -> Simulator<'g> {
        let n = graph.n();
        if let Some(f) = &faults {
            assert!(f.n() == n, "fault schedule was resolved for {} nodes, graph has {n}", f.n());
        }
        store.get_mut().scratch.rebuild_crash_events(faults.as_ref(), n);
        Simulator {
            graph,
            model,
            round: 0,
            metrics: Metrics::default(),
            trace: None,
            faults,
            store,
            seed,
        }
    }

    /// Installs (or clears) the fault schedule the channel runs under,
    /// replacing whatever [`Simulator::with_faults`] was given.
    ///
    /// # Panics
    ///
    /// Panics if the schedule was resolved for a different node count.
    pub fn set_faults(&mut self, faults: Option<FaultSchedule>) {
        if let Some(f) = &faults {
            assert!(
                f.n() == self.graph.n(),
                "fault schedule was resolved for {} nodes, graph has {}",
                f.n(),
                self.graph.n()
            );
        }
        self.store.get_mut().scratch.rebuild_crash_events(faults.as_ref(), self.graph.n());
        self.faults = faults;
    }

    /// The fault schedule in force, if any.
    pub fn faults(&self) -> Option<&FaultSchedule> {
        self.faults.as_ref()
    }

    /// The graph being simulated (measurement/observer use only; protocols
    /// must not see this).
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Current round (total rounds executed since construction).
    pub fn round(&self) -> Round {
        self.round
    }

    /// The interference model in force.
    pub fn model(&self) -> CollisionModel {
        self.model
    }

    /// The hot-path implementation this simulator steps with.
    pub fn mode(&self) -> EngineMode {
        match self.store.get().scratch {
            Scratch::Reference { .. } => EngineMode::Reference,
            Scratch::Frontier { .. } => EngineMode::Frontier,
        }
    }

    /// Master seed recorded at construction.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Cumulative metrics since construction.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Enables event tracing with the given capacity (newest events win).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The nodes that heard channel energy in the most recent round — the
    /// round's *frontier*, as an **unordered** set (sparse rounds list them
    /// in discovery order, dense-kernel rounds in ascending id; sort before
    /// relying on order). Protocol observers (not protocols themselves —
    /// this is measurement state) can use it to track activity without
    /// scanning all of `n`.
    pub fn last_touched(&self) -> &[NodeId] {
        &self.store.get().touched
    }

    /// Runs `protocol` for at most `max_rounds` rounds.
    pub fn run<P: Protocol>(&mut self, protocol: &mut P, max_rounds: u64) -> RunStats {
        self.run_until(protocol, max_rounds, |_, _| false)
    }

    /// Runs `protocol` until `stop(round, protocol)` returns true (checked
    /// before each round), the protocol reports done, or the budget runs out.
    ///
    /// The protocol sees a fresh clock starting at round 0 for this call
    /// (the engine's global round keeps advancing across calls), so one
    /// protocol corresponds to one `run`/`run_until` invocation.
    ///
    /// The stop predicate is *measurement instrumentation* — e.g. "all nodes
    /// informed" oracles — and is allowed to inspect global protocol state
    /// that real nodes could not observe.
    pub fn run_until<P: Protocol>(
        &mut self,
        protocol: &mut P,
        max_rounds: u64,
        stop: impl FnMut(Round, &P) -> bool,
    ) -> RunStats {
        self.run_until_with_buf(protocol, &mut TxBuf::new(), max_rounds, stop)
    }

    /// As [`Simulator::run`], reusing a caller-provided transmission buffer
    /// (pooled trial loops pass their pool's buffer so per-round capacity
    /// growth happens once per topology, not once per trial).
    pub fn run_with_buf<P: Protocol>(
        &mut self,
        protocol: &mut P,
        tx: &mut TxBuf<P::Msg>,
        max_rounds: u64,
    ) -> RunStats {
        self.run_until_with_buf(protocol, tx, max_rounds, |_, _| false)
    }

    /// As [`Simulator::run_until`], reusing a caller-provided transmission
    /// buffer.
    pub fn run_until_with_buf<P: Protocol>(
        &mut self,
        protocol: &mut P,
        tx: &mut TxBuf<P::Msg>,
        max_rounds: u64,
        mut stop: impl FnMut(Round, &P) -> bool,
    ) -> RunStats {
        let before = self.metrics;
        let start = self.round;
        tx.clear();
        let outcome = loop {
            let local = self.round - start;
            if local >= max_rounds {
                break RunOutcome::BudgetExhausted;
            }
            if stop(local, protocol) {
                break RunOutcome::StopConditionMet;
            }
            if protocol.done(local) {
                break RunOutcome::ProtocolDone;
            }
            self.step_at(protocol, tx, local);
        };
        RunStats { rounds: self.round - start, metrics: self.metrics.diff(before), outcome }
    }

    /// Executes exactly one round of `protocol`, presenting the engine's
    /// global round as the protocol's round (manual stepping; prefer
    /// [`Simulator::run`] which gives the protocol a fresh clock).
    ///
    /// # Panics
    ///
    /// Panics if the protocol transmits twice from one node in one round, or
    /// transmits from an out-of-range node id.
    pub fn step_with<P: Protocol>(&mut self, protocol: &mut P) {
        let mut tx = TxBuf::new();
        let local = self.round;
        self.step_at(protocol, &mut tx, local);
    }

    /// One round of `protocol` with an explicit protocol-local round number,
    /// reusing a caller-provided buffer.
    fn step_at<P: Protocol>(&mut self, protocol: &mut P, tx: &mut TxBuf<P::Msg>, local: Round) {
        match self.store.get().scratch {
            Scratch::Reference { .. } => self.step_reference(protocol, tx, local),
            Scratch::Frontier { .. } => self.step_frontier(protocol, tx, local),
        }
    }

    /// The stamp-vector step: the executable specification of one channel
    /// round. [`Simulator::step_frontier`] must match it call for call.
    fn step_reference<P: Protocol>(
        &mut self,
        protocol: &mut P,
        tx: &mut TxBuf<P::Msg>,
        local: Round,
    ) {
        tx.clear();
        protocol.transmit(local, tx);
        let stamp = self.round + 1;
        let global = self.round;
        // Move the schedule and the active-transmitter scratch out of `self`
        // for the round, so they can be read alongside mutable scratch state.
        let faults = self.faults.take();
        let st = self.store.get_mut();
        let mut active = std::mem::take(&mut st.active_tx);
        let touched = &mut st.touched;
        let Scratch::Reference { hear_stamp, hear_count, hear_from, tx_stamp } = &mut st.scratch
        else {
            unreachable!("reference step dispatched with frontier scratch");
        };

        // Validate and mark protocol transmitters. Double transmission is a
        // protocol bug whether or not the fault model would suppress it.
        for &(u, _) in tx.entries() {
            let ui = u as usize;
            assert!(ui < self.graph.n(), "protocol transmitted from invalid node {u}");
            assert!(
                tx_stamp[ui] != stamp,
                "protocol bug: node {u} transmitted twice in round {}",
                self.round
            );
            tx_stamp[ui] = stamp;
        }

        // Effective transmitter set: protocol transmissions that survive the
        // fault model (jammers never act for the protocol; down nodes are
        // silent), plus jammer noise bursts.
        active.clear();
        for (idx, &(u, _)) in tx.entries().iter().enumerate() {
            if let Some(f) = &faults {
                if f.suppresses_tx(global, u) {
                    tx_stamp[u as usize] = 0; // physically silent: may listen
                    continue;
                }
            }
            active.push((u, idx as u32));
            if let Some(t) = &mut self.trace {
                t.push(global, Event::Transmit { node: u });
            }
        }
        if let Some(f) = &faults {
            for &j in f.jammer_ids() {
                if f.jam_fires(global, j) {
                    tx_stamp[j as usize] = stamp;
                    active.push((j, NOISE_TAG));
                    if let Some(t) = &mut self.trace {
                        t.push(global, Event::Transmit { node: j });
                    }
                }
            }
        }

        // Count what every potential listener hears.
        touched.clear();
        for (ai, &(u, _)) in active.iter().enumerate() {
            for &v in self.graph.neighbors(u) {
                let vi = v as usize;
                if hear_stamp[vi] != stamp {
                    hear_stamp[vi] = stamp;
                    hear_count[vi] = 1;
                    hear_from[vi] = ai as u32;
                    touched.push(v);
                } else {
                    hear_count[vi] += 1;
                }
            }
        }

        // Deliver / report collisions to listeners.
        for i in 0..touched.len() {
            let v = touched[i];
            let vi = v as usize;
            if tx_stamp[vi] == stamp {
                continue; // transmitters cannot listen
            }
            if let Some(f) = &faults {
                if f.is_down(global, v) {
                    continue; // down nodes hear nothing
                }
            }
            if hear_count[vi] == 1 {
                let (_, tag) = active[hear_from[vi] as usize];
                if tag == NOISE_TAG {
                    continue; // a uniquely heard noise burst is garbage
                }
                let (from, msg) = &tx.entries()[tag as usize];
                protocol.deliver(local, v, *from, msg);
                self.metrics.deliveries += 1;
                if let Some(t) = &mut self.trace {
                    t.push(global, Event::Receive { node: v, from: *from });
                }
            } else {
                self.metrics.collisions += 1;
                if let Some(t) = &mut self.trace {
                    t.push(global, Event::Collision { node: v });
                }
                if self.model == CollisionModel::CollisionDetection {
                    protocol.collision(local, v);
                }
            }
        }

        protocol.round_end(
            local,
            &RoundView {
                inner: ViewInner::Reference {
                    hear_stamp: hear_stamp.as_slice(),
                    hear_count: hear_count.as_slice(),
                    tx_stamp: tx_stamp.as_slice(),
                    stamp,
                },
                frontier: touched.as_slice(),
                faults: faults.as_ref(),
                round: global,
            },
        );

        self.metrics.transmissions += active.len() as u64;
        self.metrics.rounds += 1;
        self.round += 1;
        self.store.get_mut().active_tx = active;
        self.faults = faults;
    }

    /// The struct-of-arrays bitset step. Semantically identical to
    /// [`Simulator::step_reference`] — same protocol-call order, same
    /// metrics, same trace — with channel membership kept as one bit per
    /// node and cleared sparsely through the active/touched lists, so a
    /// round's memory traffic is proportional to activity and the
    /// membership tables stay cache-resident at `10⁶` nodes. Rounds whose
    /// transmitter degree sum reaches `n` additionally dispatch to a
    /// word-level dense kernel over a cached [`HybridAdjacency`].
    fn step_frontier<P: Protocol>(
        &mut self,
        protocol: &mut P,
        tx: &mut TxBuf<P::Msg>,
        local: Round,
    ) {
        tx.clear();
        protocol.transmit(local, tx);
        let global = self.round;
        let faults = self.faults.take();
        let st = self.store.get_mut();
        let mut active = std::mem::take(&mut st.active_tx);
        let SimScratch { scratch, dense, touched, .. } = st;
        let Scratch::Frontier {
            tx: tx_bits,
            heard,
            collided,
            hear_from,
            crashed,
            crash_events,
            crash_cursor,
        } = scratch
        else {
            unreachable!("frontier step dispatched with reference scratch");
        };

        // Absorb crash-stop events whose round has arrived: after this loop
        // `crashed` holds exactly the nodes with `crash_round <= global`, so
        // the deliver loop's down check is two bit reads plus the dropout
        // coin instead of a `crash_round` vector read per listener.
        while let Some(&(r, v)) = crash_events.get(*crash_cursor) {
            if r > global {
                break;
            }
            crashed.set(v as usize);
            *crash_cursor += 1;
        }

        // Validate and mark protocol transmitters (one bit per node; double
        // transmission is a protocol bug whether or not the fault model
        // would suppress it).
        for &(u, _) in tx.entries() {
            let ui = u as usize;
            assert!(ui < self.graph.n(), "protocol transmitted from invalid node {u}");
            assert!(
                tx_bits.set(ui),
                "protocol bug: node {u} transmitted twice in round {}",
                self.round
            );
        }

        // Effective transmitter set, exactly as in the reference path.
        active.clear();
        for (idx, &(u, _)) in tx.entries().iter().enumerate() {
            if let Some(f) = &faults {
                if f.suppresses_tx(global, u) {
                    tx_bits.clear(u as usize); // physically silent: may listen
                    continue;
                }
            }
            active.push((u, idx as u32));
            if let Some(t) = &mut self.trace {
                t.push(global, Event::Transmit { node: u });
            }
        }
        if let Some(f) = &faults {
            for &j in f.jammer_ids() {
                if f.jam_fires(global, j) {
                    tx_bits.set(j as usize);
                    active.push((j, NOISE_TAG));
                    if let Some(t) = &mut self.trace {
                        t.push(global, Event::Transmit { node: j });
                    }
                }
            }
        }

        // Dense-round dispatch: when the transmitters' degree sum rivals
        // `n`, per-edge scatter writes lose to whole-word OR/AND
        // accumulation over adjacency rows. The word kernel reproduces the
        // reference callback order — for deliveries *and* CD collision
        // notifications — by recording each listener's first-toucher active
        // index during accumulation and sorting the merged event list
        // (proof in the kernel comments). Only traced rounds keep the
        // per-edge path: their event interleaving is the specification.
        let graph = self.graph;
        touched.clear();
        let dense_round = self.trace.is_none()
            && !active.is_empty()
            && active.iter().map(|&(u, _)| graph.degree(u)).sum::<usize>() >= graph.n();

        if dense_round {
            let dense = dense.get_or_insert_with(|| DenseScratch {
                adj: HybridAdjacency::for_graph(graph),
                events: Vec::with_capacity(graph.n()),
                event_counts: Vec::with_capacity(graph.n() + 1),
                events_ordered: Vec::with_capacity(graph.n()),
            });
            let cd = self.model == CollisionModel::CollisionDetection;

            // Accumulate heard/collided word-wise: a word's second energy
            // is exactly `already-heard AND row`, so the one/many lattice
            // needs two ops per word (bitmap rows) or per edge (CSR rows),
            // plus one `hear_from` write per *first touch* (bounded by the
            // frontier size, not the degree sum) recording which active
            // index reached the listener first. For uniquely heard
            // listeners that index *is* the transmitter; for collided
            // listeners it is the reference path's touch order key.
            {
                let hw = heard.words_mut();
                let cw = collided.words_mut();
                for (ai, &(u, _)) in active.iter().enumerate() {
                    if let Some(row) = dense.adj.row(u) {
                        for (wi, &rw) in row.iter().enumerate() {
                            let h = hw[wi];
                            cw[wi] |= h & rw;
                            let mut fresh = rw & !h;
                            hw[wi] = h | rw;
                            while fresh != 0 {
                                let bit = fresh & fresh.wrapping_neg();
                                fresh ^= bit;
                                hear_from[(wi << 6) | bit.trailing_zeros() as usize] = ai as u32;
                            }
                        }
                    } else {
                        for &v in graph.neighbors(u) {
                            let vi = v as usize;
                            let mask = 1u64 << (vi & 63);
                            let wi = vi >> 6;
                            let h = hw[wi];
                            cw[wi] |= h & mask;
                            if h & mask == 0 {
                                hear_from[vi] = ai as u32;
                            }
                            hw[wi] = h | mask;
                        }
                    }
                }
            }

            // Sweep the heard words in ascending node order: rebuild the
            // touched list, then emit one event per listening hearer —
            // `(first-toucher active index, listener, is_collision)` —
            // sorted before the callback loop. In the reference path a
            // listener enters the touched list when its first toucher's
            // adjacency is scanned (active index asc, neighbor id asc
            // within it), and callbacks replay the touched list, so the
            // sorted order reproduces the reference interleaving of
            // deliveries and CD collision notifications exactly. Under
            // nocd, collisions carry no callback and skip the event list.
            dense.events.clear();
            let tw = tx_bits.words();
            for (wi, &hword) in heard.words().iter().enumerate() {
                if hword == 0 {
                    continue;
                }
                let cword = collided.words()[wi];
                let tword = tw[wi];
                let mut rest = hword;
                while rest != 0 {
                    let bit = rest & rest.wrapping_neg();
                    rest ^= bit;
                    let vi = (wi << 6) | bit.trailing_zeros() as usize;
                    let v = vi as NodeId;
                    touched.push(v);
                    if tword & bit != 0 {
                        continue; // transmitters cannot listen
                    }
                    if let Some(f) = &faults {
                        if crashed.contains(vi) || f.is_dropped(global, v) {
                            continue; // down nodes hear nothing
                        }
                    }
                    if cword & bit != 0 {
                        self.metrics.collisions += 1;
                        if cd {
                            dense.events.push((hear_from[vi], v, true));
                        }
                    } else {
                        dense.events.push((hear_from[vi], v, false));
                    }
                }
            }
            // Stable counting sort by active index: the sweep above emits
            // events in ascending listener order, so bucketing by `ai`
            // (stable) yields exactly (active index asc, listener asc) —
            // the order `sort_unstable` on the `(ai, v, _)` key would
            // produce, at O(events + active) instead of O(E log E). Under
            // CD almost every listener is an event, so this is the round's
            // second-largest cost after accumulation.
            let counts = &mut dense.event_counts;
            counts.clear();
            counts.resize(active.len() + 1, 0);
            for &(ai, _, _) in &dense.events {
                counts[ai as usize + 1] += 1;
            }
            for i in 0..active.len() {
                counts[i + 1] += counts[i];
            }
            let ordered = &mut dense.events_ordered;
            ordered.clear();
            ordered.resize(dense.events.len(), (0, 0, false));
            for &(ai, v, c) in &dense.events {
                let slot = &mut counts[ai as usize];
                ordered[*slot as usize] = (ai, v, c);
                *slot += 1;
            }
            for &(ai, v, is_collision) in ordered.iter() {
                if is_collision {
                    protocol.collision(local, v);
                    continue;
                }
                let (_, tag) = active[ai as usize];
                if tag == NOISE_TAG {
                    continue; // a uniquely heard noise burst is garbage
                }
                let (from, msg) = &tx.entries()[tag as usize];
                protocol.deliver(local, v, *from, msg);
                self.metrics.deliveries += 1;
            }
        } else {
            // Mark what every potential listener hears: first energy sets
            // `heard` and records the source, any further energy sets
            // `collided`. (`hear_count` is only ever compared against 1, so
            // a two-bitset one/many lattice replaces the count vector.)
            for (ai, &(u, _)) in active.iter().enumerate() {
                for &v in graph.neighbors(u) {
                    let vi = v as usize;
                    if heard.set(vi) {
                        hear_from[vi] = ai as u32;
                        touched.push(v);
                    } else {
                        collided.set(vi);
                    }
                }
            }

            // Deliver / report collisions to listeners.
            for i in 0..touched.len() {
                let v = touched[i];
                let vi = v as usize;
                if tx_bits.contains(vi) {
                    continue; // transmitters cannot listen
                }
                if let Some(f) = &faults {
                    if crashed.contains(vi) || f.is_dropped(global, v) {
                        continue; // down nodes hear nothing
                    }
                }
                if !collided.contains(vi) {
                    let (_, tag) = active[hear_from[vi] as usize];
                    if tag == NOISE_TAG {
                        continue; // a uniquely heard noise burst is garbage
                    }
                    let (from, msg) = &tx.entries()[tag as usize];
                    protocol.deliver(local, v, *from, msg);
                    self.metrics.deliveries += 1;
                    if let Some(t) = &mut self.trace {
                        t.push(global, Event::Receive { node: v, from: *from });
                    }
                } else {
                    self.metrics.collisions += 1;
                    if let Some(t) = &mut self.trace {
                        t.push(global, Event::Collision { node: v });
                    }
                    if self.model == CollisionModel::CollisionDetection {
                        protocol.collision(local, v);
                    }
                }
            }
        }

        protocol.round_end(
            local,
            &RoundView {
                inner: ViewInner::Frontier {
                    heard: &*heard,
                    collided: &*collided,
                    tx: &*tx_bits,
                    crashed: &*crashed,
                },
                frontier: touched.as_slice(),
                faults: faults.as_ref(),
                round: global,
            },
        );

        // Debug-build post-round coherence checks, compiled out in release
        // (scale-smoke timings untouched). The frontier state's contract:
        // a collision implies energy was heard (`collided ⊆ heard`
        // word-wise), and `touched` enumerates the heard set exactly — the
        // sparse clears below rely on the latter to restore the all-zero
        // between-rounds state.
        #[cfg(debug_assertions)]
        {
            for (wi, (&hw, &cw)) in heard.words().iter().zip(collided.words()).enumerate() {
                debug_assert_eq!(cw & !hw, 0, "collided ⊄ heard in word {wi}");
            }
            debug_assert_eq!(
                heard.count_ones(),
                touched.len(),
                "touched list diverged from heard set"
            );
            heard.debug_validate();
            collided.debug_validate();
            tx_bits.debug_validate();
        }

        // Sparse clears: the set bits are exactly the active and touched
        // lists, so resetting costs activity, not `n`.
        for &(u, _) in &active {
            tx_bits.clear(u as usize);
        }
        for &v in touched.iter() {
            let vi = v as usize;
            heard.clear(vi);
            collided.clear(vi);
        }

        // The between-rounds invariant the next round's sparse marking
        // assumes: every frontier bitset back to all-zero.
        #[cfg(debug_assertions)]
        for (name, set) in [("heard", &*heard), ("collided", &*collided), ("tx_bits", &*tx_bits)] {
            debug_assert!(
                set.words().iter().all(|&w| w == 0),
                "{name} not fully cleared after round {global}"
            );
        }

        self.metrics.transmissions += active.len() as u64;
        self.metrics.rounds += 1;
        self.round += 1;
        self.store.get_mut().active_tx = active;
        self.faults = faults;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{OneShot, Silence};
    use rn_graph::generators;

    #[test]
    fn silence_delivers_nothing() {
        let g = generators::complete(5);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let stats = sim.run(&mut Silence, 10);
        assert_eq!(stats.rounds, 10);
        assert_eq!(stats.metrics.deliveries, 0);
        assert_eq!(stats.metrics.transmissions, 0);
        assert_eq!(stats.outcome, RunOutcome::BudgetExhausted);
    }

    #[test]
    fn unique_transmitter_reaches_all_neighbors() {
        let g = generators::star(5);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(5, vec![(0, 99u64)]); // hub speaks
        sim.run(&mut p, 1);
        for leaf in 1..5 {
            assert_eq!(p.received(leaf), &[(0, 99)]);
        }
    }

    #[test]
    fn two_transmitters_collide_at_common_neighbor_only() {
        // Path 0-1-2-3: 0 and 2 transmit. Node 1 hears both (collision);
        // node 3 hears only 2 (delivery). Node 0 and 2 transmit, hear nothing.
        let g = generators::path(4);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(4, vec![(0, 5u64), (2, 6u64)]);
        let stats = sim.run(&mut p, 1);
        assert!(p.received(1).is_empty(), "collision at node 1");
        assert_eq!(p.received(3), &[(2, 6)]);
        assert_eq!(stats.metrics.collisions, 1);
        assert_eq!(stats.metrics.deliveries, 1);
    }

    #[test]
    fn transmitter_does_not_hear_its_neighbor() {
        // Edge 0-1, both transmit: neither receives.
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(2, vec![(0, 1u64), (1, 2u64)]);
        sim.run(&mut p, 1);
        assert!(p.received(0).is_empty());
        assert!(p.received(1).is_empty());
    }

    #[test]
    fn collision_detection_model_notifies_listeners() {
        let g = generators::star(4);
        let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, 1);
        let mut p = OneShot::new(4, vec![(1, 1u64), (2, 2u64)]);
        sim.run(&mut p, 1);
        assert_eq!(p.collisions(0), 1, "hub detects the collision");
        assert_eq!(p.collisions(3), 0, "leaf 3 hears plain silence");
    }

    #[test]
    fn no_cd_model_stays_silent_on_collision() {
        let g = generators::star(4);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(4, vec![(1, 1u64), (2, 2u64)]);
        sim.run(&mut p, 1);
        assert_eq!(p.collisions(0), 0, "no notification without CD");
        assert_eq!(sim.metrics().collisions, 1, "engine still counts it");
    }

    #[test]
    #[should_panic(expected = "transmitted twice")]
    fn double_transmission_is_a_protocol_bug() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(2, vec![(0, 1u64), (0, 2u64)]);
        sim.run(&mut p, 1);
    }

    #[test]
    #[should_panic(expected = "transmitted twice")]
    fn double_transmission_is_a_protocol_bug_in_reference_mode_too() {
        let g = generators::path(2);
        let mut sim = Simulator::with_mode(
            &g,
            CollisionModel::NoCollisionDetection,
            1,
            None,
            EngineMode::Reference,
        );
        let mut p = OneShot::new(2, vec![(0, 1u64), (0, 2u64)]);
        sim.run(&mut p, 1);
    }

    #[test]
    fn run_until_stop_condition() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let stats = sim.run_until(&mut Silence, 100, |round, _| round == 7);
        assert_eq!(stats.outcome, RunOutcome::StopConditionMet);
        assert_eq!(stats.rounds, 7);
    }

    #[test]
    fn metrics_accumulate_across_runs() {
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(3, vec![(0, 1u64)]);
        sim.run(&mut p, 1);
        let mut p2 = OneShot::new(3, vec![(0, 2u64)]);
        sim.run(&mut p2, 1);
        assert_eq!(sim.metrics().rounds, 2);
        assert_eq!(sim.metrics().transmissions, 2);
        assert_eq!(sim.metrics().deliveries, 4);
        assert_eq!(sim.round(), 2);
    }

    #[test]
    fn engine_faults_jammer_noise_collides_with_real_traffic() {
        // Star: leaf 1 transmits every round, leaf 2 jams with probability 1
        // — the hub always hears a collision, never a delivery.
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.set_faults(Some(FaultSchedule::new(3, vec![2], 1.0, 0.0, 0.0, 7)));
        let mut p = crate::testing::EveryRound::new(1, 7u64);
        let stats = sim.run(&mut p, 8);
        assert_eq!(stats.metrics.deliveries, 0, "hub always hears a collision");
        assert_eq!(stats.metrics.collisions, 8);
        assert_eq!(stats.metrics.transmissions, 16, "leaf 1 and the jammer each round");
    }

    #[test]
    fn engine_faults_unique_noise_is_garbage_not_delivery() {
        // Only the jammer transmits: listeners hear garbage — no delivery,
        // no collision notification, but the transmission is real.
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, 1);
        sim.set_faults(Some(FaultSchedule::new(3, vec![0], 1.0, 0.0, 0.0, 7)));
        let mut p = OneShot::new(3, vec![]);
        let stats = sim.run(&mut p, 4);
        assert_eq!(stats.metrics.transmissions, 4);
        assert_eq!(stats.metrics.deliveries, 0);
        assert_eq!(stats.metrics.collisions, 0);
        assert_eq!(p.collisions(1), 0, "a single noise burst is not a collision signal");
    }

    #[test]
    fn engine_faults_jammer_suppresses_protocol_transmissions() {
        // The hub wants to broadcast every round, but the hub is a jammer
        // that never fires: total silence.
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.set_faults(Some(FaultSchedule::new(3, vec![0], 0.0, 0.0, 0.0, 7)));
        let mut p = crate::testing::EveryRound::new(0, 7u64);
        let stats = sim.run(&mut p, 4);
        assert_eq!(stats.metrics.transmissions, 0);
        assert_eq!(stats.metrics.deliveries, 0);
    }

    #[test]
    fn engine_faults_down_nodes_neither_transmit_nor_receive() {
        // Path 0-1, node 0 transmitting every round under 40% dropout. The
        // schedule's coins are public and stateless, so the exact expected
        // channel activity can be recomputed independently: a transmission
        // happens iff 0 is up, a delivery iff additionally 1 is up.
        let g = generators::path(2);
        let schedule = FaultSchedule::new(2, vec![], 0.0, 0.4, 0.0, 7);
        let expect_tx = (0..32).filter(|&r| !schedule.is_down(r, 0)).count() as u64;
        let expect_del =
            (0..32).filter(|&r| !schedule.is_down(r, 0) && !schedule.is_down(r, 1)).count() as u64;
        assert!(expect_del < expect_tx && expect_tx < 32, "seed exercises both fault kinds");
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.set_faults(Some(schedule));
        let mut p = crate::testing::EveryRound::new(0, 7u64);
        let stats = sim.run(&mut p, 32);
        assert_eq!(stats.metrics.transmissions, expect_tx);
        assert_eq!(stats.metrics.deliveries, expect_del);
    }

    #[test]
    fn engine_faults_crashed_nodes_stay_silent_forever() {
        // Path 0-1, node 0 transmitting every round under crash-stop only.
        // Channel activity must be a prefix: once either endpoint crashes,
        // deliveries stop for good (unlike transient dropout, which can
        // resume).
        let g = generators::path(2);
        let schedule = FaultSchedule::new(2, vec![], 0.0, 0.0, 0.15, 11);
        let tx_end = schedule.crash_round(0).min(64);
        let del_end = tx_end.min(schedule.crash_round(1));
        assert!(del_end < 64, "seed crashes an endpoint inside the horizon");
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.set_faults(Some(schedule));
        let mut p = crate::testing::EveryRound::new(0, 7u64);
        let stats = sim.run(&mut p, 64);
        assert_eq!(stats.metrics.transmissions, tx_end, "transmissions stop at 0's crash");
        assert_eq!(stats.metrics.deliveries, del_end, "deliveries stop at the first crash");
    }

    #[test]
    fn with_faults_constructor_matches_set_faults() {
        let g = generators::star(3);
        let schedule = FaultSchedule::new(3, vec![2], 1.0, 0.0, 0.0, 7);
        let mut sim =
            Simulator::with_faults(&g, CollisionModel::NoCollisionDetection, 1, Some(schedule));
        assert!(sim.faults().is_some(), "constructor installs the schedule");
        let mut p = crate::testing::EveryRound::new(1, 7u64);
        let jammed = sim.run(&mut p, 8).metrics;
        assert_eq!(jammed.deliveries, 0);
        // `new` is exactly `with_faults(.., None)`.
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        assert!(sim.faults().is_none(), "no schedule unless one is passed");
        let mut p = crate::testing::EveryRound::new(1, 7u64);
        assert!(sim.run(&mut p, 8).metrics.deliveries > 0);
    }

    #[test]
    #[should_panic(expected = "resolved for 5 nodes")]
    fn engine_rejects_mismatched_fault_schedule() {
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.set_faults(Some(FaultSchedule::new(5, vec![0], 0.5, 0.0, 0.0, 7)));
    }

    #[test]
    fn trace_records_events_in_order() {
        let g = generators::star(3);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.enable_trace(16);
        let mut p = OneShot::new(3, vec![(0, 1u64)]);
        sim.run(&mut p, 1);
        let trace = sim.trace().unwrap();
        let events: Vec<_> = trace.iter().collect();
        assert_eq!(events.len(), 3); // 1 transmit + 2 receives
        assert!(matches!(events[0].1, Event::Transmit { node: 0 }));
    }

    #[test]
    fn default_mode_is_frontier_and_override_scopes_nest() {
        let g = generators::path(2);
        assert_eq!(
            Simulator::new(&g, CollisionModel::NoCollisionDetection, 1).mode(),
            EngineMode::Frontier
        );
        with_default_engine_mode(EngineMode::Reference, || {
            let sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
            assert_eq!(sim.mode(), EngineMode::Reference);
            with_default_engine_mode(EngineMode::Frontier, || {
                let sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
                assert_eq!(sim.mode(), EngineMode::Frontier);
            });
            let sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
            assert_eq!(sim.mode(), EngineMode::Reference, "inner scope restored");
        });
        let sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        assert_eq!(sim.mode(), EngineMode::Frontier, "outer scope restored");
    }

    #[test]
    fn process_default_setter_freezes_and_names_parse() {
        // The tests run with RN_ENGINE_MODE unset, so the process default
        // resolves to Frontier (here or in whichever test ran first);
        // re-pinning the same mode is fine, contradicting it reports the
        // frozen value instead of racing.
        assert_eq!(EngineMode::default_mode(), EngineMode::Frontier);
        assert_eq!(EngineMode::set_process_default(EngineMode::Frontier), Ok(()));
        assert_eq!(
            EngineMode::set_process_default(EngineMode::Reference),
            Err(EngineMode::Frontier)
        );
        assert_eq!(EngineMode::parse_name("reference"), Ok(EngineMode::Reference));
        assert_eq!(EngineMode::parse_name("Frontier"), Ok(EngineMode::Frontier));
        assert!(EngineMode::parse_name("fast").is_err());
    }

    /// Wraps a protocol and logs every engine callback in order — the
    /// differential tests compare these logs, which pins not just the
    /// totals but the exact sequence of protocol calls both modes make.
    struct Recorder<P> {
        inner: P,
        log: Vec<(Round, &'static str, NodeId, NodeId)>,
    }

    impl<P: Protocol<Msg = u64>> Protocol for Recorder<P> {
        type Msg = u64;

        fn transmit(&mut self, round: Round, tx: &mut TxBuf<u64>) {
            self.inner.transmit(round, tx);
        }

        fn deliver(&mut self, round: Round, node: NodeId, from: NodeId, msg: &u64) {
            self.log.push((round, "deliver", node, from));
            self.inner.deliver(round, node, from, msg);
        }

        fn collision(&mut self, round: Round, node: NodeId) {
            self.log.push((round, "collision", node, 0));
            self.inner.collision(round, node);
        }
    }

    /// Everything observable from one trial: run stats, the full callback
    /// log, and the final informed count.
    type FloodObservation = (RunStats, Vec<(Round, &'static str, NodeId, NodeId)>, usize);

    /// Runs one flood trial under the given mode and returns everything
    /// observable: run stats plus the full callback log.
    fn flood_trial(
        mode: EngineMode,
        g: &rn_graph::Graph,
        model: CollisionModel,
        faults: Option<FaultSchedule>,
        seed: u64,
        rounds: u64,
    ) -> FloodObservation {
        let mut sim = Simulator::with_mode(g, model, seed, faults, mode);
        let mut p = Recorder { inner: crate::testing::NaiveFlood::new(g.n(), 0), log: Vec::new() };
        let stats = sim.run(&mut p, rounds);
        (stats, p.log, p.inner.informed_count())
    }

    #[test]
    fn frontier_matches_reference_exactly_across_models_and_faults() {
        // The frontier path must be byte-identical to the reference path:
        // same stats AND the same per-node delivery log (which pins the
        // protocol-call order, not just the totals). Swept over topologies,
        // both collision models, and every fault axis.
        // `complete(8)` / `complete(40)` floods cross the sparse↔dense
        // dispatch boundary mid-run (round 0 is below the degree-sum
        // trigger, the all-informed rounds are far above it), so this sweep
        // also pins the dense kernel against the reference path.
        let graphs = [
            generators::path(16),
            generators::star(12),
            generators::grid(5, 5),
            generators::complete(8),
            generators::complete(40),
        ];
        type PlanFn = fn(usize, u64) -> FaultSchedule;
        let plans: [Option<PlanFn>; 4] = [
            None,
            Some(|n, s| FaultSchedule::new(n, vec![1, 2], 0.5, 0.0, 0.0, s)),
            Some(|n, s| FaultSchedule::new(n, vec![], 0.0, 0.3, 0.0, s)),
            Some(|n, s| FaultSchedule::new(n, vec![0], 0.4, 0.2, 0.05, s)),
        ];
        for g in &graphs {
            for model in [CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection]
            {
                for plan in &plans {
                    for seed in 0..4u64 {
                        let faults = plan.map(|mk| mk(g.n(), seed + 31));
                        let a =
                            flood_trial(EngineMode::Reference, g, model, faults.clone(), seed, 48);
                        let b = flood_trial(EngineMode::Frontier, g, model, faults, seed, 48);
                        assert_eq!(a, b, "mode divergence: n={} {model:?} seed={seed}", g.n());
                    }
                }
            }
        }
    }

    #[test]
    fn dense_kernel_engages_and_matches_reference() {
        // A flood on complete(64): round 0 has one transmitter (degree sum
        // 63 < 64 — sparse), round 1 has 63 (degree sum ≫ n — dense). The
        // frontier run must both *use* the dense kernel (the scratch is
        // built lazily, so its existence proves dispatch happened) and stay
        // identical to the reference engine.
        let g = generators::complete(64);
        let a = flood_trial(
            EngineMode::Reference,
            &g,
            CollisionModel::NoCollisionDetection,
            None,
            1,
            16,
        );
        let mut sim = Simulator::with_mode(
            &g,
            CollisionModel::NoCollisionDetection,
            1,
            None,
            EngineMode::Frontier,
        );
        let mut p = Recorder { inner: crate::testing::NaiveFlood::new(g.n(), 0), log: Vec::new() };
        let stats = sim.run(&mut p, 16);
        assert!(sim.store.get().dense.is_some(), "degree-sum trigger must engage the dense kernel");
        assert_eq!(a, (stats, p.log, p.inner.informed_count()));
    }

    #[test]
    fn dense_kernel_engages_under_cd_and_matches_reference() {
        // Since the CD extension, dense rounds cover both collision models:
        // the kernel surfaces collision notifications through the sorted
        // event list in the reference callback order. A flood on
        // complete(64) under CD must engage the kernel *and* replay the
        // reference log byte for byte (deliver/collision interleaving
        // included).
        let g = generators::complete(64);
        let a =
            flood_trial(EngineMode::Reference, &g, CollisionModel::CollisionDetection, None, 1, 16);
        let mut sim = Simulator::with_mode(
            &g,
            CollisionModel::CollisionDetection,
            1,
            None,
            EngineMode::Frontier,
        );
        let mut p = Recorder { inner: crate::testing::NaiveFlood::new(g.n(), 0), log: Vec::new() };
        let stats = sim.run(&mut p, 16);
        assert!(sim.store.get().dense.is_some(), "CD rounds engage the dense kernel");
        assert!(p.log.iter().any(|&(_, kind, _, _)| kind == "collision"), "CD callbacks fired");
        assert_eq!(a, (stats, p.log, p.inner.informed_count()));
    }

    #[test]
    fn dense_kernel_skips_traced_rounds() {
        // Traced rounds keep the per-edge path: their event interleaving is
        // the specification the trace records.
        let g = generators::complete(64);
        let mut sim = Simulator::with_mode(
            &g,
            CollisionModel::NoCollisionDetection,
            1,
            None,
            EngineMode::Frontier,
        );
        sim.enable_trace(64);
        let mut p = crate::testing::NaiveFlood::new(g.n(), 0);
        sim.run(&mut p, 16);
        assert!(sim.store.get().dense.is_none(), "traced rounds stay on the sparse path");
    }

    #[test]
    fn reused_scratch_replays_trials_exactly() {
        // A pooled trial must be byte-identical to a fresh one — stats,
        // callback log, and informed count — and the scratch must survive
        // graph switches, fault schedules, model changes, and engine-mode
        // changes between trials.
        let graphs = [generators::path(16), generators::complete(40), generators::star(12)];
        let mut scratch = SimScratch::new();
        for mode in [EngineMode::Frontier, EngineMode::Reference] {
            for g in &graphs {
                for model in
                    [CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection]
                {
                    for seed in 0..3u64 {
                        let faults = (seed == 2)
                            .then(|| FaultSchedule::new(g.n(), vec![0], 0.4, 0.2, 0.05, seed));
                        let fresh = flood_trial(mode, g, model, faults.clone(), seed, 24);
                        let mut sim =
                            Simulator::reuse_with_mode(&mut scratch, g, model, seed, faults, mode);
                        let mut p = Recorder {
                            inner: crate::testing::NaiveFlood::new(g.n(), 0),
                            log: Vec::new(),
                        };
                        let stats = sim.run(&mut p, 24);
                        let pooled = (stats, p.log, p.inner.informed_count());
                        assert_eq!(fresh, pooled, "pooled divergence: n={} {model:?}", g.n());
                    }
                }
            }
        }
    }

    /// Per-node (heard, collided, transmitted, down) snapshot of one round.
    type NodeBits = Vec<(bool, bool, bool, bool)>;

    /// Logs everything a [`RoundView`] exposes at every round end.
    struct RoundEndProbe<P> {
        inner: P,
        n: usize,
        log: Vec<(Round, Vec<NodeId>, NodeBits)>,
    }

    impl<P: Protocol<Msg = u64>> Protocol for RoundEndProbe<P> {
        type Msg = u64;

        fn transmit(&mut self, round: Round, tx: &mut TxBuf<u64>) {
            self.inner.transmit(round, tx);
        }

        fn deliver(&mut self, round: Round, node: NodeId, from: NodeId, msg: &u64) {
            self.inner.deliver(round, node, from, msg);
        }

        fn collision(&mut self, round: Round, node: NodeId) {
            self.inner.collision(round, node);
        }

        fn round_end(&mut self, round: Round, view: &RoundView<'_>) {
            let mut frontier = view.frontier().to_vec();
            frontier.sort_unstable();
            let bits = (0..self.n as NodeId)
                .map(|v| (view.heard(v), view.collided(v), view.transmitted(v), view.down(v)))
                .collect();
            self.log.push((round, frontier, bits));
        }
    }

    #[test]
    fn round_end_view_is_identical_across_modes_and_kernels() {
        // Every query the RoundView answers must agree bit for bit between
        // the stamp path, the bitset path, and the dense kernel — including
        // under jam/drop/crash faults. The probe also cross-checks the
        // frontier against the per-node heard bits.
        let graphs = [generators::path(12), generators::star(10), generators::complete(24)];
        type PlanFn = fn(usize, u64) -> FaultSchedule;
        let plans: [Option<PlanFn>; 2] =
            [None, Some(|n, s| FaultSchedule::new(n, vec![0], 0.4, 0.2, 0.05, s))];
        for g in &graphs {
            for model in [CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection]
            {
                for plan in &plans {
                    for seed in 0..2u64 {
                        let run = |mode: EngineMode| {
                            let faults = plan.map(|mk| mk(g.n(), seed + 5));
                            let mut sim = Simulator::with_mode(g, model, seed, faults, mode);
                            let mut p = RoundEndProbe {
                                inner: crate::testing::NaiveFlood::new(g.n(), 0),
                                n: g.n(),
                                log: Vec::new(),
                            };
                            sim.run(&mut p, 24);
                            p.log
                        };
                        let reference = run(EngineMode::Reference);
                        let frontier = run(EngineMode::Frontier);
                        assert_eq!(reference.len(), 24, "round_end fires every round");
                        for (r, f) in reference.iter().zip(&frontier) {
                            assert_eq!(r, f, "view divergence: n={} {model:?} seed={seed}", g.n());
                        }
                        for (_, front, bits) in &reference {
                            let heard: Vec<NodeId> =
                                (0..g.n() as NodeId).filter(|&v| bits[v as usize].0).collect();
                            assert_eq!(front, &heard, "frontier == heard set");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn frontier_crash_bitset_tracks_schedule_after_set_faults_midrun() {
        // Install a crash schedule after some rounds have already run: the
        // crash queue must catch up to the current global round, matching
        // the reference path exactly from the installation point on.
        let g = generators::path(6);
        let run = |mode: EngineMode| {
            let mut sim =
                Simulator::with_mode(&g, CollisionModel::NoCollisionDetection, 3, None, mode);
            let mut p = crate::testing::NaiveFlood::new(g.n(), 0);
            sim.run(&mut p, 10);
            sim.set_faults(Some(FaultSchedule::new(6, vec![], 0.0, 0.0, 0.25, 9)));
            let mut p2 = crate::testing::NaiveFlood::new(g.n(), 0);
            let stats = sim.run(&mut p2, 30);
            (stats, sim.metrics())
        };
        assert_eq!(run(EngineMode::Reference), run(EngineMode::Frontier));
    }

    #[test]
    fn last_touched_exposes_the_round_frontier() {
        let g = generators::star(5);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        let mut p = OneShot::new(5, vec![(0, 1u64)]);
        sim.run(&mut p, 1);
        let mut touched = sim.last_touched().to_vec();
        touched.sort_unstable();
        assert_eq!(touched, vec![1, 2, 3, 4], "the hub's neighbors heard energy");
    }
}
