//! [`ProtocolFamily`] registrations for the comparator algorithms: `bgi`,
//! `truncated` and `binsearch_le(PROBE)`.

use crate::binary_search::BroadcastKind;
use crate::scenario::{BgiScenario, BinarySearchLeScenario, TruncatedScenario};
use rn_sim::family::{reject_args, ParsedArgs, ProtocolFamily};
use rn_sim::Runnable;

/// `bgi` — BGI'92 decay broadcast baseline.
pub struct BgiFamily;

impl ProtocolFamily for BgiFamily {
    fn name(&self) -> &'static str {
        "bgi"
    }

    fn grammar(&self) -> &'static str {
        "bgi"
    }

    fn about(&self) -> &'static str {
        "BGI'92 decay broadcast baseline"
    }

    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String> {
        reject_args(self.name(), args)
    }

    fn instantiate(
        &self,
        _args: Option<&str>,
        _overrides: &[(&'static rn_sim::OverrideSpec, f64)],
        _label: &str,
    ) -> Box<dyn Runnable> {
        Box::new(BgiScenario)
    }
}

/// `truncated` — CR/KP-style truncated decay baseline.
pub struct TruncatedFamily;

impl ProtocolFamily for TruncatedFamily {
    fn name(&self) -> &'static str {
        "truncated"
    }

    fn grammar(&self) -> &'static str {
        "truncated"
    }

    fn about(&self) -> &'static str {
        "CR/KP-style truncated decay baseline"
    }

    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String> {
        reject_args(self.name(), args)
    }

    fn instantiate(
        &self,
        _args: Option<&str>,
        _overrides: &[(&'static rn_sim::OverrideSpec, f64)],
        _label: &str,
    ) -> Box<dyn Runnable> {
        Box::new(TruncatedScenario)
    }
}

/// `binsearch_le(PROBE)` — the classical binary-search leader-election
/// reduction over probe `bgi`, `cd17` or `beep`.
pub struct BinsearchLeFamily;

impl BinsearchLeFamily {
    fn probe(&self, args: Option<&str>) -> Result<BroadcastKind, String> {
        match args {
            Some("bgi") => Ok(BroadcastKind::Bgi),
            Some("cd17") => Ok(BroadcastKind::CzumajDavies),
            Some("beep") => Ok(BroadcastKind::BeepWaveCd),
            Some(other) => Err(format!("unknown binsearch_le probe {other:?} (bgi | cd17 | beep)")),
            None => Err("binsearch_le needs a probe (bgi | cd17 | beep)".into()),
        }
    }
}

impl ProtocolFamily for BinsearchLeFamily {
    fn name(&self) -> &'static str {
        "binsearch_le"
    }

    fn grammar(&self) -> &'static str {
        "binsearch_le(bgi|cd17|beep)"
    }

    fn about(&self) -> &'static str {
        "binary-search leader election over a pluggable broadcast probe"
    }

    fn canonical_instances(&self) -> &'static [Option<&'static str>] {
        &[Some("bgi"), Some("cd17"), Some("beep")]
    }

    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String> {
        let probe = self.probe(args.map(str::trim))?;
        let canonical = match probe {
            BroadcastKind::Bgi => "bgi",
            BroadcastKind::CzumajDavies => "cd17",
            BroadcastKind::BeepWaveCd => "beep",
        };
        Ok(ParsedArgs::with_args(canonical))
    }

    fn instantiate(
        &self,
        args: Option<&str>,
        _overrides: &[(&'static rn_sim::OverrideSpec, f64)],
        _label: &str,
    ) -> Box<dyn Runnable> {
        let kind = self.probe(args).expect("canonical binsearch_le probe");
        Box::new(BinarySearchLeScenario { kind })
    }
}

/// The protocol families this crate contributes to the registry.
pub fn families() -> Vec<&'static dyn ProtocolFamily> {
    vec![&BgiFamily, &TruncatedFamily, &BinsearchLeFamily]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_parsing_and_names() {
        let f = BinsearchLeFamily;
        for probe in ["bgi", "cd17", "beep"] {
            let p = f.parse_args(Some(probe)).expect("parses");
            assert_eq!(p.canonical.as_deref(), Some(probe));
            let label = format!("binsearch_le({probe})");
            let r = f.instantiate(Some(probe), &[], &label);
            assert_eq!(r.name(), label, "Runnable name matches the spec");
        }
        assert!(f.parse_args(None).is_err());
        assert!(f.parse_args(Some("zz")).is_err());
        assert!(BgiFamily.parse_args(Some("1")).is_err());
        assert_eq!(BgiFamily.instantiate(None, &[], "bgi").name(), "bgi");
        assert_eq!(TruncatedFamily.instantiate(None, &[], "truncated").name(), "truncated");
    }
}
