use rn_core::{broadcast as cd_broadcast, CompeteParams, CompeteReport};
use rn_decay::{DecayBroadcast, TruncatedDecayBroadcast};
use rn_graph::{Graph, NodeId};
use rn_sim::{CollisionModel, NetParams, Simulator};
use serde::{Deserialize, Serialize};

/// Outcome of a baseline broadcast run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BroadcastOutcome {
    /// Whether every node was informed within the budget.
    pub completed: bool,
    /// Rounds until completion (or the budget, if not completed).
    pub rounds: u64,
}

/// Runs BGI'92 decay broadcasting from `source` and reports rounds until all
/// nodes are informed.
pub fn bgi_broadcast(g: &Graph, net: NetParams, source: NodeId, seed: u64) -> BroadcastOutcome {
    let mut p = DecayBroadcast::single_source(net, source, 1, seed);
    let mut sim = Simulator::new(g, CollisionModel::NoCollisionDetection, seed);
    let stats = sim.run_until(&mut p, net.decay_broadcast_budget(), |_, p| p.all_informed());
    BroadcastOutcome { completed: p.all_informed(), rounds: stats.rounds }
}

/// Runs the truncated-decay (CR/KP-style) broadcast from `source`.
pub fn truncated_broadcast(
    g: &Graph,
    net: NetParams,
    source: NodeId,
    seed: u64,
) -> BroadcastOutcome {
    let mut p = TruncatedDecayBroadcast::single_source(net, source, 1, seed);
    let mut sim = Simulator::new(g, CollisionModel::NoCollisionDetection, seed);
    let stats = sim.run_until(&mut p, net.decay_broadcast_budget(), |_, p| p.all_informed());
    BroadcastOutcome { completed: p.all_informed(), rounds: stats.rounds }
}

/// Runs the clustering pipeline in Haeupler–Wajc mode (the predecessor's
/// `log log n`-longer curtailment) — the head-to-head ablation for E8/E11.
///
/// # Errors
///
/// Propagates [`rn_core::CompeteError`] (disconnected graph, bad source).
pub fn hw_broadcast(
    g: &Graph,
    source: NodeId,
    seed: u64,
) -> Result<CompeteReport, rn_core::CompeteError> {
    cd_broadcast(g, source, &CompeteParams::haeupler_wajc(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    #[test]
    fn bgi_completes_on_grid() {
        let g = generators::grid(12, 12);
        let net = NetParams::of_graph(&g);
        let out = bgi_broadcast(&g, net, 0, 3);
        assert!(out.completed);
        assert!(out.rounds > 0);
    }

    #[test]
    fn truncated_completes_on_grid() {
        let g = generators::grid(12, 12);
        let net = NetParams::of_graph(&g);
        let out = truncated_broadcast(&g, net, 0, 3);
        assert!(out.completed);
    }

    #[test]
    fn hw_mode_completes_and_runs_longer_schedules() {
        let g = generators::grid(10, 10);
        let r = hw_broadcast(&g, 0, 5).expect("runs");
        assert!(r.completed);
    }
}
