//! A collision-*detection* presence probe: the "beep wave".
//!
//! In the CD model a listener can distinguish silence from collision, so
//! *any* energy on the channel — message or collision — carries one bit.
//! A beep wave exploits this: sources beep in round 0; every node that
//! hears anything (delivery or collision) in round `t` beeps once in round
//! `t + 1`. Presence reaches distance `d` in exactly `d` rounds, no matter
//! how many sources beep at once: collisions *help* rather than hurt.
//!
//! This is the mechanism behind the CD-model broadcasting line of work the
//! paper cites (\[11\], `O(D + log⁶ n)`), reduced to its 1-bit core — content
//! still needs a real broadcast, but binary-search leader election only
//! needs presence probes, which makes the beep wave the natural CD
//! comparator for E9/E12.
//!
//! In the paper's no-CD model the same protocol *breaks* (collisions read
//! as silence); the tests pin down exactly that separation.

use rn_graph::NodeId;
use rn_sim::{Protocol, Round, TxBuf};

/// One-shot presence wave from a set of sources. Run under
/// [`rn_sim::CollisionModel::CollisionDetection`] it reaches every node at
/// distance `d` from the source set in exactly `d` rounds.
#[derive(Debug, Clone)]
pub struct BeepWave {
    /// Round in which each node beeps (sources: 0), `None` = never reached.
    beep_at: Vec<Option<Round>>,
    /// The beep schedule as per-round buckets: `buckets[r]` holds the nodes
    /// due to beep in round `r`, each at most once (`beep_at` is written at
    /// most once per node). A node activated in round `r` lands in bucket
    /// `r + 1`, so a bucket is complete before its round's `transmit` runs;
    /// sorting at emission restores the increasing-id order of the original
    /// full `beep_at` scan without touching all `n` nodes every round.
    buckets: Vec<Vec<NodeId>>,
    /// Reached-node count, maintained incrementally.
    reached: usize,
}

impl BeepWave {
    /// Creates a wave from `sources` on an `n`-node network.
    pub fn new(n: usize, sources: &[NodeId]) -> BeepWave {
        let mut beep_at = vec![None; n];
        let mut first = Vec::new();
        for &s in sources {
            if beep_at[s as usize].is_none() {
                beep_at[s as usize] = Some(0);
                first.push(s);
            }
        }
        let reached = first.len();
        BeepWave { beep_at, buckets: vec![first], reached }
    }

    /// Whether `node` was reached by the wave (sources count as reached).
    pub fn reached(&self, node: NodeId) -> bool {
        self.beep_at[node as usize].is_some()
    }

    /// Number of reached nodes.
    pub fn reached_count(&self) -> usize {
        self.reached
    }

    fn activate(&mut self, node: NodeId, round: Round) {
        let slot = &mut self.beep_at[node as usize];
        if slot.is_none() {
            *slot = Some(round + 1);
            let due = (round + 1) as usize;
            if self.buckets.len() <= due {
                self.buckets.resize_with(due + 1, Vec::new);
            }
            self.buckets[due].push(node);
            self.reached += 1;
        }
    }
}

impl Protocol for BeepWave {
    type Msg = ();

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<()>) {
        let Some(bucket) = self.buckets.get_mut(round as usize) else { return };
        bucket.sort_unstable();
        for i in 0..bucket.len() {
            tx.send(bucket[i], ());
        }
    }

    fn deliver(&mut self, round: Round, node: NodeId, _from: NodeId, _msg: &()) {
        self.activate(node, round);
    }

    fn collision(&mut self, round: Round, node: NodeId) {
        // The CD model's extra power: collisions carry the presence bit too.
        self.activate(node, round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;
    use rn_sim::{CollisionModel, NetParams, Simulator};

    #[test]
    fn wave_reaches_distance_d_in_d_rounds_under_cd() {
        let g = generators::grid(9, 9);
        let net = NetParams::of_graph(&g);
        let mut p = BeepWave::new(g.n(), &[0]);
        let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, 1);
        sim.run(&mut p, net.diameter() as u64 + 1);
        assert_eq!(p.reached_count(), g.n(), "everyone hears presence in D+1 rounds");
    }

    #[test]
    fn multiple_sources_still_work_under_cd() {
        // Many simultaneous beepers collide everywhere — and that is fine.
        let g = generators::cycle(24);
        let sources: Vec<u32> = (0..8).map(|i| i * 3).collect();
        let mut p = BeepWave::new(g.n(), &sources);
        let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, 2);
        sim.run(&mut p, 24);
        assert_eq!(p.reached_count(), g.n());
    }

    #[test]
    fn wave_breaks_without_collision_detection() {
        // The same protocol in the paper's no-CD model: symmetric collisions
        // read as silence and the wave stalls — the models really differ.
        let g = generators::cycle(4);
        let mut p = BeepWave::new(g.n(), &[0]);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 3);
        sim.run(&mut p, 50);
        assert!(p.reached_count() < g.n(), "no-CD must strand the antipode");
    }

    #[test]
    fn no_sources_means_silence() {
        let g = generators::path(10);
        let mut p = BeepWave::new(g.n(), &[]);
        let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, 4);
        let stats = sim.run(&mut p, 20);
        assert_eq!(stats.metrics.transmissions, 0);
        assert_eq!(p.reached_count(), 0);
    }
}
