//! [`Runnable`] scenarios for the comparator algorithms, so baselines plug
//! into campaigns on exactly the same footing as the paper's algorithms.

use crate::binary_search::{binary_search_le_scheduled, BroadcastKind};
use rn_decay::{CoinSampler, DecayBroadcast, TruncatedDecayBroadcast};
use rn_graph::Graph;
use rn_sim::{
    CollisionModel, FaultSchedule, NetParams, Runnable, Simulator, TrialPool, TrialRecord, TxBuf,
};

/// Per-worker reusable state behind the pooled baseline trials: one protocol
/// of each decay variant (re-armed per trial via `reset`) plus the typed
/// transmission buffer they share.
#[derive(Debug, Default)]
struct BaselinePool {
    plain: Option<DecayBroadcast>,
    trunc: Option<TruncatedDecayBroadcast>,
    tx: TxBuf<u64>,
}

/// BGI'92 decay broadcasting from node 0 — the classical
/// no-spontaneous-transmissions baseline (`O((D + log n)·log n)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct BgiScenario;

impl Runnable for BgiScenario {
    fn name(&self) -> String {
        "bgi".into()
    }

    fn run_trial_scheduled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
    ) -> TrialRecord {
        let mut p = DecayBroadcast::single_source(net, 0, 1, seed);
        let mut sim = Simulator::with_faults(g, model, seed, faults.cloned());
        let stats = sim.run_until(&mut p, net.decay_broadcast_budget(), |_, p| p.all_informed());
        TrialRecord::new(p.all_informed(), stats.rounds, stats.metrics)
    }

    fn run_trial_pooled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
        pool: &mut TrialPool,
    ) -> TrialRecord {
        let (engine, st) = pool.parts(BaselinePool::default);
        match &mut st.plain {
            Some(p) => p.reset(net, &[(0, 1)], seed, CoinSampler::default()),
            slot @ None => *slot = Some(DecayBroadcast::single_source(net, 0, 1, seed)),
        }
        let p = st.plain.as_mut().expect("slot was just filled");
        st.tx.clear();
        st.tx.reserve(g.n());
        let mut sim = Simulator::reuse(engine, g, model, seed, faults.cloned());
        let stats = sim.run_until_with_buf(p, &mut st.tx, net.decay_broadcast_budget(), |_, p| {
            p.all_informed()
        });
        TrialRecord::new(p.all_informed(), stats.rounds, stats.metrics)
    }
}

/// Truncated-decay (Czumaj–Rytter / Kowalski–Pelc-style) broadcasting from
/// node 0 (`O(D·log(n/D) + log² n)` shape).
#[derive(Debug, Clone, Copy, Default)]
pub struct TruncatedScenario;

impl Runnable for TruncatedScenario {
    fn name(&self) -> String {
        "truncated".into()
    }

    fn run_trial_scheduled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
    ) -> TrialRecord {
        let mut p = TruncatedDecayBroadcast::single_source(net, 0, 1, seed);
        let mut sim = Simulator::with_faults(g, model, seed, faults.cloned());
        let stats = sim.run_until(&mut p, net.decay_broadcast_budget(), |_, p| p.all_informed());
        TrialRecord::new(p.all_informed(), stats.rounds, stats.metrics)
    }

    fn run_trial_pooled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
        pool: &mut TrialPool,
    ) -> TrialRecord {
        let (engine, st) = pool.parts(BaselinePool::default);
        match &mut st.trunc {
            Some(p) => p.reset(net, &[(0, 1)], seed, CoinSampler::default()),
            slot @ None => *slot = Some(TruncatedDecayBroadcast::single_source(net, 0, 1, seed)),
        }
        let p = st.trunc.as_mut().expect("slot was just filled");
        st.tx.clear();
        st.tx.reserve(g.n());
        let mut sim = Simulator::reuse(engine, g, model, seed, faults.cloned());
        let stats = sim.run_until_with_buf(p, &mut st.tx, net.decay_broadcast_budget(), |_, p| {
            p.all_informed()
        });
        TrialRecord::new(p.all_informed(), stats.rounds, stats.metrics)
    }
}

/// The classical binary-search leader-election reduction over a pluggable
/// broadcast probe (`Θ(T_BC · log n)` — the overhead Algorithm 6 removes).
///
/// The probe kind dictates the channel model it needs
/// ([`BroadcastKind::BeepWaveCd`] runs under collision detection, the others
/// without), so this scenario overrides [`Runnable::effective_model`] to the
/// probe's native model — campaign records always state the model the trial
/// truly ran under, whatever the requested axis value.
#[derive(Debug, Clone, Copy)]
pub struct BinarySearchLeScenario {
    /// The broadcast subroutine probed in each search phase.
    pub kind: BroadcastKind,
}

impl BinarySearchLeScenario {
    /// Registry name suffix for the probe kind.
    fn kind_name(&self) -> &'static str {
        match self.kind {
            BroadcastKind::Bgi => "bgi",
            BroadcastKind::CzumajDavies => "cd17",
            BroadcastKind::BeepWaveCd => "beep",
        }
    }
}

impl Runnable for BinarySearchLeScenario {
    fn name(&self) -> String {
        format!("binsearch_le({})", self.kind_name())
    }

    fn effective_model(&self, _requested: CollisionModel) -> CollisionModel {
        match self.kind {
            BroadcastKind::BeepWaveCd => CollisionModel::CollisionDetection,
            BroadcastKind::Bgi | BroadcastKind::CzumajDavies => {
                CollisionModel::NoCollisionDetection
            }
        }
    }

    fn run_trial_scheduled(
        &self,
        g: &Graph,
        net: NetParams,
        _model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
    ) -> TrialRecord {
        let r = binary_search_le_scheduled(g, net, self.kind, 1.0, seed, faults);
        TrialRecord::rounds_only(r.consistent && r.leader.is_some(), r.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    #[test]
    fn baseline_scenarios_complete_on_small_grid() {
        let g = generators::grid(8, 8);
        let net = NetParams::of_graph(&g);
        let cases: Vec<Box<dyn Runnable>> = vec![
            Box::new(BgiScenario),
            Box::new(TruncatedScenario),
            Box::new(BinarySearchLeScenario { kind: BroadcastKind::BeepWaveCd }),
        ];
        for s in cases {
            let r = s.run_trial(&g, net, CollisionModel::NoCollisionDetection, 5);
            assert!(r.completed, "{} must complete on grid-8x8", s.name());
            assert!(r.rounds > 0);
        }
    }

    #[test]
    fn binsearch_effective_model_follows_the_probe() {
        for req in [CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection] {
            assert_eq!(
                BinarySearchLeScenario { kind: BroadcastKind::BeepWaveCd }.effective_model(req),
                CollisionModel::CollisionDetection,
                "beep probes always run under CD"
            );
            assert_eq!(
                BinarySearchLeScenario { kind: BroadcastKind::Bgi }.effective_model(req),
                CollisionModel::NoCollisionDetection,
                "decay probes always run without CD"
            );
        }
        // Plain scenarios honor the request (trait default).
        assert_eq!(
            BgiScenario.effective_model(CollisionModel::CollisionDetection),
            CollisionModel::CollisionDetection
        );
    }

    #[test]
    fn baseline_scenarios_run_under_faults_without_scenario_code() {
        use rn_sim::FaultPlan;
        // The uniform fault seam: these scenarios contain no fault logic at
        // all, yet run faulted through the Runnable-provided method. Under
        // total jamming no broadcast can complete.
        let g = generators::grid(6, 6);
        let net = NetParams::of_graph(&g);
        let jam_all = FaultPlan::jam(36, 1.0);
        for s in [Box::new(BgiScenario) as Box<dyn Runnable>, Box::new(TruncatedScenario)] {
            let r = s.run_trial_under_faults(
                &g,
                net,
                CollisionModel::NoCollisionDetection,
                7,
                &jam_all,
            );
            assert!(!r.completed, "{}: no false completion under total jamming", s.name());
            // Mild dropout still runs, deterministically.
            let plan = FaultPlan::drop(0.05);
            let a =
                s.run_trial_under_faults(&g, net, CollisionModel::NoCollisionDetection, 7, &plan);
            let b =
                s.run_trial_under_faults(&g, net, CollisionModel::NoCollisionDetection, 7, &plan);
            assert_eq!(a, b, "{}: faulted trials are seed-deterministic", s.name());
        }
    }

    #[test]
    fn pooled_trials_match_fresh_trials_exactly() {
        let graphs = [generators::grid(8, 8), generators::path(50)];
        let mut pool = TrialPool::new();
        for s in [Box::new(BgiScenario) as Box<dyn Runnable>, Box::new(TruncatedScenario)] {
            for g in &graphs {
                let net = NetParams::of_graph(g);
                for seed in 0..3 {
                    let fresh = s.run_trial(g, net, CollisionModel::NoCollisionDetection, seed);
                    let pooled = s.run_trial_pooled(
                        g,
                        net,
                        CollisionModel::NoCollisionDetection,
                        seed,
                        None,
                        &mut pool,
                    );
                    assert_eq!(fresh, pooled, "{} n={} seed {seed}", s.name(), g.n());
                }
            }
        }
    }

    #[test]
    fn scenario_names_are_stable() {
        assert_eq!(BgiScenario.name(), "bgi");
        assert_eq!(TruncatedScenario.name(), "truncated");
        assert_eq!(BinarySearchLeScenario { kind: BroadcastKind::Bgi }.name(), "binsearch_le(bgi)");
        assert_eq!(
            BinarySearchLeScenario { kind: BroadcastKind::CzumajDavies }.name(),
            "binsearch_le(cd17)"
        );
    }
}
