//! The classical leader-election reduction (\[2\] in the paper): binary search
//! over the ID space, using multi-source broadcast as the probe.
//!
//! Every node draws a random `2·log n`-bit ID. In each of `2·log n` phases,
//! the nodes whose ID lies in the upper half of the current search range
//! broadcast "present" (multi-source) for a fixed broadcast budget `T_BC`;
//! every node then halves its range according to whether it heard anything.
//! After all phases the range is a single value — the maximum ID — and its
//! holder is the leader. Total time `Θ(T_BC · log n)`: the `log n`
//! multiplicative overhead that this paper's Algorithm 6 removes.
//!
//! The probe is pluggable ([`BroadcastKind`]) so the reduction can run over
//! the BGI baseline (the classical setup) or over this paper's broadcast.

use rand::Rng;
use rn_core::{CompeteParams, CompeteProtocol, Precomputed};
use rn_decay::DecayBroadcast;
use rn_graph::{Graph, NodeId};
use rn_sim::{rng, CollisionModel, FaultSchedule, NetParams, Simulator};
use serde::{Deserialize, Serialize};

/// Which multi-source broadcast the reduction probes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BroadcastKind {
    /// BGI'92 decay broadcast with budget `c·(D + log n)·log n`.
    Bgi,
    /// This paper's Compete-based broadcast with budget
    /// `c·(D·log n / log D + polylog n)` (precompute charged once, reused
    /// across phases — schedules don't change between probes).
    CzumajDavies,
    /// A beep-wave presence probe in the **collision-detection** model:
    /// `T_BC = D + 1` exactly (see [`crate::BeepWave`]). The CD-model
    /// comparator: presence probes become trivial when collisions are
    /// observable.
    BeepWaveCd,
}

/// Result of the binary-search leader election.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinarySearchLeReport {
    /// The elected leader if the run ended consistently.
    pub leader: Option<NodeId>,
    /// Total rounds consumed (`phases · T_BC`, plus charged precompute for
    /// the Compete probe).
    pub rounds: u64,
    /// Number of search phases executed.
    pub phases: u32,
    /// Whether all nodes ended with identical search ranges (whp true; a
    /// probe that fails to reach someone within `T_BC` breaks consistency —
    /// the real algorithm's failure mode, surfaced rather than hidden).
    pub consistent: bool,
}

/// Runs the reduction on `g`. `budget_factor` scales the per-phase broadcast
/// budget `T_BC` (1.0 = the defaults above).
pub fn binary_search_leader_election(
    g: &Graph,
    net: NetParams,
    kind: BroadcastKind,
    budget_factor: f64,
    seed: u64,
) -> BinarySearchLeReport {
    binary_search_le_scheduled(g, net, kind, budget_factor, seed, None)
}

/// As [`binary_search_leader_election`], running the channel under an
/// explicit fault schedule (`None` = fault-free) — the entry point
/// [`crate::BinarySearchLeScenario`] uses so campaign fault injection stays
/// plain parameter passing.
pub fn binary_search_le_scheduled(
    g: &Graph,
    net: NetParams,
    kind: BroadcastKind,
    budget_factor: f64,
    seed: u64,
    faults: Option<&FaultSchedule>,
) -> BinarySearchLeReport {
    let n = g.n();
    let log_n = net.log2_n();
    let bits = 2 * log_n;
    let mut idrng = rng::stream_rng(seed, 0x1D5);
    let ids: Vec<u64> = (0..n).map(|_| idrng.gen::<u64>() & ((1u64 << bits.min(63)) - 1)).collect();

    // Per-node search state (kept per node so probe failures surface as
    // inconsistency instead of being silently repaired).
    let mut lo = vec![0u64; n];
    let mut hi = vec![1u64 << bits.min(63); n];

    let log_d = net.log2_d() as u64;
    let t_bc = match kind {
        BroadcastKind::Bgi => {
            // ~4x the empirical BGI completion time: a safe whp budget that
            // keeps the reduction's overhead near its theoretical Θ(log n).
            (budget_factor * (4 * (net.diameter() as u64 + log_n as u64) * log_n as u64) as f64)
                as u64
        }
        BroadcastKind::CzumajDavies => {
            let d = net.diameter() as u64;
            (budget_factor
                * (64 * d * log_n as u64 / log_d.max(1) + 8 * (log_n as u64).pow(3)) as f64)
                as u64
        }
        // A beep wave needs exactly D+1 rounds — collisions carry the bit.
        BroadcastKind::BeepWaveCd => net.diameter() as u64 + 1,
    }
    .max(16);

    let model = match kind {
        BroadcastKind::BeepWaveCd => CollisionModel::CollisionDetection,
        _ => CollisionModel::NoCollisionDetection,
    };
    let mut total_rounds: u64 = 0;
    let mut sim = Simulator::with_faults(g, model, seed, faults.cloned());

    // Compete probe: precompute once (clusterings don't depend on the probe),
    // charge it once.
    let cd_params = CompeteParams::default();
    let pre = match kind {
        BroadcastKind::CzumajDavies => {
            let p = Precomputed::build(g, net, &cd_params, rng::derive(seed, 0xB5));
            total_rounds += p.charged_rounds;
            Some(p)
        }
        BroadcastKind::Bgi | BroadcastKind::BeepWaveCd => None,
    };

    for phase in 0..bits {
        // Each node uses its own belief of the range.
        let mids: Vec<u64> = (0..n).map(|v| lo[v] + (hi[v] - lo[v]) / 2).collect();
        let sources: Vec<(NodeId, u64)> = (0..n)
            .filter(|&v| ids[v] >= mids[v] && ids[v] < hi[v])
            .map(|v| (v as NodeId, 1u64))
            .collect();

        // Heard[v] = did v learn "present" this phase?
        let heard: Vec<bool> = if sources.is_empty() {
            // Nobody transmits; every node correctly hears silence. The
            // phase still lasts its full synchronous budget.
            total_rounds += t_bc;
            vec![false; n]
        } else {
            match kind {
                BroadcastKind::Bgi => {
                    let mut p =
                        DecayBroadcast::new(net, &sources, rng::derive(seed, 100 + phase as u64));
                    let stats = sim.run_until(&mut p, t_bc, |_, p| p.all_informed());
                    total_rounds += stats.rounds;
                    // Idle remainder of the phase budget (synchronous phases).
                    total_rounds += t_bc - stats.rounds;
                    (0..n).map(|v| p.value_of(v as NodeId).is_some()).collect()
                }
                BroadcastKind::CzumajDavies => {
                    let pre = pre.as_ref().expect("built above");
                    let mut p = CompeteProtocol::new(
                        pre,
                        cd_params,
                        &sources,
                        rng::derive(seed, 100 + phase as u64),
                    );
                    let stats = sim.run_until(&mut p, t_bc, |_, p| p.all_know_target());
                    total_rounds += stats.rounds;
                    total_rounds += t_bc - stats.rounds;
                    (0..n).map(|v| p.value_of(v as NodeId).is_some()).collect()
                }
                BroadcastKind::BeepWaveCd => {
                    let src_nodes: Vec<NodeId> = sources.iter().map(|&(v, _)| v).collect();
                    let mut p = crate::BeepWave::new(n, &src_nodes);
                    sim.run(&mut p, t_bc);
                    total_rounds += t_bc;
                    (0..n).map(|v| p.reached(v as NodeId)).collect()
                }
            }
        };

        for v in 0..n {
            if heard[v] || (ids[v] >= mids[v] && ids[v] < hi[v]) {
                lo[v] = mids[v];
            } else {
                hi[v] = mids[v];
            }
        }
    }

    let consistent = lo.windows(2).all(|w| w[0] == w[1]) && hi.windows(2).all(|w| w[0] == w[1]);
    let leader =
        if consistent { (0..n).find(|&v| ids[v] == lo[0]).map(|v| v as NodeId) } else { None };
    BinarySearchLeReport { leader, rounds: total_rounds, phases: bits, consistent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    #[test]
    fn elects_max_id_over_bgi() {
        let g = generators::grid(8, 8);
        let net = NetParams::of_graph(&g);
        let r = binary_search_leader_election(&g, net, BroadcastKind::Bgi, 1.0, 7);
        assert!(r.consistent, "probe budgets should suffice whp");
        assert!(r.leader.is_some());
        assert_eq!(r.phases, 2 * net.log2_n());
        assert_eq!(
            r.rounds,
            r.phases as u64 * {
                let log_n = net.log2_n() as u64;
                4 * (net.diameter() as u64 + log_n) * log_n
            }
        );
    }

    #[test]
    fn elects_over_compete_probe() {
        let g = generators::grid(8, 8);
        let net = NetParams::of_graph(&g);
        let r = binary_search_leader_election(&g, net, BroadcastKind::CzumajDavies, 1.0, 9);
        assert!(r.consistent);
        assert!(r.leader.is_some());
    }

    #[test]
    fn starved_budget_breaks_consistency_or_still_elects() {
        // With a tiny budget factor the probes cannot finish; the run must
        // either surface the inconsistency or happen to stay consistent —
        // never panic or fabricate a leader silently.
        let g = generators::path(64);
        let net = NetParams::of_graph(&g);
        let r = binary_search_leader_election(&g, net, BroadcastKind::Bgi, 0.01, 3);
        if !r.consistent {
            assert_eq!(r.leader, None);
        }
    }

    #[test]
    fn elects_over_beep_wave_cd_probe() {
        let g = generators::grid(8, 8);
        let net = NetParams::of_graph(&g);
        let r = binary_search_leader_election(&g, net, BroadcastKind::BeepWaveCd, 1.0, 13);
        assert!(r.consistent, "beep probes are deterministic given sources");
        assert!(r.leader.is_some());
        // Exactly phases * (D+1) rounds (modulo the 16-round phase floor):
        // the CD probe needs no slack at all.
        assert_eq!(r.rounds, r.phases as u64 * (net.diameter() as u64 + 1).max(16));
    }

    #[test]
    fn leader_holds_the_maximum_id_on_path() {
        let g = generators::path(32);
        let net = NetParams::of_graph(&g);
        let r = binary_search_leader_election(&g, net, BroadcastKind::Bgi, 1.0, 11);
        assert!(r.consistent);
        assert!(r.leader.is_some());
    }
}
