//! Comparator algorithms for the paper's §1.3 complexity table.
//!
//! * [`bgi_broadcast`] — Bar-Yehuda–Goldreich–Itai decay broadcasting,
//!   `O((D + log n)·log n)` (no spontaneous transmissions);
//! * [`truncated_broadcast`] — Czumaj–Rytter / Kowalski–Pelc-*style*
//!   truncated decay, `O(D·log(n/D) + log² n)` shape;
//! * [`hw_broadcast`] — the Haeupler–Wajc mode of the clustering pipeline
//!   (fixed longer curtailment: the extra `log log n` factor);
//! * [`binary_search_leader_election`] — the classical leader-election
//!   reduction \[2\]: network-wide binary search over the ID space using
//!   multi-source broadcast as a subroutine, `O(T_BC · log n)`. Run it over
//!   the BGI baseline or over this paper's broadcast to reproduce the gap
//!   Algorithm 6 closes;
//! * [`BeepWave`] — a collision-*detection* presence probe (`D + 1` rounds
//!   exactly), the CD-model comparator: with observable collisions the
//!   binary-search reduction costs `O(D·log n)`, while in the paper's no-CD
//!   model the same wave provably stalls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod beep;
mod binary_search;
mod broadcasts;
mod family;
mod scenario;

pub use beep::BeepWave;
pub use binary_search::{
    binary_search_le_scheduled, binary_search_leader_election, BinarySearchLeReport, BroadcastKind,
};
pub use broadcasts::{bgi_broadcast, hw_broadcast, truncated_broadcast, BroadcastOutcome};
pub use family::{families, BgiFamily, BinsearchLeFamily, TruncatedFamily};
pub use scenario::{BgiScenario, BinarySearchLeScenario, TruncatedScenario};
