use crate::error::GraphError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (station) in a radio network.
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`.
pub type NodeId = u32;

/// Sentinel id used by traversals to mean "no node" (e.g. unreachable).
pub const INVALID_NODE: NodeId = u32::MAX;

/// A simple undirected graph in CSR (compressed sparse row) form.
///
/// This is the topology substrate shared by the simulator and all algorithm
/// crates. The representation is immutable after construction: radio-network
/// topologies are fixed for the duration of an execution.
///
/// Invariants (enforced by every constructor):
/// * no self loops, no parallel edges;
/// * adjacency lists are sorted ascending;
/// * the graph is symmetric (undirected): `v ∈ adj(u) ⇔ u ∈ adj(v)`.
///
/// # Example
///
/// ```
/// use rn_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert_eq!(g.neighbors(0), &[1, 3]);
/// assert_eq!(g.degree(2), 2);
/// # Ok::<(), rn_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for node `v`'s adjacency.
    offsets: Vec<u32>,
    /// Concatenated sorted adjacency lists.
    targets: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge list.
    ///
    /// Duplicate edges (in either orientation) are merged; edge order is
    /// irrelevant. Isolated nodes are allowed here (connectivity is checked
    /// separately by [`Graph::is_connected`]).
    ///
    /// # Errors
    ///
    /// * [`GraphError::Empty`] if `n == 0`;
    /// * [`GraphError::TooManyNodes`] if `n` exceeds the `u32` id space;
    /// * [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`;
    /// * [`GraphError::SelfLoop`] if an edge connects a node to itself.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Graph, GraphError> {
        if n == 0 {
            return Err(GraphError::Empty);
        }
        if n >= INVALID_NODE as usize {
            return Err(GraphError::TooManyNodes { requested: n });
        }
        for &(u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
        }

        // Counting sort into CSR, then dedup each adjacency list. `deg` is
        // reused as the scatter cursor once the prefix sums are in
        // `offsets`, so the build allocates exactly three buffers (degrees,
        // offsets, targets), each at its final size.
        let mut deg = vec![0u32; n];
        for &(u, v) in edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut targets = vec![0 as NodeId; offsets[n] as usize];
        let cursor = &mut deg;
        cursor.copy_from_slice(&offsets[..n]);
        for &(u, v) in edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }

        // Sort + dedup per node, then re-compact.
        let mut compact_targets = Vec::with_capacity(targets.len());
        let mut compact_offsets = vec![0u32; n + 1];
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            let list = &mut targets[lo..hi];
            list.sort_unstable();
            let mut prev = INVALID_NODE;
            for &t in list.iter() {
                if t != prev {
                    compact_targets.push(t);
                    prev = t;
                }
            }
            compact_offsets[v + 1] = compact_targets.len() as u32;
        }

        Ok(Graph { n, offsets: compact_offsets, targets: compact_targets })
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Maximum degree over all nodes (0 for the single-node graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v as NodeId)).max().unwrap_or(0)
    }

    /// Average degree `2m / n`.
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.m() as f64 / self.n as f64
    }

    /// Sorted adjacency list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Whether `{u, v}` is an edge (binary search over `u`'s list).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all nodes `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n as NodeId
    }

    /// Iterates over each undirected edge exactly once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Whether the graph is connected (single-node graphs are connected).
    pub fn is_connected(&self) -> bool {
        let dist = crate::traversal::bfs(self, 0);
        dist.iter().all(|&d| d != u32::MAX)
    }

    /// Exact diameter via all-pairs BFS (`O(n·m)`).
    ///
    /// Suitable for the graph sizes used in tests and experiments; for very
    /// large instances prefer [`Graph::diameter_double_sweep`].
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn diameter(&self) -> u32 {
        let mut best = 0;
        for v in self.nodes() {
            let ecc =
                crate::traversal::eccentricity(self, v).expect("diameter of a disconnected graph");
            best = best.max(ecc);
        }
        best
    }

    /// Lower bound on the diameter via the double-sweep heuristic (`O(m)`);
    /// exact on trees, and typically exact or near-exact on the geometric and
    /// grid-like topologies radio networks model.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn diameter_double_sweep(&self) -> u32 {
        let d0 = crate::traversal::bfs(self, 0);
        let far = argmax_dist(&d0).expect("disconnected graph");
        let d1 = crate::traversal::bfs(self, far);
        d1.iter().copied().max().unwrap_or(0)
    }

    /// Builds the subgraph induced by `members`, together with the mapping
    /// from new (dense) ids to original ids.
    ///
    /// `members` must contain distinct, in-range nodes.
    pub fn induced_subgraph(&self, members: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut map = vec![INVALID_NODE; self.n];
        for (new, &old) in members.iter().enumerate() {
            debug_assert!(map[old as usize] == INVALID_NODE, "duplicate member");
            map[old as usize] = new as NodeId;
        }
        let mut edges = Vec::new();
        for &old in members {
            let nu = map[old as usize];
            for &w in self.neighbors(old) {
                let nw = map[w as usize];
                if nw != INVALID_NODE && nu < nw {
                    edges.push((nu, nw));
                }
            }
        }
        let g = Graph::from_edges(members.len().max(1), &edges)
            .expect("induced subgraph construction cannot fail");
        (g, members.to_vec())
    }

    /// Serializes to a compact edge-list text format (`n` on the first line,
    /// one `u v` pair per following line). Inverse of [`Graph::parse_edge_list`].
    pub fn to_edge_list(&self) -> String {
        let mut s = String::with_capacity(self.m() * 8 + 16);
        s.push_str(&self.n.to_string());
        s.push('\n');
        for (u, v) in self.edges() {
            s.push_str(&u.to_string());
            s.push(' ');
            s.push_str(&v.to_string());
            s.push('\n');
        }
        s
    }

    /// Parses the format produced by [`Graph::to_edge_list`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] for malformed headers/edges or invalid endpoints;
    /// malformed integers surface as [`GraphError::Empty`] (header) or
    /// [`GraphError::NodeOutOfRange`].
    pub fn parse_edge_list(text: &str) -> Result<Graph, GraphError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let n: usize = lines.next().and_then(|l| l.trim().parse().ok()).ok_or(GraphError::Empty)?;
        let mut edges = Vec::new();
        for line in lines {
            let mut it = line.split_whitespace();
            let u: NodeId = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or(GraphError::NodeOutOfRange { node: INVALID_NODE, n })?;
            let v: NodeId = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or(GraphError::NodeOutOfRange { node: INVALID_NODE, n })?;
            edges.push((u, v));
        }
        Graph::from_edges(n, &edges)
    }
}

fn argmax_dist(dist: &[u32]) -> Option<NodeId> {
    let mut best: Option<(u32, NodeId)> = None;
    for (v, &d) in dist.iter().enumerate() {
        if d == u32::MAX {
            return None;
        }
        if best.is_none_or(|(bd, _)| d > bd) {
            best = Some((d, v as NodeId));
        }
    }
    best.map(|(_, v)| v)
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n)
            .field("m", &self.m())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn builds_and_reports_basic_shape() {
        let g = cycle4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = Graph::from_edges(5, &[(3, 1), (0, 3), (4, 0), (1, 0)]).unwrap();
        for u in g.nodes() {
            let adj = g.neighbors(u);
            assert!(adj.windows(2).all(|w| w[0] < w[1]), "sorted");
            for &v in adj {
                assert!(g.has_edge(v, u), "symmetric");
            }
        }
    }

    #[test]
    fn parallel_edges_are_merged() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(Graph::from_edges(0, &[]), Err(GraphError::Empty));
        assert_eq!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(GraphError::NodeOutOfRange { node: 2, n: 2 })
        );
        assert_eq!(Graph::from_edges(2, &[(1, 1)]), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn single_node_graph_is_connected_with_zero_diameter() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.diameter(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn isolated_node_disconnects() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = cycle4();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn diameter_of_cycle() {
        let g = cycle4();
        assert_eq!(g.diameter(), 2);
        assert_eq!(g.diameter_double_sweep(), 2);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = cycle4();
        let (sub, map) = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2); // 0-1, 1-2 survive; 3's edges dropped
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn edge_list_round_trip() {
        let g = cycle4();
        let text = g.to_edge_list();
        let back = Graph::parse_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn parse_edge_list_rejects_garbage() {
        assert!(Graph::parse_edge_list("").is_err());
        assert!(Graph::parse_edge_list("3\n0 zebra\n").is_err());
        assert!(Graph::parse_edge_list("2\n0 5\n").is_err());
    }

    #[test]
    fn debug_output_mentions_shape() {
        let g = cycle4();
        let s = format!("{g:?}");
        assert!(s.contains("n: 4") && s.contains("m: 4"));
    }
}
