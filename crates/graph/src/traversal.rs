//! Breadth-first traversals and distance statistics.
//!
//! The paper's analysis is phrased in terms of BFS distances: cluster radii,
//! diameter `D`, shortest `(u, v)`-paths, and the distance-layer histograms
//! `x_i = |A_i(v)|` used throughout Section 6. This module provides those
//! primitives over [`Graph`].

use crate::graph::{Graph, NodeId, INVALID_NODE};
use std::collections::VecDeque;

/// Distances from `src` to every node; `u32::MAX` marks unreachable nodes.
///
/// # Example
///
/// ```
/// use rn_graph::{Graph, traversal};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
/// assert_eq!(traversal::bfs(&g, 0), vec![0, 1, 2, 3]);
/// # Ok::<(), rn_graph::GraphError>(())
/// ```
pub fn bfs(g: &Graph, src: NodeId) -> Vec<u32> {
    bfs_filtered(g, &[src], |_| true)
}

/// Multi-source BFS: distance to the nearest source.
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> Vec<u32> {
    bfs_filtered(g, sources, |_| true)
}

/// BFS restricted to nodes accepted by `keep` (sources are always kept).
///
/// Used for *strong* (intra-cluster) distances: pass a membership predicate
/// to confine the traversal to one cluster.
pub fn bfs_filtered(g: &Graph, sources: &[NodeId], keep: impl Fn(NodeId) -> bool) -> Vec<u32> {
    let mut dist = Vec::new();
    let mut queue = VecDeque::with_capacity(sources.len().max(16));
    bfs_filtered_into(g, sources, keep, &mut dist, &mut queue);
    dist
}

/// [`bfs_filtered`] into caller-provided buffers: `dist` is cleared and
/// resized to `g.n()`, `queue` is cleared. Pooled trial loops reuse both
/// across many traversals so only the first pays a heap allocation.
pub fn bfs_filtered_into(
    g: &Graph,
    sources: &[NodeId],
    keep: impl Fn(NodeId) -> bool,
    dist: &mut Vec<u32>,
    queue: &mut VecDeque<NodeId>,
) {
    dist.clear();
    dist.resize(g.n(), u32::MAX);
    queue.clear();
    for &s in sources {
        if dist[s as usize] == u32::MAX {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX && keep(v) {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
}

/// BFS that also records a parent pointer per node (`INVALID_NODE` for the
/// source and unreachable nodes). Parents are the smallest-id neighbor at the
/// previous layer, making trees deterministic.
pub fn bfs_with_parents(g: &Graph, src: NodeId) -> (Vec<u32>, Vec<NodeId>) {
    let mut dist = vec![u32::MAX; g.n()];
    let mut parent = vec![INVALID_NODE; g.n()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// Eccentricity of `v`: the largest BFS distance from `v`. `None` if some
/// node is unreachable from `v`.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<u32> {
    let dist = bfs(g, v);
    let mut ecc = 0;
    for &d in &dist {
        if d == u32::MAX {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// Reconstructs one shortest `src → dst` path (inclusive) from a parent
/// array produced by [`bfs_with_parents`]. Returns `None` if `dst` is
/// unreachable.
pub fn path_from_parents(parent: &[NodeId], src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        let p = parent[cur as usize];
        if p == INVALID_NODE {
            return None;
        }
        path.push(p);
        cur = p;
        if path.len() > parent.len() {
            return None; // cycle guard; cannot happen with a valid parent array
        }
    }
    path.reverse();
    Some(path)
}

/// The canonical shortest `(u, v)`-path used by the paper's Lemma 4.4/4.7
/// arguments: BFS from `u` with smallest-id parent selection makes the path
/// unique and reproducible.
pub fn canonical_shortest_path(g: &Graph, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    let (_, parent) = bfs_with_parents(g, u);
    path_from_parents(&parent, u, v)
}

/// An iterator-style BFS frontier walker, exposing one distance layer at a
/// time. Useful for layer-synchronous protocol bootstraps.
#[derive(Debug)]
pub struct Bfs<'g> {
    graph: &'g Graph,
    dist: Vec<u32>,
    frontier: Vec<NodeId>,
    depth: u32,
}

impl<'g> Bfs<'g> {
    /// Starts a layered BFS from `sources` (all at depth 0).
    pub fn new(graph: &'g Graph, sources: &[NodeId]) -> Self {
        let mut dist = vec![u32::MAX; graph.n()];
        let mut frontier = Vec::with_capacity(sources.len());
        for &s in sources {
            if dist[s as usize] == u32::MAX {
                dist[s as usize] = 0;
                frontier.push(s);
            }
        }
        Bfs { graph, dist, frontier, depth: 0 }
    }

    /// The current frontier (nodes at distance [`Bfs::depth`]).
    pub fn frontier(&self) -> &[NodeId] {
        &self.frontier
    }

    /// Depth of the current frontier.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Distances discovered so far (`u32::MAX` = not yet reached).
    pub fn dist(&self) -> &[u32] {
        &self.dist
    }

    /// Advances to the next layer; returns `false` when exhausted.
    pub fn advance(&mut self) -> bool {
        let mut next = Vec::new();
        for &u in &self.frontier {
            for &v in self.graph.neighbors(u) {
                if self.dist[v as usize] == u32::MAX {
                    self.dist[v as usize] = self.depth + 1;
                    next.push(v);
                }
            }
        }
        self.frontier = next;
        self.depth += 1;
        !self.frontier.is_empty()
    }
}

/// The distance-layer histogram `x` of a node `v`: `x[i] = |A_i(v)|`, the
/// number of nodes at distance exactly `i`. This is the vector the paper's
/// Section 6 analysis operates on (`S_{x,β}` etc.).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerHistogram {
    /// `counts[i]` is the number of nodes at distance exactly `i` from the root.
    pub counts: Vec<u64>,
}

impl LayerHistogram {
    /// Computes the histogram for `v`; entries beyond the eccentricity are
    /// omitted. Unreachable nodes are ignored.
    pub fn of(g: &Graph, v: NodeId) -> LayerHistogram {
        let dist = bfs(g, v);
        let max = dist.iter().copied().filter(|&d| d != u32::MAX).max().unwrap_or(0);
        let mut counts = vec![0u64; max as usize + 1];
        for &d in &dist {
            if d != u32::MAX {
                counts[d as usize] += 1;
            }
        }
        LayerHistogram { counts }
    }

    /// Total number of reachable nodes (including the root itself).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Eccentricity implied by the histogram.
    pub fn eccentricity(&self) -> u32 {
        (self.counts.len() - 1) as u32
    }
}

/// A uniform sample of pairwise distances, for cheap distance-distribution
/// statistics on large graphs.
#[derive(Debug, Clone)]
pub struct DistanceMatrixSample {
    /// Sampled `(source, distances-from-source)` rows.
    pub rows: Vec<(NodeId, Vec<u32>)>,
}

impl DistanceMatrixSample {
    /// BFS from `k` deterministic (stride-spaced) sources.
    pub fn stride_sample(g: &Graph, k: usize) -> DistanceMatrixSample {
        let k = k.max(1).min(g.n());
        let stride = (g.n() / k).max(1);
        let rows = (0..k)
            .map(|i| {
                let src = (i * stride) as NodeId;
                (src, bfs(g, src))
            })
            .collect();
        DistanceMatrixSample { rows }
    }

    /// Largest distance seen in the sample (a diameter lower bound).
    pub fn max_distance(&self) -> u32 {
        self.rows
            .iter()
            .flat_map(|(_, d)| d.iter().copied())
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(5);
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = generators::path(7);
        let d = multi_source_bfs(&g, &[0, 6]);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1, 0]);
    }

    #[test]
    fn multi_source_with_duplicate_sources() {
        let g = generators::path(3);
        let d = multi_source_bfs(&g, &[1, 1]);
        assert_eq!(d, vec![1, 0, 1]);
    }

    #[test]
    fn filtered_bfs_respects_membership() {
        // Path 0-1-2-3-4; forbid node 2: nodes 3,4 unreachable from 0.
        let g = generators::path(5);
        let d = bfs_filtered(&g, &[0], |v| v != 2);
        assert_eq!(d, vec![0, 1, u32::MAX, u32::MAX, u32::MAX]);
    }

    #[test]
    fn parents_produce_shortest_paths() {
        let g = generators::grid(4, 4);
        let (dist, parent) = bfs_with_parents(&g, 0);
        for v in g.nodes() {
            let p = path_from_parents(&parent, 0, v).unwrap();
            assert_eq!(p.len() as u32 - 1, dist[v as usize]);
            assert_eq!(*p.first().unwrap(), 0);
            assert_eq!(*p.last().unwrap(), v);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn canonical_path_is_deterministic() {
        let g = generators::grid(5, 5);
        let p1 = canonical_shortest_path(&g, 0, 24).unwrap();
        let p2 = canonical_shortest_path(&g, 0, 24).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 9); // 8 hops on a 5x5 grid corner to corner
    }

    #[test]
    fn unreachable_path_is_none() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(canonical_shortest_path(&g, 0, 2).is_none());
        assert_eq!(eccentricity(&g, 0), None);
    }

    #[test]
    fn eccentricity_on_star() {
        let g = generators::star(9);
        assert_eq!(eccentricity(&g, 0), Some(1));
        assert_eq!(eccentricity(&g, 1), Some(2));
    }

    #[test]
    fn layered_walker_matches_bfs() {
        let g = generators::grid(6, 6);
        let mut walker = Bfs::new(&g, &[0]);
        while walker.advance() {}
        assert_eq!(walker.dist(), &bfs(&g, 0)[..]);
    }

    #[test]
    fn layer_histogram_of_grid_corner() {
        let g = generators::grid(3, 3);
        let h = LayerHistogram::of(&g, 0);
        assert_eq!(h.counts, vec![1, 2, 3, 2, 1]);
        assert_eq!(h.total(), 9);
        assert_eq!(h.eccentricity(), 4);
    }

    #[test]
    fn distance_sample_bounds_diameter() {
        let g = generators::path(64);
        let s = DistanceMatrixSample::stride_sample(&g, 4);
        assert_eq!(s.max_distance(), 63);
    }
}
