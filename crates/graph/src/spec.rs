//! Declarative topology specifications with a stable string form.
//!
//! A [`TopologySpec`] names one graph from the [`crate::generators`] families
//! as *data*: `"torus(32x32)"`, `"rgg(1600,0.05)"`, `"ring_of_cliques(8,12)"`.
//! Specs parse from and render to the same string (`Display` and `FromStr`
//! round-trip exactly), so campaign definitions, CLI arguments, JSON result
//! files and logs all speak one format — adding a workload to an experiment
//! sweep is a data change, never a code change.
//!
//! Randomized families (RGG, `G(n,p)`, random trees, …) are built from an
//! explicit seed, so a `(spec, seed)` pair pins the graph exactly.
//!
//! # Example
//!
//! ```
//! use rn_graph::TopologySpec;
//!
//! let spec: TopologySpec = "torus(8x8)".parse().unwrap();
//! assert_eq!(spec.to_string(), "torus(8x8)");
//! let g = spec.build(42);
//! assert_eq!(g.n(), 64);
//! assert!(g.is_connected());
//! ```

use crate::generators;
use crate::graph::Graph;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A declarative, string-stable description of one experiment topology.
///
/// See the [module docs](self) for the grammar; [`TopologySpec::GRAMMAR`]
/// lists every form.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologySpec {
    /// `path(N)` — simple path, diameter `N-1`.
    Path(usize),
    /// `cycle(N)` — cycle, `N ≥ 3`.
    Cycle(usize),
    /// `complete(N)` — clique `K_N`.
    Complete(usize),
    /// `star(N)` — hub plus `N-1` leaves.
    Star(usize),
    /// `btree(N)` — complete binary tree, heap-indexed.
    BinaryTree(usize),
    /// `hypercube(D)` — `2^D` nodes, `1 ≤ D ≤ 24`.
    Hypercube(u32),
    /// `grid(WxH)` — 2D grid.
    Grid {
        /// Width.
        w: usize,
        /// Height.
        h: usize,
    },
    /// `torus(WxH)` — grid with wraparound, `W, H ≥ 3`.
    Torus {
        /// Width.
        w: usize,
        /// Height.
        h: usize,
    },
    /// `caterpillar(SPINE,LEGS)` — spine path with leaves.
    Caterpillar {
        /// Spine length.
        spine: usize,
        /// Leaves per spine node.
        legs: usize,
    },
    /// `barbell(K,BRIDGE)` — two `K`-cliques joined by a path.
    Barbell {
        /// Clique size.
        clique: usize,
        /// Bridge path length.
        bridge: usize,
    },
    /// `lollipop(K,TAIL)` — a `K`-clique with a tail path.
    Lollipop {
        /// Clique size.
        clique: usize,
        /// Tail length.
        tail: usize,
    },
    /// `ring_of_cliques(K,SIZE)` — `K ≥ 3` cliques bridged in a cycle.
    RingOfCliques {
        /// Number of cliques.
        cliques: usize,
        /// Nodes per clique.
        size: usize,
    },
    /// `rtree(N)` — uniform random labelled tree (seeded).
    RandomTree(usize),
    /// `rgg(N,R)` — connected random geometric graph (seeded).
    Rgg {
        /// Number of nodes.
        n: usize,
        /// Connection radius in the unit square.
        radius: f64,
    },
    /// `gnp(N,P)` — connected Erdős–Rényi `G(n,p)` (seeded).
    Gnp {
        /// Number of nodes.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// `cluster_chain(K,BLOB,P)` — `K` dense blobs chained by bridges
    /// (seeded).
    ClusterChain {
        /// Number of blobs.
        cliques: usize,
        /// Nodes per blob.
        blob: usize,
        /// Intra-blob edge probability.
        p_in: f64,
    },
    /// `grid_chords(WxH,E)` — grid plus `E` random chords (seeded).
    GridChords {
        /// Width.
        w: usize,
        /// Height.
        h: usize,
        /// Number of random chords.
        extra: usize,
    },
}

/// Error from parsing a [`TopologySpec`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySpecError {
    msg: String,
}

impl TopologySpecError {
    fn new(msg: impl Into<String>) -> TopologySpecError {
        TopologySpecError { msg: msg.into() }
    }
}

impl fmt::Display for TopologySpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology spec: {}", self.msg)
    }
}

impl Error for TopologySpecError {}

impl TopologySpec {
    /// Every spec form, for help text and `--list` output.
    pub const GRAMMAR: &'static [&'static str] = &[
        "path(N)",
        "cycle(N)",
        "complete(N)",
        "star(N)",
        "btree(N)",
        "hypercube(D)",
        "grid(WxH)",
        "torus(WxH)",
        "caterpillar(SPINE,LEGS)",
        "barbell(K,BRIDGE)",
        "lollipop(K,TAIL)",
        "ring_of_cliques(K,SIZE)",
        "rtree(N)",
        "rgg(N,R)",
        "gnp(N,P)",
        "cluster_chain(K,BLOB,P)",
        "grid_chords(WxH,E)",
    ];

    /// The generator family name (the part before the parenthesis).
    pub fn family(&self) -> &'static str {
        match self {
            TopologySpec::Path(_) => "path",
            TopologySpec::Cycle(_) => "cycle",
            TopologySpec::Complete(_) => "complete",
            TopologySpec::Star(_) => "star",
            TopologySpec::BinaryTree(_) => "btree",
            TopologySpec::Hypercube(_) => "hypercube",
            TopologySpec::Grid { .. } => "grid",
            TopologySpec::Torus { .. } => "torus",
            TopologySpec::Caterpillar { .. } => "caterpillar",
            TopologySpec::Barbell { .. } => "barbell",
            TopologySpec::Lollipop { .. } => "lollipop",
            TopologySpec::RingOfCliques { .. } => "ring_of_cliques",
            TopologySpec::RandomTree(_) => "rtree",
            TopologySpec::Rgg { .. } => "rgg",
            TopologySpec::Gnp { .. } => "gnp",
            TopologySpec::ClusterChain { .. } => "cluster_chain",
            TopologySpec::GridChords { .. } => "grid_chords",
        }
    }

    /// The exact number of nodes the built graph will have — known
    /// statically for every family (randomness only affects edges), so
    /// protocol preconditions like "K sources need K nodes" can be checked
    /// at spec-parse time, before anything is built.
    pub fn nodes(&self) -> usize {
        match *self {
            TopologySpec::Path(n)
            | TopologySpec::Cycle(n)
            | TopologySpec::Complete(n)
            | TopologySpec::Star(n)
            | TopologySpec::BinaryTree(n)
            | TopologySpec::RandomTree(n)
            | TopologySpec::Rgg { n, .. }
            | TopologySpec::Gnp { n, .. } => n,
            TopologySpec::Hypercube(d) => 1usize << d,
            TopologySpec::Grid { w, h }
            | TopologySpec::Torus { w, h }
            | TopologySpec::GridChords { w, h, .. } => w * h,
            TopologySpec::Caterpillar { spine, legs } => spine * (1 + legs),
            TopologySpec::Barbell { clique, bridge } => 2 * clique + bridge,
            TopologySpec::Lollipop { clique, tail } => clique + tail,
            TopologySpec::RingOfCliques { cliques, size } => cliques * size,
            TopologySpec::ClusterChain { cliques, blob, .. } => cliques * blob,
        }
    }

    /// Whether building this spec consumes randomness (so two seeds give two
    /// different graphs).
    pub fn is_randomized(&self) -> bool {
        matches!(
            self,
            TopologySpec::RandomTree(_)
                | TopologySpec::Rgg { .. }
                | TopologySpec::Gnp { .. }
                | TopologySpec::ClusterChain { .. }
                | TopologySpec::GridChords { .. }
        )
    }

    /// Builds the graph. Deterministic in `(self, seed)`; deterministic
    /// shapes ignore the seed entirely.
    ///
    /// # Panics
    ///
    /// Panics if the spec's parameters violate a generator precondition
    /// (parsing via [`FromStr`] rejects such specs up front).
    pub fn build(&self, seed: u64) -> Graph {
        // rn-lint: allow(rng-discipline) — rn_graph cannot depend on rn_sim; seeding pinned by byte-identity tests
        let mut rng = SmallRng::seed_from_u64(seed);
        match *self {
            TopologySpec::Path(n) => generators::path(n),
            TopologySpec::Cycle(n) => generators::cycle(n),
            TopologySpec::Complete(n) => generators::complete(n),
            TopologySpec::Star(n) => generators::star(n),
            TopologySpec::BinaryTree(n) => generators::binary_tree(n),
            TopologySpec::Hypercube(d) => generators::hypercube(d),
            TopologySpec::Grid { w, h } => generators::grid(w, h),
            TopologySpec::Torus { w, h } => generators::torus(w, h),
            TopologySpec::Caterpillar { spine, legs } => generators::caterpillar(spine, legs),
            TopologySpec::Barbell { clique, bridge } => generators::barbell(clique, bridge),
            TopologySpec::Lollipop { clique, tail } => generators::lollipop(clique, tail),
            TopologySpec::RingOfCliques { cliques, size } => {
                generators::ring_of_cliques(cliques, size)
            }
            TopologySpec::RandomTree(n) => generators::random_tree(n, &mut rng),
            TopologySpec::Rgg { n, radius } => generators::random_geometric(n, radius, &mut rng),
            TopologySpec::Gnp { n, p } => generators::gnp_connected(n, p, &mut rng),
            TopologySpec::ClusterChain { cliques, blob, p_in } => {
                generators::cluster_chain(cliques, blob, p_in, &mut rng)
            }
            TopologySpec::GridChords { w, h, extra } => {
                generators::grid_with_chords(w, h, extra, &mut rng)
            }
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologySpec::Path(n)
            | TopologySpec::Cycle(n)
            | TopologySpec::Complete(n)
            | TopologySpec::Star(n)
            | TopologySpec::BinaryTree(n)
            | TopologySpec::RandomTree(n) => write!(f, "{}({n})", self.family()),
            TopologySpec::Hypercube(d) => write!(f, "hypercube({d})"),
            TopologySpec::Grid { w, h } | TopologySpec::Torus { w, h } => {
                write!(f, "{}({w}x{h})", self.family())
            }
            TopologySpec::Caterpillar { spine, legs } => write!(f, "caterpillar({spine},{legs})"),
            TopologySpec::Barbell { clique, bridge } => write!(f, "barbell({clique},{bridge})"),
            TopologySpec::Lollipop { clique, tail } => write!(f, "lollipop({clique},{tail})"),
            TopologySpec::RingOfCliques { cliques, size } => {
                write!(f, "ring_of_cliques({cliques},{size})")
            }
            TopologySpec::Rgg { n, radius } => write!(f, "rgg({n},{radius})"),
            TopologySpec::Gnp { n, p } => write!(f, "gnp({n},{p})"),
            TopologySpec::ClusterChain { cliques, blob, p_in } => {
                write!(f, "cluster_chain({cliques},{blob},{p_in})")
            }
            TopologySpec::GridChords { w, h, extra } => write!(f, "grid_chords({w}x{h},{extra})"),
        }
    }
}

impl FromStr for TopologySpec {
    type Err = TopologySpecError;

    fn from_str(s: &str) -> Result<TopologySpec, TopologySpecError> {
        let s = s.trim();
        let open = s
            .find('(')
            .ok_or_else(|| TopologySpecError::new(format!("{s:?} has no parameter list")))?;
        if !s.ends_with(')') {
            return Err(TopologySpecError::new(format!("{s:?} is missing a closing parenthesis")));
        }
        let family = &s[..open];
        let args: Vec<&str> = s[open + 1..s.len() - 1].split(',').map(str::trim).collect();
        let argc = |want: usize| {
            if args.len() == want {
                Ok(())
            } else {
                Err(TopologySpecError::new(format!(
                    "{family} takes {want} argument(s), got {}",
                    args.len()
                )))
            }
        };
        let spec = match family {
            "path" => {
                argc(1)?;
                TopologySpec::Path(parse_count(family, args[0], 1)?)
            }
            "cycle" => {
                argc(1)?;
                TopologySpec::Cycle(parse_count(family, args[0], 3)?)
            }
            "complete" => {
                argc(1)?;
                TopologySpec::Complete(parse_count(family, args[0], 1)?)
            }
            "star" => {
                argc(1)?;
                TopologySpec::Star(parse_count(family, args[0], 1)?)
            }
            "btree" => {
                argc(1)?;
                TopologySpec::BinaryTree(parse_count(family, args[0], 1)?)
            }
            "hypercube" => {
                argc(1)?;
                let d = parse_count(family, args[0], 1)? as u32;
                if d > 24 {
                    return Err(TopologySpecError::new("hypercube dimension must be ≤ 24"));
                }
                TopologySpec::Hypercube(d)
            }
            "grid" => {
                argc(1)?;
                let (w, h) = parse_dims(family, args[0], 1)?;
                TopologySpec::Grid { w, h }
            }
            "torus" => {
                argc(1)?;
                let (w, h) = parse_dims(family, args[0], 3)?;
                TopologySpec::Torus { w, h }
            }
            "caterpillar" => {
                argc(2)?;
                TopologySpec::Caterpillar {
                    spine: parse_count(family, args[0], 1)?,
                    legs: parse_count(family, args[1], 0)?,
                }
            }
            "barbell" => {
                argc(2)?;
                TopologySpec::Barbell {
                    clique: parse_count(family, args[0], 1)?,
                    bridge: parse_count(family, args[1], 0)?,
                }
            }
            "lollipop" => {
                argc(2)?;
                TopologySpec::Lollipop {
                    clique: parse_count(family, args[0], 1)?,
                    tail: parse_count(family, args[1], 0)?,
                }
            }
            "ring_of_cliques" => {
                argc(2)?;
                TopologySpec::RingOfCliques {
                    cliques: parse_count(family, args[0], 3)?,
                    size: parse_count(family, args[1], 1)?,
                }
            }
            "rtree" => {
                argc(1)?;
                TopologySpec::RandomTree(parse_count(family, args[0], 1)?)
            }
            "rgg" => {
                argc(2)?;
                let radius = parse_float(family, args[1])?;
                if radius <= 0.0 {
                    return Err(TopologySpecError::new("rgg radius must be positive"));
                }
                TopologySpec::Rgg { n: parse_count(family, args[0], 1)?, radius }
            }
            "gnp" => {
                argc(2)?;
                let p = parse_float(family, args[1])?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(TopologySpecError::new("gnp probability must be in [0, 1]"));
                }
                TopologySpec::Gnp { n: parse_count(family, args[0], 1)?, p }
            }
            "cluster_chain" => {
                argc(3)?;
                let p_in = parse_float(family, args[2])?;
                if !(0.0..=1.0).contains(&p_in) {
                    return Err(TopologySpecError::new(
                        "cluster_chain probability must be in [0, 1]",
                    ));
                }
                TopologySpec::ClusterChain {
                    cliques: parse_count(family, args[0], 1)?,
                    blob: parse_count(family, args[1], 1)?,
                    p_in,
                }
            }
            "grid_chords" => {
                argc(2)?;
                let (w, h) = parse_dims(family, args[0], 1)?;
                TopologySpec::GridChords { w, h, extra: parse_count(family, args[1], 0)? }
            }
            other => {
                return Err(TopologySpecError::new(format!(
                    "unknown topology family {other:?} (known: {})",
                    TopologySpec::GRAMMAR.join(", ")
                )))
            }
        };
        Ok(spec)
    }
}

fn parse_count(family: &str, s: &str, min: usize) -> Result<usize, TopologySpecError> {
    let v: usize = s
        .parse()
        .map_err(|_| TopologySpecError::new(format!("{family}: {s:?} is not an integer")))?;
    if v < min {
        return Err(TopologySpecError::new(format!(
            "{family}: argument {v} is below minimum {min}"
        )));
    }
    Ok(v)
}

fn parse_dims(family: &str, s: &str, min: usize) -> Result<(usize, usize), TopologySpecError> {
    let (w, h) = s
        .split_once('x')
        .ok_or_else(|| TopologySpecError::new(format!("{family}: expected WxH, got {s:?}")))?;
    Ok((parse_count(family, w, min)?, parse_count(family, h, min)?))
}

fn parse_float(family: &str, s: &str) -> Result<f64, TopologySpecError> {
    let v: f64 = s
        .parse()
        .map_err(|_| TopologySpecError::new(format!("{family}: {s:?} is not a number")))?;
    if !v.is_finite() {
        return Err(TopologySpecError::new(format!("{family}: {s:?} is not finite")));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One spec per family, mirroring [`TopologySpec::GRAMMAR`] order.
    fn one_of_each() -> Vec<TopologySpec> {
        vec![
            TopologySpec::Path(64),
            TopologySpec::Cycle(32),
            TopologySpec::Complete(16),
            TopologySpec::Star(17),
            TopologySpec::BinaryTree(31),
            TopologySpec::Hypercube(5),
            TopologySpec::Grid { w: 6, h: 9 },
            TopologySpec::Torus { w: 8, h: 8 },
            TopologySpec::Caterpillar { spine: 10, legs: 3 },
            TopologySpec::Barbell { clique: 6, bridge: 4 },
            TopologySpec::Lollipop { clique: 6, tail: 5 },
            TopologySpec::RingOfCliques { cliques: 5, size: 4 },
            TopologySpec::RandomTree(50),
            TopologySpec::Rgg { n: 80, radius: 0.25 },
            TopologySpec::Gnp { n: 60, p: 0.1 },
            TopologySpec::ClusterChain { cliques: 4, blob: 10, p_in: 0.3 },
            TopologySpec::GridChords { w: 6, h: 6, extra: 5 },
        ]
    }

    #[test]
    fn display_parse_round_trip_covers_every_family() {
        let specs = one_of_each();
        assert_eq!(specs.len(), TopologySpec::GRAMMAR.len(), "one example per grammar form");
        for spec in specs {
            let s = spec.to_string();
            let back: TopologySpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(back, spec, "round trip through {s:?}");
            assert!(
                s.starts_with(spec.family()),
                "string form {s:?} starts with family {:?}",
                spec.family()
            );
        }
    }

    #[test]
    fn every_spec_builds_a_connected_graph() {
        for spec in one_of_each() {
            let g = spec.build(7);
            assert!(g.is_connected(), "{spec} must build connected");
            assert!(g.n() > 0);
        }
    }

    #[test]
    fn nodes_predicts_built_size_for_every_family() {
        for spec in one_of_each() {
            assert_eq!(spec.build(7).n(), spec.nodes(), "{spec}");
        }
    }

    #[test]
    fn build_is_seed_deterministic_and_seed_sensitive() {
        let spec = TopologySpec::Rgg { n: 100, radius: 0.2 };
        assert_eq!(spec.build(3), spec.build(3));
        assert_ne!(spec.build(3), spec.build(4));
        assert!(spec.is_randomized());
        // Deterministic shapes ignore the seed.
        let grid = TopologySpec::Grid { w: 5, h: 5 };
        assert_eq!(grid.build(1), grid.build(2));
        assert!(!grid.is_randomized());
    }

    #[test]
    fn float_specs_round_trip_exactly() {
        for s in ["rgg(1600,0.05)", "gnp(1600,0.004)", "cluster_chain(10,60,0.15)"] {
            let spec: TopologySpec = s.parse().expect("parses");
            assert_eq!(spec.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "grid",
            "grid(3x3",
            "grid(3)",
            "nosuch(5)",
            "path(0)",
            "cycle(2)",
            "torus(2x9)",
            "hypercube(25)",
            "rgg(10,-0.5)",
            "gnp(10,1.5)",
            "cluster_chain(2,5,nan)",
            "path(x)",
        ] {
            assert!(bad.parse::<TopologySpec>().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let spec: TopologySpec = " barbell( 6 , 4 ) ".parse().expect("parses");
        assert_eq!(spec, TopologySpec::Barbell { clique: 6, bridge: 4 });
    }
}
