//! Hybrid CSR / bitmap adjacency for dense-round kernels.
//!
//! A radio round whose transmitter degree sum rivals `n` (decay's early
//! layers on dense geometric graphs, floods on near-complete topologies)
//! spends its time scattering per-edge writes through [`Graph::neighbors`].
//! For exactly those rounds a simulator wants the *word* form of a row —
//! one `u64` bitmap word per 64 nodes — so "everyone adjacent to `u` hears
//! energy" becomes `⌈n/64⌉` OR/AND word operations instead of `deg(u)`
//! random writes.
//!
//! Materializing a bitmap row for every node costs `n²/8` bytes, which is
//! unaffordable beyond a few thousand nodes. [`HybridAdjacency`] therefore
//! keeps bitmap rows only for nodes above a degree threshold (the rows that
//! amortize: a row with `deg(u) ≥ n/64` touches at least one bit per word
//! on average) and answers every other node from the graph's existing CSR
//! row. The structure is a cache — it borrows nothing and adds no new
//! semantics; [`HybridAdjacency::row`] agrees bit-for-bit with
//! [`Graph::neighbors`], which a unit test pins.

use crate::graph::{Graph, NodeId};

/// Bitmap rows for the high-degree nodes of one [`Graph`], CSR fallback for
/// the rest. See the module docs for the cost model.
#[derive(Debug, Clone)]
pub struct HybridAdjacency {
    /// Words per bitmap row: `⌈n/64⌉`.
    words: usize,
    /// For each node, the index of its bitmap row, or `u32::MAX` if the
    /// node is below the threshold and answers from CSR.
    row_of: Vec<u32>,
    /// Concatenated bitmap rows, `words` words each.
    bits: Vec<u64>,
    /// The degree threshold rows were built at (diagnostics/tests).
    threshold: usize,
}

impl HybridAdjacency {
    /// Builds bitmap rows for every node with `degree ≥ threshold`
    /// (unconditionally — callers wanting the memory-capped default policy
    /// use [`HybridAdjacency::for_graph`]).
    pub fn build(g: &Graph, threshold: usize) -> HybridAdjacency {
        let candidates: Vec<NodeId> =
            g.nodes().filter(|&v| g.degree(v) >= threshold.max(1)).collect();
        HybridAdjacency::with_rows(g, &candidates, threshold)
    }

    /// Builds the default policy for `g`: threshold `max(64, n/64)` (below
    /// that a bitmap row does not beat the CSR walk), with total bitmap
    /// memory capped at ~8 words per node by keeping only the highest-degree
    /// rows when the graph is dense enough to blow the budget.
    pub fn for_graph(g: &Graph) -> HybridAdjacency {
        let n = g.n();
        let threshold = (n / 64).max(64);
        let words = n.div_ceil(64);
        let budget_words = 8 * n;
        let max_rows = budget_words.checked_div(words).map_or(0, |r| r.max(1));
        let mut candidates: Vec<NodeId> = g.nodes().filter(|&v| g.degree(v) >= threshold).collect();
        if candidates.len() > max_rows {
            // Keep the top-k rows by (degree desc, id asc): the highest
            // degrees are exactly the rows the word kernel profits from.
            candidates.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
            candidates.truncate(max_rows);
        }
        HybridAdjacency::with_rows(g, &candidates, threshold)
    }

    fn with_rows(g: &Graph, rows: &[NodeId], threshold: usize) -> HybridAdjacency {
        let n = g.n();
        let words = n.div_ceil(64);
        let mut row_of = vec![u32::MAX; n];
        let mut bits = vec![0u64; rows.len() * words];
        for (ri, &v) in rows.iter().enumerate() {
            row_of[v as usize] = ri as u32;
            let row = &mut bits[ri * words..(ri + 1) * words];
            for &u in g.neighbors(v) {
                row[(u as usize) >> 6] |= 1u64 << (u as usize & 63);
            }
        }
        let adj = HybridAdjacency { words, row_of, bits, threshold };
        // Debug-build round-trip check, compiled out in release: every
        // bitmap row decodes to exactly its node's CSR neighbor list.
        #[cfg(debug_assertions)]
        for &v in rows {
            let row = adj.row(v).expect("row was just built");
            let pop: usize = row.iter().map(|w| w.count_ones() as usize).sum();
            debug_assert_eq!(
                pop,
                g.degree(v),
                "HybridAdjacency: row popcount diverged from degree of node {v}"
            );
            for &u in g.neighbors(v) {
                debug_assert!(
                    row[(u as usize) >> 6] & (1u64 << (u as usize & 63)) != 0,
                    "HybridAdjacency: neighbor {u} of {v} missing from bitmap row"
                );
            }
        }
        adj
    }

    /// The bitmap row of `v` (one bit per neighbor), or `None` if `v` is
    /// below the threshold / outside the memory cap and should be answered
    /// from [`Graph::neighbors`].
    #[inline]
    pub fn row(&self, v: NodeId) -> Option<&[u64]> {
        let ri = self.row_of[v as usize];
        (ri != u32::MAX).then(|| {
            let start = ri as usize * self.words;
            &self.bits[start..start + self.words]
        })
    }

    /// Words per bitmap row (`⌈n/64⌉`).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words
    }

    /// The degree threshold this cache was built at.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Number of nodes holding a bitmap row.
    pub fn bitmap_rows(&self) -> usize {
        self.bits.len().checked_div(self.words).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Expands a bitmap row back into the sorted neighbor list.
    fn expand(row: &[u64]) -> Vec<NodeId> {
        let mut out = Vec::new();
        for (wi, &w) in row.iter().enumerate() {
            let mut rest = w;
            while rest != 0 {
                out.push((wi * 64 + rest.trailing_zeros() as usize) as NodeId);
                rest &= rest - 1;
            }
        }
        out
    }

    #[test]
    fn rows_match_graph_neighbors_exactly() {
        // Shapes chosen to exercise: uniform degree (complete), hub + leaves
        // (star), and irregular degrees with n not a multiple of 64.
        for g in [generators::complete(70), generators::star(130), generators::grid(9, 7)] {
            let adj = HybridAdjacency::build(&g, 1); // every node gets a row
            assert_eq!(adj.bitmap_rows(), g.n());
            assert_eq!(adj.words_per_row(), g.n().div_ceil(64));
            for v in g.nodes() {
                let row = adj.row(v).expect("threshold 1 covers every node");
                assert_eq!(expand(row), g.neighbors(v), "row of {v}");
            }
        }
    }

    #[test]
    fn threshold_splits_rows_from_csr_fallback() {
        // Star: only the hub (degree n-1) clears any threshold above 1.
        let g = generators::star(100);
        let adj = HybridAdjacency::build(&g, 50);
        assert_eq!(adj.threshold(), 50);
        assert_eq!(adj.bitmap_rows(), 1, "only the hub qualifies");
        assert_eq!(expand(adj.row(0).unwrap()), g.neighbors(0));
        for leaf in 1..100 {
            assert!(adj.row(leaf).is_none(), "leaf {leaf} answers from CSR");
        }
    }

    #[test]
    fn default_policy_caps_memory_but_keeps_highest_degrees() {
        // Complete(256): every node has degree 255 ≥ threshold 64, but the
        // 8-words-per-node budget only affords 8·256/4 = 512 ≥ 256 rows, so
        // all fit. Complete(1024): words = 16, budget rows = 8·1024/16 =
        // 512 < 1024 — exactly 512 rows survive.
        let g = generators::complete(1024);
        let adj = HybridAdjacency::for_graph(&g);
        assert_eq!(adj.bitmap_rows(), 512, "memory cap binds");
        // Ties broken by id: nodes 0..512 hold the rows.
        assert!(adj.row(0).is_some() && adj.row(511).is_some());
        assert!(adj.row(512).is_none() && adj.row(1023).is_none());
        let g = generators::complete(256);
        assert_eq!(HybridAdjacency::for_graph(&g).bitmap_rows(), 256, "budget not binding");
    }

    #[test]
    fn empty_and_tiny_graphs_are_safe() {
        let g = generators::path(2);
        let adj = HybridAdjacency::for_graph(&g);
        assert_eq!(adj.bitmap_rows(), 0, "path degrees are below the floor threshold");
        assert!(adj.row(0).is_none() && adj.row(1).is_none());
    }
}
