//! Topology generators for radio-network experiments.
//!
//! Two families dominate the evaluation:
//!
//! * **deterministic shapes** with controllable diameter `D` — paths, cycles,
//!   grids, tori, trees, barbells — used to sweep the `D` axis of the paper's
//!   running-time bounds;
//! * **random models of ad-hoc deployments** — random geometric (unit-disk)
//!   graphs, `G(n, p)`, random trees — the standard stand-ins for physical
//!   radio deployments.
//!
//! All randomized generators take an explicit `&mut impl Rng` so experiments
//! are exactly reproducible from a master seed.

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Simple path `0 - 1 - … - (n-1)`; diameter `n - 1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    let edges: Vec<_> = (1..n).map(|v| ((v - 1) as NodeId, v as NodeId)).collect();
    Graph::from_edges(n, &edges).expect("path construction")
}

/// Cycle on `n ≥ 3` nodes; diameter `⌊n/2⌋`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut edges: Vec<_> = (1..n).map(|v| ((v - 1) as NodeId, v as NodeId)).collect();
    edges.push(((n - 1) as NodeId, 0));
    Graph::from_edges(n, &edges).expect("cycle construction")
}

/// `w × h` grid; node `(x, y)` has id `y * w + x`; diameter `(w-1) + (h-1)`.
///
/// # Panics
///
/// Panics if `w == 0 || h == 0`.
pub fn grid(w: usize, h: usize) -> Graph {
    assert!(w > 0 && h > 0, "grid dimensions must be positive");
    let mut edges = Vec::with_capacity(2 * w * h);
    let id = |x: usize, y: usize| (y * w + x) as NodeId;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    Graph::from_edges(w * h, &edges).expect("grid construction")
}

/// `w × h` torus (grid with wraparound); diameter `⌊w/2⌋ + ⌊h/2⌋`.
///
/// # Panics
///
/// Panics if `w < 3 || h < 3` (smaller tori degenerate to multi-edges).
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus dimensions must be at least 3");
    let mut edges = Vec::with_capacity(2 * w * h);
    let id = |x: usize, y: usize| (y * w + x) as NodeId;
    for y in 0..h {
        for x in 0..w {
            edges.push((id(x, y), id((x + 1) % w, y)));
            edges.push((id(x, y), id(x, (y + 1) % h)));
        }
    }
    Graph::from_edges(w * h, &edges).expect("torus construction")
}

/// Complete graph `K_n`; diameter 1.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u as NodeId, v as NodeId));
        }
    }
    Graph::from_edges(n, &edges).expect("complete construction")
}

/// Star: node 0 is the hub, nodes `1..n` are leaves; diameter 2.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    let edges: Vec<_> = (1..n).map(|v| (0, v as NodeId)).collect();
    Graph::from_edges(n, &edges).expect("star construction")
}

/// Complete binary tree with `n` nodes (heap indexing: children of `v` are
/// `2v+1`, `2v+2`); diameter `Θ(log n)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        edges.push((((v - 1) / 2) as NodeId, v as NodeId));
    }
    Graph::from_edges(n, &edges).expect("binary tree construction")
}

/// `d`-dimensional hypercube (`n = 2^d` nodes); diameter `d`.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 24`.
pub fn hypercube(d: u32) -> Graph {
    assert!((1..=24).contains(&d), "hypercube dimension must be in 1..=24");
    let n = 1usize << d;
    let mut edges = Vec::with_capacity(n * d as usize / 2);
    for v in 0..n {
        for b in 0..d {
            let u = v ^ (1 << b);
            if v < u {
                edges.push((v as NodeId, u as NodeId));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("hypercube construction")
}

/// Uniform random labelled tree on `n` nodes via a random Prüfer sequence.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Graph {
    if n <= 2 {
        return path(n);
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1u32; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    // Standard Prüfer decoding with a min-heap of current leaves.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut leaves: BinaryHeap<Reverse<usize>> =
        (0..n).filter(|&v| degree[v] == 1).map(Reverse).collect();
    let mut edges = Vec::with_capacity(n - 1);
    for &p in &prufer {
        let Reverse(leaf) = leaves.pop().expect("Prüfer decoding invariant");
        edges.push((leaf as NodeId, p as NodeId));
        degree[leaf] -= 1;
        degree[p] -= 1;
        if degree[p] == 1 {
            leaves.push(Reverse(p));
        }
    }
    let Reverse(u) = leaves.pop().expect("two leaves remain");
    let Reverse(v) = leaves.pop().expect("two leaves remain");
    edges.push((u as NodeId, v as NodeId));
    Graph::from_edges(n, &edges).expect("random tree construction")
}

/// Caterpillar: a spine path of length `spine` with `legs` leaves hanging off
/// every spine node. `n = spine · (1 + legs)`; diameter `spine + 1` for
/// `legs ≥ 1`. A high-boundary-density topology that stresses the clustering.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0, "caterpillar needs a spine");
    let n = spine * (1 + legs);
    let mut edges = Vec::with_capacity(n);
    for s in 1..spine {
        edges.push(((s - 1) as NodeId, s as NodeId));
    }
    for s in 0..spine {
        for l in 0..legs {
            let leaf = spine + s * legs + l;
            edges.push((s as NodeId, leaf as NodeId));
        }
    }
    Graph::from_edges(n, &edges).expect("caterpillar construction")
}

/// Barbell: two cliques of size `k` joined by a path of `bridge` nodes.
/// `n = 2k + bridge`; diameter `bridge + 3` (for `k ≥ 2`). Exhibits the
/// dense-cluster/long-bottleneck structure where coarse-cluster boundaries
/// (the paper's "bad subpaths") actually bite.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k > 0, "barbell cliques must be nonempty");
    let n = 2 * k + bridge;
    let mut edges = Vec::new();
    for u in 0..k {
        for v in (u + 1)..k {
            edges.push((u as NodeId, v as NodeId));
        }
    }
    let right = k + bridge;
    for u in right..n {
        for v in (u + 1)..n {
            edges.push((u as NodeId, v as NodeId));
        }
    }
    // Path through the bridge connecting clique exits.
    let mut prev = (k - 1) as NodeId;
    for b in 0..bridge {
        let cur = (k + b) as NodeId;
        edges.push((prev, cur));
        prev = cur;
    }
    edges.push((prev, right as NodeId));
    Graph::from_edges(n, &edges).expect("barbell construction")
}

/// Ring of cliques: `k` cliques of `size` nodes each, arranged in a cycle
/// with one bridge edge between consecutive cliques (the first node of each
/// clique is its port). `n = k · size`; diameter `⌊k/2⌋ + 2` for `size ≥ 2`.
/// A many-dense-clusters topology where every inter-cluster hop crosses a
/// single contended edge — the regime stressing the paper's coarse-cluster
/// boundary machinery from all sides at once.
///
/// # Panics
///
/// Panics if `k < 3` (no ring) or `size == 0`.
pub fn ring_of_cliques(k: usize, size: usize) -> Graph {
    assert!(k >= 3, "ring of cliques needs at least 3 cliques");
    assert!(size > 0, "cliques must be nonempty");
    let n = k * size;
    let mut edges = Vec::with_capacity(k * (size * (size - 1) / 2 + 1));
    for c in 0..k {
        let base = c * size;
        for u in 0..size {
            for v in (u + 1)..size {
                edges.push(((base + u) as NodeId, (base + v) as NodeId));
            }
        }
        edges.push(((c * size) as NodeId, (((c + 1) % k) * size) as NodeId));
    }
    Graph::from_edges(n, &edges).expect("ring of cliques construction")
}

/// Lollipop: a clique of size `k` with a path of `tail` nodes attached.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn lollipop(k: usize, tail: usize) -> Graph {
    assert!(k > 0, "lollipop clique must be nonempty");
    let n = k + tail;
    let mut edges = Vec::new();
    for u in 0..k {
        for v in (u + 1)..k {
            edges.push((u as NodeId, v as NodeId));
        }
    }
    let mut prev = (k - 1) as NodeId;
    for t in 0..tail {
        let cur = (k + t) as NodeId;
        edges.push((prev, cur));
        prev = cur;
    }
    Graph::from_edges(n, &edges).expect("lollipop construction")
}

/// Random geometric graph (unit-disk model): `n` points uniform in the unit
/// square, edges between pairs at Euclidean distance `≤ radius`. If the
/// sample is disconnected, nearest-component augmentation edges are added so
/// the result is always connected (the standard "connected RGG" used in
/// radio-network simulation; the augmentation count is tiny for radii near
/// the connectivity threshold `~sqrt(ln n / (π n))`).
///
/// # Panics
///
/// Panics if `n == 0` or `radius <= 0.0`.
pub fn random_geometric(n: usize, radius: f64, rng: &mut impl Rng) -> Graph {
    assert!(n > 0 && radius > 0.0, "invalid RGG parameters");
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let r2 = radius * radius;

    // Grid-bucket neighbor search: cells of side `radius`.
    let cells = ((1.0 / radius).ceil() as usize).max(1);
    let cell_of = |p: (f64, f64)| {
        let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
        let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
        (cx, cy)
    };
    // Counting-sorted CSR buckets (`bucket_start` offsets into a flat
    // `bucket_nodes`) instead of a Vec-per-cell: two exact-size allocations
    // for the whole grid, where per-cell Vecs would allocate (and
    // repeatedly regrow) each occupied cell.
    let num_cells = cells * cells;
    let mut bucket_start = vec![0u32; num_cells + 1];
    for &p in &pts {
        let (cx, cy) = cell_of(p);
        bucket_start[cy * cells + cx + 1] += 1;
    }
    for c in 0..num_cells {
        bucket_start[c + 1] += bucket_start[c];
    }
    let mut bucket_nodes = vec![0u32; n];
    let mut head = bucket_start.clone();
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        let at = &mut head[cy * cells + cx];
        bucket_nodes[*at as usize] = i as u32;
        *at += 1;
    }
    // Expected edge count n(n-1)/2 · πr² (pairs within radius, ignoring
    // boundary loss); reserving it up front keeps the hot collection loop
    // from regrowing the edge list log(m) times.
    let expected_edges =
        (0.5 * n as f64 * (n as f64 - 1.0) * std::f64::consts::PI * r2).ceil() as usize;
    let mut edges = Vec::with_capacity(expected_edges.min(n.saturating_mul(n) / 2));
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                    continue;
                }
                let c = ny as usize * cells + nx as usize;
                for &j in &bucket_nodes[bucket_start[c] as usize..bucket_start[c + 1] as usize] {
                    if (j as usize) > i {
                        let q = pts[j as usize];
                        let d2 = (p.0 - q.0).powi(2) + (p.1 - q.1).powi(2);
                        if d2 <= r2 {
                            edges.push((i as NodeId, j));
                        }
                    }
                }
            }
        }
    }

    let g = Graph::from_edges(n, &edges).expect("RGG construction");
    if g.is_connected() {
        return g;
    }
    // Augment: connect each non-root component to its geometrically nearest
    // node in the growing connected region.
    let mut comp = component_labels(&g);
    let mut extra = edges;
    loop {
        let root_comp = comp[0];
        let mut best: Option<(f64, NodeId, NodeId)> = None;
        for v in 0..n {
            if comp[v] == root_comp {
                continue;
            }
            for u in 0..n {
                if comp[u] != root_comp {
                    continue;
                }
                let d2 = (pts[v].0 - pts[u].0).powi(2) + (pts[v].1 - pts[u].1).powi(2);
                if best.is_none_or(|(bd, _, _)| d2 < bd) {
                    best = Some((d2, u as NodeId, v as NodeId));
                }
            }
        }
        match best {
            None => break,
            Some((_, u, v)) => {
                extra.push((u, v));
                let g2 = Graph::from_edges(n, &extra).expect("RGG augmentation");
                if g2.is_connected() {
                    return g2;
                }
                comp = component_labels(&g2);
            }
        }
    }
    Graph::from_edges(n, &extra).expect("RGG construction")
}

/// Erdős–Rényi `G(n, p)`, augmented with a uniformly random spanning tree's
/// missing edges when disconnected, so the result is always connected.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn gnp_connected(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    assert!(n > 0 && (0.0..=1.0).contains(&p), "invalid G(n,p) parameters");
    let mut edges = Vec::new();
    // Geometric skipping for sparse p.
    if p > 0.0 {
        let ln_q = (1.0 - p).ln();
        if ln_q == 0.0 {
            // p == 0: no random edges.
        } else if p >= 1.0 {
            for u in 0..n {
                for v in (u + 1)..n {
                    edges.push((u as NodeId, v as NodeId));
                }
            }
        } else {
            // Iterate over pair index with geometric gaps.
            let total = n * (n - 1) / 2;
            let mut idx = 0usize;
            while idx < total {
                let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let skip = (r.ln() / ln_q).floor() as usize;
                idx = idx.saturating_add(skip);
                if idx >= total {
                    break;
                }
                let (u, v) = pair_from_index(idx, n);
                edges.push((u, v));
                idx += 1;
            }
        }
    }
    let g = Graph::from_edges(n, &edges).expect("G(n,p) construction");
    if g.is_connected() {
        return g;
    }
    // Connect components along a random permutation.
    let labels = component_labels(&g);
    let ncomp = *labels.iter().max().unwrap() as usize + 1;
    let mut reps: Vec<NodeId> = vec![u32::MAX; ncomp];
    for (v, &label) in labels.iter().enumerate() {
        let c = label as usize;
        if reps[c] == u32::MAX {
            reps[c] = v as NodeId;
        }
    }
    reps.shuffle(rng);
    for w in reps.windows(2) {
        edges.push((w[0], w[1]));
    }
    Graph::from_edges(n, &edges).expect("G(n,p) augmentation")
}

/// A "cluster chain": `k` dense blobs (G(b, p_in) subgraphs) connected in a
/// chain by single bridge edges. Produces long chains of natural clusters —
/// the regime where Partition(β) boundary effects are most visible.
///
/// # Panics
///
/// Panics if `k == 0 || blob == 0`.
pub fn cluster_chain(k: usize, blob: usize, p_in: f64, rng: &mut impl Rng) -> Graph {
    assert!(k > 0 && blob > 0, "invalid cluster chain parameters");
    let n = k * blob;
    let mut edges = Vec::new();
    for c in 0..k {
        let base = c * blob;
        // Spanning path inside the blob to guarantee connectivity.
        for i in 1..blob {
            edges.push(((base + i - 1) as NodeId, (base + i) as NodeId));
        }
        for i in 0..blob {
            for j in (i + 1)..blob {
                if rng.gen::<f64>() < p_in {
                    edges.push(((base + i) as NodeId, (base + j) as NodeId));
                }
            }
        }
        if c + 1 < k {
            // Bridge from a random node of this blob to a random node of the next.
            let u = base + rng.gen_range(0..blob);
            let v = (c + 1) * blob + rng.gen_range(0..blob);
            edges.push((u as NodeId, v as NodeId));
        }
    }
    Graph::from_edges(n, &edges).expect("cluster chain construction")
}

/// A grid with `extra` random "long-range" chords, shrinking the diameter
/// while keeping bounded growth — a small-world-ish radio topology.
pub fn grid_with_chords(w: usize, h: usize, extra: usize, rng: &mut impl Rng) -> Graph {
    let base = grid(w, h);
    let n = base.n();
    let mut edges: Vec<_> = base.edges().collect();
    for _ in 0..extra {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("grid with chords construction")
}

fn pair_from_index(idx: usize, n: usize) -> (NodeId, NodeId) {
    // Row-major enumeration of pairs (u, v), u < v.
    let mut u = 0usize;
    let mut remaining = idx;
    let mut row = n - 1;
    while remaining >= row {
        remaining -= row;
        u += 1;
        row -= 1;
    }
    let v = u + 1 + remaining;
    (u as NodeId, v as NodeId)
}

fn component_labels(g: &Graph) -> Vec<u32> {
    let mut labels = vec![u32::MAX; g.n()];
    let mut next = 0u32;
    for v in 0..g.n() {
        if labels[v] != u32::MAX {
            continue;
        }
        let dist = crate::traversal::bfs(g, v as NodeId);
        for (u, &d) in dist.iter().enumerate() {
            if d != u32::MAX && labels[u] == u32::MAX {
                labels[u] = next;
            }
        }
        next += 1;
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn path_shape() {
        let g = path(10);
        assert_eq!((g.n(), g.m()), (10, 9));
        assert_eq!(g.diameter(), 9);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(9);
        assert_eq!((g.n(), g.m()), (9, 9));
        assert_eq!(g.diameter(), 4);
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 7);
        assert_eq!(g.n(), 28);
        assert_eq!(g.m(), 4 * 6 + 3 * 7);
        assert_eq!(g.diameter(), 9);
    }

    #[test]
    fn torus_shape() {
        let g = torus(4, 6);
        assert_eq!(g.n(), 24);
        assert_eq!(g.m(), 48);
        assert_eq!(g.diameter(), 2 + 3);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn complete_and_star() {
        assert_eq!(complete(6).m(), 15);
        assert_eq!(complete(6).diameter(), 1);
        let s = star(8);
        assert_eq!(s.m(), 7);
        assert_eq!(s.degree(0), 7);
        assert_eq!(s.diameter(), 2);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(15);
        assert_eq!(g.m(), 14);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), 6); // leaf -> root -> leaf in a depth-3 tree
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(5);
        assert_eq!(g.n(), 32);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
        assert_eq!(g.diameter(), 5);
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut r = rng();
        for n in [1usize, 2, 3, 10, 100, 500] {
            let g = random_tree(n, &mut r);
            assert_eq!(g.n(), n);
            assert_eq!(g.m(), n.saturating_sub(1));
            assert!(g.is_connected(), "tree with n={n} disconnected");
        }
    }

    #[test]
    fn random_tree_varies_with_seed() {
        let a = random_tree(64, &mut SmallRng::seed_from_u64(1));
        let b = random_tree(64, &mut SmallRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 3);
        assert_eq!(g.n(), 20);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), 6); // leaf-spine...spine-leaf
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(5, 4);
        assert_eq!(g.n(), 14);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), 4 + 3);
    }

    #[test]
    fn ring_of_cliques_shape() {
        let g = ring_of_cliques(6, 5);
        assert_eq!(g.n(), 30);
        assert_eq!(g.m(), 6 * (5 * 4 / 2) + 6);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), 6 / 2 + 2);
        // size = 1 degenerates to a cycle.
        let c = ring_of_cliques(7, 1);
        assert_eq!(c.n(), 7);
        assert_eq!(c.m(), 7);
        assert_eq!(c.diameter(), 3);
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3);
        assert_eq!(g.n(), 7);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), 4);
    }

    #[test]
    fn rgg_is_connected_and_deterministic() {
        let g1 = random_geometric(300, 0.09, &mut rng());
        let g2 = random_geometric(300, 0.09, &mut rng());
        assert!(g1.is_connected());
        assert_eq!(g1, g2, "same seed, same graph");
    }

    #[test]
    fn rgg_sparse_radius_still_connected_via_augmentation() {
        let g = random_geometric(100, 0.02, &mut rng());
        assert!(g.is_connected());
    }

    #[test]
    fn gnp_connected_connects() {
        let mut r = rng();
        for p in [0.0, 0.001, 0.01, 0.2] {
            let g = gnp_connected(200, p, &mut r);
            assert!(g.is_connected(), "p={p}");
            assert_eq!(g.n(), 200);
        }
    }

    #[test]
    fn gnp_dense_is_nearly_complete() {
        let g = gnp_connected(40, 1.0, &mut rng());
        assert_eq!(g.m(), 40 * 39 / 2);
    }

    #[test]
    fn pair_index_enumerates_all_pairs() {
        let n = 7;
        // Deterministic membership: a dense pair-indexed bitmap (the
        // enumeration domain is exactly the u<v pairs of an n-clique).
        let mut seen = vec![false; n * n];
        let mut count = 0usize;
        for idx in 0..(n * (n - 1) / 2) {
            let (u, v) = pair_from_index(idx, n);
            assert!(u < v && (v as usize) < n);
            let slot = u as usize * n + v as usize;
            assert!(!seen[slot], "pair ({u},{v}) enumerated twice");
            seen[slot] = true;
            count += 1;
        }
        assert_eq!(count, n * (n - 1) / 2);
    }

    #[test]
    fn cluster_chain_is_connected() {
        let g = cluster_chain(8, 20, 0.3, &mut rng());
        assert_eq!(g.n(), 160);
        assert!(g.is_connected());
    }

    #[test]
    fn grid_with_chords_shrinks_diameter() {
        let mut r = rng();
        let plain = grid(20, 20);
        let chord = grid_with_chords(20, 20, 60, &mut r);
        assert!(chord.is_connected());
        assert!(chord.diameter() <= plain.diameter());
    }
}
