use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referred to a node id `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph under construction.
        n: usize,
    },
    /// An edge connected a node to itself; radio-network graphs are simple.
    SelfLoop {
        /// The node with the self loop.
        node: u32,
    },
    /// The graph has zero nodes; the model requires at least one station.
    Empty,
    /// The graph is not connected but the operation requires connectivity.
    Disconnected,
    /// More nodes were requested than the `u32` node-id space can address.
    TooManyNodes {
        /// The requested node count.
        requested: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self loop at node {node}"),
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::TooManyNodes { requested } => {
                write!(f, "requested {requested} nodes, more than the u32 id space")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            GraphError::NodeOutOfRange { node: 5, n: 3 },
            GraphError::SelfLoop { node: 1 },
            GraphError::Empty,
            GraphError::Disconnected,
            GraphError::TooManyNodes { requested: usize::MAX },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
