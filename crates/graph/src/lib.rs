//! Graph substrate for multi-hop radio-network simulation.
//!
//! Radio networks are modeled as undirected, connected graphs `N = (V, E)`
//! where nodes are transmitter–receiver stations and an edge means the two
//! stations are within transmission range of each other. This crate provides:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) representation of a
//!   simple undirected graph, the shared substrate of every other crate in the
//!   workspace;
//! * [`traversal`] — BFS, multi-source BFS, eccentricity / diameter
//!   computations and distance-layer histograms (the `x_i = |A_i(v)|` vectors
//!   of the paper's Section 6);
//! * [`generators`] — topology families used throughout the evaluation:
//!   paths, cycles, grids, tori, random geometric (unit-disk) graphs,
//!   `G(n, p)`, random trees, hypercubes, barbells, rings of cliques,
//!   caterpillars and more;
//! * [`spec`] — [`TopologySpec`], the declarative string form of those
//!   families (`"torus(32x32)"`, `"rgg(1600,0.05)"`) used by the scenario
//!   registry and campaign runner.
//!
//! # Example
//!
//! ```
//! use rn_graph::{Graph, generators};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let g = generators::grid(16, 16);
//! assert!(g.is_connected());
//! assert_eq!(g.n(), 256);
//! assert_eq!(g.diameter(), 30); // (16-1) + (16-1)
//! # let _ = generators::random_geometric(100, 0.2, &mut rng);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod generators;
mod graph;
mod hybrid;
pub mod spec;
pub mod traversal;

pub use error::GraphError;
pub use graph::{Graph, NodeId, INVALID_NODE};
pub use hybrid::HybridAdjacency;
pub use spec::{TopologySpec, TopologySpecError};
pub use traversal::{Bfs, DistanceMatrixSample, LayerHistogram};
