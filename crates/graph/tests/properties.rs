//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rn_graph::{generators, traversal, Graph, TopologySpec};

/// Rejection-free random edge over `n ≥ 2` nodes: pick `u` and an offset.
fn arb_edge(n: usize) -> impl Strategy<Value = (u32, u32)> {
    (0..n as u32, 1..n as u32).prop_map(move |(u, k)| {
        let v = (u + k) % n as u32;
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    })
}

/// Strategy: an arbitrary edge list over `n ∈ [1, 40]` nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..40).prop_flat_map(|n| {
        if n == 1 {
            Just(Graph::from_edges(1, &[]).expect("singleton")).boxed()
        } else {
            proptest::collection::vec(arb_edge(n), 0..120)
                .prop_map(move |edges| Graph::from_edges(n, &edges).expect("valid edges"))
                .boxed()
        }
    })
}

/// Strategy: a connected graph (arbitrary edges over a spanning path).
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec(arb_edge(n), 0..120).prop_map(move |mut edges| {
            for v in 1..n as u32 {
                edges.push((v - 1, v));
            }
            Graph::from_edges(n, &edges).expect("valid edges")
        })
    })
}

proptest! {
    #[test]
    fn csr_is_sorted_symmetric_simple(g in arb_graph()) {
        for u in g.nodes() {
            let adj = g.neighbors(u);
            // sorted strictly ascending => no duplicates
            prop_assert!(adj.windows(2).all(|w| w[0] < w[1]));
            for &v in adj {
                prop_assert!(v != u, "no self loops");
                prop_assert!(g.has_edge(v, u), "symmetry");
            }
        }
        // Sum of degrees is twice the edge count.
        let degsum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.m());
    }

    #[test]
    fn bfs_satisfies_triangle_inequality_over_edges(g in arb_connected_graph()) {
        let dist = traversal::bfs(&g, 0);
        for (u, v) in g.edges() {
            let du = dist[u as usize] as i64;
            let dv = dist[v as usize] as i64;
            prop_assert!((du - dv).abs() <= 1, "adjacent nodes differ by at most one layer");
        }
    }

    #[test]
    fn bfs_parents_reconstruct_shortest_paths(g in arb_connected_graph()) {
        let (dist, parent) = traversal::bfs_with_parents(&g, 0);
        for v in g.nodes() {
            let p = traversal::path_from_parents(&parent, 0, v).expect("connected");
            prop_assert_eq!(p.len() as u32 - 1, dist[v as usize]);
            for w in p.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn double_sweep_lower_bounds_exact_diameter(g in arb_connected_graph()) {
        let exact = g.diameter();
        let ds = g.diameter_double_sweep();
        prop_assert!(ds <= exact);
        // Double sweep is at least half the diameter on connected graphs.
        prop_assert!(2 * ds >= exact);
    }

    #[test]
    fn layer_histogram_sums_to_reachable(g in arb_connected_graph()) {
        let h = traversal::LayerHistogram::of(&g, 0);
        prop_assert_eq!(h.total(), g.n() as u64);
        prop_assert_eq!(h.counts[0], 1);
    }

    #[test]
    fn edge_list_round_trips(g in arb_graph()) {
        let text = g.to_edge_list();
        let back = Graph::parse_edge_list(&text).expect("parse back");
        prop_assert_eq!(g, back);
    }

    #[test]
    fn topology_spec_round_trips_and_builds(
        kind in 0usize..6,
        a in 3usize..24,
        b in 3usize..12,
        seed in 0u64..1000,
    ) {
        let spec = match kind {
            0 => TopologySpec::Path(a),
            1 => TopologySpec::Grid { w: a, h: b },
            2 => TopologySpec::Torus { w: a, h: b },
            3 => TopologySpec::RingOfCliques { cliques: a, size: b },
            4 => TopologySpec::Barbell { clique: a, bridge: b },
            _ => TopologySpec::RandomTree(a * b),
        };
        let s = spec.to_string();
        let back: TopologySpec = s.parse().expect("stable form parses");
        prop_assert_eq!(&back, &spec);
        let g = spec.build(seed);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g, back.build(seed), "same spec + seed, same graph");
    }

    #[test]
    fn ring_of_cliques_structure(k in 3usize..12, size in 1usize..10) {
        let g = generators::ring_of_cliques(k, size);
        prop_assert_eq!(g.n(), k * size);
        prop_assert_eq!(g.m(), k * (size * (size - 1) / 2) + k);
        prop_assert!(g.is_connected());
        let expect = if size >= 2 { k as u32 / 2 + 2 } else { k as u32 / 2 };
        prop_assert_eq!(g.diameter(), expect);
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(g in arb_connected_graph()) {
        // Take the BFS ball of radius 2 around node 0 as the member set.
        let dist = traversal::bfs(&g, 0);
        let members: Vec<u32> = g.nodes().filter(|&v| dist[v as usize] <= 2).collect();
        let (sub, map) = g.induced_subgraph(&members);
        prop_assert_eq!(sub.n(), members.len());
        for (new_u, &old_u) in map.iter().enumerate() {
            for &new_v in sub.neighbors(new_u as u32) {
                let old_v = map[new_v as usize];
                prop_assert!(g.has_edge(old_u, old_v));
            }
        }
    }

    #[test]
    fn random_trees_have_n_minus_1_edges(n in 1usize..200, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = generators::random_tree(n, &mut rng);
        prop_assert_eq!(t.m(), n.saturating_sub(1));
        prop_assert!(t.is_connected());
    }

    #[test]
    fn gnp_always_connected(n in 2usize..100, p in 0.0f64..0.3, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, p, &mut rng);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn rgg_always_connected(n in 2usize..120, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::random_geometric(n, 0.08, &mut rng);
        prop_assert!(g.is_connected());
    }
}
