//! Generated-graph byte-identity regression gate.
//!
//! The committed benchmark baselines (`benchmarks/baseline_smoke.json`,
//! `baseline_scale*.json`) are byte-identical reruns of campaigns over
//! generated topologies, so the generators themselves must stay
//! bit-reproducible: same spec + same seed ⇒ the exact same adjacency
//! structure, forever. This test pins a SplitMix64 fold over the full
//! adjacency of every baseline-covered topology family (the smoke pair
//! verbatim, the scale family at a CI-sized `n`) at the seeds the executor
//! uses. Any change to a generator's edge order, RNG draw order, or seed
//! plumbing shows up here as a fingerprint mismatch *before* it shows up as
//! a baseline diff in CI.

use rn_graph::{Graph, TopologySpec};

/// SplitMix64 output function (kept local: `rn_graph` cannot depend on
/// `rn_sim`, and the constant fold below is the whole contract).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Order-sensitive fingerprint of the full adjacency structure: node and
/// edge counts, then every `(v, neighbor)` pair in CSR iteration order.
fn fingerprint(g: &Graph) -> u64 {
    let mut h = splitmix64(g.n() as u64 ^ ((g.m() as u64) << 32));
    for v in g.nodes() {
        for &u in g.neighbors(v) {
            h = splitmix64(h ^ ((v as u64) << 32 | u as u64));
        }
    }
    h
}

fn built(spec: &str, seed: u64) -> Graph {
    spec.parse::<TopologySpec>().expect("spec parses").build(seed)
}

#[test]
fn baseline_covered_topologies_are_byte_identical() {
    // (spec, seed, pinned fingerprint). Seeds mirror the smoke campaign's
    // `topology_seed` (0) plus a second seed per seeded family to catch
    // seed-plumbing regressions that happen to fix one stream.
    let pinned: &[(&str, u64, u64)] = &[
        ("grid(8x8)", 0, 0x6937_9acc_b494_d3e1),
        ("ring_of_cliques(4,6)", 0, 0x7537_7c04_f48e_1b36),
        ("rgg(2000,0.05)", 0, 0xfb68_5f12_0d48_edfb),
        ("rgg(2000,0.05)", 42, 0x4cb6_a3aa_c49b_9596),
        ("rgg(1024,0.06)", 7, 0x5d75_2548_296f_e9fa),
    ];
    for &(spec, seed, want) in pinned {
        let got = fingerprint(&built(spec, seed));
        assert_eq!(
            got, want,
            "generated-graph bytes changed for {spec} @ seed {seed}: \
             fingerprint {got:#018x} != pinned {want:#018x} — this breaks \
             byte-identity of the committed benchmark baselines"
        );
    }
}

#[test]
fn same_seed_same_bytes_across_builds() {
    for spec in ["rgg(2000,0.05)", "gnp(300,0.05)", "cluster_chain(8,20,0.3)"] {
        let a = fingerprint(&built(spec, 123));
        let b = fingerprint(&built(spec, 123));
        assert_eq!(a, b, "{spec}: rebuild with the same seed must be identical");
        let c = fingerprint(&built(spec, 124));
        assert_ne!(a, c, "{spec}: distinct seeds should differ");
    }
}
