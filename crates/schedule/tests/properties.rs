//! Property tests for the schedule substrate: tree well-formedness,
//! conflict-freeness of the slot coloring, and executor correctness on
//! arbitrary connected graphs and clusterings.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rn_cluster::Partition;
use rn_graph::{Graph, INVALID_NODE};
use rn_schedule::{Downcast, PipelinedDowncast, SlotPolicy, TreeSchedule, Upcast};
use rn_sim::{CollisionModel, Simulator};

fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (3usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 1..n as u32).prop_map(move |(u, k)| {
            let v = (u + k) % n as u32;
            if u < v {
                (u, v)
            } else {
                (v, u)
            }
        });
        proptest::collection::vec(edge, 0..70).prop_map(move |mut edges| {
            for v in 1..n as u32 {
                edges.push((v - 1, v));
            }
            Graph::from_edges(n, &edges).expect("valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trees_are_well_formed(g in arb_connected_graph(), seed in any::<u64>(),
                             beta_milli in 50u32..900) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let part = Partition::compute(&g, beta_milli as f64 / 1000.0, &mut rng);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        for v in g.nodes() {
            let p = sched.parent(v);
            if p == INVALID_NODE {
                prop_assert!(part.is_center(v));
                prop_assert_eq!(sched.depth(v), 0);
            } else {
                prop_assert!(g.has_edge(v, p));
                prop_assert_eq!(sched.depth(v), sched.depth(p) + 1);
                prop_assert_eq!(sched.cluster(v), sched.cluster(p));
                prop_assert!(sched.children(p).contains(&v));
            }
        }
        // nodes_at_depth partitions the node set.
        let total: usize =
            (0..=sched.max_depth()).map(|d| sched.nodes_at_depth(d).len()).sum();
        prop_assert_eq!(total, g.n());
    }

    #[test]
    fn coloring_is_conflict_free_unless_overflowed(
        g in arb_connected_graph(), seed in any::<u64>(), beta_milli in 50u32..900,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let part = Partition::compute(&g, beta_milli as f64 / 1000.0, &mut rng);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        if sched.overflow() == 0 {
            prop_assert_eq!(sched.conflict_violations(&g), 0);
        }
    }

    #[test]
    fn downcast_serves_exactly_the_ball_on_single_cluster(
        g in arb_connected_graph(), radius in 1u32..12,
    ) {
        let mut rng = SmallRng::seed_from_u64(1);
        let part = Partition::compute(&g, 1e-9, &mut rng);
        prop_assume!(part.num_clusters() == 1);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let mut dc = Downcast::from_center_values(&sched, radius, &[Some(7)]);
        let budget = dc.pass_len();
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 2);
        sim.run(&mut dc, budget);
        for v in g.nodes() {
            prop_assert_eq!(
                dc.value_of(v).is_some(),
                sched.depth(v) <= radius.min(sched.max_depth()),
                "node {} depth {}", v, sched.depth(v)
            );
        }
    }

    #[test]
    fn upcast_always_reports_a_true_participant_value(
        g in arb_connected_graph(), seed in any::<u64>(),
    ) {
        // The convergecast result at each center must be a value some
        // participant actually held — never fabricated, never from another
        // cluster.
        let mut rng = SmallRng::seed_from_u64(seed);
        let part = Partition::compute(&g, 0.4, &mut rng);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let mut participating: Vec<Option<u64>> = vec![None; g.n()];
        for v in g.nodes() {
            if v % 3 == 0 {
                participating[v as usize] = Some(1000 + v as u64);
            }
        }
        let mut uc = Upcast::new(&sched, sched.max_depth(), participating.clone());
        let budget = uc.pass_len();
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 3);
        sim.run(&mut uc, budget);
        for &c in part.centers() {
            if let Some(x) = uc.value_of(c) {
                let idx = part.cluster_index(c);
                let legal = part
                    .members(idx)
                    .iter()
                    .filter_map(|&m| participating[m as usize])
                    .any(|p| p == x)
                    || participating[c as usize] == Some(x);
                prop_assert!(legal, "center {} reported foreign/fabricated {}", c, x);
            }
        }
    }

    #[test]
    fn pipeline_delivers_everything_on_single_cluster(
        g in arb_connected_graph(), k in 1usize..6,
    ) {
        let mut rng = SmallRng::seed_from_u64(5);
        let part = Partition::compute(&g, 1e-9, &mut rng);
        prop_assume!(part.num_clusters() == 1);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let msgs: Vec<u64> = (0..k as u64).map(|i| 50 + i).collect();
        let mut p =
            PipelinedDowncast::new(&sched, sched.max_depth(), std::slice::from_ref(&msgs));
        let budget = p.pass_len();
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 6);
        sim.run(&mut p, budget);
        for v in g.nodes() {
            for (m, &expect) in msgs.iter().enumerate() {
                prop_assert_eq!(p.value_of(v, m as u32), Some(expect),
                    "node {} message {}", v, m);
            }
        }
    }
}
