//! Pipelined multi-message downcast — the `k`-message half of the paper's
//! Lemma 2.3: one-to-all broadcast of `k` messages in
//! `O(ℓ + k·log n + polylog n)` rounds.
//!
//! Messages are injected one per **three** layer-windows. With gap 3, the
//! layers transmitting simultaneously at any window are `{d, d±3, d±6, …}`,
//! and a listener at depth `d+1` has neighbors only at depths
//! `{d, d+1, d+2}` (BFS property) — so the only transmitting layer it can
//! hear is its parent's, and the intra-layer slot coloring handles the rest.
//! Total cost for `k` messages to radius ℓ:
//! `(3·(k−1) + ℓ + 1) · W` rounds — linear in both ℓ and `k·W` with
//! `W = O(log n)`, exactly the Lemma 2.3 contract.

use crate::tree::TreeSchedule;
use rn_graph::NodeId;
use rn_sim::{Protocol, Round, TxBuf};

/// Message of a pipelined downcast: which cluster, which pipeline index,
/// and the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineMsg {
    /// Cluster index of the transmitter.
    pub cluster: u32,
    /// Index of the message in the pipeline (`0..k`).
    pub index: u32,
    /// Payload.
    pub value: u64,
}

/// Executes a `k`-message pipelined broadcast from every cluster center
/// simultaneously (all clusters share the window clock; clusters with fewer
/// messages simply finish their pipeline early).
#[derive(Debug)]
pub struct PipelinedDowncast<'s> {
    sched: &'s TreeSchedule,
    radius: u32,
    k: u32,
    /// `received[v][m]` = payload of message `m` at node `v`.
    received: Vec<Vec<Option<u64>>>,
}

/// Gap (in layer-windows) between consecutive pipelined messages; 3 is the
/// smallest gap for which concurrently transmitting layers are never
/// adjacent to a common listener (see module docs).
const GAP: u64 = 3;

impl<'s> PipelinedDowncast<'s> {
    /// Starts a pipeline where the center of cluster `c` broadcasts
    /// `messages_by_cluster[c]` (up to a common maximum length `k`).
    ///
    /// # Panics
    ///
    /// Panics if `messages_by_cluster` is empty or all message lists are
    /// empty.
    pub fn new(
        sched: &'s TreeSchedule,
        radius: u32,
        messages_by_cluster: &[Vec<u64>],
    ) -> PipelinedDowncast<'s> {
        let k = messages_by_cluster.iter().map(|m| m.len()).max().unwrap_or(0) as u32;
        assert!(k > 0, "pipeline needs at least one message");
        let n: usize = (0..=sched.max_depth()).map(|d| sched.nodes_at_depth(d).len()).sum();
        let mut received = vec![vec![None; k as usize]; n];
        for v in 0..n as u32 {
            if sched.depth(v) == 0 {
                let msgs = &messages_by_cluster[sched.cluster(v) as usize];
                for (m, &val) in msgs.iter().enumerate() {
                    received[v as usize][m] = Some(val);
                }
            }
        }
        PipelinedDowncast { sched, radius: radius.min(sched.max_depth()), k, received }
    }

    /// Number of pipelined messages `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Total rounds of the pipeline: `(3·(k−1) + radius + 1) · W`.
    pub fn pass_len(&self) -> u64 {
        (GAP * (self.k as u64 - 1) + self.radius as u64 + 1) * self.sched.window() as u64
    }

    /// Message `m` as received by `node`.
    pub fn value_of(&self, node: NodeId, m: u32) -> Option<u64> {
        self.received[node as usize][m as usize]
    }

    /// Whether `node` has received its cluster's entire pipeline (only
    /// indices its center actually sent).
    pub fn has_all(&self, node: NodeId, sent: usize) -> bool {
        self.received[node as usize].iter().take(sent).all(|x| x.is_some())
    }
}

impl Protocol for PipelinedDowncast<'_> {
    type Msg = PipelineMsg;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<PipelineMsg>) {
        let w = self.sched.window() as u64;
        let window = round / w;
        let slot = (round % w) as u32;
        // Layers congruent to `window mod GAP` are active; layer d carries
        // message (window - d)/GAP.
        let start = (window % GAP) as u32;
        let mut d = start;
        while d <= self.radius {
            if window >= d as u64 && (window - d as u64) / GAP < self.k as u64 {
                let m = ((window - d as u64) / GAP) as usize;
                for &u in self.sched.nodes_at_depth(d) {
                    if self.sched.down_slot(u) != slot {
                        continue;
                    }
                    if let Some(v) = self.received[u as usize][m] {
                        tx.send(
                            u,
                            PipelineMsg {
                                cluster: self.sched.cluster(u),
                                index: m as u32,
                                value: v,
                            },
                        );
                    }
                }
            }
            d += GAP as u32;
        }
    }

    fn deliver(&mut self, _round: Round, node: NodeId, _from: NodeId, msg: &PipelineMsg) {
        if msg.cluster != self.sched.cluster(node) || self.sched.depth(node) > self.radius {
            return;
        }
        let slot = &mut self.received[node as usize][msg.index as usize];
        if slot.is_none() {
            *slot = Some(msg.value);
        }
    }

    fn done(&self, round: Round) -> bool {
        round >= self.pass_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SlotPolicy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rn_cluster::Partition;
    use rn_graph::{generators, Graph};
    use rn_sim::{CollisionModel, Simulator};

    fn single_cluster(g: &Graph) -> Partition {
        let mut rng = SmallRng::seed_from_u64(0);
        Partition::compute(g, 1e-9, &mut rng)
    }

    fn run_pipeline(
        g: &Graph,
        sched: &TreeSchedule,
        radius: u32,
        msgs: Vec<u64>,
    ) -> Vec<Vec<Option<u64>>> {
        let k = msgs.len();
        let mut p = PipelinedDowncast::new(sched, radius, &[msgs]);
        let budget = p.pass_len();
        let mut sim = Simulator::new(g, CollisionModel::NoCollisionDetection, 3);
        sim.run(&mut p, budget);
        g.nodes().map(|v| (0..k as u32).map(|m| p.value_of(v, m)).collect()).collect()
    }

    #[test]
    fn delivers_all_k_messages_within_radius_on_grid() {
        let g = generators::grid(9, 9);
        let part = single_cluster(&g);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let msgs = vec![10, 20, 30, 40, 50];
        let radius = sched.max_depth();
        let got = run_pipeline(&g, &sched, radius, msgs.clone());
        for v in g.nodes() {
            for (m, &expect) in msgs.iter().enumerate() {
                assert_eq!(got[v as usize][m], Some(expect), "node {v} message {m}");
            }
        }
    }

    #[test]
    fn pipeline_cost_is_linear_in_k_and_radius() {
        let g = generators::path(100);
        let part = single_cluster(&g);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let w = sched.window() as u64;
        let mk = |k: usize| {
            PipelinedDowncast::new(&sched, 20, &[(0..k as u64).collect::<Vec<_>>()]).pass_len()
        };
        assert_eq!(mk(1), 21 * w);
        assert_eq!(mk(4), (3 * 3 + 21) * w);
        assert_eq!(mk(4) - mk(1), 9 * w, "3 windows per extra message");
    }

    #[test]
    fn respects_curtailment_radius() {
        let g = generators::path(60);
        let part = single_cluster(&g);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let radius = 5;
        let got = run_pipeline(&g, &sched, radius, vec![7, 8]);
        for v in g.nodes() {
            let within = sched.depth(v) <= radius;
            assert_eq!(got[v as usize][0].is_some(), within, "node {v}");
            assert_eq!(got[v as usize][1].is_some(), within, "node {v}");
        }
    }

    #[test]
    fn multi_cluster_pipelines_with_different_lengths() {
        let g = generators::grid(12, 12);
        let mut rng = SmallRng::seed_from_u64(5);
        let part = Partition::compute(&g, 0.25, &mut rng);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let msgs: Vec<Vec<u64>> = (0..part.num_clusters())
            .map(|c| (0..=(c % 3) as u64).map(|i| 100 * (c as u64 + 1) + i).collect())
            .collect();
        let mut p = PipelinedDowncast::new(&sched, sched.max_depth(), &msgs);
        let budget = p.pass_len();
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 9);
        sim.run(&mut p, budget);
        // No node may hold a foreign cluster's payload.
        for v in g.nodes() {
            let c = part.cluster_index(v) as usize;
            for m in 0..p.k() {
                if let Some(x) = p.value_of(v, m) {
                    assert_eq!(x, 100 * (c as u64 + 1) + m as u64, "node {v} msg {m}");
                }
            }
            // Centers trivially have their own pipeline.
            if part.is_center(v) {
                assert!(p.has_all(v, msgs[c].len()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one message")]
    fn empty_pipeline_rejected() {
        let g = generators::path(4);
        let part = single_cluster(&g);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let _ = PipelinedDowncast::new(&sched, 2, &[vec![]]);
    }
}
