use crate::tree::TreeSchedule;
use rn_graph::NodeId;
use rn_sim::{Protocol, Round, TxBuf};

/// Message carried by schedule executions: the transmitting node's cluster
/// index and the value being moved. Receivers discard messages from other
/// clusters (intra-cluster propagation is, by definition, per cluster; value
/// exchange *between* clusters happens across successive clusterings, not
/// within one schedule pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedMsg {
    /// Cluster index of the transmitter.
    pub cluster: u32,
    /// The `u64` value being propagated (Compete messages are totally
    /// ordered; `u64` covers the paper's integer-valued messages).
    pub value: u64,
}

/// One-to-all **downcast** pass: every cluster center's value flows down the
/// BFS tree, one layer window at a time, out to `radius`. All clusters run
/// simultaneously; intra-cluster collisions are prevented by the slot
/// coloring, inter-cluster collisions are left to the caller's background
/// process (paper Algorithm 4).
#[derive(Debug)]
pub struct Downcast<'s> {
    sched: &'s TreeSchedule,
    radius: u32,
    value: Vec<Option<u64>>,
}

impl<'s> Downcast<'s> {
    /// Starts a downcast from per-node seed values (typically: centers hold
    /// their cluster's current max, everyone else `None`).
    ///
    /// # Panics
    ///
    /// Panics if `seed_values.len()` differs from the schedule's node count.
    pub fn new(
        sched: &'s TreeSchedule,
        radius: u32,
        seed_values: Vec<Option<u64>>,
    ) -> Downcast<'s> {
        assert_eq!(seed_values.len(), sched_len(sched), "one seed per node");
        Downcast { sched, radius: radius.min(sched.max_depth()), value: seed_values }
    }

    /// Convenience: seed each cluster center with `values_by_cluster[its
    /// cluster index]`.
    pub fn from_center_values(
        sched: &'s TreeSchedule,
        radius: u32,
        values_by_cluster: &[Option<u64>],
    ) -> Downcast<'s> {
        let n = sched_len(sched);
        let mut seed = vec![None; n];
        for v in 0..n {
            let v = v as NodeId;
            if sched.depth(v) == 0 {
                seed[v as usize] = values_by_cluster[sched.cluster(v) as usize];
            }
        }
        Downcast::new(sched, radius, seed)
    }

    /// Number of rounds a full pass takes.
    pub fn pass_len(&self) -> u64 {
        self.sched.pass_len(self.radius)
    }

    /// Value held by `node` (its cluster's center value once received).
    pub fn value_of(&self, node: NodeId) -> Option<u64> {
        self.value[node as usize]
    }

    /// Consumes the executor, returning the per-node values.
    pub fn into_values(self) -> Vec<Option<u64>> {
        self.value
    }
}

impl Protocol for Downcast<'_> {
    type Msg = SchedMsg;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<SchedMsg>) {
        let w = self.sched.window() as u64;
        let window = (round / w) as u32;
        let slot = (round % w) as u32;
        if window > self.radius {
            return;
        }
        for &u in self.sched.nodes_at_depth(window) {
            if self.sched.down_slot(u) != slot {
                continue;
            }
            if let Some(v) = self.value[u as usize] {
                tx.send(u, SchedMsg { cluster: self.sched.cluster(u), value: v });
            }
        }
    }

    fn deliver(&mut self, _round: Round, node: NodeId, _from: NodeId, msg: &SchedMsg) {
        if msg.cluster != self.sched.cluster(node) {
            return;
        }
        if self.sched.depth(node) > self.radius {
            return; // curtailment: nodes beyond the radius do not participate
        }
        let slot = &mut self.value[node as usize];
        match slot {
            None => *slot = Some(msg.value),
            Some(old) if msg.value > *old => *old = msg.value,
            _ => {}
        }
    }

    fn done(&self, round: Round) -> bool {
        round >= self.pass_len()
    }
}

/// All-to-one **upcast** pass: max-convergecast of participating nodes'
/// values to their cluster centers, deepest layer first. Values are
/// aggregated (max) at every hop, so the center learns the maximum of all
/// participants within `radius` whose path was not jammed by another
/// cluster.
#[derive(Debug)]
pub struct Upcast<'s> {
    sched: &'s TreeSchedule,
    radius: u32,
    value: Vec<Option<u64>>,
}

impl<'s> Upcast<'s> {
    /// Starts an upcast where node `v` participates iff
    /// `participating[v] = Some(value)`.
    ///
    /// # Panics
    ///
    /// Panics if `participating.len()` differs from the schedule's node count.
    pub fn new(
        sched: &'s TreeSchedule,
        radius: u32,
        participating: Vec<Option<u64>>,
    ) -> Upcast<'s> {
        assert_eq!(participating.len(), sched_len(sched), "one entry per node");
        Upcast { sched, radius: radius.min(sched.max_depth()), value: participating }
    }

    /// Number of rounds a full pass takes.
    pub fn pass_len(&self) -> u64 {
        self.sched.pass_len(self.radius)
    }

    /// The aggregated value at `node` (for centers: the convergecast result).
    pub fn value_of(&self, node: NodeId) -> Option<u64> {
        self.value[node as usize]
    }

    /// Consumes the executor, returning per-node aggregated values.
    pub fn into_values(self) -> Vec<Option<u64>> {
        self.value
    }
}

impl Protocol for Upcast<'_> {
    type Msg = SchedMsg;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<SchedMsg>) {
        let w = self.sched.window() as u64;
        let window = (round / w) as u32;
        let slot = (round % w) as u32;
        if window > self.radius {
            return;
        }
        let depth = self.radius - window; // deepest first
        if depth == 0 {
            return; // centers never transmit upward
        }
        for &u in self.sched.nodes_at_depth(depth) {
            if self.sched.up_slot(u) != slot {
                continue;
            }
            if let Some(v) = self.value[u as usize] {
                tx.send(u, SchedMsg { cluster: self.sched.cluster(u), value: v });
            }
        }
    }

    fn deliver(&mut self, _round: Round, node: NodeId, _from: NodeId, msg: &SchedMsg) {
        if msg.cluster != self.sched.cluster(node) {
            return;
        }
        if self.sched.depth(node) > self.radius {
            return;
        }
        let slot = &mut self.value[node as usize];
        match slot {
            None => *slot = Some(msg.value),
            Some(old) if msg.value > *old => *old = msg.value,
            _ => {}
        }
    }

    fn done(&self, round: Round) -> bool {
        round >= self.pass_len()
    }
}

fn sched_len(sched: &TreeSchedule) -> usize {
    // nodes_at_depth partitions the node set.
    (0..=sched.max_depth()).map(|d| sched.nodes_at_depth(d).len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SlotPolicy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rn_cluster::Partition;
    use rn_graph::{generators, Graph};
    use rn_sim::{CollisionModel, Simulator};

    fn single_cluster(g: &Graph) -> Partition {
        let mut rng = SmallRng::seed_from_u64(0);
        Partition::compute(g, 1e-9, &mut rng)
    }

    #[test]
    fn downcast_informs_exactly_the_radius_ball() {
        let g = generators::grid(11, 11);
        let part = single_cluster(&g);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let radius = 6;
        let mut dc = Downcast::from_center_values(&sched, radius, &[Some(77)]);
        let budget = dc.pass_len();
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.run(&mut dc, budget);
        for v in g.nodes() {
            if sched.depth(v) <= radius {
                assert_eq!(dc.value_of(v), Some(77), "node {v} at depth {}", sched.depth(v));
            } else {
                assert_eq!(dc.value_of(v), None, "node {v} beyond radius");
            }
        }
    }

    #[test]
    fn downcast_radius_zero_reaches_center_only() {
        let g = generators::path(20);
        let part = single_cluster(&g);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let mut dc = Downcast::from_center_values(&sched, 0, &[Some(5)]);
        let budget = dc.pass_len();
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 1);
        sim.run(&mut dc, budget);
        let informed = g.nodes().filter(|&v| dc.value_of(v).is_some()).count();
        assert_eq!(informed, 1);
    }

    #[test]
    fn upcast_delivers_max_to_center() {
        let g = generators::grid(9, 9);
        let part = single_cluster(&g);
        let center = part.centers()[0];
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        // Three participants with different values; deepest holds the max.
        let mut participating = vec![None; g.n()];
        let deepest = g.nodes().max_by_key(|&v| sched.depth(v)).unwrap();
        participating[deepest as usize] = Some(900);
        participating[10] = Some(5);
        participating[30] = Some(17);
        let mut uc = Upcast::new(&sched, sched.max_depth(), participating);
        let budget = uc.pass_len();
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 2);
        sim.run(&mut uc, budget);
        assert_eq!(uc.value_of(center), Some(900));
    }

    #[test]
    fn upcast_with_no_participants_leaves_center_empty() {
        let g = generators::path(30);
        let part = single_cluster(&g);
        let center = part.centers()[0];
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let mut uc = Upcast::new(&sched, sched.max_depth(), vec![None; g.n()]);
        let budget = uc.pass_len();
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 3);
        let stats = sim.run(&mut uc, budget);
        assert_eq!(uc.value_of(center), None);
        assert_eq!(stats.metrics.transmissions, 0, "silence when nobody participates");
    }

    #[test]
    fn upcast_curtailment_ignores_deep_participants() {
        let g = generators::path(40); // center lands somewhere in the middle
        let part = single_cluster(&g);
        let center = part.centers()[0];
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let deepest = g.nodes().max_by_key(|&v| sched.depth(v)).unwrap();
        let d = sched.depth(deepest);
        assert!(d >= 4, "need some depth for the test");
        let mut participating = vec![None; g.n()];
        participating[deepest as usize] = Some(123);
        let radius = d - 2; // curtail below the participant
        let mut uc = Upcast::new(&sched, radius, participating);
        let budget = uc.pass_len();
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 4);
        sim.run(&mut uc, budget);
        assert_eq!(uc.value_of(center), None, "curtailed participant must not reach center");
    }

    #[test]
    fn multi_cluster_downcast_never_delivers_foreign_values() {
        let g = generators::grid(14, 14);
        let mut rng = SmallRng::seed_from_u64(5);
        let part = Partition::compute(&g, 0.4, &mut rng);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let values: Vec<Option<u64>> =
            (0..part.num_clusters()).map(|i| Some(1000 + i as u64)).collect();
        let mut dc = Downcast::from_center_values(&sched, sched.max_depth(), &values);
        let budget = dc.pass_len();
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut dc, budget);
        let mut informed = 0;
        for v in g.nodes() {
            match dc.value_of(v) {
                None => {}
                Some(x) => {
                    assert_eq!(
                        x,
                        1000 + part.cluster_index(v) as u64,
                        "node {v} got a foreign cluster's value"
                    );
                    informed += 1;
                }
            }
        }
        // Centers at least are informed; boundary interference may block some
        // others, but the majority should be reached on a grid.
        assert!(informed > g.n() / 2, "only {informed} of {} informed", g.n());
    }

    #[test]
    fn round_trip_down_then_up() {
        // Down: center value reaches everyone. Up: a planted higher value
        // returns to the center. This is exactly one Intra-Cluster
        // Propagation step 1 + 2 (Algorithm 3).
        let g = generators::grid(8, 8);
        let part = single_cluster(&g);
        let center = part.centers()[0];
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let radius = sched.max_depth();

        let mut dc = Downcast::from_center_values(&sched, radius, &[Some(10)]);
        let b = dc.pass_len();
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 6);
        sim.run(&mut dc, b);
        let after_down = dc.into_values();

        // One node knows a higher value (e.g. learnt in an earlier clustering).
        let mut participating = vec![None; g.n()];
        for v in g.nodes() {
            if after_down[v as usize] == Some(10) && v == 63 {
                participating[v as usize] = Some(99);
            }
        }
        let mut uc = Upcast::new(&sched, radius, participating);
        let b = uc.pass_len();
        sim.run(&mut uc, b);
        assert_eq!(uc.value_of(center), Some(99));
    }
}
