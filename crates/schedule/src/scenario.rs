//! [`Runnable`] scenario + [`ProtocolFamily`] registration for the schedule
//! executors: `schedule(downcast|upcast[,BETA])` measures one
//! Downcast/Upcast pass over a **fresh Partition(β)** — the Lemma 2.3
//! substrate the paper's pipeline is built on — as a real radio protocol on
//! the campaign's footing (topologies × models × faults).
//!
//! Per trial: sample a fresh oracle Partition(β) from the trial seed, build
//! the [`TreeSchedule`], seed per-cluster values, and run one full-radius
//! pass through the simulator. `completed` reports whether the pass met the
//! *simultaneous-clusters* contract — downcast: every node received its own
//! cluster's center value; upcast: every center aggregated its cluster's
//! maximum. Intra-cluster collisions cannot happen (the slot coloring
//! forbids them); *inter*-cluster collisions can and do, which is exactly
//! what the paper's Intra-Cluster Propagation background process exists to
//! absorb — so the completion rate of these cells quantifies how much work
//! ICP has to do at a given β.

use crate::executors::{Downcast, Upcast};
use crate::tree::{SlotPolicy, TreeSchedule, TreeScheduleScratch};
use rn_cluster::{Partition, PartitionScratch};
use rn_graph::Graph;
use rn_sim::family::{ParsedArgs, ProtocolFamily};
use rn_sim::{
    rng, CollisionModel, FaultSchedule, NetParams, Runnable, Simulator, TrialPool, TrialRecord,
};

/// Per-worker reusable state behind [`ScheduleScenario`]'s pooled trials:
/// the per-trial partition and tree schedule (recomputed in place) plus
/// their construction scratch. The executors themselves still allocate
/// their value tables — this scenario is not on the zero-allocation
/// contract; pooling just removes the dominant construction buffers.
#[derive(Debug, Default)]
struct SchedulePool {
    partition: Option<Partition>,
    pscratch: PartitionScratch,
    schedule: Option<TreeSchedule>,
    sscratch: TreeScheduleScratch,
}

/// Which executor a `schedule(...)` scenario measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleOp {
    /// One-to-all: every center's value flows down its cluster tree.
    Downcast,
    /// All-to-one: max-convergecast of every member's value to its center.
    Upcast,
}

impl ScheduleOp {
    fn as_str(self) -> &'static str {
        match self {
            ScheduleOp::Downcast => "downcast",
            ScheduleOp::Upcast => "upcast",
        }
    }
}

/// Default clustering parameter when the spec elides it.
pub const DEFAULT_SCHEDULE_BETA: f64 = 0.25;

/// One Downcast/Upcast pass over a fresh per-trial Partition(β). See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct ScheduleScenario {
    /// The executor under measurement.
    pub op: ScheduleOp,
    /// Clustering parameter of the per-trial partition.
    pub beta: f64,
    /// Registry name (e.g. `"schedule(upcast)"`, `"schedule(downcast,0.1)"`).
    pub label: String,
}

impl ScheduleScenario {
    /// A scenario for `op` over Partition(`beta`).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not in `(0, 1]`.
    pub fn new(op: ScheduleOp, beta: f64) -> ScheduleScenario {
        assert!(
            beta > 0.0 && beta <= 1.0 && beta.is_finite(),
            "schedule beta {beta} not in (0, 1]"
        );
        let label = if beta == DEFAULT_SCHEDULE_BETA {
            format!("schedule({})", op.as_str())
        } else {
            format!("schedule({},{beta})", op.as_str())
        };
        ScheduleScenario { op, beta, label }
    }

    /// One executor pass over an already-constructed clustering + schedule —
    /// the part of the trial shared by the fresh and pooled paths.
    fn run_pass(
        &self,
        g: &Graph,
        part: &Partition,
        sched: &TreeSchedule,
        sim: &mut Simulator<'_>,
    ) -> TrialRecord {
        let radius = sched.max_depth();
        match self.op {
            ScheduleOp::Downcast => {
                // Every center broadcasts a distinct per-cluster value.
                let values: Vec<Option<u64>> =
                    (0..part.num_clusters()).map(|i| Some(i as u64 + 1)).collect();
                let mut dc = Downcast::from_center_values(sched, radius, &values);
                let budget = dc.pass_len();
                let stats = sim.run(&mut dc, budget);
                let complete =
                    g.nodes().all(|v| dc.value_of(v) == Some(part.cluster_index(v) as u64 + 1));
                TrialRecord::new(complete, stats.rounds, stats.metrics)
            }
            ScheduleOp::Upcast => {
                // Every node participates with a value decreasing in node
                // id, so each center must learn the smallest member id's
                // value — a max that genuinely has to travel.
                let n = g.n() as u64;
                let participating: Vec<Option<u64>> =
                    g.nodes().map(|v| Some(n - v as u64)).collect();
                let expected = |cluster: u32| {
                    part.members(cluster).iter().map(|&v| n - v as u64).max().expect("non-empty")
                };
                let mut uc = Upcast::new(sched, radius, participating);
                let budget = uc.pass_len();
                let stats = sim.run(&mut uc, budget);
                let complete = part
                    .centers()
                    .iter()
                    .all(|&c| uc.value_of(c) == Some(expected(part.cluster_index(c))));
                TrialRecord::new(complete, stats.rounds, stats.metrics)
            }
        }
    }
}

impl Runnable for ScheduleScenario {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_trial_scheduled(
        &self,
        g: &Graph,
        _net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
    ) -> TrialRecord {
        // The partition is part of the trial's randomness: a fresh oracle
        // clustering per trial, from a dedicated stream of the trial seed.
        let mut prng = rng::stream_rng(seed, 0x5CED);
        let part = Partition::compute(g, self.beta, &mut prng);
        let sched = TreeSchedule::build(g, &part, SlotPolicy::Auto);
        let mut sim = Simulator::with_faults(g, model, seed, faults.cloned());
        self.run_pass(g, &part, &sched, &mut sim)
    }

    fn run_trial_pooled(
        &self,
        g: &Graph,
        _net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
        pool: &mut TrialPool,
    ) -> TrialRecord {
        let (engine, st) = pool.parts(SchedulePool::default);
        let mut prng = rng::stream_rng(seed, 0x5CED);
        if let Some(p) = st.partition.as_mut() {
            p.recompute(g, self.beta, &mut prng, &mut st.pscratch);
        } else {
            st.partition = Some(Partition::compute(g, self.beta, &mut prng));
        }
        let part = st.partition.as_ref().expect("slot was just filled");
        if let Some(s) = st.schedule.as_mut() {
            s.rebuild(g, part, SlotPolicy::Auto, &mut st.sscratch);
        } else {
            st.schedule = Some(TreeSchedule::build(g, part, SlotPolicy::Auto));
        }
        let sched = st.schedule.as_ref().expect("slot was just filled");
        let mut sim = Simulator::reuse(engine, g, model, seed, faults.cloned());
        self.run_pass(g, part, sched, &mut sim)
    }
}

/// `schedule(downcast|upcast[,BETA])` — the family registration.
pub struct ScheduleFamily;

impl ScheduleFamily {
    fn parse(args: Option<&str>) -> Result<(ScheduleOp, f64), String> {
        let a = args.ok_or("schedule needs an executor, e.g. schedule(downcast)")?;
        let (op_str, beta_str) = match a.split_once(',') {
            Some((op, b)) => (op.trim(), Some(b.trim())),
            None => (a.trim(), None),
        };
        let op = match op_str {
            "downcast" => ScheduleOp::Downcast,
            "upcast" => ScheduleOp::Upcast,
            other => {
                return Err(format!("unknown schedule executor {other:?} (downcast | upcast)"))
            }
        };
        let beta = match beta_str {
            None => DEFAULT_SCHEDULE_BETA,
            Some(b) => {
                let beta: f64 =
                    b.parse().map_err(|_| format!("schedule: {b:?} is not a number"))?;
                if !(beta > 0.0 && beta <= 1.0 && beta.is_finite()) {
                    return Err(format!("schedule: beta {b} not in (0, 1]"));
                }
                beta
            }
        };
        Ok((op, beta))
    }
}

impl ProtocolFamily for ScheduleFamily {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn grammar(&self) -> &'static str {
        "schedule(downcast|upcast[,BETA])"
    }

    fn about(&self) -> &'static str {
        "one Downcast/Upcast pass over a fresh Partition(beta) (Lemma 2.3)"
    }

    fn canonical_instances(&self) -> &'static [Option<&'static str>] {
        &[Some("downcast"), Some("upcast")]
    }

    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String> {
        let (op, beta) = ScheduleFamily::parse(args)?;
        let canonical = if beta == DEFAULT_SCHEDULE_BETA {
            op.as_str().to_string()
        } else {
            format!("{},{beta}", op.as_str())
        };
        Ok(ParsedArgs::with_args(canonical))
    }

    fn instantiate(
        &self,
        args: Option<&str>,
        _overrides: &[(&'static rn_sim::OverrideSpec, f64)],
        _label: &str,
    ) -> Box<dyn Runnable> {
        let (op, beta) = ScheduleFamily::parse(args).expect("canonical schedule args");
        Box::new(ScheduleScenario::new(op, beta))
    }
}

/// The protocol families this crate contributes to the registry.
pub fn families() -> Vec<&'static dyn ProtocolFamily> {
    vec![&ScheduleFamily]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    #[test]
    fn schedule_scenarios_run_and_are_deterministic() {
        let g = generators::grid(10, 10);
        let net = NetParams::of_graph(&g);
        for op in [ScheduleOp::Downcast, ScheduleOp::Upcast] {
            let s = ScheduleScenario::new(op, DEFAULT_SCHEDULE_BETA);
            let a = s.run_trial(&g, net, CollisionModel::NoCollisionDetection, 5);
            let b = s.run_trial(&g, net, CollisionModel::NoCollisionDetection, 5);
            assert_eq!(a, b, "{op:?}: same seed, same trial");
            assert!(a.rounds > 0);
            assert!(a.metrics.transmissions > 0, "{op:?} really transmits");
        }
    }

    #[test]
    fn pooled_trials_match_fresh_trials_exactly() {
        // One pool across ops, graphs and seeds (partition + schedule are
        // recomputed in place each trial); records must match bit for bit.
        let graphs = [generators::grid(10, 10), generators::path(40)];
        let mut pool = TrialPool::new();
        for op in [ScheduleOp::Downcast, ScheduleOp::Upcast] {
            let s = ScheduleScenario::new(op, DEFAULT_SCHEDULE_BETA);
            for g in &graphs {
                let net = NetParams::of_graph(g);
                for seed in 0..3 {
                    let fresh = s.run_trial(g, net, CollisionModel::NoCollisionDetection, seed);
                    let pooled = s.run_trial_pooled(
                        g,
                        net,
                        CollisionModel::NoCollisionDetection,
                        seed,
                        None,
                        &mut pool,
                    );
                    assert_eq!(fresh, pooled, "{op:?} n={} seed {seed}", g.n());
                }
            }
        }
    }

    #[test]
    fn near_single_cluster_passes_complete() {
        // With a tiny beta the partition is (almost surely) one cluster, so
        // there is no inter-cluster interference and the Lemma 2.3 contract
        // holds exactly: both passes must complete.
        let g = generators::grid(8, 8);
        let net = NetParams::of_graph(&g);
        for op in [ScheduleOp::Downcast, ScheduleOp::Upcast] {
            let s = ScheduleScenario::new(op, 1e-6);
            let r = s.run_trial(&g, net, CollisionModel::NoCollisionDetection, 3);
            assert!(r.completed, "{op:?} completes without inter-cluster interference");
        }
    }

    #[test]
    fn family_grammar_parses_and_canonicalizes() {
        let f = ScheduleFamily;
        let p = f.parse_args(Some("downcast")).expect("parses");
        assert_eq!(p.canonical.as_deref(), Some("downcast"), "default beta is elided");
        let p = f.parse_args(Some("upcast, 0.1")).expect("parses");
        assert_eq!(p.canonical.as_deref(), Some("upcast,0.1"));
        let p = f.parse_args(Some("upcast,0.25")).expect("parses");
        assert_eq!(p.canonical.as_deref(), Some("upcast"), "explicit default canonicalizes away");
        assert!(f.parse_args(None).is_err());
        assert!(f.parse_args(Some("sideways")).is_err());
        assert!(f.parse_args(Some("upcast,2")).is_err());
        let r = f.instantiate(Some("upcast"), &[], "schedule(upcast)");
        assert_eq!(r.name(), "schedule(upcast)");
        let r = f.instantiate(Some("downcast,0.1"), &[], "schedule(downcast,0.1)");
        assert_eq!(r.name(), "schedule(downcast,0.1)");
    }

    #[test]
    fn upcast_scenario_fails_honestly_when_everyone_crashes() {
        use rn_sim::FaultPlan;
        let g = generators::grid(6, 6);
        let net = NetParams::of_graph(&g);
        let s = ScheduleScenario::new(ScheduleOp::Downcast, 0.000001);
        let r = s.run_trial_under_faults(
            &g,
            net,
            CollisionModel::NoCollisionDetection,
            4,
            &FaultPlan::crash(1.0),
        );
        assert!(!r.completed, "a crashed network cannot complete a pass");
        assert_eq!(r.metrics.deliveries, 0);
    }
}
