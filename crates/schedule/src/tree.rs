use rn_cluster::Partition;
use rn_graph::{Graph, NodeId, INVALID_NODE};
use rn_sim::NetParams;
use std::collections::VecDeque;

/// How the window width `W` (slots per tree layer = schedule period) is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotPolicy {
    /// Use the maximum number of colors any layer needs, capped at
    /// `4·⌈log₂ n⌉` (the cap keeps the period `O(log n)` as in Lemma 2.3;
    /// layers needing more overflow onto reused slots and are repaired by
    /// the ICP background process).
    Auto,
    /// A fixed window width.
    Fixed(u32),
}

/// Per-cluster BFS trees plus a conflict-free layer/slot schedule, for all
/// clusters of one [`Partition`] at once.
///
/// # Example
///
/// ```
/// use rn_cluster::Partition;
/// use rn_graph::generators;
/// use rn_schedule::{SlotPolicy, TreeSchedule};
/// use rand::SeedableRng;
///
/// let g = generators::grid(12, 12);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let part = Partition::compute(&g, 0.3, &mut rng);
/// let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
/// assert!(sched.window() >= 1);
/// assert_eq!(sched.pass_len(sched.max_depth()), (sched.max_depth() as u64 + 1) * sched.window() as u64);
/// ```
#[derive(Debug, Clone)]
pub struct TreeSchedule {
    window: u32,
    max_depth: u32,
    /// BFS-tree parent within the cluster; `INVALID_NODE` for centers.
    parent: Vec<NodeId>,
    /// Depth within the cluster tree (0 for centers).
    depth: Vec<u32>,
    /// Cluster index per node (copied from the partition).
    cluster: Vec<u32>,
    /// Downcast slot of a node (valid if it has tree children), else `u32::MAX`.
    down_slot: Vec<u32>,
    /// Upcast slot of a node (valid unless it is a center), else `u32::MAX`.
    up_slot: Vec<u32>,
    /// CSR of nodes grouped by depth across all clusters (they share
    /// windows): depth `d` owns `depth_nodes[depth_start[d]..depth_start[d+1]]`.
    /// Flat so pooled rebuilds reuse two `n`-bounded buffers even when
    /// `max_depth` changes between trials.
    depth_start: Vec<u32>,
    depth_nodes: Vec<NodeId>,
    /// CSR of tree children: node `v` owns
    /// `child_data[child_start[v]..child_start[v+1]]`.
    child_start: Vec<u32>,
    child_data: Vec<NodeId>,
    /// Number of nodes whose down/up color exceeded the window and wrapped.
    overflow: usize,
}

/// Reusable workspace for [`TreeSchedule::rebuild`]: the BFS queue, the
/// greedy coloring's used-color list, and the counting-sort cursors. All
/// three are bounded by `n`, so after the first rebuild on a given graph
/// subsequent rebuilds perform no heap allocation.
#[derive(Debug, Default)]
pub struct TreeScheduleScratch {
    queue: VecDeque<NodeId>,
    used: Vec<u32>,
    cursor: Vec<u32>,
}

impl TreeSchedule {
    /// Builds trees and slot colorings for every cluster of `partition`.
    pub fn build(g: &Graph, partition: &Partition, policy: SlotPolicy) -> TreeSchedule {
        let mut sched = TreeSchedule {
            window: 1,
            max_depth: 0,
            parent: Vec::new(),
            depth: Vec::new(),
            cluster: Vec::new(),
            down_slot: Vec::new(),
            up_slot: Vec::new(),
            depth_start: Vec::new(),
            depth_nodes: Vec::new(),
            child_start: Vec::new(),
            child_data: Vec::new(),
            overflow: 0,
        };
        sched.rebuild(g, partition, policy, &mut TreeScheduleScratch::default());
        sched
    }

    /// In-place [`TreeSchedule::build`]: byte-identical result (it *is* the
    /// build code path), but every buffer is reused from `self` and
    /// `scratch`. Pooled trial loops call this once per clustering instead
    /// of constructing fresh schedules.
    pub fn rebuild(
        &mut self,
        g: &Graph,
        partition: &Partition,
        policy: SlotPolicy,
        scratch: &mut TreeScheduleScratch,
    ) {
        let n = g.n();
        let TreeScheduleScratch { queue, used, cursor } = scratch;
        self.parent.clear();
        self.parent.resize(n, INVALID_NODE);
        self.depth.clear();
        self.depth.resize(n, u32::MAX);
        self.cluster.clear();
        self.cluster.extend((0..n).map(|v| partition.cluster_index(v as NodeId)));
        let TreeSchedule {
            parent,
            depth,
            cluster,
            down_slot,
            up_slot,
            depth_start,
            depth_nodes,
            child_start,
            child_data,
            ..
        } = self;

        // Per-cluster BFS with parents, restricted to the cluster.
        queue.clear();
        queue.reserve(n);
        for (idx, &c) in partition.centers().iter().enumerate() {
            let idx = idx as u32;
            depth[c as usize] = 0;
            queue.push_back(c);
            while let Some(u) = queue.pop_front() {
                let du = depth[u as usize];
                for &w in g.neighbors(u) {
                    if cluster[w as usize] == idx && depth[w as usize] == u32::MAX {
                        depth[w as usize] = du + 1;
                        parent[w as usize] = u;
                        queue.push_back(w);
                    }
                }
            }
        }
        debug_assert!(depth.iter().all(|&d| d != u32::MAX), "clusters are connected");

        let max_depth = depth.iter().copied().max().unwrap_or(0);
        self.max_depth = max_depth;

        // Nodes-by-depth CSR via counting sort (ascending node id per layer,
        // matching the old push order). `cursor` doubles as the write heads.
        depth_start.clear();
        depth_start.reserve(n + 2);
        depth_start.resize(max_depth as usize + 2, 0);
        for v in 0..n {
            depth_start[depth[v] as usize + 1] += 1;
        }
        for d in 0..max_depth as usize + 1 {
            depth_start[d + 1] += depth_start[d];
        }
        if depth_nodes.len() != n {
            depth_nodes.clear();
            depth_nodes.resize(n, 0);
        }
        cursor.clear();
        cursor.reserve(n + 1);
        cursor.extend_from_slice(&depth_start[..max_depth as usize + 1]);
        for v in 0..n {
            let at = &mut cursor[depth[v] as usize];
            depth_nodes[*at as usize] = v as NodeId;
            *at += 1;
        }

        // Children CSR (ascending child id per parent, as before).
        child_start.clear();
        child_start.resize(n + 1, 0);
        for &p in parent.iter() {
            if p != INVALID_NODE {
                child_start[p as usize + 1] += 1;
            }
        }
        for v in 0..n {
            child_start[v + 1] += child_start[v];
        }
        child_data.clear();
        // Reserve the worst case (every node a child) rather than the exact
        // edge count: the count is partition- and therefore seed-dependent,
        // and chasing it would realloc on the first trial whose trees are
        // bushier than every one before it.
        child_data.reserve(n);
        child_data.resize(child_start[n] as usize, 0);
        cursor.clear();
        cursor.extend_from_slice(&child_start[..n]);
        for (v, &p) in parent.iter().enumerate() {
            if p != INVALID_NODE {
                let at = &mut cursor[p as usize];
                child_data[*at as usize] = v as NodeId;
                *at += 1;
            }
        }

        // Greedy conflict colorings, one layer at a time, written directly
        // into the slot arrays (folded modulo the window afterwards).
        down_slot.clear();
        down_slot.resize(n, u32::MAX);
        up_slot.clear();
        up_slot.resize(n, u32::MAX);
        // Clear before reserving: `reserve` asks for capacity *beyond the
        // current length*, and `used` may carry entries from the previous
        // rebuild — without the clear, a reused scratch reallocs once here.
        used.clear();
        used.reserve(n);
        let down_color = down_slot;
        let up_color = up_slot;
        let mut max_color = 0u32;
        for d in 0..max_depth as usize + 1 {
            let layer = &depth_nodes[depth_start[d] as usize..depth_start[d + 1] as usize];
            // --- Downcast: transmitters are nodes with children.
            for &p in layer {
                let kids = &child_data
                    [child_start[p as usize] as usize..child_start[p as usize + 1] as usize];
                if kids.is_empty() {
                    continue;
                }
                used.clear();
                // Conflicts: same cluster+depth transmitters p' that are
                // adjacent to one of p's children, or whose children are
                // adjacent to p.
                for &u in kids {
                    for &w in g.neighbors(u) {
                        if w != p && is_peer_transmitter(w, p, cluster, depth, child_start) {
                            push_color(used, down_color[w as usize]);
                        }
                    }
                }
                for &w in g.neighbors(p) {
                    // w is a child of a peer p'' ⇒ p ∈ N(child of p'').
                    let pw = parent[w as usize];
                    if pw != INVALID_NODE
                        && pw != p
                        && is_peer_transmitter(pw, p, cluster, depth, child_start)
                    {
                        push_color(used, down_color[pw as usize]);
                    }
                }
                let c = smallest_free(used);
                down_color[p as usize] = c;
                max_color = max_color.max(c);
            }

            // --- Upcast: transmitters are all non-center nodes of the layer;
            // the receiver that matters is the tree parent.
            for &u in layer {
                let pu = parent[u as usize];
                if pu == INVALID_NODE {
                    continue;
                }
                used.clear();
                // u' adjacent to u's parent (same cluster+depth) collides at p(u).
                for &w in g.neighbors(pu) {
                    if w != u
                        && cluster[w as usize] == cluster[u as usize]
                        && depth[w as usize] == depth[u as usize]
                    {
                        push_color(used, up_color[w as usize]);
                    }
                }
                // u adjacent to p(u') collides at p(u'): conflict with u'.
                for &w in g.neighbors(u) {
                    let chs = &child_data
                        [child_start[w as usize] as usize..child_start[w as usize + 1] as usize];
                    for &ch in chs {
                        if ch != u
                            && cluster[ch as usize] == cluster[u as usize]
                            && depth[ch as usize] == depth[u as usize]
                        {
                            push_color(used, up_color[ch as usize]);
                        }
                    }
                }
                let c = smallest_free(used);
                up_color[u as usize] = c;
                max_color = max_color.max(c);
            }
        }

        let params_cap = 4 * NetParams::new(n, max_depth).log2_n();
        let window = match policy {
            SlotPolicy::Auto => (max_color + 1).min(params_cap.max(1)),
            SlotPolicy::Fixed(w) => w.max(1),
        };
        self.window = window;

        // Fold colors into the window; count overflows.
        let mut overflow = 0;
        for v in 0..n {
            if down_color[v] != u32::MAX {
                if down_color[v] >= window {
                    overflow += 1;
                }
                down_color[v] %= window;
            }
            if up_color[v] != u32::MAX {
                if up_color[v] >= window {
                    overflow += 1;
                }
                up_color[v] %= window;
            }
        }
        self.overflow = overflow;
    }

    /// The window width `W` (slots per layer; the schedule's period).
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Deepest layer over all clusters.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Length in rounds of one downcast or upcast pass to `radius`:
    /// `(min(radius, max_depth) + 1) · W`.
    pub fn pass_len(&self, radius: u32) -> u64 {
        (radius.min(self.max_depth) as u64 + 1) * self.window as u64
    }

    /// Tree parent of `v` (`INVALID_NODE` for cluster centers).
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// Tree depth of `v` within its cluster.
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v as usize]
    }

    /// Cluster index of `v`.
    pub fn cluster(&self, v: NodeId) -> u32 {
        self.cluster[v as usize]
    }

    /// Downcast slot of `v` (`u32::MAX` if `v` has no tree children).
    pub fn down_slot(&self, v: NodeId) -> u32 {
        self.down_slot[v as usize]
    }

    /// Upcast slot of `v` (`u32::MAX` for centers).
    pub fn up_slot(&self, v: NodeId) -> u32 {
        self.up_slot[v as usize]
    }

    /// Tree children of `v`.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.child_data[self.child_start[v] as usize..self.child_start[v + 1] as usize]
    }

    /// Nodes at tree depth `d`, across all clusters.
    pub fn nodes_at_depth(&self, d: u32) -> &[NodeId] {
        if d > self.max_depth {
            return &[];
        }
        let d = d as usize;
        &self.depth_nodes[self.depth_start[d] as usize..self.depth_start[d + 1] as usize]
    }

    /// How many node colors wrapped past the window (0 = fully conflict-free
    /// within clusters).
    pub fn overflow(&self) -> usize {
        self.overflow
    }

    /// Charged preprocessing cost of building this schedule distributedly,
    /// per the Lemma 2.3 contract: `O((max_depth + 1) · W · log n)` rounds
    /// (`log n` passes of one wave each). Used by the Compete pipeline's
    /// `Charged` precompute mode.
    pub fn charged_build_rounds(&self, params: &NetParams) -> u64 {
        (self.max_depth as u64 + 1) * self.window as u64 * params.log2_n() as u64
    }

    /// Verifies the intra-cluster conflict-freeness guarantee: for every
    /// non-center node `u`, no same-cluster, same-depth transmitter other
    /// than `parent(u)` shares `parent(u)`'s downcast slot among `u`'s
    /// neighbors; and symmetrically for upcast at `parent(u)`. Returns the
    /// number of violations (0 unless slots overflowed).
    pub fn conflict_violations(&self, g: &Graph) -> usize {
        let mut violations = 0;
        for u in g.nodes() {
            let p = self.parent[u as usize];
            if p == INVALID_NODE {
                continue;
            }
            let pslot = self.down_slot[p as usize];
            let pdepth = self.depth[p as usize];
            for &w in g.neighbors(u) {
                if w != p
                    && self.cluster[w as usize] == self.cluster[u as usize]
                    && self.depth[w as usize] == pdepth
                    && self.down_slot[w as usize] == pslot
                {
                    violations += 1;
                }
            }
            // Upcast: at p, another same-cluster same-depth-as-u neighbor of p
            // sharing u's up slot would collide with u's transmission.
            let uslot = self.up_slot[u as usize];
            let udepth = self.depth[u as usize];
            for &w in g.neighbors(p) {
                if w != u
                    && self.cluster[w as usize] == self.cluster[u as usize]
                    && self.depth[w as usize] == udepth
                    && self.up_slot[w as usize] == uslot
                {
                    violations += 1;
                }
            }
        }
        violations
    }
}

#[inline]
fn is_peer_transmitter(
    w: NodeId,
    p: NodeId,
    cluster: &[u32],
    depth: &[u32],
    child_start: &[u32],
) -> bool {
    cluster[w as usize] == cluster[p as usize]
        && depth[w as usize] == depth[p as usize]
        && child_start[w as usize + 1] > child_start[w as usize]
}

#[inline]
fn push_color(used: &mut Vec<u32>, c: u32) {
    if c != u32::MAX && !used.contains(&c) {
        used.push(c);
    }
}

#[inline]
fn smallest_free(used: &[u32]) -> u32 {
    let mut c = 0u32;
    loop {
        if !used.contains(&c) {
            return c;
        }
        c += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rn_cluster::Partition;
    use rn_graph::generators;

    fn single_cluster(g: &Graph) -> Partition {
        let mut rng = SmallRng::seed_from_u64(0);
        let p = Partition::compute(g, 1e-9, &mut rng);
        assert_eq!(p.num_clusters(), 1);
        p
    }

    #[test]
    fn tree_depths_match_bfs_on_single_cluster() {
        let g = generators::grid(9, 9);
        let part = single_cluster(&g);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let center = part.centers()[0];
        let dist = rn_graph::traversal::bfs(&g, center);
        for v in g.nodes() {
            assert_eq!(sched.depth(v), dist[v as usize]);
        }
        assert_eq!(sched.parent(center), INVALID_NODE);
    }

    #[test]
    fn parents_are_one_layer_up_and_in_cluster() {
        let g = generators::grid(10, 10);
        let mut rng = SmallRng::seed_from_u64(1);
        let part = Partition::compute(&g, 0.3, &mut rng);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        for v in g.nodes() {
            let p = sched.parent(v);
            if p == INVALID_NODE {
                assert!(part.is_center(v));
                assert_eq!(sched.depth(v), 0);
            } else {
                assert!(g.has_edge(v, p));
                assert_eq!(sched.depth(v), sched.depth(p) + 1);
                assert_eq!(sched.cluster(v), sched.cluster(p));
                assert!(sched.children(p).contains(&v));
            }
        }
    }

    #[test]
    fn coloring_is_conflict_free_without_overflow() {
        let mut rng = SmallRng::seed_from_u64(2);
        for g in [
            generators::path(150),
            generators::grid(13, 13),
            generators::random_geometric(200, 0.12, &mut rng),
            generators::binary_tree(127),
        ] {
            for beta in [1e-9, 0.2, 0.5] {
                let part = Partition::compute(&g, beta, &mut rng);
                let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
                if sched.overflow() == 0 {
                    assert_eq!(sched.conflict_violations(&g), 0, "graph n={} beta={beta}", g.n());
                }
            }
        }
    }

    #[test]
    fn window_respects_fixed_policy_and_floors_at_one() {
        let g = generators::path(20);
        let part = single_cluster(&g);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Fixed(7));
        assert_eq!(sched.window(), 7);
        let sched0 = TreeSchedule::build(&g, &part, SlotPolicy::Fixed(0));
        assert_eq!(sched0.window(), 1, "floored");
    }

    #[test]
    fn path_needs_tiny_window() {
        // On a path every layer has ≤ 2 nodes per cluster; greedy coloring
        // needs O(1) colors — the bounded-growth property the design relies on.
        let g = generators::path(300);
        let part = single_cluster(&g);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        assert!(sched.window() <= 3, "window {} too large for a path", sched.window());
        assert_eq!(sched.overflow(), 0);
    }

    #[test]
    fn pass_len_clamps_to_max_depth() {
        let g = generators::path(50);
        let part = single_cluster(&g);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let full = sched.pass_len(u32::MAX);
        assert_eq!(full, (sched.max_depth() as u64 + 1) * sched.window() as u64);
        assert!(sched.pass_len(3) <= full);
        assert_eq!(sched.pass_len(3), 4 * sched.window() as u64);
    }

    #[test]
    fn nodes_at_depth_partitions_nodes() {
        let g = generators::grid(8, 8);
        let mut rng = SmallRng::seed_from_u64(3);
        let part = Partition::compute(&g, 0.4, &mut rng);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let total: usize = (0..=sched.max_depth()).map(|d| sched.nodes_at_depth(d).len()).sum();
        assert_eq!(total, g.n());
        assert!(sched.nodes_at_depth(sched.max_depth() + 5).is_empty());
    }

    #[test]
    fn rebuild_matches_fresh_build_exactly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = generators::grid(11, 11);
        let warm = generators::path(40);
        let mut scratch = TreeScheduleScratch::default();
        let mut pooled =
            TreeSchedule::build(&warm, &Partition::compute(&warm, 0.5, &mut rng), SlotPolicy::Auto);
        for beta in [1e-9, 0.2, 0.6] {
            let part = Partition::compute(&g, beta, &mut rng);
            for policy in [SlotPolicy::Auto, SlotPolicy::Fixed(3)] {
                pooled.rebuild(&g, &part, policy, &mut scratch);
                let fresh = TreeSchedule::build(&g, &part, policy);
                assert_eq!(pooled.window, fresh.window, "beta {beta}");
                assert_eq!(pooled.max_depth, fresh.max_depth);
                assert_eq!(pooled.parent, fresh.parent);
                assert_eq!(pooled.depth, fresh.depth);
                assert_eq!(pooled.cluster, fresh.cluster);
                assert_eq!(pooled.down_slot, fresh.down_slot);
                assert_eq!(pooled.up_slot, fresh.up_slot);
                assert_eq!(pooled.depth_start, fresh.depth_start);
                assert_eq!(pooled.depth_nodes, fresh.depth_nodes);
                assert_eq!(pooled.child_start, fresh.child_start);
                assert_eq!(pooled.child_data, fresh.child_data);
                assert_eq!(pooled.overflow, fresh.overflow);
            }
        }
    }

    #[test]
    fn charged_cost_formula() {
        let g = generators::grid(8, 8);
        let part = single_cluster(&g);
        let sched = TreeSchedule::build(&g, &part, SlotPolicy::Auto);
        let params = rn_sim::NetParams::of_graph(&g);
        assert_eq!(
            sched.charged_build_rounds(&params),
            (sched.max_depth() as u64 + 1) * sched.window() as u64 * params.log2_n() as u64
        );
    }
}
