//! Intra-cluster **schedules** — the substrate behind the paper's Lemma 2.3.
//!
//! The paper (following Ghaffari–Haeupler–Khabbazian \[11\] and Haeupler–Wajc
//! \[12\]) assumes each cluster can be preprocessed into a *schedule* that
//! afterwards moves messages between the cluster center and nodes at
//! distance ℓ in `O(ℓ + polylog n)` rounds, with period `O(log n)`. This
//! crate realizes that contract concretely:
//!
//! * [`TreeSchedule::build`] computes, for every cluster of a
//!   [`rn_cluster::Partition`] simultaneously, a BFS tree rooted at the
//!   cluster center plus a **conflict-free slot coloring** of each tree
//!   layer: within a cluster, a node's reception from its tree parent is
//!   never collided by another same-layer transmitter of the same cluster.
//!   Layers are served in consecutive *windows* of a fixed width `W`
//!   (the schedule's period), so a downcast pass to radius ℓ costs exactly
//!   `(ℓ + 1) · W` rounds — the `O(ℓ + polylog n)` of Lemma 2.3 with the
//!   `polylog` spread across windows.
//! * [`Downcast`] executes one-to-all broadcast of every cluster center's
//!   value out to radius ℓ, as real radio transmissions in all clusters at
//!   once (inter-cluster collisions are *not* prevented — exactly as in the
//!   paper, where they are handled by the Intra-Cluster Propagation
//!   background process, Algorithm 4).
//! * [`Upcast`] executes the reverse max-convergecast: participating nodes'
//!   values flow layer by layer to the center, aggregated at each hop.
//!
//! The construction itself is performed centrally (the oracle stand-in for
//! \[11\]'s `O(D·polylog n)`-round distributed preprocessing; substitution
//! documented in `DESIGN.md` §4.2) and its charged cost is reported by
//! [`TreeSchedule::charged_build_rounds`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executors;
mod pipeline;
mod scenario;
mod tree;

pub use executors::{Downcast, SchedMsg, Upcast};
pub use pipeline::{PipelineMsg, PipelinedDowncast};
pub use scenario::{families, ScheduleFamily, ScheduleOp, ScheduleScenario, DEFAULT_SCHEDULE_BETA};
pub use tree::{SlotPolicy, TreeSchedule, TreeScheduleScratch};
