//! Property tests for the decay broadcasts: completion on arbitrary
//! connected graphs and structural invariants of the truncated schedule.

use proptest::prelude::*;
use rn_decay::{DecayBroadcast, DecaySteps, TruncatedDecayBroadcast};
use rn_graph::Graph;
use rn_sim::{CollisionModel, NetParams, Simulator};

fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..36).prop_flat_map(|n| {
        let edge = (0..n as u32, 1..n as u32).prop_map(move |(u, k)| {
            let v = (u + k) % n as u32;
            if u < v {
                (u, v)
            } else {
                (v, u)
            }
        });
        proptest::collection::vec(edge, 0..60).prop_map(move |mut edges| {
            for v in 1..n as u32 {
                edges.push((v - 1, v));
            }
            Graph::from_edges(n, &edges).expect("valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bgi_completes_on_arbitrary_connected_graphs(
        g in arb_connected_graph(), seed in any::<u64>(),
    ) {
        let net = NetParams::new(g.n(), g.diameter());
        let source = (seed % g.n() as u64) as u32;
        let mut p = DecayBroadcast::single_source(net, source, 9, seed);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, seed);
        sim.run_until(&mut p, 500_000, |_, p| p.all_informed());
        prop_assert!(p.all_informed(), "BGI stalled on n={}", g.n());
        for v in g.nodes() {
            prop_assert_eq!(p.value_of(v), Some(9));
        }
    }

    #[test]
    fn truncated_completes_on_arbitrary_connected_graphs(
        g in arb_connected_graph(), seed in any::<u64>(),
    ) {
        let net = NetParams::new(g.n(), g.diameter());
        let mut p = TruncatedDecayBroadcast::single_source(net, 0, 9, seed);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, seed);
        sim.run_until(&mut p, 500_000, |_, p| p.all_informed());
        prop_assert!(p.all_informed(), "truncated decay stalled on n={}", g.n());
    }

    #[test]
    fn truncated_depths_are_ordered(n in 4usize..100_000, d in 2u32..10_000) {
        prop_assume!((d as usize) < n);
        let net = NetParams::new(n, d);
        let p = TruncatedDecayBroadcast::single_source(net, 0, 1, 0);
        prop_assert!(p.truncated_depth() >= 2);
        prop_assert!(p.truncated_depth() <= p.full_depth());
        prop_assert!(p.full_round_period() >= 2);
    }

    #[test]
    fn decay_probabilities_are_halving_and_bounded(depth in 1u32..40, step in 0u64..500) {
        let d = DecaySteps::new(depth);
        let p = d.probability(step);
        prop_assert!(p > 0.0 && p <= 0.5);
        // Within one round, each step halves the previous step's probability.
        if step % depth as u64 != 0 {
            prop_assert!((d.probability(step - 1) - 2.0 * p).abs() < 1e-12);
        }
        prop_assert_eq!(d.round_index(step), step / depth as u64);
    }

    #[test]
    fn informed_set_grows_monotonically(g in arb_connected_graph(), seed in any::<u64>()) {
        let net = NetParams::new(g.n(), g.diameter());
        let mut p = DecayBroadcast::single_source(net, 0, 1, seed);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, seed);
        let mut last = p.informed_count();
        for _ in 0..50 {
            sim.step_with(&mut p);
            let now = p.informed_count();
            prop_assert!(now >= last);
            last = now;
        }
    }
}
