//! [`ProtocolFamily`] registrations for the decay family: the raw
//! multi-source primitives (`decay(K)`, `decay_trunc(K)`) and the
//! CD-exploiting beep-wave-assisted variants (`broadcast_cd`,
//! `compete_cd(K)`).

use crate::broadcast::CoinSampler;
use crate::scenario::{CdDecayScenario, DecayScenario};
use rn_sim::family::{parse_count, reject_args, ParsedArgs, ProtocolFamily};
use rn_sim::{OverrideClass, OverrideSpec, Runnable};

/// Shared override schema of `decay(K)` / `decay_trunc(K)`: the coin
/// sampler. `per_index` is the baseline-pinned default; `batched` draws 64
/// coins per `u64` word (a different, equally valid random sequence —
/// opt-in for large-scale runs).
const DECAY_OVERRIDES: &[OverrideSpec] = &[OverrideSpec::new(
    "coins",
    "coin sampler: per_index (baseline sequence) or batched (word-level draws)",
    OverrideClass::Enum(&["per_index", "batched"]),
)];

/// Resolves the `coins` override to a [`CoinSampler`] (default
/// [`CoinSampler::PerIndex`]).
fn coin_sampler(overrides: &[(&'static OverrideSpec, f64)]) -> CoinSampler {
    match overrides.iter().find(|(s, _)| s.key == "coins") {
        Some(&(_, v)) if v as usize == 1 => CoinSampler::Batched,
        _ => CoinSampler::PerIndex,
    }
}

/// `decay(K)` — raw multi-source decay with `K` spread sources.
pub struct DecayFamily;

impl ProtocolFamily for DecayFamily {
    fn name(&self) -> &'static str {
        "decay"
    }

    fn grammar(&self) -> &'static str {
        "decay(K)"
    }

    fn about(&self) -> &'static str {
        "raw multi-source decay with K spread sources"
    }

    fn canonical_instances(&self) -> &'static [Option<&'static str>] {
        &[Some("4")]
    }

    fn overrides(&self) -> &'static [OverrideSpec] {
        DECAY_OVERRIDES
    }

    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String> {
        let k = parse_count(self.name(), args)?;
        Ok(ParsedArgs::with_args(k.to_string()))
    }

    fn instantiate(
        &self,
        args: Option<&str>,
        overrides: &[(&'static OverrideSpec, f64)],
        label: &str,
    ) -> Box<dyn Runnable> {
        let k = parse_count(self.name(), args).expect("canonical decay args");
        Box::new(DecayScenario::new(k).with_coins(coin_sampler(overrides), label))
    }
}

/// `decay_trunc(K)` — truncated multi-source decay.
pub struct DecayTruncFamily;

impl ProtocolFamily for DecayTruncFamily {
    fn name(&self) -> &'static str {
        "decay_trunc"
    }

    fn grammar(&self) -> &'static str {
        "decay_trunc(K)"
    }

    fn about(&self) -> &'static str {
        "truncated multi-source decay"
    }

    fn canonical_instances(&self) -> &'static [Option<&'static str>] {
        &[Some("4")]
    }

    fn overrides(&self) -> &'static [OverrideSpec] {
        DECAY_OVERRIDES
    }

    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String> {
        let k = parse_count(self.name(), args)?;
        Ok(ParsedArgs::with_args(k.to_string()))
    }

    fn instantiate(
        &self,
        args: Option<&str>,
        overrides: &[(&'static OverrideSpec, f64)],
        label: &str,
    ) -> Box<dyn Runnable> {
        let k = parse_count(self.name(), args).expect("canonical decay_trunc args");
        Box::new(DecayScenario::truncated(k).with_coins(coin_sampler(overrides), label))
    }
}

/// `broadcast_cd` — beep-wave assisted layered decay broadcast (single
/// source); pins the collision-detection model.
pub struct BroadcastCdFamily;

impl ProtocolFamily for BroadcastCdFamily {
    fn name(&self) -> &'static str {
        "broadcast_cd"
    }

    fn grammar(&self) -> &'static str {
        "broadcast_cd"
    }

    fn about(&self) -> &'static str {
        "CD-exploiting broadcast: beep-wave layer labels + layered decay"
    }

    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String> {
        reject_args(self.name(), args)
    }

    fn instantiate(
        &self,
        _args: Option<&str>,
        _overrides: &[(&'static rn_sim::OverrideSpec, f64)],
        _label: &str,
    ) -> Box<dyn Runnable> {
        Box::new(CdDecayScenario::broadcast())
    }
}

/// `compete_cd(K)` — the multi-source CD-exploiting variant: `K` distinct
/// sources, completion when everyone knows the maximum.
pub struct CompeteCdFamily;

impl ProtocolFamily for CompeteCdFamily {
    fn name(&self) -> &'static str {
        "compete_cd"
    }

    fn grammar(&self) -> &'static str {
        "compete_cd(K)"
    }

    fn about(&self) -> &'static str {
        "CD-exploiting Compete analogue: K sources, max wins via layered decay"
    }

    fn canonical_instances(&self) -> &'static [Option<&'static str>] {
        &[Some("4")]
    }

    fn parse_args(&self, args: Option<&str>) -> Result<ParsedArgs, String> {
        let k = parse_count(self.name(), args)?;
        Ok(ParsedArgs::with_args(k.to_string()).needing_nodes(k))
    }

    fn instantiate(
        &self,
        args: Option<&str>,
        _overrides: &[(&'static rn_sim::OverrideSpec, f64)],
        _label: &str,
    ) -> Box<dyn Runnable> {
        let k = parse_count(self.name(), args).expect("canonical compete_cd args");
        Box::new(CdDecayScenario::compete(k))
    }
}

/// The protocol families this crate contributes to the registry.
pub fn families() -> Vec<&'static dyn ProtocolFamily> {
    vec![&DecayFamily, &DecayTruncFamily, &BroadcastCdFamily, &CompeteCdFamily]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_args_parse_and_runnables_name_themselves() {
        let p = CompeteCdFamily.parse_args(Some("4")).expect("parses");
        assert_eq!(p.canonical.as_deref(), Some("4"));
        assert_eq!(p.required_nodes, 4, "compete_cd needs K distinct nodes");
        assert_eq!(
            CompeteCdFamily.instantiate(Some("4"), &[], "compete_cd(4)").name(),
            "compete_cd(4)"
        );
        assert_eq!(BroadcastCdFamily.instantiate(None, &[], "broadcast_cd").name(), "broadcast_cd");
        assert_eq!(DecayFamily.instantiate(Some("3"), &[], "decay(3)").name(), "decay(3)");
        assert_eq!(
            DecayTruncFamily.instantiate(Some("2"), &[], "decay_trunc(2)").name(),
            "decay_trunc(2)"
        );
        assert!(DecayFamily.parse_args(None).is_err());
        assert!(CompeteCdFamily.parse_args(Some("0")).is_err());
        assert!(BroadcastCdFamily.parse_args(Some("1")).is_err());
    }

    #[test]
    fn coins_override_selects_the_batched_sampler_and_keeps_the_label() {
        let spec = &DECAY_OVERRIDES[0];
        assert_eq!(coin_sampler(&[]), CoinSampler::PerIndex);
        assert_eq!(coin_sampler(&[(spec, 0.0)]), CoinSampler::PerIndex);
        assert_eq!(coin_sampler(&[(spec, 1.0)]), CoinSampler::Batched);
        let label = "decay(2){coins=batched}";
        let r = DecayFamily.instantiate(Some("2"), &[(spec, 1.0)], label);
        assert_eq!(r.name(), label, "the runnable reports the full override label");
        let label = "decay_trunc(3){coins=batched}";
        let r = DecayTruncFamily.instantiate(Some("3"), &[(spec, 1.0)], label);
        assert_eq!(r.name(), label);
    }
}
