use rand::rngs::SmallRng;
use rn_graph::NodeId;
use rn_sim::{rng, rng::bernoulli_indices, NetParams, Protocol, Round, TxBuf};

/// Step/probability bookkeeping for the Decay primitive (Algorithm 5).
///
/// One *decay round* consists of `depth = ⌈log₂ n⌉` steps; in step
/// `i ∈ 0..depth` a participating node transmits with probability `2^-(i+1)`.
///
/// # Example
///
/// ```
/// use rn_decay::DecaySteps;
/// use rn_sim::NetParams;
///
/// let d = DecaySteps::for_params(&NetParams::new(256, 10));
/// assert_eq!(d.round_len(), 8);
/// assert_eq!(d.probability(0), 0.5);
/// assert_eq!(d.probability(8), 0.5); // wraps to a new decay round
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecaySteps {
    depth: u32,
}

impl DecaySteps {
    /// A decay schedule of `depth` steps per round (probabilities
    /// `2^-1 … 2^-depth`).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: u32) -> DecaySteps {
        assert!(depth > 0, "decay depth must be positive");
        DecaySteps { depth }
    }

    /// The standard depth for a network: `⌈log₂ n⌉` (at least 1).
    pub fn for_params(params: &NetParams) -> DecaySteps {
        DecaySteps::new(params.log2_n())
    }

    /// Steps per decay round.
    #[inline]
    pub fn round_len(&self) -> u32 {
        self.depth
    }

    /// Transmission probability at global step `step` (wraps every round):
    /// `2^-(step mod depth + 1)`.
    #[inline]
    pub fn probability(&self, step: u64) -> f64 {
        let i = (step % self.depth as u64) as i32;
        (2.0f64).powi(-(i + 1))
    }

    /// The exponent `j` such that [`DecaySteps::probability`] is exactly
    /// `2^-j` at `step` — decay probabilities are all exact powers of two,
    /// which is what lets the batched word sampler
    /// ([`rn_sim::rng::bernoulli_pow2_indices`]) draw them 64 coins at a
    /// time.
    #[inline]
    pub fn exponent(&self, step: u64) -> u32 {
        (step % self.depth as u64) as u32 + 1
    }

    /// Which decay round `step` belongs to.
    #[inline]
    pub fn round_index(&self, step: u64) -> u64 {
        step / self.depth as u64
    }

    /// Whether `step` starts a new decay round.
    #[inline]
    pub fn is_round_start(&self, step: u64) -> bool {
        step.is_multiple_of(self.depth as u64)
    }
}

/// Experiment protocol for Lemma 3.1: a fixed set of participants performs
/// exactly one decay round; every listener that receives is recorded.
///
/// Used by experiment E1 to estimate the per-round success probability as a
/// function of the number of participating neighbors.
#[derive(Debug)]
pub struct SingleDecayRound {
    steps: DecaySteps,
    participants: Vec<NodeId>,
    received: Vec<bool>,
    rng: SmallRng,
    scratch: Vec<usize>,
}

impl SingleDecayRound {
    /// Participants all hold a message and run one decay round of the given
    /// `depth`; `n` is the network size.
    pub fn new(n: usize, depth: u32, participants: Vec<NodeId>, seed: u64) -> SingleDecayRound {
        SingleDecayRound {
            steps: DecaySteps::new(depth),
            participants,
            received: vec![false; n],
            rng: rng::rng_from_seed(seed),
            scratch: Vec::new(),
        }
    }

    /// Whether `node` received the message during the round.
    pub fn has_received(&self, node: NodeId) -> bool {
        self.received[node as usize]
    }

    /// Number of steps the round takes.
    pub fn round_len(&self) -> u32 {
        self.steps.round_len()
    }
}

impl Protocol for SingleDecayRound {
    type Msg = u64;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<u64>) {
        if round >= self.steps.round_len() as u64 {
            return;
        }
        let p = self.steps.probability(round);
        self.scratch.clear();
        bernoulli_indices(&mut self.rng, self.participants.len(), p, &mut self.scratch);
        for &idx in &self.scratch {
            tx.send(self.participants[idx], 1);
        }
    }

    fn deliver(&mut self, _round: Round, node: NodeId, _from: NodeId, _msg: &u64) {
        self.received[node as usize] = true;
    }

    fn done(&self, round: Round) -> bool {
        round >= self.steps.round_len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;
    use rn_sim::{CollisionModel, Simulator};

    #[test]
    fn probabilities_halve_and_wrap() {
        let d = DecaySteps::new(4);
        assert_eq!(d.probability(0), 0.5);
        assert_eq!(d.probability(1), 0.25);
        assert_eq!(d.probability(3), 0.0625);
        assert_eq!(d.probability(4), 0.5, "wraps");
        assert!(d.is_round_start(0));
        assert!(!d.is_round_start(2));
        assert!(d.is_round_start(4));
        assert_eq!(d.round_index(7), 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_depth_rejected() {
        let _ = DecaySteps::new(0);
    }

    #[test]
    fn single_participant_always_succeeds_eventually() {
        // One leaf transmitting alone: the hub must receive within the round
        // with probability 1 - prod(1 - 2^-i) ≈ high; check over seeds that
        // the empirical rate is well above the Lemma 3.1 constant.
        let g = generators::star(2); // hub 0, leaf 1
        let mut successes = 0;
        let trials = 200;
        for seed in 0..trials {
            let mut p = SingleDecayRound::new(2, 8, vec![1], seed);
            let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, seed);
            sim.run(&mut p, 64);
            if p.has_received(0) {
                successes += 1;
            }
        }
        let rate = successes as f64 / trials as f64;
        assert!(rate > 0.6, "single-participant success rate {rate}");
    }

    #[test]
    fn many_participants_still_succeed_constant_fraction() {
        // Lemma 3.1 with k = 64 participating leaves: success probability per
        // decay round is a constant bounded away from zero.
        let k = 64;
        let g = generators::star(k + 1);
        let participants: Vec<NodeId> = (1..=k as NodeId).collect();
        let mut successes = 0;
        let trials = 300;
        for seed in 0..trials {
            let mut p = SingleDecayRound::new(k + 1, 10, participants.clone(), seed);
            let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, seed);
            sim.run(&mut p, 64);
            if p.has_received(0) {
                successes += 1;
            }
        }
        let rate = successes as f64 / trials as f64;
        assert!(rate > 0.25, "k=64 success rate {rate} too low for Lemma 3.1");
    }

    #[test]
    fn done_after_one_round() {
        let g = generators::star(3);
        let mut p = SingleDecayRound::new(3, 5, vec![1, 2], 9);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 9);
        let stats = sim.run(&mut p, 1000);
        assert_eq!(stats.rounds, 5, "stops after exactly one decay round");
    }
}
