use crate::primitive::DecaySteps;
use rand::rngs::SmallRng;
use rn_graph::NodeId;
use rn_sim::rng::{self, bernoulli_indices, bernoulli_pow2_indices, WordStream};
use rn_sim::{NetParams, NodeValues, Protocol, Round, TxBuf};

/// How a decay protocol draws its per-round transmission coins.
///
/// The two samplers draw *different* (equally valid) random sequences, so
/// the choice is part of a run's identity: registered scenario families pin
/// [`CoinSampler::PerIndex`] — the historical sequence all committed
/// baselines were recorded under — and the batched sampler is opt-in for
/// large-scale runs, where drawing 64 coins per `u64` word beats the
/// per-success geometric skipping once frontiers reach `10⁵`–`10⁶` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoinSampler {
    /// Geometric index skipping over the informed list (`SmallRng`);
    /// cost `O(successes)` per round. The default and baseline-pinned
    /// sequence.
    #[default]
    PerIndex,
    /// Word-batched sampling from a [`WordStream`]: one `u64` draw yields
    /// 64 fair coins, AND-ed `j` deep for the decay probability `2^-j`;
    /// cost `O(frontier/64 · j)` per round regardless of density.
    Batched,
}

/// The sampler state behind a [`CoinSampler`] choice.
#[derive(Debug)]
enum CoinState {
    PerIndex(SmallRng),
    Batched(WordStream),
}

impl CoinState {
    fn new(sampler: CoinSampler, seed: u64) -> CoinState {
        match sampler {
            CoinSampler::PerIndex => CoinState::PerIndex(rng::rng_from_seed(seed)),
            CoinSampler::Batched => CoinState::Batched(WordStream::new(seed, 0xC01)),
        }
    }
}

/// The Bar-Yehuda–Goldreich–Itai broadcasting algorithm (1992).
///
/// All informed nodes run globally synchronized decay rounds; a node that
/// receives the message joins from the next step on. Completes broadcasting
/// in `O((D + log n)·log n)` rounds with high probability — the classical
/// baseline of the paper's §1.3. Nodes *never transmit spontaneously*: this
/// algorithm is correct in the more restrictive no-spontaneous-transmissions
/// model, which is exactly why it is the comparison point for the paper's
/// spontaneous-transmission speedups.
///
/// The implementation is multi-source and max-propagating: every source
/// starts with a `u64` value, informed nodes always transmit the highest
/// value they know, and receivers upgrade. With a single source this is
/// plain broadcasting; with many it is the multi-source broadcast needed by
/// the binary-search leader-election reduction.
#[derive(Debug)]
pub struct DecayBroadcast {
    steps: DecaySteps,
    /// Highest value known per node, frontier-native layout: informed
    /// bitset + dense value vector (see [`NodeValues`]).
    values: NodeValues,
    /// Dense list of informed nodes, in the order they were informed — the
    /// coin-index space of the decay draw, so its push order is part of a
    /// run's identity.
    informed_list: Vec<NodeId>,
    coins: CoinState,
    scratch: Vec<usize>,
}

impl DecayBroadcast {
    /// Multi-source broadcast: each `(node, value)` pair starts informed.
    /// Coins come from the default [`CoinSampler::PerIndex`] sampler.
    pub fn new(params: NetParams, sources: &[(NodeId, u64)], seed: u64) -> DecayBroadcast {
        DecayBroadcast::with_coin_sampler(params, sources, seed, CoinSampler::default())
    }

    /// Multi-source broadcast with an explicit coin sampler (see
    /// [`CoinSampler`] for when the batched variant pays off).
    pub fn with_coin_sampler(
        params: NetParams,
        sources: &[(NodeId, u64)],
        seed: u64,
        sampler: CoinSampler,
    ) -> DecayBroadcast {
        let mut p = DecayBroadcast {
            steps: DecaySteps::for_params(&params),
            values: NodeValues::new(0),
            informed_list: Vec::new(),
            coins: CoinState::new(sampler, seed),
            scratch: Vec::new(),
        };
        p.reset(params, sources, seed, sampler);
        p
    }

    /// Re-arms the protocol for a fresh trial, reusing every allocation —
    /// observably identical to [`DecayBroadcast::with_coin_sampler`] with
    /// the same arguments (the fresh constructor is this method applied to
    /// an empty shell, so the two paths cannot drift). Buffers are reserved
    /// to their worst-case bound `n`, so a pooled steady-state trial never
    /// touches the heap.
    pub fn reset(
        &mut self,
        params: NetParams,
        sources: &[(NodeId, u64)],
        seed: u64,
        sampler: CoinSampler,
    ) {
        self.steps = DecaySteps::for_params(&params);
        self.values.reset(params.n());
        self.informed_list.clear();
        self.informed_list.reserve(params.n());
        for &(s, v) in sources {
            if self.values.merge_max(s, v) {
                self.informed_list.push(s);
            }
        }
        self.coins = CoinState::new(sampler, seed);
        self.scratch.clear();
        self.scratch.reserve(params.n());
    }

    /// Single-source broadcast of `value` from `source`.
    pub fn single_source(
        params: NetParams,
        source: NodeId,
        value: u64,
        seed: u64,
    ) -> DecayBroadcast {
        DecayBroadcast::new(params, &[(source, value)], seed)
    }

    /// Whether every node knows some value.
    pub fn all_informed(&self) -> bool {
        self.values.all_informed()
    }

    /// Whether every node knows a value `>= target`.
    pub fn all_know_at_least(&self, target: u64) -> bool {
        self.values.all_know_at_least(target)
    }

    /// The value currently known by `node`.
    pub fn value_of(&self, node: NodeId) -> Option<u64> {
        self.values.get(node)
    }

    /// Number of informed nodes.
    pub fn informed_count(&self) -> usize {
        self.informed_list.len()
    }
}

impl Protocol for DecayBroadcast {
    type Msg = u64;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<u64>) {
        self.scratch.clear();
        match &mut self.coins {
            CoinState::PerIndex(rng) => {
                let p = self.steps.probability(round);
                bernoulli_indices(rng, self.informed_list.len(), p, &mut self.scratch);
            }
            CoinState::Batched(ws) => {
                let j = self.steps.exponent(round);
                bernoulli_pow2_indices(ws, self.informed_list.len(), j, &mut self.scratch);
            }
        }
        for &idx in &self.scratch {
            let u = self.informed_list[idx];
            let v = self.values.get(u).expect("informed nodes have values");
            tx.send(u, v);
        }
    }

    fn deliver(&mut self, _round: Round, node: NodeId, _from: NodeId, msg: &u64) {
        if self.values.merge_max(node, *msg) {
            self.informed_list.push(node);
        }
    }
}

/// Truncated-decay broadcast: the Czumaj–Rytter / Kowalski–Pelc-*style*
/// baseline with running time shape `O(D·log(n/D) + log² n)`.
///
/// Informed nodes run decay rounds truncated to depth
/// `k = ⌈log₂(n/D)⌉ + 2`: along a shortest path the number of simultaneously
/// competing informed neighbors is typically `O(n/D)`, so the truncated
/// rounds advance the frontier in `O(log(n/D))` steps instead of
/// `O(log n)`. Every `full_every`-th decay round runs at full depth
/// `⌈log₂ n⌉` to resolve high-degree hot spots (dense blobs attached to long
/// paths), which truncation alone cannot break.
///
/// This reproduces the *complexity shape* of [9, 14], not their exact
/// selection-sequence constructions (documented substitution, `DESIGN.md`
/// §3.3).
#[derive(Debug)]
pub struct TruncatedDecayBroadcast {
    trunc: DecaySteps,
    full: DecaySteps,
    /// Full-depth decay round every this many rounds (≥ 1).
    full_every: u64,
    /// Highest value known per node (frontier-native layout).
    values: NodeValues,
    informed_list: Vec<NodeId>,
    coins: CoinState,
    scratch: Vec<usize>,
    /// Precomputed cycle: step offsets → probability, spanning
    /// `(full_every - 1)` truncated rounds followed by one full round.
    cycle_probs: Vec<f64>,
    /// The same cycle as exponents `j` (probability `2^-j`), for the
    /// word-batched sampler.
    cycle_exponents: Vec<u32>,
}

impl TruncatedDecayBroadcast {
    /// Multi-source truncated-decay broadcast with the default
    /// [`CoinSampler::PerIndex`] sampler.
    pub fn new(params: NetParams, sources: &[(NodeId, u64)], seed: u64) -> TruncatedDecayBroadcast {
        TruncatedDecayBroadcast::with_coin_sampler(params, sources, seed, CoinSampler::default())
    }

    /// Multi-source truncated-decay broadcast with an explicit coin
    /// sampler (see [`CoinSampler`]).
    pub fn with_coin_sampler(
        params: NetParams,
        sources: &[(NodeId, u64)],
        seed: u64,
        sampler: CoinSampler,
    ) -> TruncatedDecayBroadcast {
        let mut p = TruncatedDecayBroadcast {
            trunc: DecaySteps::new(2),
            full: DecaySteps::new(2),
            full_every: 2,
            values: NodeValues::new(0),
            informed_list: Vec::new(),
            coins: CoinState::new(sampler, seed),
            scratch: Vec::new(),
            cycle_probs: Vec::new(),
            cycle_exponents: Vec::new(),
        };
        p.reset(params, sources, seed, sampler);
        p
    }

    /// Re-arms the protocol for a fresh trial, reusing every allocation —
    /// observably identical to
    /// [`TruncatedDecayBroadcast::with_coin_sampler`] with the same
    /// arguments (the fresh constructor is this method applied to an empty
    /// shell). The cycle tables are rebuilt in place; for a pool reused on
    /// one topology their length never changes, so steady-state trials
    /// never touch the heap.
    pub fn reset(
        &mut self,
        params: NetParams,
        sources: &[(NodeId, u64)],
        seed: u64,
        sampler: CoinSampler,
    ) {
        let log_n = params.log2_n();
        let d = params.diameter().max(1) as f64;
        let ratio = (params.n() as f64 / d).max(2.0);
        let trunc_depth = (ratio.log2().ceil() as u32 + 2).clamp(2, log_n.max(2));
        // Full rounds rare enough not to dominate: one per ⌈log n / k⌉ rounds.
        let full_every = ((log_n as f64 / trunc_depth as f64).ceil() as u64).max(2);

        self.trunc = DecaySteps::new(trunc_depth);
        self.full = DecaySteps::new(log_n.max(trunc_depth));
        self.full_every = full_every;
        self.cycle_probs.clear();
        self.cycle_exponents.clear();
        for _ in 0..(full_every - 1) {
            for i in 0..self.trunc.round_len() {
                self.cycle_probs.push(self.trunc.probability(i as u64));
                self.cycle_exponents.push(self.trunc.exponent(i as u64));
            }
        }
        for i in 0..self.full.round_len() {
            self.cycle_probs.push(self.full.probability(i as u64));
            self.cycle_exponents.push(self.full.exponent(i as u64));
        }

        self.values.reset(params.n());
        self.informed_list.clear();
        self.informed_list.reserve(params.n());
        for &(s, v) in sources {
            if self.values.merge_max(s, v) {
                self.informed_list.push(s);
            }
        }
        self.coins = CoinState::new(sampler, seed);
        self.scratch.clear();
        self.scratch.reserve(params.n());
    }

    /// Single-source variant.
    pub fn single_source(
        params: NetParams,
        source: NodeId,
        value: u64,
        seed: u64,
    ) -> TruncatedDecayBroadcast {
        TruncatedDecayBroadcast::new(params, &[(source, value)], seed)
    }

    /// Whether every node knows some value.
    pub fn all_informed(&self) -> bool {
        self.values.all_informed()
    }

    /// The value currently known by `node`.
    pub fn value_of(&self, node: NodeId) -> Option<u64> {
        self.values.get(node)
    }

    /// Depth of the truncated rounds (exposed for tests/diagnostics).
    pub fn truncated_depth(&self) -> u32 {
        self.trunc.round_len()
    }

    /// Depth of the periodic full rounds.
    pub fn full_depth(&self) -> u32 {
        self.full.round_len()
    }

    /// How often (in decay rounds) a full-depth round runs.
    pub fn full_round_period(&self) -> u64 {
        self.full_every
    }
}

impl Protocol for TruncatedDecayBroadcast {
    type Msg = u64;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<u64>) {
        let step = (round % self.cycle_probs.len() as u64) as usize;
        self.scratch.clear();
        match &mut self.coins {
            CoinState::PerIndex(rng) => {
                let p = self.cycle_probs[step];
                bernoulli_indices(rng, self.informed_list.len(), p, &mut self.scratch);
            }
            CoinState::Batched(ws) => {
                let j = self.cycle_exponents[step];
                bernoulli_pow2_indices(ws, self.informed_list.len(), j, &mut self.scratch);
            }
        }
        for &idx in &self.scratch {
            let u = self.informed_list[idx];
            let v = self.values.get(u).expect("informed nodes have values");
            tx.send(u, v);
        }
    }

    fn deliver(&mut self, _round: Round, node: NodeId, _from: NodeId, msg: &u64) {
        if self.values.merge_max(node, *msg) {
            self.informed_list.push(node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::{generators, Graph};
    use rn_sim::{CollisionModel, Simulator};

    fn run_to_completion<P: Protocol>(
        g: &Graph,
        p: &mut P,
        all_done: impl Fn(&P) -> bool,
        budget: u64,
        seed: u64,
    ) -> Option<u64> {
        let mut sim = Simulator::new(g, CollisionModel::NoCollisionDetection, seed);
        let stats = sim.run_until(p, budget, |_, p| all_done(p));
        if all_done(p) {
            Some(stats.rounds)
        } else {
            None
        }
    }

    #[test]
    fn bgi_completes_on_path() {
        let g = generators::path(64);
        let params = NetParams::of_graph(&g);
        let mut p = DecayBroadcast::single_source(params, 0, 42, 7);
        let rounds =
            run_to_completion(&g, &mut p, |p| p.all_informed(), 200_000, 7).expect("completes");
        assert!(rounds > 0);
        assert!(g.nodes().all(|v| p.value_of(v) == Some(42)));
    }

    #[test]
    fn bgi_completes_on_dense_star() {
        // High-degree hub: decay's low-probability steps are what resolve it.
        let g = generators::star(256);
        let params = NetParams::of_graph(&g);
        let mut p = DecayBroadcast::single_source(params, 5, 1, 3);
        assert!(run_to_completion(&g, &mut p, |p| p.all_informed(), 100_000, 3).is_some());
    }

    #[test]
    fn bgi_multi_source_propagates_max() {
        let g = generators::path(32);
        let params = NetParams::of_graph(&g);
        let mut p = DecayBroadcast::new(params, &[(0, 10), (31, 99), (16, 50)], 11);
        run_to_completion(&g, &mut p, |p| p.all_know_at_least(99), 200_000, 11)
            .expect("max value reaches everyone");
        assert!(g.nodes().all(|v| p.value_of(v) == Some(99)));
    }

    #[test]
    fn bgi_never_transmits_spontaneously() {
        // Uninformed nodes must stay silent: run on a disconnected-ish star
        // where the source is a leaf; total transmissions in the first round
        // can only come from the single informed node.
        let g = generators::star(8);
        let params = NetParams::new(8, 2);
        let mut p = DecayBroadcast::single_source(params, 1, 1, 13);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 13);
        let stats = sim.run(&mut p, 1);
        assert!(stats.metrics.transmissions <= 1);
    }

    #[test]
    fn bgi_batched_coins_complete_and_differ_from_per_index() {
        // The batched sampler is a different (equally valid) random
        // sequence: broadcasting must still complete, and the default
        // sampler's sequence — which all committed baselines pin — must be
        // untouched by its existence.
        let g = generators::path(64);
        let params = NetParams::of_graph(&g);
        let mut batched =
            DecayBroadcast::with_coin_sampler(params, &[(0, 42)], 7, CoinSampler::Batched);
        let batched_rounds = run_to_completion(&g, &mut batched, |p| p.all_informed(), 200_000, 7)
            .expect("batched sampler completes");
        assert!(g.nodes().all(|v| batched.value_of(v) == Some(42)));

        let run_default = || {
            let mut p = DecayBroadcast::single_source(params, 0, 42, 7);
            run_to_completion(&g, &mut p, |p| p.all_informed(), 200_000, 7).expect("completes")
        };
        assert_eq!(run_default(), run_default(), "default sampler is deterministic");
        assert_ne!(
            batched_rounds,
            run_default(),
            "the samplers draw different sequences (same seed)"
        );
    }

    #[test]
    fn duplicate_sources_are_merged() {
        let g = generators::path(4);
        let params = NetParams::of_graph(&g);
        let p = DecayBroadcast::new(params, &[(0, 5), (0, 9)], 1);
        assert_eq!(p.informed_count(), 1);
        assert_eq!(p.value_of(0), Some(9), "keeps the max");
    }

    #[test]
    fn truncated_completes_on_path() {
        let g = generators::path(128);
        let params = NetParams::of_graph(&g);
        let mut p = TruncatedDecayBroadcast::single_source(params, 0, 1, 17);
        assert!(p.truncated_depth() < p.full_depth() || params.log2_n() <= 3);
        assert!(run_to_completion(&g, &mut p, |p| p.all_informed(), 400_000, 17).is_some());
    }

    #[test]
    fn truncated_completes_on_barbell() {
        // The hard case for pure truncation: a dense clique must elect a
        // single speaker to push the message over the bridge. The periodic
        // full-depth rounds handle it.
        let g = generators::barbell(40, 20);
        let params = NetParams::of_graph(&g);
        let mut p = TruncatedDecayBroadcast::single_source(params, 0, 1, 23);
        assert!(run_to_completion(&g, &mut p, |p| p.all_informed(), 400_000, 23).is_some());
    }

    #[test]
    fn truncated_batched_coins_complete_and_differ_from_per_index() {
        // Same contract as the BGI variant: the word-batched sampler is a
        // different valid sequence, completion still holds, and the default
        // per-index sequence is untouched.
        let g = generators::path(128);
        let params = NetParams::of_graph(&g);
        let mut batched = TruncatedDecayBroadcast::with_coin_sampler(
            params,
            &[(0, 42)],
            17,
            CoinSampler::Batched,
        );
        let batched_rounds = run_to_completion(&g, &mut batched, |p| p.all_informed(), 400_000, 17)
            .expect("batched sampler completes");
        assert!(g.nodes().all(|v| batched.value_of(v) == Some(42)));
        let run_default = || {
            let mut p = TruncatedDecayBroadcast::single_source(params, 0, 42, 17);
            run_to_completion(&g, &mut p, |p| p.all_informed(), 400_000, 17).expect("completes")
        };
        assert_eq!(run_default(), run_default(), "default sampler is deterministic");
        assert_ne!(batched_rounds, run_default(), "different sequences for the same seed");
    }

    #[test]
    fn truncated_cycle_exponents_match_probabilities() {
        // The batched sampler draws Bernoulli(2^-j) from the exponent
        // cycle; it must describe exactly the same schedule as the float
        // probabilities the per-index sampler uses.
        let g = generators::barbell(40, 20);
        let params = NetParams::of_graph(&g);
        let p = TruncatedDecayBroadcast::single_source(params, 0, 1, 1);
        assert_eq!(p.cycle_probs.len(), p.cycle_exponents.len());
        for (&prob, &j) in p.cycle_probs.iter().zip(&p.cycle_exponents) {
            assert_eq!(prob, 0.5f64.powi(j as i32), "exponent {j} vs probability {prob}");
        }
    }

    #[test]
    fn truncated_beats_bgi_on_long_paths() {
        // On a long path with n/D = O(1), truncated rounds are ~2-4 steps vs
        // log n for BGI: the paper's §1.3 complexity separation in miniature.
        let g = generators::path(512);
        let params = NetParams::of_graph(&g);
        let mut bgi_total = 0u64;
        let mut trunc_total = 0u64;
        for seed in 0..3 {
            let mut bgi = DecayBroadcast::single_source(params, 0, 1, seed);
            bgi_total +=
                run_to_completion(&g, &mut bgi, |p| p.all_informed(), 2_000_000, seed).unwrap();
            let mut tr = TruncatedDecayBroadcast::single_source(params, 0, 1, seed);
            trunc_total +=
                run_to_completion(&g, &mut tr, |p| p.all_informed(), 2_000_000, seed).unwrap();
        }
        assert!(
            trunc_total < bgi_total,
            "truncated ({trunc_total}) should beat BGI ({bgi_total}) on paths"
        );
    }
}
