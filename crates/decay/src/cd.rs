//! **Beep-wave assisted layered decay** — decay broadcasting that actually
//! *exploits* collision detection instead of merely tolerating it.
//!
//! In the CD model a listener distinguishes silence from collision, so any
//! channel energy carries one bit. This protocol spends that bit twice:
//!
//! 1. **Wave phase** (rounds `0..D+1`): the sources beep in round 0 and
//!    every node that hears *anything* — delivery or collision — beeps once
//!    in the next round. After `D + 1` rounds each reached node knows its
//!    **layer**: its BFS distance to the nearest source, read off the round
//!    in which the wave arrived. Simultaneous sources cost nothing extra
//!    (collisions propagate the wave just as well — they are the wave).
//! 2. **Layered decay phase**: rounds are time-sliced `ℓ mod 3`; in a slot
//!    only nodes whose layer is congruent to it run decay steps. A listener
//!    in layer `ℓ` therefore never suffers collisions between its
//!    same-layer neighbors and the layers `ℓ±1` it actually wants to hear
//!    from — the wave's distance labels convert one bit of CD feedback per
//!    round into a collision-avoiding transmission schedule.
//!
//! Values are max-merged at every hop (the multi-source form is a
//! CD-exploiting Compete analogue: with `K` sources holding distinct
//! values, the protocol completes when every node knows the *maximum*).
//! A node the wave missed (possible under faults) still learns a layer from
//! the first data message it hears, so the labeling self-heals.
//!
//! Run under [`rn_sim::CollisionModel::NoCollisionDetection`] the wave
//! stalls (collisions read as silence) — scenarios built on this protocol
//! therefore pin the CD model via `Runnable::effective_model`, exactly like
//! the beep-probe leader election in `rn_baselines`.

use rn_graph::NodeId;
use rn_sim::{rng, NetParams, NodeValues, Protocol, Round, TxBuf, WordBitset};

/// Message alphabet of [`LayeredDecayCd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdMsg {
    /// Wave-phase presence beep (content-free; collisions carry it too).
    Beep,
    /// Decay-phase payload: the transmitter's current value and layer.
    Value(u64, u32),
}

/// The beep-wave assisted layered decay protocol. See the [module
/// docs](self).
#[derive(Debug)]
pub struct LayeredDecayCd {
    net: NetParams,
    /// Wave phase length: rounds `0..wave_len` belong to the wave.
    wave_len: u64,
    /// Decay depth (number of densities per decay sweep).
    depth: u32,
    /// Nodes that have (or are scheduled to) beep; `beep_round` holds the
    /// round for set bits only. Sources beep in round 0.
    beeped: WordBitset,
    /// Beep round per node, valid where `beeped` is set.
    beep_round: Vec<u64>,
    /// Nodes whose layer is known; `layer` holds the distance for set bits.
    has_layer: WordBitset,
    /// Layer (distance to the nearest source), valid where `has_layer` is
    /// set.
    layer: Vec<u32>,
    /// Highest value known per node (sources start informed); the informed
    /// bitset + dense value array replaces the old `Vec<Option<u64>>`.
    values: NodeValues,
    /// Wave-phase beep schedule as a flat arena of per-round buckets:
    /// `wave_nodes[wave_cur_start..]` is the bucket for the next wave
    /// round. Pushes are strictly monotone in bucket index — round `r`'s
    /// deliveries/collisions only ever schedule beeps for round `r + 1`,
    /// and `transmit(r)` retires its bucket by advancing `wave_cur_start`
    /// — so one `Vec` with a moving start replaces a `Vec<Vec>` per round.
    /// Each node enters at most once (`beeped` gates pushes), so one
    /// up-front reserve of `n` keeps steady-state pooled trials
    /// allocation-free. Buckets are sorted at emission, so the beep order
    /// matches the original full `beep_at` scan without touching all `n`
    /// nodes every wave round.
    wave_nodes: Vec<NodeId>,
    /// Start offset in `wave_nodes` of the bucket currently being filled.
    wave_cur_start: usize,
    /// Decay-phase participants by time slot (`layer % 3`): a node joins
    /// the moment it becomes informed (its layer is fixed by then and never
    /// changes). Iterating set bits in increasing id order reproduces the
    /// original full-vector scan's transmission order exactly — the decay
    /// coins are stateless per `(round, node)` — while a decay round's cost
    /// is proportional to the informed frontier, not `n`.
    slot_members: [WordBitset; 3],
    /// The maximum source value — the completion target of the
    /// Compete-style scenarios built on this protocol.
    max_source_value: u64,
    /// Nodes whose value has reached `max_source_value`, maintained
    /// incrementally so the per-round completion predicate is `O(1)`.
    know_max: usize,
    seed: u64,
}

impl LayeredDecayCd {
    /// Creates the protocol for `sources` (node, value) pairs on an
    /// `n = params.n()` node network.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or names a node `>= n`.
    pub fn new(params: NetParams, sources: &[(NodeId, u64)], seed: u64) -> LayeredDecayCd {
        let mut p = LayeredDecayCd {
            net: params,
            wave_len: 1,
            depth: 1,
            beeped: WordBitset::new(0),
            beep_round: Vec::new(),
            has_layer: WordBitset::new(0),
            layer: Vec::new(),
            values: NodeValues::new(0),
            wave_nodes: Vec::new(),
            wave_cur_start: 0,
            slot_members: [WordBitset::new(0), WordBitset::new(0), WordBitset::new(0)],
            max_source_value: 0,
            know_max: 0,
            seed,
        };
        p.reset(params, sources, seed);
        p
    }

    /// Re-arms the protocol for a fresh trial, reusing every allocation —
    /// observably identical to [`LayeredDecayCd::new`] with the same
    /// arguments (the fresh constructor is this method applied to an empty
    /// shell). Stale per-node entries are unobservable behind their cleared
    /// bitsets, except for the sources' `beep_round`/`layer`, which are
    /// re-zeroed explicitly. Wave buckets keep their capacities; their
    /// per-trial fill varies, so the decay-CD pooled path is low-alloc
    /// rather than provably allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or names a node `>= n`.
    pub fn reset(&mut self, params: NetParams, sources: &[(NodeId, u64)], seed: u64) {
        assert!(!sources.is_empty(), "layered decay needs at least one source");
        let n = params.n();
        self.net = params;
        self.wave_len = params.diameter() as u64 + 1;
        self.depth = params.log2_n().max(1);
        self.beeped.reset_capacity(n);
        self.beeped.clear_all();
        if self.beep_round.len() != n {
            self.beep_round.clear();
            self.beep_round.resize(n, 0);
        }
        self.has_layer.reset_capacity(n);
        self.has_layer.clear_all();
        if self.layer.len() != n {
            self.layer.clear();
            self.layer.resize(n, 0);
        }
        self.values.reset(n);
        self.wave_nodes.clear();
        self.wave_nodes.reserve(n);
        self.wave_cur_start = 0;
        for s in &mut self.slot_members {
            s.reset_capacity(n);
            s.clear_all();
        }
        for &(s, v) in sources {
            assert!((s as usize) < n, "source {s} out of range for {n} nodes");
            if self.beeped.set(s as usize) {
                // Sources beep in round 0 at layer 0 — overwrite any stale
                // entry from a previous trial.
                self.beep_round[s as usize] = 0;
                self.layer[s as usize] = 0;
                self.wave_nodes.push(s);
            }
            self.has_layer.set(s as usize);
            if self.values.merge_max(s, v) {
                self.slot_members[0].set(s as usize);
            }
        }
        self.max_source_value = sources.iter().map(|&(_, v)| v).max().unwrap();
        self.know_max = (0..n)
            .filter(|&v| self.values.get(v as NodeId).is_some_and(|x| x >= self.max_source_value))
            .count();
        self.seed = seed;
    }

    /// Round budget within which the protocol completes on a connected
    /// graph in the sunny case: the wave plus three times the classical
    /// decay budget (the `mod 3` slicing idles each layer two rounds in
    /// three).
    pub fn budget(&self) -> u64 {
        self.wave_len + 3 * self.net.decay_broadcast_budget()
    }

    /// Whether every node knows a value `>= target` (use the maximum source
    /// value for the Compete-style completion predicate).
    ///
    /// For the canonical target — the maximum source value, which is what
    /// the registered scenarios poll every round — this is an `O(1)`
    /// counter read; other targets fall back to a full scan.
    pub fn all_know_at_least(&self, target: u64) -> bool {
        if target == self.max_source_value {
            return self.know_max == self.values.len();
        }
        self.values.all_know_at_least(target)
    }

    /// The value currently known by `node`.
    pub fn value_of(&self, node: NodeId) -> Option<u64> {
        self.values.get(node)
    }

    /// The layer (distance to the nearest source) `node` has learned, if
    /// any.
    pub fn layer_of(&self, node: NodeId) -> Option<u32> {
        self.has_layer.contains(node as usize).then(|| self.layer[node as usize])
    }

    /// Number of informed nodes.
    pub fn informed_count(&self) -> usize {
        self.values.informed_count()
    }

    fn wave_hears(&mut self, round: Round, node: NodeId) {
        if round + 1 >= self.wave_len {
            return;
        }
        if self.beeped.set(node as usize) {
            self.beep_round[node as usize] = round + 1;
            self.has_layer.set(node as usize);
            self.layer[node as usize] = (round + 1) as u32;
            self.wave_nodes.push(node);
        }
    }

    /// Records that `node` just became informed (first `merge_max` hit):
    /// joins its layer's decay slot. The layer is always known by this
    /// point and never changes afterwards, so slot membership is final.
    fn joins_decay(&mut self, node: NodeId) {
        assert!(self.has_layer.contains(node as usize), "informed node must have a layer");
        let layer = self.layer[node as usize];
        self.slot_members[(layer % 3) as usize].set(node as usize);
    }
}

impl Protocol for LayeredDecayCd {
    type Msg = CdMsg;

    fn transmit(&mut self, round: Round, tx: &mut TxBuf<CdMsg>) {
        if round < self.wave_len {
            // This round's bucket was filled during round - 1 (in engine
            // discovery order) and is complete by now; sorting restores the
            // increasing-id emission order of the original beep_at scan.
            self.wave_nodes[self.wave_cur_start..].sort_unstable();
            for i in self.wave_cur_start..self.wave_nodes.len() {
                tx.send(self.wave_nodes[i], CdMsg::Beep);
            }
            // Retire the bucket: deliveries of this round fill the next.
            self.wave_cur_start = self.wave_nodes.len();
            return;
        }
        let r2 = round - self.wave_len;
        let slot = (r2 % 3) as usize;
        // Decay density for this slot's sweep position.
        let i = ((r2 / 3) % self.depth as u64) as u32;
        let p = 0.5f64.powi(i as i32);
        let round_seed = rng::derive(self.seed, round);
        // Only this slot's informed nodes, in increasing id order — the
        // same nodes the original 0..n scan would have reached, drawing the
        // same stateless per-(round, node) coins.
        for v in self.slot_members[slot].iter_ones() {
            let Some(val) = self.values.get(v as NodeId) else { continue };
            let layer = self.layer[v];
            let coin = (rng::derive(round_seed, v as u64) >> 11) as f64 / (1u64 << 53) as f64;
            if coin < p {
                tx.send(v as NodeId, CdMsg::Value(val, layer));
            }
        }
    }

    fn deliver(&mut self, round: Round, node: NodeId, _from: NodeId, msg: &CdMsg) {
        match *msg {
            CdMsg::Beep => self.wave_hears(round, node),
            CdMsg::Value(val, sender_layer) => {
                // Wave stragglers adopt a layer from the first data message
                // (one hop further out than the sender).
                if self.has_layer.set(node as usize) {
                    self.layer[node as usize] = sender_layer + 1;
                }
                let max = self.max_source_value;
                let was_at_max = self.values.get(node).is_some_and(|x| x >= max);
                let newly_informed = self.values.merge_max(node, val);
                if !was_at_max && val >= max {
                    self.know_max += 1;
                }
                if newly_informed {
                    self.joins_decay(node);
                }
            }
        }
    }

    fn collision(&mut self, round: Round, node: NodeId) {
        // The CD model's extra power: during the wave, a collision carries
        // the presence bit exactly like a delivery.
        if round < self.wave_len {
            self.wave_hears(round, node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;
    use rn_sim::{CollisionModel, Simulator};

    #[test]
    fn wave_labels_layers_with_bfs_distances() {
        let g = generators::grid(8, 8);
        let net = NetParams::of_graph(&g);
        let mut p = LayeredDecayCd::new(net, &[(0, 7)], 3);
        let wave = p.wave_len;
        let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, 3);
        sim.run(&mut p, wave);
        let dist = rn_graph::traversal::bfs(&g, 0);
        for v in g.nodes() {
            assert_eq!(p.layer_of(v), Some(dist[v as usize]), "layer of node {v}");
        }
    }

    #[test]
    fn single_source_completes_under_cd_and_stalls_without_it() {
        let g = generators::grid(8, 8);
        let net = NetParams::of_graph(&g);
        let mut p = LayeredDecayCd::new(net, &[(0, 42)], 5);
        let budget = p.budget();
        let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, 5);
        sim.run_until(&mut p, budget, |_, p| p.all_know_at_least(42));
        assert!(p.all_know_at_least(42), "CD run informs everyone");

        // The identical protocol without collision detection: the wave
        // stalls wherever two beepers collide, so layers go missing and the
        // run cannot complete on a graph wide enough to collide.
        let g = generators::grid(6, 6);
        let net = NetParams::of_graph(&g);
        let mut p = LayeredDecayCd::new(net, &[(0, 42), (35, 41)], 5);
        let budget = p.wave_len;
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 5);
        sim.run(&mut p, budget);
        let labeled = g.nodes().filter(|&v| p.layer_of(v).is_some()).count();
        assert!(labeled < g.n(), "without CD the wave must lose nodes to collisions");
    }

    #[test]
    fn multi_source_max_reaches_everyone() {
        // Competing sources at opposite corners: the max value must cross
        // the watershed between their wave regions.
        let g = generators::grid(9, 9);
        let net = NetParams::of_graph(&g);
        let sources = [(0u32, 5u64), (80u32, 9u64), (8u32, 3u64)];
        let mut p = LayeredDecayCd::new(net, &sources, 11);
        let budget = p.budget();
        let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, 11);
        let stats = sim.run_until(&mut p, budget, |_, p| p.all_know_at_least(9));
        assert!(p.all_know_at_least(9), "everyone learns the maximum");
        assert!(stats.rounds > p.wave_len, "completion needs the decay phase");
    }

    #[test]
    fn fast_path_transmissions_match_the_dense_scan_every_round() {
        // The bucketed wave and slot-bitset decay iteration must transmit
        // exactly the nodes the original dense 0..n scans selected. The
        // dense scans are re-derived here from the protocol's full state
        // (the coins are stateless per (round, node), so they can be
        // recomputed) and checked against the engine's per-round
        // transmission count, round by round.
        let g = generators::grid(7, 7);
        let net = NetParams::of_graph(&g);
        let mut p = LayeredDecayCd::new(net, &[(0, 5), (48, 9)], 13);
        let budget = p.budget().min(200);
        let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, 13);
        let mut last_tx = 0;
        for round in 0..budget {
            let expected = if round < p.wave_len {
                (0..g.n()).filter(|&v| p.beeped.contains(v) && p.beep_round[v] == round).count()
                    as u64
            } else {
                let r2 = round - p.wave_len;
                let slot = (r2 % 3) as u32;
                let i = ((r2 / 3) % p.depth as u64) as u32;
                let prob = 0.5f64.powi(i as i32);
                let round_seed = rng::derive(p.seed, round);
                (0..p.values.len())
                    .filter(|&v| {
                        if !p.has_layer.contains(v) || !p.values.is_informed(v as NodeId) {
                            return false;
                        }
                        p.layer[v] % 3 == slot
                            && ((rng::derive(round_seed, v as u64) >> 11) as f64
                                / (1u64 << 53) as f64)
                                < prob
                    })
                    .count() as u64
            };
            sim.step_with(&mut p);
            let tx = sim.metrics().transmissions;
            assert_eq!(tx - last_tx, expected, "transmitter count diverged in round {round}");
            last_tx = tx;
        }
        assert!(p.all_know_at_least(9), "the run completes within budget");
        assert_eq!(
            p.informed_count(),
            p.values.informed().count_ones(),
            "incremental informed counter matches a dense recount"
        );
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let g = generators::grid(6, 6);
        let net = NetParams::of_graph(&g);
        let run = |seed: u64| {
            let mut p = LayeredDecayCd::new(net, &[(0, 1), (20, 2)], seed);
            let budget = p.budget();
            let mut sim = Simulator::new(&g, CollisionModel::CollisionDetection, seed);
            let stats = sim.run_until(&mut p, budget, |_, p| p.all_know_at_least(2));
            (stats.rounds, stats.metrics)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds give different executions");
    }
}
