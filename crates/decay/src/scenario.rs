//! [`Runnable`] scenario for the raw decay primitive: multi-source
//! max-propagating decay broadcast, the building block measured on its own
//! terms in campaigns (the single-source wrappers with baseline budgets live
//! in `rn_baselines`).

use crate::broadcast::{DecayBroadcast, TruncatedDecayBroadcast};
use rn_graph::{Graph, NodeId};
use rn_sim::{CollisionModel, FaultSchedule, NetParams, Runnable, Simulator, TrialRecord};

/// Multi-source decay broadcast with `sources` evenly spread sources holding
/// distinct values; completes when every node is informed. `truncated`
/// selects the truncated-decay variant.
#[derive(Debug, Clone, Copy)]
pub struct DecayScenario {
    /// Number of sources (evenly spaced over the id range, values `1..=k`).
    pub sources: usize,
    /// Run [`TruncatedDecayBroadcast`] instead of plain [`DecayBroadcast`].
    pub truncated: bool,
}

impl DecayScenario {
    /// Plain multi-source decay with `sources` sources.
    pub fn new(sources: usize) -> DecayScenario {
        DecayScenario { sources: sources.max(1), truncated: false }
    }

    /// Truncated-decay variant with `sources` sources.
    pub fn truncated(sources: usize) -> DecayScenario {
        DecayScenario { sources: sources.max(1), truncated: true }
    }

    /// Evenly spaced source placement (deterministic in the graph size).
    fn place_sources(&self, n: usize) -> Vec<(NodeId, u64)> {
        let k = self.sources.min(n);
        (0..k).map(|i| (((i * n) / k) as NodeId, (i + 1) as u64)).collect()
    }
}

impl Runnable for DecayScenario {
    fn name(&self) -> String {
        if self.truncated {
            format!("decay_trunc({})", self.sources)
        } else {
            format!("decay({})", self.sources)
        }
    }

    fn run_trial_scheduled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
    ) -> TrialRecord {
        let sources = self.place_sources(g.n());
        let mut sim = Simulator::with_faults(g, model, seed, faults.cloned());
        if self.truncated {
            let mut p = TruncatedDecayBroadcast::new(net, &sources, seed);
            let stats =
                sim.run_until(&mut p, net.decay_broadcast_budget(), |_, p| p.all_informed());
            TrialRecord::new(p.all_informed(), stats.rounds, stats.metrics)
        } else {
            let mut p = DecayBroadcast::new(net, &sources, seed);
            let stats =
                sim.run_until(&mut p, net.decay_broadcast_budget(), |_, p| p.all_informed());
            TrialRecord::new(p.all_informed(), stats.rounds, stats.metrics)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    #[test]
    fn decay_scenario_completes_and_names_stably() {
        let g = generators::grid(10, 10);
        let net = NetParams::of_graph(&g);
        let plain = DecayScenario::new(4);
        assert_eq!(plain.name(), "decay(4)");
        let r = plain.run_trial(&g, net, CollisionModel::NoCollisionDetection, 3);
        assert!(r.completed);
        assert!(r.metrics.deliveries > 0);

        let trunc = DecayScenario::truncated(2);
        assert_eq!(trunc.name(), "decay_trunc(2)");
        let r = trunc.run_trial(&g, net, CollisionModel::NoCollisionDetection, 3);
        assert!(r.completed);
    }

    #[test]
    fn decay_scenario_runs_under_faults_without_scenario_code() {
        use rn_sim::FaultPlan;
        let g = generators::grid(6, 6);
        let net = NetParams::of_graph(&g);
        let s = DecayScenario::new(2);
        // Total jamming: decay cannot inform anyone beyond the sources.
        let r = s.run_trial_under_faults(
            &g,
            net,
            CollisionModel::NoCollisionDetection,
            3,
            &FaultPlan::jam(36, 1.0),
        );
        assert!(!r.completed, "no false completion under total jamming");
        assert_eq!(r.metrics.deliveries, 0, "noise is not a delivery");
        // A faulted trial is a pure function of (seed, plan).
        let plan = FaultPlan::try_new(3, 0.5, 0.02).expect("valid plan");
        let a = s.run_trial_under_faults(&g, net, CollisionModel::NoCollisionDetection, 3, &plan);
        let b = s.run_trial_under_faults(&g, net, CollisionModel::NoCollisionDetection, 3, &plan);
        assert_eq!(a, b);
    }

    #[test]
    fn sources_are_clamped_to_graph_size() {
        let s = DecayScenario::new(100);
        let placed = s.place_sources(10);
        assert_eq!(placed.len(), 10);
        assert!(placed.iter().all(|&(v, _)| (v as usize) < 10));
        // Distinct placements.
        let mut ids: Vec<_> = placed.iter().map(|&(v, _)| v).collect();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }
}
