//! [`Runnable`] scenarios for the decay family: multi-source max-propagating
//! decay broadcast, its truncated variant, and the CD-*exploiting*
//! beep-wave-assisted variants (`broadcast_cd` / `compete_cd(K)`) — the
//! building blocks measured on their own terms in campaigns (the
//! single-source wrappers with baseline budgets live in `rn_baselines`).

use crate::broadcast::{CoinSampler, DecayBroadcast, TruncatedDecayBroadcast};
use crate::cd::{CdMsg, LayeredDecayCd};
use rn_graph::{Graph, NodeId};
use rn_sim::{
    rng, CollisionModel, FaultSchedule, NetParams, Runnable, Simulator, TrialPool, TrialRecord,
    TxBuf,
};

/// Multi-source decay broadcast with `sources` evenly spread sources holding
/// distinct values; completes when every node is informed. `truncated`
/// selects the truncated-decay variant.
#[derive(Debug, Clone)]
pub struct DecayScenario {
    /// Number of sources (evenly spaced over the id range, values `1..=k`).
    pub sources: usize,
    /// Run [`TruncatedDecayBroadcast`] instead of plain [`DecayBroadcast`].
    pub truncated: bool,
    /// How trials draw their transmission coins ([`CoinSampler::PerIndex`]
    /// unless the `{coins=batched}` override selects otherwise).
    pub coins: CoinSampler,
    /// The canonical spec label this scenario reports as its name (the
    /// registry requires `Runnable::name` to equal the full spec string,
    /// overrides included).
    label: String,
}

impl DecayScenario {
    /// Plain multi-source decay with `sources` sources.
    pub fn new(sources: usize) -> DecayScenario {
        let sources = sources.max(1);
        DecayScenario {
            sources,
            truncated: false,
            coins: CoinSampler::default(),
            label: format!("decay({sources})"),
        }
    }

    /// Truncated-decay variant with `sources` sources.
    pub fn truncated(sources: usize) -> DecayScenario {
        let sources = sources.max(1);
        DecayScenario {
            sources,
            truncated: true,
            coins: CoinSampler::default(),
            label: format!("decay_trunc({sources})"),
        }
    }

    /// Selects the coin sampler and the label the scenario reports
    /// (builder-style, for family instantiation with overrides).
    pub fn with_coins(mut self, coins: CoinSampler, label: impl Into<String>) -> DecayScenario {
        self.coins = coins;
        self.label = label.into();
        self
    }

    /// Evenly spaced source placement (deterministic in the graph size).
    fn place_sources(&self, n: usize) -> Vec<(NodeId, u64)> {
        let k = self.sources.min(n);
        (0..k).map(|i| (((i * n) / k) as NodeId, (i + 1) as u64)).collect()
    }

    /// [`DecayScenario::place_sources`] into a pooled buffer.
    fn place_sources_into(&self, n: usize, out: &mut Vec<(NodeId, u64)>) {
        let k = self.sources.min(n);
        out.clear();
        out.extend((0..k).map(|i| (((i * n) / k) as NodeId, (i + 1) as u64)));
    }
}

/// Per-worker reusable state behind [`DecayScenario`]'s pooled trials:
/// the source list, the typed transmission buffer, and one protocol of
/// each variant (re-armed per trial via `reset`).
#[derive(Debug, Default)]
struct DecayPool {
    sources: Vec<(NodeId, u64)>,
    plain: Option<DecayBroadcast>,
    trunc: Option<TruncatedDecayBroadcast>,
    tx: TxBuf<u64>,
}

impl Runnable for DecayScenario {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_trial_scheduled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
    ) -> TrialRecord {
        let sources = self.place_sources(g.n());
        let mut sim = Simulator::with_faults(g, model, seed, faults.cloned());
        if self.truncated {
            let mut p = TruncatedDecayBroadcast::with_coin_sampler(net, &sources, seed, self.coins);
            let stats =
                sim.run_until(&mut p, net.decay_broadcast_budget(), |_, p| p.all_informed());
            TrialRecord::new(p.all_informed(), stats.rounds, stats.metrics)
        } else {
            let mut p = DecayBroadcast::with_coin_sampler(net, &sources, seed, self.coins);
            let stats =
                sim.run_until(&mut p, net.decay_broadcast_budget(), |_, p| p.all_informed());
            TrialRecord::new(p.all_informed(), stats.rounds, stats.metrics)
        }
    }

    fn run_trial_pooled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
        pool: &mut TrialPool,
    ) -> TrialRecord {
        let (engine, st) = pool.parts(DecayPool::default);
        self.place_sources_into(g.n(), &mut st.sources);
        st.tx.clear();
        st.tx.reserve(g.n());
        let mut sim = Simulator::reuse(engine, g, model, seed, faults.cloned());
        let budget = net.decay_broadcast_budget();
        if self.truncated {
            match &mut st.trunc {
                Some(p) => p.reset(net, &st.sources, seed, self.coins),
                slot @ None => {
                    *slot = Some(TruncatedDecayBroadcast::with_coin_sampler(
                        net,
                        &st.sources,
                        seed,
                        self.coins,
                    ))
                }
            }
            let p = st.trunc.as_mut().expect("slot was just filled");
            let stats = sim.run_until_with_buf(p, &mut st.tx, budget, |_, p| p.all_informed());
            TrialRecord::new(p.all_informed(), stats.rounds, stats.metrics)
        } else {
            match &mut st.plain {
                Some(p) => p.reset(net, &st.sources, seed, self.coins),
                slot @ None => {
                    *slot =
                        Some(DecayBroadcast::with_coin_sampler(net, &st.sources, seed, self.coins))
                }
            }
            let p = st.plain.as_mut().expect("slot was just filled");
            let stats = sim.run_until_with_buf(p, &mut st.tx, budget, |_, p| p.all_informed());
            TrialRecord::new(p.all_informed(), stats.rounds, stats.metrics)
        }
    }
}

/// CD-exploiting scenario over [`LayeredDecayCd`]: `broadcast_cd` (one
/// source, node 0 — comparable to `broadcast`/`bgi` cells) or
/// `compete_cd(K)` (`K` distinct uniform-random sources holding values
/// `1..=K`, completion = everyone knows the maximum — the CD analogue of
/// `compete(K)`).
///
/// The beep wave only works when listeners can tell collisions from
/// silence, so [`Runnable::effective_model`] pins the collision-detection
/// model whatever the campaign axis requested — records always state the
/// model trials truly ran under, and the `cd` axis gets an algorithm that
/// *uses* the extra bit rather than merely tolerating it.
#[derive(Debug, Clone, Copy)]
pub struct CdDecayScenario {
    /// Number of sources (`compete_cd(K)` places them uniform-random and
    /// distinct per trial; the `broadcast_cd` form has exactly one).
    pub sources: usize,
    /// `broadcast_cd`: pin the single source to node 0 (comparable with
    /// `broadcast`/`bgi` cells) instead of drawing it per trial. The two
    /// forms are distinct registry families even at one source —
    /// `compete_cd(1)` keeps its own name and its random placement.
    pub fixed_origin: bool,
}

impl CdDecayScenario {
    /// Single-source `broadcast_cd` from node 0.
    pub fn broadcast() -> CdDecayScenario {
        CdDecayScenario { sources: 1, fixed_origin: true }
    }

    /// Multi-source `compete_cd(K)`.
    ///
    /// # Panics
    ///
    /// Panics if `sources == 0`.
    pub fn compete(sources: usize) -> CdDecayScenario {
        assert!(sources >= 1, "compete_cd needs at least one source (got 0)");
        CdDecayScenario { sources, fixed_origin: false }
    }
}

impl Runnable for CdDecayScenario {
    fn name(&self) -> String {
        if self.fixed_origin {
            "broadcast_cd".into()
        } else {
            format!("compete_cd({})", self.sources)
        }
    }

    fn effective_model(&self, _requested: CollisionModel) -> CollisionModel {
        CollisionModel::CollisionDetection
    }

    fn run_trial_scheduled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
    ) -> TrialRecord {
        assert!(
            self.sources <= g.n(),
            "compete_cd({}) needs {} distinct sources but the graph has only {} nodes",
            self.sources,
            self.sources,
            g.n()
        );
        // Placement mirrors compete(K): distinct uniform nodes from a
        // dedicated stream of the trial seed, values 1..=K in draw order —
        // except broadcast_cd, which pins node 0 so its cells compare
        // directly with broadcast/bgi.
        let sources: Vec<(NodeId, u64)> = if self.fixed_origin {
            vec![(0, 1)]
        } else {
            let mut srng = rng::stream_rng(seed, 0x50C);
            rng::sample_distinct(&mut srng, self.sources, g.n())
                .into_iter()
                .enumerate()
                .map(|(k, v)| (v as NodeId, (k + 1) as u64))
                .collect()
        };
        let target = sources.iter().map(|&(_, v)| v).max().expect("at least one source");
        let mut p = LayeredDecayCd::new(net, &sources, seed);
        let budget = p.budget();
        let mut sim = Simulator::with_faults(g, model, seed, faults.cloned());
        let stats = sim.run_until(&mut p, budget, |_, p| p.all_know_at_least(target));
        TrialRecord::new(p.all_know_at_least(target), stats.rounds, stats.metrics)
    }

    fn run_trial_pooled(
        &self,
        g: &Graph,
        net: NetParams,
        model: CollisionModel,
        seed: u64,
        faults: Option<&FaultSchedule>,
        pool: &mut TrialPool,
    ) -> TrialRecord {
        assert!(
            self.sources <= g.n(),
            "compete_cd({}) needs {} distinct sources but the graph has only {} nodes",
            self.sources,
            self.sources,
            g.n()
        );
        let (engine, st) = pool.parts(CdDecayPool::default);
        st.sources.clear();
        if self.fixed_origin {
            st.sources.push((0, 1));
        } else {
            // Draw-identical to `sample_distinct`, but into the pooled
            // index buffer: steady-state placement stays off the heap.
            let mut srng = rng::stream_rng(seed, 0x50C);
            rng::sample_distinct_into(&mut srng, self.sources, g.n(), &mut st.place_idx);
            st.sources.extend(
                st.place_idx.iter().enumerate().map(|(k, &v)| (v as NodeId, (k + 1) as u64)),
            );
        }
        let target = st.sources.iter().map(|&(_, v)| v).max().expect("at least one source");
        match &mut st.protocol {
            Some(p) => p.reset(net, &st.sources, seed),
            slot @ None => *slot = Some(LayeredDecayCd::new(net, &st.sources, seed)),
        }
        let p = st.protocol.as_mut().expect("slot was just filled");
        let budget = p.budget();
        st.tx.clear();
        st.tx.reserve(g.n());
        let mut sim = Simulator::reuse(engine, g, model, seed, faults.cloned());
        let stats =
            sim.run_until_with_buf(p, &mut st.tx, budget, |_, p| p.all_know_at_least(target));
        TrialRecord::new(p.all_know_at_least(target), stats.rounds, stats.metrics)
    }
}

/// Per-worker reusable state behind [`CdDecayScenario`]'s pooled trials.
#[derive(Debug, Default)]
struct CdDecayPool {
    place_idx: Vec<usize>,
    sources: Vec<(NodeId, u64)>,
    protocol: Option<LayeredDecayCd>,
    tx: TxBuf<CdMsg>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    #[test]
    fn decay_scenario_completes_and_names_stably() {
        let g = generators::grid(10, 10);
        let net = NetParams::of_graph(&g);
        let plain = DecayScenario::new(4);
        assert_eq!(plain.name(), "decay(4)");
        let r = plain.run_trial(&g, net, CollisionModel::NoCollisionDetection, 3);
        assert!(r.completed);
        assert!(r.metrics.deliveries > 0);

        let trunc = DecayScenario::truncated(2);
        assert_eq!(trunc.name(), "decay_trunc(2)");
        let r = trunc.run_trial(&g, net, CollisionModel::NoCollisionDetection, 3);
        assert!(r.completed);
    }

    #[test]
    fn decay_scenario_runs_under_faults_without_scenario_code() {
        use rn_sim::FaultPlan;
        let g = generators::grid(6, 6);
        let net = NetParams::of_graph(&g);
        let s = DecayScenario::new(2);
        // Total jamming: decay cannot inform anyone beyond the sources.
        let r = s.run_trial_under_faults(
            &g,
            net,
            CollisionModel::NoCollisionDetection,
            3,
            &FaultPlan::jam(36, 1.0),
        );
        assert!(!r.completed, "no false completion under total jamming");
        assert_eq!(r.metrics.deliveries, 0, "noise is not a delivery");
        // A faulted trial is a pure function of (seed, plan).
        let plan = FaultPlan::try_new(3, 0.5, 0.02, 0.0).expect("valid plan");
        let a = s.run_trial_under_faults(&g, net, CollisionModel::NoCollisionDetection, 3, &plan);
        let b = s.run_trial_under_faults(&g, net, CollisionModel::NoCollisionDetection, 3, &plan);
        assert_eq!(a, b);
    }

    #[test]
    fn cd_scenarios_complete_under_the_pinned_cd_model() {
        let g = generators::grid(8, 8);
        let net = NetParams::of_graph(&g);
        let b = CdDecayScenario::broadcast();
        assert_eq!(b.name(), "broadcast_cd");
        // The axis may request nocd; the scenario pins CD.
        let model = b.effective_model(CollisionModel::NoCollisionDetection);
        assert_eq!(model, CollisionModel::CollisionDetection);
        let r = b.run_trial(&g, net, model, 3);
        assert!(r.completed, "broadcast_cd completes on grid-8x8");
        assert!(r.metrics.deliveries > 0);

        let c = CdDecayScenario::compete(4);
        assert_eq!(c.name(), "compete_cd(4)");
        let a = c.run_trial(&g, net, model, 9);
        let again = c.run_trial(&g, net, model, 9);
        assert_eq!(a, again, "same seed, same trial");
        assert!(a.completed, "compete_cd(4) completes on grid-8x8");
    }

    #[test]
    fn cd_scenario_degrades_honestly_under_faults() {
        use rn_sim::FaultPlan;
        let g = generators::grid(6, 6);
        let net = NetParams::of_graph(&g);
        let s = CdDecayScenario::broadcast();
        let model = CollisionModel::CollisionDetection;
        // Crash-stop everyone almost immediately: the wave dies, nothing
        // completes — and the trial reports that honestly.
        let r = s.run_trial_under_faults(&g, net, model, 3, &FaultPlan::crash(0.9));
        assert!(!r.completed, "no false completion when the network crash-stops");
        // A mild crash plan is deterministic in (seed, plan).
        let plan = FaultPlan::crash(0.001);
        let a = s.run_trial_under_faults(&g, net, model, 3, &plan);
        let b = s.run_trial_under_faults(&g, net, model, 3, &plan);
        assert_eq!(a, b);
    }

    #[test]
    fn compete_cd_at_one_source_keeps_its_name_and_random_placement() {
        // Regression: compete_cd(1) used to instantiate as "broadcast_cd"
        // (mislabeling campaign cells and bench-diff keys) with its source
        // silently pinned to node 0. The two forms stay distinct.
        let one = CdDecayScenario::compete(1);
        assert_eq!(one.name(), "compete_cd(1)");
        assert!(!one.fixed_origin, "compete_cd(1) draws its source per trial");
        assert_eq!(CdDecayScenario::broadcast().name(), "broadcast_cd");
        // And it is a genuinely different workload: on a path, the trial
        // stream differs from the node-0-pinned broadcast for some seed.
        let g = generators::path(40);
        let net = NetParams::of_graph(&g);
        let model = CollisionModel::CollisionDetection;
        let differs = (0..8).any(|seed| {
            one.run_trial(&g, net, model, seed)
                != CdDecayScenario::broadcast().run_trial(&g, net, model, seed)
        });
        assert!(differs, "random placement must not collapse onto node 0 for every seed");
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn compete_cd_rejects_zero_sources() {
        CdDecayScenario::compete(0);
    }

    #[test]
    fn pooled_trials_match_fresh_trials_exactly() {
        // One pool survives scenario-type switches (the slot re-creates on
        // downcast mismatch) and graph-size switches (every reset re-sizes);
        // pooling must move allocations, never results.
        let graphs = [generators::grid(8, 8), generators::path(50)];
        let mut pool = TrialPool::new();
        for s in [DecayScenario::new(4), DecayScenario::truncated(2)] {
            for g in &graphs {
                let net = NetParams::of_graph(g);
                let model = CollisionModel::NoCollisionDetection;
                for seed in 0..4 {
                    let fresh = s.run_trial(g, net, model, seed);
                    let pooled = s.run_trial_pooled(g, net, model, seed, None, &mut pool);
                    assert_eq!(fresh, pooled, "{} n={} seed {seed}", s.name(), g.n());
                }
            }
        }
        for s in [CdDecayScenario::broadcast(), CdDecayScenario::compete(3)] {
            for g in &graphs {
                let net = NetParams::of_graph(g);
                let model = CollisionModel::CollisionDetection;
                for seed in 0..4 {
                    let fresh = s.run_trial(g, net, model, seed);
                    let pooled = s.run_trial_pooled(g, net, model, seed, None, &mut pool);
                    assert_eq!(fresh, pooled, "{} n={} seed {seed}", s.name(), g.n());
                }
            }
        }
        // Faulted trials reuse the pool identically.
        let g = generators::grid(6, 6);
        let net = NetParams::of_graph(&g);
        let s = DecayScenario::new(2);
        let schedule =
            rn_sim::FaultPlan::try_new(2, 0.3, 0.02, 0.01).expect("valid plan").resolve(g.n(), 99);
        let fresh = s.run_trial_scheduled(
            &g,
            net,
            CollisionModel::NoCollisionDetection,
            5,
            Some(&schedule),
        );
        let pooled = s.run_trial_pooled(
            &g,
            net,
            CollisionModel::NoCollisionDetection,
            5,
            Some(&schedule),
            &mut pool,
        );
        assert_eq!(fresh, pooled, "pooled faulted trial replays the scheduled one");
    }

    #[test]
    fn sources_are_clamped_to_graph_size() {
        let s = DecayScenario::new(100);
        let placed = s.place_sources(10);
        assert_eq!(placed.len(), 10);
        assert!(placed.iter().all(|&(v, _)| (v as usize) < 10));
        // Distinct placements.
        let mut ids: Vec<_> = placed.iter().map(|&(v, _)| v).collect();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }
}
