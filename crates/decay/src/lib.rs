//! The **Decay** transmission primitive and the classic decay-based
//! broadcasting algorithms.
//!
//! Decay (Bar-Yehuda, Goldreich & Itai, 1992 — Algorithm 5 of Czumaj &
//! Davies) is the fundamental randomized collision-avoidance primitive of
//! radio networks: over `⌈log n⌉` steps, each participating node transmits
//! with probability `2^-i` in step `i`. Whatever the number of participants
//! around a listener, some step's probability is within a factor two of the
//! inverse of that number, so the listener receives with constant
//! probability per decay round (Lemma 3.1).
//!
//! This crate provides:
//!
//! * [`DecaySteps`] — the step/probability bookkeeping shared by every
//!   decay-based protocol in the workspace;
//! * [`SingleDecayRound`] — a one-round experiment protocol for measuring
//!   Lemma 3.1 directly;
//! * [`DecayBroadcast`] — the BGI broadcasting algorithm
//!   (`O((D + log n)·log n)` whp), the baseline the paper's §1.3 compares
//!   against, in its multi-source max-propagating form;
//! * [`TruncatedDecayBroadcast`] — a truncated-decay variant exhibiting the
//!   `O(D·log(n/D) + log² n)` complexity *shape* of Czumaj–Rytter /
//!   Kowalski–Pelc (documented substitution; see `DESIGN.md` §3.3).
//!
//! # Example
//!
//! ```
//! use rn_decay::DecayBroadcast;
//! use rn_graph::generators;
//! use rn_sim::{CollisionModel, NetParams, Simulator};
//!
//! let g = generators::path(32);
//! let params = NetParams::of_graph(&g);
//! let mut p = DecayBroadcast::single_source(params, 0, 7, 123);
//! let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, 123);
//! let stats = sim.run_until(&mut p, 100_000, |_, p| p.all_informed());
//! assert!(p.all_informed());
//! assert!(stats.rounds < 100_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broadcast;
mod cd;
mod family;
mod primitive;
mod scenario;

pub use broadcast::{CoinSampler, DecayBroadcast, TruncatedDecayBroadcast};
pub use cd::{CdMsg, LayeredDecayCd};
pub use family::{families, BroadcastCdFamily, CompeteCdFamily, DecayFamily, DecayTruncFamily};
pub use primitive::{DecaySteps, SingleDecayRound};
pub use scenario::{CdDecayScenario, DecayScenario};
