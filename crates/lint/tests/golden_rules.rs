//! Golden test for the rule listing (`rn_lint --rules`): adding, removing,
//! renaming, or re-describing a rule must show up as a reviewed diff of
//! `tests/golden_rules.txt` — the deny-by-default surface cannot drift
//! silently. CI diffs the same file against the live binary output.
//!
//! To refresh after an intentional change:
//!
//! ```text
//! cargo run -p rn_lint -- --rules > crates/lint/tests/golden_rules.txt
//! ```

#[test]
fn rules_listing_matches_the_committed_golden_file() {
    let golden = include_str!("golden_rules.txt");
    let live = rn_lint::rules_listing();
    assert!(
        live == golden,
        "`rn_lint --rules` output drifted from tests/golden_rules.txt.\n\
         If the change is intentional, refresh the golden file (see the\n\
         module docs).\n--- golden ---\n{golden}\n--- live ---\n{live}"
    );
}
