//! Tier-1 gate: the repository's own tree is lint-clean.
//!
//! This is the integration test the CI `lint` job mirrors with the CLI
//! (`cargo run -p rn_lint -- --check`): every determinism, allocation and
//! hygiene rule holds over the whole workspace, with every exception
//! carrying an in-tree `// rn-lint: allow(<rule>) — <reason>` annotation.
//! A finding here is a real regression — fix the site or annotate it with
//! a reason a reviewer can audit.

use std::path::PathBuf;

#[test]
fn repository_tree_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = rn_lint::check_tree(&root).expect("workspace root is walkable");
    assert!(report.files > 0, "the tree walk found no Rust files — the root resolution is broken");
    assert!(
        report.findings.is_empty(),
        "the repository tree has lint findings:\n{}",
        report.render()
    );
}
