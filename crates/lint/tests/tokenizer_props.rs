//! Property tests for the lint tokenizer: generated Rust-like sources plant
//! a marker identifier in *code* position a known number of times, and also
//! bury the same spelling inside line comments, nested block comments,
//! plain/escaped strings, and raw strings with arbitrary `#` fences. The
//! lexer must report exactly the code-position plants as [`TokKind::Ident`]
//! tokens — a comment or literal leaking its contents into the token stream
//! is precisely the bug class that would let a `HashMap`-in-a-doc-comment
//! produce a false `no-std-hash` finding (or let one in real code hide).
//!
//! All marker spellings in this file live inside string literals, so the
//! repo tree scan (which does lint this file) stays clean.

use proptest::prelude::*;
use rn_lint::{lex, TokKind};

/// The identifier planted into generated sources. Built by the generator in
/// code position; buried by it in comment/literal positions.
const MARKER: &str = "HashMap";

/// One generated source fragment, rendered onto its own line(s).
#[derive(Debug, Clone)]
enum Atom {
    /// The marker as a real code identifier — the only variant the lexer
    /// must surface as `Ident(MARKER)`.
    CodeIdent,
    /// A harmless filler identifier.
    Filler(&'static str),
    /// A line comment containing the marker; `true` makes it a doc comment.
    LineComment(bool),
    /// A block comment containing the marker, nested `depth` levels deep.
    BlockComment(u8),
    /// A plain string literal containing the marker, an escaped quote, and
    /// a backslash.
    Str,
    /// A raw string with `hashes` fence characters containing the marker
    /// and an embedded quote + shorter fence (a near-terminator).
    RawStr(u8),
    /// A char literal (possibly an escaped quote).
    CharLit(u8),
    /// A lifetime — starts with a tick like a char literal, but must lex as
    /// `Lifetime`, not swallow code as a literal.
    Lifetime(&'static str),
    /// An integer literal.
    Number,
}

const FILLERS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
const LIFETIMES: [&str; 3] = ["a", "static", "outer"];

fn arb_atom() -> impl Strategy<Value = Atom> {
    (0u8..9, 0u8..4).prop_map(|(kind, variant)| match kind {
        0 => Atom::CodeIdent,
        1 => Atom::Filler(FILLERS[variant as usize % FILLERS.len()]),
        2 => Atom::LineComment(variant % 2 == 0),
        3 => Atom::BlockComment(1 + variant % 3),
        4 => Atom::Str,
        5 => Atom::RawStr(variant),
        6 => Atom::CharLit(variant),
        7 => Atom::Lifetime(LIFETIMES[variant as usize % LIFETIMES.len()]),
        _ => Atom::Number,
    })
}

impl Atom {
    fn render(&self, out: &mut String) {
        match self {
            Atom::CodeIdent => out.push_str(MARKER),
            Atom::Filler(name) => out.push_str(name),
            Atom::LineComment(doc) => {
                out.push_str(if *doc { "/// " } else { "// " });
                out.push_str(MARKER);
                out.push_str(" in a comment");
            }
            Atom::BlockComment(depth) => {
                for _ in 0..*depth {
                    out.push_str("/* ");
                }
                out.push_str(MARKER);
                // One terminator per opener: balanced nesting.
                for _ in 0..*depth {
                    out.push_str(" */");
                }
            }
            Atom::Str => {
                out.push('"');
                out.push_str(MARKER);
                out.push_str(" \\\" still inside \\\\");
                out.push('"');
            }
            Atom::RawStr(hashes) => {
                out.push('r');
                for _ in 0..*hashes {
                    out.push('#');
                }
                out.push('"');
                out.push_str(MARKER);
                if *hashes > 0 {
                    // A quote followed by one-fewer hashes: almost (but not
                    // quite) the terminator.
                    out.push_str(" \"");
                    for _ in 0..hashes - 1 {
                        out.push('#');
                    }
                }
                out.push('"');
                for _ in 0..*hashes {
                    out.push('#');
                }
            }
            Atom::CharLit(variant) => out.push_str(match variant % 3 {
                0 => "'x'",
                1 => "'\\''",
                _ => "'\\n'",
            }),
            Atom::Lifetime(name) => {
                out.push('\'');
                out.push_str(name);
                // Trailing punctuation so the lifetime is followed by code,
                // the shape that would break if it were read as a char.
                out.push_str(" >");
            }
            Atom::Number => out.push_str("42"),
        }
    }

    /// `Ident(MARKER)` tokens this atom must contribute.
    fn marker_idents(&self) -> usize {
        matches!(self, Atom::CodeIdent) as usize
    }

    /// Comments this atom must contribute (nested blocks are one comment).
    fn comments(&self) -> usize {
        matches!(self, Atom::LineComment(_) | Atom::BlockComment(_)) as usize
    }

    /// `Literal` tokens this atom must contribute.
    fn literals(&self) -> usize {
        matches!(self, Atom::Str | Atom::RawStr(_) | Atom::CharLit(_) | Atom::Number) as usize
    }

    /// `Lifetime` tokens this atom must contribute.
    fn lifetimes(&self) -> usize {
        matches!(self, Atom::Lifetime(_)) as usize
    }
}

proptest! {
    #[test]
    fn marker_count_matches_code_position_plants(
        atoms in proptest::collection::vec(arb_atom(), 0..40),
    ) {
        let mut src = String::new();
        for atom in &atoms {
            atom.render(&mut src);
            src.push('\n');
        }
        let lexed = lex(&src);

        let marker_toks = lexed
            .toks
            .iter()
            .filter(|t| matches!(&t.kind, TokKind::Ident(name) if name == MARKER))
            .count();
        let want: usize = atoms.iter().map(Atom::marker_idents).sum();
        prop_assert_eq!(
            marker_toks, want,
            "code-position marker idents in:\n{}", src
        );

        let literal_toks =
            lexed.toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        let want: usize = atoms.iter().map(Atom::literals).sum();
        prop_assert_eq!(literal_toks, want, "literal tokens in:\n{}", src);

        let lifetime_toks = lexed
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Lifetime(_)))
            .count();
        let want: usize = atoms.iter().map(Atom::lifetimes).sum();
        prop_assert_eq!(lifetime_toks, want, "lifetime tokens in:\n{}", src);

        prop_assert_eq!(
            lexed.comments.len(),
            atoms.iter().map(Atom::comments).sum::<usize>(),
            "comments in:\n{}", src
        );
        // No comment's text may leak into the ident stream, and doc-ness
        // must match how each comment was rendered.
        let doc_comments = lexed.comments.iter().filter(|c| c.is_doc()).count();
        let want = atoms
            .iter()
            .filter(|a| matches!(a, Atom::LineComment(true)))
            .count();
        prop_assert_eq!(doc_comments, want, "doc comments in:\n{}", src);
    }

    #[test]
    fn lexer_is_total_on_tricky_char_soup(
        chars in proptest::collection::vec(0u8..16, 0..200),
    ) {
        // A dense alphabet of exactly the characters that drive the lexer's
        // state machine: comment markers, quotes, fences, escapes.
        const ALPHABET: [char; 16] = [
            '/', '*', '"', '\'', '#', 'r', 'b', '\\', '\n', ' ', 'x', '_',
            '0', '!', ':', '.',
        ];
        let src: String = chars.iter().map(|&c| ALPHABET[c as usize]).collect();
        let line_bound = src.lines().count().max(1) as u32;
        // Must not panic, and every reported line must be in range.
        let lexed = lex(&src);
        for t in &lexed.toks {
            prop_assert!(t.line >= 1 && t.line <= line_bound, "tok line in:\n{}", src);
        }
        for c in &lexed.comments {
            prop_assert!(c.line >= 1 && c.line <= line_bound, "comment line in:\n{}", src);
        }
    }
}
