//! Fixture tests for the rule engine: every rule is exercised with a seeded
//! violation (must fire with the right rule/line) and a compliant twin (must
//! stay silent). All Rust snippets live in raw strings so this test file is
//! itself clean under the tree scan.

use rn_lint::{check_file, classify};

/// Path under which generic snippets are checked: a result-affecting src
/// file (not a crate root, not test code, not the rng home).
const SRC: &str = "crates/sim/src/values.rs";

fn rules_at(rel: &str, src: &str) -> Vec<(&'static str, u32)> {
    check_file(rel, src).into_iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn classify_scopes_paths() {
    let sc = classify("crates/sim/src/rng.rs").unwrap();
    assert!(sc.rng_home && !sc.test_code && !sc.crate_root);
    let sc = classify("crates/sim/src/lib.rs").unwrap();
    assert!(sc.crate_root && !sc.rng_home);
    let sc = classify("crates/bench/src/bin/experiments.rs").unwrap();
    assert!(sc.crate_root);
    let sc = classify("crates/bench/tests/alloc_count.rs").unwrap();
    assert!(sc.test_code);
    let sc = classify("crates/sim/src/engine.rs").unwrap();
    assert!(sc.panic_docs);
    assert!(classify("shims/rand/src/lib.rs").is_none());
    assert!(classify("crates/sim/src/engine.rs.orig").is_none());
    assert!(classify("README.md").is_none());
}

#[test]
fn hash_types_fire_everywhere_even_in_tests() {
    let src = r"
use std::collections::HashMap;
fn f() { let s = std::collections::HashSet::new(); }
";
    assert_eq!(rules_at(SRC, src), vec![("no-std-hash", 2), ("no-std-hash", 3)]);
    // Test code is NOT exempt from the hash ban.
    assert_eq!(
        rules_at("crates/sim/tests/foo.rs", src),
        vec![("no-std-hash", 2), ("no-std-hash", 3)]
    );
    // …but prose and strings never fire.
    let masked = "// a HashMap in a comment\nfn f() { let _ = \"HashSet\"; }\n";
    assert_eq!(rules_at(SRC, masked), vec![]);
}

#[test]
fn wall_clock_reads_fire() {
    let src = r"
fn f() { let t = std::time::Instant::now(); }
fn g() { let e = SystemTime::now(); }
";
    assert_eq!(rules_at(SRC, src), vec![("no-wall-clock", 2), ("no-wall-clock", 3)]);
    // `Instant` alone (e.g. a type in an annotated timing seam's signature)
    // does not fire; only the `Instant::now` read does.
    assert_eq!(rules_at(SRC, "fn f(t: Instant) {}\n"), vec![]);
}

#[test]
fn rng_construction_fires_outside_rng_home() {
    let src = "fn f() { let r = SmallRng::seed_from_u64(7); }\n";
    assert_eq!(rules_at(SRC, src), vec![("rng-discipline", 1)]);
    // The rng module itself is the home of construction.
    assert_eq!(rules_at("crates/sim/src/rng.rs", src), vec![]);
    // Test code is exempt: tests pin seeds directly.
    assert_eq!(rules_at("crates/sim/tests/foo.rs", src), vec![]);
    // #[cfg(test)] regions inside src files are exempt too.
    let in_test_mod = r"
#[cfg(test)]
mod tests {
    fn f() { let r = SmallRng::seed_from_u64(7); }
}
";
    assert_eq!(rules_at(SRC, in_test_mod), vec![]);
    // from_entropy / thread_rng are banned the same way.
    assert_eq!(
        rules_at(SRC, "fn f() { let r = SmallRng::from_entropy(); }\n"),
        vec![("rng-discipline", 1)]
    );
}

#[test]
fn reserve_without_clear_fires() {
    let src = r"
fn prepare(&mut self, n: usize) {
    self.heard.reserve(n);
}
";
    assert_eq!(rules_at(SRC, src), vec![("clear-before-reserve", 3)]);
}

#[test]
fn reserve_after_clear_is_silent() {
    let src = r"
fn prepare(&mut self, n: usize) {
    self.heard.clear();
    self.heard.reserve(n);
    self.touched.clear_all();
    self.touched.reserve_exact(n);
}
";
    assert_eq!(rules_at(SRC, src), vec![]);
}

#[test]
fn reserve_covered_by_parent_reset() {
    // A reset()/clear() on a dot-prefix of the receiver covers nested
    // fields: `self.alg4.reset()` clears `self.alg4.participating` too.
    let src = r"
fn prepare(&mut self, n: usize) {
    self.alg4.reset();
    self.alg4.participating.reserve(n);
}
";
    assert_eq!(rules_at(SRC, src), vec![]);
    // …but a clear on an unrelated sibling does not.
    let bad = r"
fn prepare(&mut self, n: usize) {
    self.other.clear();
    self.alg4.participating.reserve(n);
}
";
    assert_eq!(rules_at(SRC, bad), vec![("clear-before-reserve", 4)]);
}

#[test]
fn reserve_scoping_is_per_function() {
    // A clear in one function does not license a reserve in the next.
    let src = r"
fn a(&mut self) { self.buf.clear(); }
fn b(&mut self, n: usize) { self.buf.reserve(n); }
";
    assert_eq!(rules_at(SRC, src), vec![("clear-before-reserve", 3)]);
    // Indexed receivers are matched structurally.
    let indexed = r"
fn f(&mut self, i: usize, n: usize) {
    self.rows[i].clear();
    self.rows[i].reserve(n);
}
";
    assert_eq!(rules_at(SRC, indexed), vec![]);
    // Test code is exempt: tests build buffers fresh.
    assert_eq!(
        rules_at("crates/sim/tests/foo.rs", "fn f(v: &mut Vec<u8>) { v.reserve(9); }\n"),
        vec![]
    );
}

#[test]
fn crate_roots_must_forbid_unsafe() {
    assert_eq!(
        rules_at("crates/sim/src/lib.rs", "pub mod engine;\n"),
        vec![("forbid-unsafe-root", 1)]
    );
    assert_eq!(
        rules_at("crates/sim/src/lib.rs", "#![forbid(unsafe_code)]\npub mod engine;\n"),
        vec![]
    );
    // Non-root files carry no such obligation.
    assert_eq!(rules_at(SRC, "pub fn f() {}\n"), vec![]);
}

#[test]
fn unsafe_needs_safety_comment() {
    let bare = "unsafe fn alloc(x: u8) -> u8 { x }\n";
    assert_eq!(rules_at("crates/bench/tests/ac.rs", bare), vec![("safety-comment", 1)]);
    let justified = "// SAFETY: forwards to System, which upholds the contract.\n\
                     unsafe fn alloc(x: u8) -> u8 { x }\n";
    assert_eq!(rules_at("crates/bench/tests/ac.rs", justified), vec![]);
    // The justification must be within three lines above.
    let too_far = "// SAFETY: too far away.\n\n\n\n\nunsafe fn alloc(x: u8) -> u8 { x }\n";
    assert_eq!(rules_at("crates/bench/tests/ac.rs", too_far), vec![("safety-comment", 6)]);
}

#[test]
fn panic_docs_required_in_engine_scope() {
    let undocumented = r#"
pub fn step(&mut self) {
    assert!(self.ready, "not ready");
}
"#;
    assert_eq!(rules_at("crates/sim/src/engine.rs", undocumented), vec![("panic-docs", 2)]);
    let documented = r#"
/// Advances one round.
///
/// # Panics
///
/// Panics when the simulator is not ready.
pub fn step(&mut self) {
    assert!(self.ready, "not ready");
}
"#;
    assert_eq!(rules_at("crates/sim/src/engine.rs", documented), vec![]);
    // unwrap/expect count as panic sites too.
    let unwrapping = "pub fn head(&self) -> u32 { self.q.first().copied().unwrap() }\n";
    assert_eq!(rules_at("crates/sim/src/engine.rs", unwrapping), vec![("panic-docs", 1)]);
    // debug_assert! is not a release panic; no doc obligation.
    let debug_only = "pub fn poke(&self) { debug_assert!(self.ok); }\n";
    assert_eq!(rules_at("crates/sim/src/engine.rs", debug_only), vec![]);
    // Outside the engine/bitset scope the rule is off.
    assert_eq!(rules_at(SRC, undocumented), vec![]);
}

#[test]
fn allow_annotation_suppresses_on_line_or_line_above() {
    let same_line = "use std::collections::HashMap; // rn-lint: allow(no-std-hash) — fixture\n";
    assert_eq!(rules_at(SRC, same_line), vec![]);
    let line_above = "// rn-lint: allow(no-std-hash) — fixture\nuse std::collections::HashMap;\n";
    assert_eq!(rules_at(SRC, line_above), vec![]);
    // Two lines above is out of range: the finding survives and the
    // annotation is stale.
    let too_far = "// rn-lint: allow(no-std-hash) — fixture\n\nuse std::collections::HashMap;\n";
    assert_eq!(rules_at(SRC, too_far), vec![("lint-hygiene", 1), ("no-std-hash", 3)]);
}

#[test]
fn annotations_are_themselves_linted() {
    // Unknown rule name.
    let unknown = "// rn-lint: allow(no-such-rule) — why\nfn f() {}\n";
    assert_eq!(rules_at(SRC, unknown), vec![("lint-hygiene", 1)]);
    // Missing reason.
    let reasonless = "use std::collections::HashMap; // rn-lint: allow(no-std-hash)\n";
    assert_eq!(rules_at(SRC, reasonless), vec![("lint-hygiene", 1), ("no-std-hash", 1)]);
    // Malformed body.
    let malformed = "// rn-lint: deny(no-std-hash) — nope\nfn f() {}\n";
    assert_eq!(rules_at(SRC, malformed), vec![("lint-hygiene", 1)]);
    // A plain ASCII dash works as the reason separator.
    let ascii = "use std::collections::HashMap; // rn-lint: allow(no-std-hash) - fixture\n";
    assert_eq!(rules_at(SRC, ascii), vec![]);
    // Multi-rule allow lists suppress each listed rule.
    let multi = "// rn-lint: allow(no-std-hash, no-wall-clock) — fixture\n\
                 fn f() { let (m, t) = (HashMap::new(), Instant::now()); }\n";
    assert_eq!(rules_at(SRC, multi), vec![]);
}

#[test]
fn report_renders_file_line_rule() {
    let f = &check_file(SRC, "use std::collections::HashSet;\n")[0];
    assert_eq!(f.to_string(), format!("{SRC}:1: deny(no-std-hash): {}", f.message));
}
