//! `rn_lint` — a repo-aware determinism & discipline analyzer.
//!
//! Every guarantee this reproduction makes — byte-identical result JSON at
//! any `--threads` value, per-axis seed streams, Frontier ≡ Reference engine
//! equivalence, and the zero-allocation steady state — is a *discipline*.
//! This crate turns those disciplines into deny-by-default static rules over
//! the workspace source tree, checked as a tier-1 integration test and a CI
//! job:
//!
//! ```text
//! cargo run -p rn_lint -- --check          # scan the tree, exit 1 on findings
//! cargo run -p rn_lint -- --rules          # print the registered rule table
//! ```
//!
//! The core is a hand-rolled Rust tokenizer ([`lex`]) — no syn, no dylint,
//! no dependencies at all — that correctly skips line/nested-block comments,
//! strings, raw strings, char literals and lifetimes, so the token-pattern
//! rules in [`check`] never fire on prose or string contents. Sites that
//! legitimately break a rule carry an in-place annotation:
//!
//! ```text
//! // rn-lint: allow(<rule>) — <reason>
//! ```
//!
//! Annotations are themselves checked: unknown rules, missing reasons, and
//! stale allows that suppress nothing are `lint-hygiene` findings.

#![forbid(unsafe_code)]

pub mod check;
pub mod lex;

pub use check::{check_file, check_tree, classify, rules_listing, Finding, Report, Rule, RULES};
pub use lex::{lex, Comment, Lexed, Tok, TokKind};
