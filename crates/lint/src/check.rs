//! The rule engine: file classification, token-pattern rules, allow
//! annotations and the tree checker.
//!
//! Every rule is **deny by default**. A site that legitimately violates a
//! rule is allow-listed in place with
//!
//! ```text
//! // rn-lint: allow(<rule>[, <rule>…]) — <reason>
//! ```
//!
//! on the offending line or the line directly above it. The reason is
//! mandatory, unknown rule names are themselves findings, and an annotation
//! that suppresses nothing is flagged as stale — the allowlist cannot rot
//! silently.
//!
//! Rules are scoped by *path*, mirroring the workspace's determinism
//! contract: everything under `crates/*/`, `src/`, `tests/` and `examples/`
//! is scanned (the `shims/` stand-ins for external crates are not), with
//! per-rule carve-outs documented on [`RULES`].

use crate::lex::{lex, Comment, Lexed, Tok, TokKind};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One registered rule: its stable kebab-case name and one-line contract.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case identifier (used in `allow(...)` annotations).
    pub name: &'static str,
    /// One-line statement of the contract the rule enforces.
    pub summary: &'static str,
}

/// The registered rule set, in report order. `tests/golden_rules.txt` pins
/// the rendered listing, so additions and rewordings are reviewed diffs.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no-std-hash",
        summary: "std HashMap/HashSet are banned: iteration order is nondeterministic; \
                  use BTreeMap/BTreeSet, a sorted Vec, or WordBitset",
    },
    Rule {
        name: "no-wall-clock",
        summary: "Instant::now/SystemTime are banned outside annotated timing seams: \
                  results must be a pure function of the seed, never the clock",
    },
    Rule {
        name: "rng-discipline",
        summary: "RNG construction (seed_from_u64/from_seed/from_entropy/thread_rng/from_rng) \
                  belongs in rn_sim::rng: call sites use stream_rng/WordStream so seed \
                  streams stay per-axis independent (test code exempt)",
    },
    Rule {
        name: "clear-before-reserve",
        summary: "a pooled buffer must .clear()/.reset() earlier in the same function \
                  before .reserve(): reserve counts beyond the *current* length \
                  (the PR-9 steady-state leak class; test code exempt)",
    },
    Rule {
        name: "forbid-unsafe-root",
        summary: "every crate root (lib.rs, main.rs, src/bin/*.rs) carries \
                  #![forbid(unsafe_code)]",
    },
    Rule {
        name: "safety-comment",
        summary: "each `unsafe` token needs a `// SAFETY:` justification on its line \
                  or within the three lines above (applies to test code too)",
    },
    Rule {
        name: "panic-docs",
        summary: "a pub fn in rn_sim::engine/rn_sim::bitset that can panic \
                  (assert!/panic!/unwrap/expect) must carry a `# Panics` doc section",
    },
    Rule {
        name: "lint-hygiene",
        summary: "rn-lint annotations must name known rules, carry a reason after \
                  an em-dash, and actually suppress a finding",
    },
];

fn rule_known(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// One diagnostic: a rule violation at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule's name (an entry of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation with the offending construct named.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: deny({}): {}", self.file, self.line, self.rule, self.message)
    }
}

/// How one file participates in the scan, derived purely from its
/// repo-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// Crate/binary root: must carry `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
    /// `crates/sim/src/rng.rs` — the one home of RNG construction.
    pub rng_home: bool,
    /// Panic-documentation scope (`rn_sim::engine` / `rn_sim::bitset`).
    pub panic_docs: bool,
    /// Whole-file test/bench/example code (relaxes the determinism-rng and
    /// reserve rules; `#[cfg(test)]` modules inside src files get the same
    /// relaxation region-wise).
    pub test_code: bool,
}

/// Classifies a repo-relative path (`/`-separated); `None` means the file
/// is out of scope (shims, target, non-Rust files).
pub fn classify(rel: &str) -> Option<FileScope> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let in_crates = rel.starts_with("crates/");
    let in_root =
        rel.starts_with("src/") || rel.starts_with("tests/") || rel.starts_with("examples/");
    if !in_crates && !in_root {
        return None;
    }
    let test_code = rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/");
    let crate_root = rel == "src/lib.rs"
        || rel == "src/main.rs"
        || (rel.starts_with("crates/")
            && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs")))
        || rel.contains("/src/bin/");
    Some(FileScope {
        crate_root,
        rng_home: rel == "crates/sim/src/rng.rs",
        panic_docs: rel == "crates/sim/src/engine.rs" || rel == "crates/sim/src/bitset.rs",
        test_code,
    })
}

/// A parsed `// rn-lint: allow(...)` annotation.
struct Allow {
    line: u32,
    rules: Vec<String>,
    used: bool,
}

/// Checks one file's source under its path-derived scope, returning the
/// unsuppressed findings (sorted by line, then rule).
pub fn check_file(rel: &str, src: &str) -> Vec<Finding> {
    let Some(scope) = classify(rel) else {
        return Vec::new();
    };
    let lexed = lex(src);
    let test_regions = test_mod_regions(&lexed.toks);
    let in_test =
        |idx: usize| scope.test_code || test_regions.iter().any(|&(s, e)| idx >= s && idx < e);

    let mut findings: Vec<Finding> = Vec::new();
    let mut hygiene: Vec<Finding> = Vec::new();
    let mut allows = parse_allows(rel, &lexed.comments, &mut hygiene);

    rule_no_std_hash(rel, &lexed, &mut findings);
    rule_no_wall_clock(rel, &lexed, &mut findings);
    if !scope.rng_home {
        rule_rng_discipline(rel, &lexed, &in_test, &mut findings);
    }
    rule_clear_before_reserve(rel, &lexed, &in_test, &mut findings);
    if scope.crate_root {
        rule_forbid_unsafe_root(rel, &lexed, &mut findings);
    }
    rule_safety_comment(rel, &lexed, &mut findings);
    if scope.panic_docs {
        rule_panic_docs(rel, &lexed, &in_test, &mut findings);
    }

    // Apply the allowlist: a finding is suppressed by a matching annotation
    // on its line or the line directly above. lint-hygiene findings are not
    // suppressible (the allowlist cannot vouch for itself).
    findings.retain(|f| {
        for a in allows.iter_mut() {
            if (a.line == f.line || a.line + 1 == f.line) && a.rules.iter().any(|r| r == f.rule) {
                a.used = true;
                return false;
            }
        }
        true
    });
    for a in &allows {
        if !a.used {
            hygiene.push(Finding {
                file: rel.to_string(),
                line: a.line,
                rule: "lint-hygiene",
                message: format!(
                    "stale annotation: allow({}) suppresses nothing on this or the next line",
                    a.rules.join(", ")
                ),
            });
        }
    }
    findings.extend(hygiene);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

fn parse_allows(rel: &str, comments: &[Comment], hygiene: &mut Vec<Finding>) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        // Annotations are plain comments whose body starts with `rn-lint:`.
        // Doc comments are exempt so documentation can show the syntax.
        if c.is_doc() {
            continue;
        }
        let body = c.text.trim_start_matches(['/', '*']).trim_start();
        let Some(rest) = body.strip_prefix("rn-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let bad = |msg: String| Finding {
            file: rel.to_string(),
            line: c.line,
            rule: "lint-hygiene",
            message: msg,
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            hygiene.push(bad(format!(
                "malformed annotation {:?}: expected `rn-lint: allow(<rule>) — <reason>`",
                rest
            )));
            continue;
        };
        let Some(close) = args.find(')') else {
            hygiene.push(bad("unclosed allow( list".to_string()));
            continue;
        };
        let rules: Vec<String> = args[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            hygiene.push(bad("empty allow() list".to_string()));
            continue;
        }
        let mut ok = true;
        for r in &rules {
            if !rule_known(r) {
                hygiene.push(bad(format!("unknown rule `{r}` in allow list")));
                ok = false;
            }
        }
        let reason = args[close + 1..].trim_start().trim_start_matches(['—', '–', '-', ':']).trim();
        if reason.is_empty() {
            hygiene.push(bad(format!(
                "allow({}) without a reason: annotations must say why",
                rules.join(", ")
            )));
            ok = false;
        }
        if ok {
            out.push(Allow { line: c.line, rules, used: false });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// Index just past the `}` matching the `{` at `open` (or `toks.len()`).
fn brace_match(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Token-index ranges of `#[cfg(test)] mod … { … }` bodies.
fn test_mod_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let attr = punct_at(toks, i, '#')
            && punct_at(toks, i + 1, '[')
            && ident_at(toks, i + 2) == Some("cfg")
            && punct_at(toks, i + 3, '(')
            && ident_at(toks, i + 4) == Some("test")
            && punct_at(toks, i + 5, ')')
            && punct_at(toks, i + 6, ']');
        if !attr {
            i += 1;
            continue;
        }
        // Skip any further attributes, then expect `mod <name> {`.
        let mut j = i + 7;
        while punct_at(toks, j, '#') && punct_at(toks, j + 1, '[') {
            let mut depth = 0usize;
            let mut k = j + 1;
            while k < toks.len() {
                match toks[k].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
        }
        if ident_at(toks, j) == Some("mod") && punct_at(toks, j + 2, '{') {
            let end = brace_match(toks, j + 2);
            out.push((i, end));
            i = j + 3; // regions may not nest in practice; resume inside is fine
        } else {
            i += 1;
        }
    }
    out
}

/// Renders the dotted receiver chain ending just before token `dot`
/// (the index of the `.` of a method call), e.g. `self.alg4_main.participating`
/// or `knowing[i]`. Returns `None` when the preceding token is not a chain.
fn receiver_before(toks: &[Tok], dot: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot; // exclusive upper bound; walk backwards
    loop {
        if j == 0 {
            break;
        }
        let seg = match &toks[j - 1].kind {
            TokKind::Ident(s) => {
                j -= 1;
                s.clone()
            }
            TokKind::Punct(']') => {
                // Collect `ident[ … ]` as one segment.
                let mut depth = 0usize;
                let mut k = j - 1;
                loop {
                    match toks[k].kind {
                        TokKind::Punct(']') => depth += 1,
                        TokKind::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        return None;
                    }
                    k -= 1;
                }
                let name = ident_at(toks, k.checked_sub(1)?)?.to_string();
                let inner: String = toks[k + 1..j - 1].iter().map(render_tok).collect();
                j = k - 1;
                format!("{name}[{inner}]")
            }
            _ => break,
        };
        parts.push(seg);
        if j > 0 && punct_at(toks, j - 1, '.') && j >= 2 {
            j -= 1; // continue through the chain
        } else {
            break;
        }
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

fn render_tok(t: &Tok) -> String {
    match &t.kind {
        TokKind::Ident(s) => s.clone(),
        TokKind::Lifetime(s) => format!("'{s}"),
        TokKind::Punct(c) => c.to_string(),
        TokKind::Literal => "_".to_string(),
    }
}

/// For a `fn` keyword at `fn_idx`, the body token range `(open, close)`
/// exclusive of the braces themselves — or `None` for bodyless decls.
fn fn_body(toks: &[Tok], fn_idx: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut i = fn_idx + 1;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => {
                let end = brace_match(toks, i);
                return Some((i + 1, end.saturating_sub(1)));
            }
            TokKind::Punct(';') if depth == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn rule_no_std_hash(rel: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for t in &lexed.toks {
        if let TokKind::Ident(s) = &t.kind {
            if s == "HashMap" || s == "HashSet" {
                out.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "no-std-hash",
                    message: format!(
                        "`{s}` has nondeterministic iteration order; use BTreeMap/BTreeSet, \
                         a sorted Vec, or rn_sim::WordBitset"
                    ),
                });
            }
        }
    }
}

fn rule_no_wall_clock(rel: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        match ident_at(toks, i) {
            Some("Instant")
                if punct_at(toks, i + 1, ':')
                    && punct_at(toks, i + 2, ':')
                    && ident_at(toks, i + 3) == Some("now") =>
            {
                out.push(Finding {
                    file: rel.to_string(),
                    line: toks[i].line,
                    rule: "no-wall-clock",
                    message: "`Instant::now` reads the wall clock; results must be a pure \
                              function of the seed (timing seams carry an allow annotation)"
                        .to_string(),
                });
            }
            Some("SystemTime") => {
                out.push(Finding {
                    file: rel.to_string(),
                    line: toks[i].line,
                    rule: "no-wall-clock",
                    message: "`SystemTime` reads the wall clock; results must be a pure \
                              function of the seed"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
}

const RNG_CONSTRUCTORS: &[&str] =
    &["seed_from_u64", "from_seed", "from_entropy", "thread_rng", "from_rng"];

fn rule_rng_discipline(
    rel: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in lexed.toks.iter().enumerate() {
        if let TokKind::Ident(s) = &t.kind {
            if RNG_CONSTRUCTORS.contains(&s.as_str()) && !in_test(i) {
                out.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "rng-discipline",
                    message: format!(
                        "`{s}` constructs an RNG outside rn_sim::rng; derive streams with \
                         rng::stream_rng / rng::WordStream so per-axis seed independence holds"
                    ),
                });
            }
        }
    }
}

const CLEARING_METHODS: &[&str] = &["clear", "clear_all", "reset", "reset_capacity"];

fn rule_clear_before_reserve(
    rel: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if ident_at(toks, i) != Some("fn") || in_test(i) {
            i += 1;
            continue;
        }
        let Some((body_s, body_e)) = fn_body(toks, i) else {
            i += 1;
            continue;
        };
        for k in body_s..body_e {
            let is_reserve = punct_at(toks, k, '.')
                && matches!(ident_at(toks, k + 1), Some("reserve") | Some("reserve_exact"))
                && punct_at(toks, k + 2, '(');
            if !is_reserve {
                continue;
            }
            let Some(recv) = receiver_before(toks, k) else {
                continue;
            };
            let mut cleared = false;
            for c in body_s..k {
                let is_clear = punct_at(toks, c, '.')
                    && ident_at(toks, c + 1).is_some_and(|m| CLEARING_METHODS.contains(&m))
                    && punct_at(toks, c + 2, '(');
                if !is_clear {
                    continue;
                }
                if let Some(crecv) = receiver_before(toks, c) {
                    if crecv == recv || recv.starts_with(&format!("{crecv}.")) {
                        cleared = true;
                        break;
                    }
                }
            }
            if !cleared {
                out.push(Finding {
                    file: rel.to_string(),
                    line: toks[k + 1].line,
                    rule: "clear-before-reserve",
                    message: format!(
                        "`{recv}.{}` without an earlier `.clear()`/`.reset()` on `{recv}` in \
                         this function: `reserve` counts beyond the current length, so a pooled \
                         buffer that skips the clear reallocates every trial",
                        ident_at(toks, k + 1).unwrap_or("reserve"),
                    ),
                });
            }
        }
        i = body_e.max(i + 1);
    }
}

fn rule_forbid_unsafe_root(rel: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    let found = (0..toks.len()).any(|i| {
        punct_at(toks, i, '#')
            && punct_at(toks, i + 1, '!')
            && punct_at(toks, i + 2, '[')
            && ident_at(toks, i + 3) == Some("forbid")
            && punct_at(toks, i + 4, '(')
            && ident_at(toks, i + 5) == Some("unsafe_code")
            && punct_at(toks, i + 6, ')')
            && punct_at(toks, i + 7, ']')
    });
    if !found {
        out.push(Finding {
            file: rel.to_string(),
            line: 1,
            rule: "forbid-unsafe-root",
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

fn rule_safety_comment(rel: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for t in &lexed.toks {
        if !matches!(&t.kind, TokKind::Ident(s) if s == "unsafe") {
            continue;
        }
        let covered = lexed
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.line + 3 >= t.line && c.line <= t.line);
        if !covered {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: "safety-comment",
                message: "`unsafe` without a `// SAFETY:` justification on this line or the \
                          three lines above"
                    .to_string(),
            });
        }
    }
}

const PANIC_MACROS: &[&str] =
    &["assert", "assert_eq", "assert_ne", "panic", "unreachable", "todo", "unimplemented"];

fn rule_panic_docs(
    rel: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if ident_at(toks, i) != Some("pub") || in_test(i) {
            i += 1;
            continue;
        }
        let pub_idx = i;
        let mut j = i + 1;
        // Optional visibility argument: pub(crate), pub(in …).
        if punct_at(toks, j, '(') {
            let mut depth = 0usize;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1;
        }
        // Optional qualifiers before `fn`.
        while matches!(
            ident_at(toks, j),
            Some("const") | Some("async") | Some("unsafe") | Some("extern")
        ) || matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Literal))
        {
            j += 1;
        }
        if ident_at(toks, j) != Some("fn") {
            i += 1;
            continue;
        }
        let name = ident_at(toks, j + 1).unwrap_or("?").to_string();
        let Some((body_s, body_e)) = fn_body(toks, j) else {
            i = j + 1;
            continue;
        };
        if body_can_panic(toks, body_s, body_e) && !docs_mention_panics(lexed, toks, pub_idx) {
            out.push(Finding {
                file: rel.to_string(),
                line: toks[pub_idx].line,
                rule: "panic-docs",
                message: format!(
                    "pub fn `{name}` can panic (assert!/panic!/unwrap/expect in its body) but \
                     its doc comment has no `# Panics` section"
                ),
            });
        }
        i = body_e.max(j + 1);
    }
}

fn body_can_panic(toks: &[Tok], s: usize, e: usize) -> bool {
    for k in s..e {
        if let Some(id) = ident_at(toks, k) {
            if PANIC_MACROS.contains(&id) && punct_at(toks, k + 1, '!') {
                return true;
            }
            if (id == "unwrap" || id == "expect")
                && k > 0
                && punct_at(toks, k - 1, '.')
                && punct_at(toks, k + 1, '(')
            {
                return true;
            }
        }
    }
    false
}

/// Whether the doc block attached above the item starting at token
/// `item_idx` contains a `# Panics` section. Attributes between the docs
/// and the item are skipped by line-gap logic: all doc comments strictly
/// between the previous code token and the item's first line attach.
fn docs_mention_panics(lexed: &Lexed, toks: &[Tok], item_idx: usize) -> bool {
    // Walk back over any attribute groups `#[…]` directly above the item.
    let mut first = item_idx;
    while first >= 2 && punct_at(toks, first - 1, ']') {
        let mut depth = 0usize;
        let mut k = first - 1;
        loop {
            match toks[k].kind {
                TokKind::Punct(']') => depth += 1,
                TokKind::Punct('[') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k == 0 {
                return false;
            }
            k -= 1;
        }
        if k >= 1 && punct_at(toks, k - 1, '#') {
            first = k - 1;
        } else {
            break;
        }
    }
    let item_line = toks[item_idx].line.min(toks[first].line);
    let prev_code_line = toks[..first].last().map_or(0, |t| t.line);
    lexed
        .comments
        .iter()
        .filter(|c| c.is_doc() && c.line > prev_code_line && c.line < item_line)
        .any(|c| c.text.contains("# Panics"))
}

// ---------------------------------------------------------------------------
// Tree checking and reporting
// ---------------------------------------------------------------------------

/// The result of checking a tree: per-file findings plus scan statistics.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of files scanned.
    pub files: usize,
    /// All unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report (`--check` output; CI tees this
    /// into the step summary).
    pub fn render(&self) -> String {
        let mut s =
            format!("rn-lint: checked {} files against {} rules\n", self.files, RULES.len());
        for f in &self.findings {
            s.push_str(&f.to_string());
            s.push('\n');
        }
        if self.findings.is_empty() {
            s.push_str("clean: no findings\n");
        } else {
            s.push_str(&format!("{} finding(s)\n", self.findings.len()));
        }
        s
    }
}

/// Checks every in-scope `.rs` file under `root` (the workspace root).
///
/// # Errors
///
/// Propagates I/O errors from directory walks and file reads.
pub fn check_tree(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    let mut checked = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if classify(&rel).is_none() {
            continue;
        }
        let src = fs::read_to_string(path)?;
        checked += 1;
        findings.extend(check_file(&rel, &src));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Report { files: checked, findings })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let path = e.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders the registered rule table (`--rules` output; pinned by
/// `tests/golden_rules.txt` so rule additions are reviewed diffs).
pub fn rules_listing() -> String {
    let mut s = String::from(
        "rn-lint registered rules (deny by default)\n\
         allow one site with `// rn-lint: allow(<rule>) — <reason>` on the offending line\n\
         or the line directly above it; stale or reasonless annotations are findings.\n\n",
    );
    for r in RULES {
        let summary = r.summary.split_whitespace().collect::<Vec<_>>().join(" ");
        s.push_str(&format!("{:22}{}\n", r.name, summary));
    }
    s
}
