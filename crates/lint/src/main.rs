//! CLI entry point: `cargo run -p rn_lint -- --check [--root PATH] | --rules`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rn_lint --check [--root PATH]   scan the tree (exit 1 on findings)\n\
         \x20      rn_lint --rules               print the registered rule table"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" | "--rules" => {
                if mode.is_some() {
                    return usage();
                }
                mode = Some(if a == "--check" { "check" } else { "rules" });
            }
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match mode {
        Some("rules") => {
            print!("{}", rn_lint::rules_listing());
            ExitCode::SUCCESS
        }
        Some("check") => {
            // Default root: the workspace that contains this crate, so the
            // binary works from any cwd under `cargo run -p rn_lint`.
            let root = root
                .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));
            match rn_lint::check_tree(&root) {
                Ok(report) => {
                    print!("{}", report.render());
                    if report.is_clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("rn_lint: io error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
