//! A small hand-rolled Rust tokenizer: just enough lexical structure for
//! token-pattern lint rules.
//!
//! The hard part of string-searching Rust source is not finding `HashMap` —
//! it is *not* finding it inside `// comments`, `"string literals"`,
//! `r#"raw strings"#` and doc examples. This lexer resolves exactly that
//! layer: it splits source into code tokens (identifiers, punctuation,
//! lifetimes, opaque literals) and a side channel of comments, handling
//!
//! * line comments (`//`, including `///` / `//!` doc comments),
//! * nested block comments (`/* /* */ */`, including `/**` / `/*!` docs),
//! * string literals with escapes, byte strings, C strings,
//! * raw strings `r"…"` / `r#"…"#` / `br##"…"##` with any hash count,
//! * char and byte-char literals (`'a'`, `'\u{41}'`, `b'\n'`) versus
//!   lifetimes (`'a`, `'static`, `'_`),
//! * raw identifiers (`r#type`),
//! * numeric literals (hex/oct/bin prefixes, floats, exponents, suffixes)
//!   without swallowing range punctuation (`0..n` stays three tokens).
//!
//! Literal *contents* are dropped — rules only ever need to know "a literal
//! stood here" — while comments keep their text (with line numbers) so the
//! rule layer can read `// rn-lint: allow(...)` annotations and `// SAFETY:`
//! justifications.

/// The kind of one lexed code token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (raw identifiers arrive with the `r#`
    /// prefix stripped).
    Ident(String),
    /// A lifetime or loop label, tick stripped (`'a` → `a`).
    Lifetime(String),
    /// A single punctuation character; multi-character operators arrive as
    /// consecutive tokens (`::` is two `Punct(':')`).
    Punct(char),
    /// Any literal (string, raw string, byte string, C string, char, byte
    /// char, or number). Contents are intentionally dropped.
    Literal,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with its starting line and full text
/// (markers included, so `text.starts_with("///")` distinguishes docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Raw comment text including the `//` / `/*` markers.
    pub text: String,
}

impl Comment {
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!` — but not
    /// `////`, which rustdoc treats as a plain comment).
    pub fn is_doc(&self) -> bool {
        (self.text.starts_with("///") && !self.text.starts_with("////"))
            || self.text.starts_with("//!")
            || (self.text.starts_with("/**") && !self.text.starts_with("/***"))
            || self.text.starts_with("/*!")
    }
}

/// Tokenized source: the code-token stream plus the comment side channel.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    at: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.at + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.at).copied();
        if let Some(c) = c {
            self.at += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src`. Never fails: malformed source degrades to punctuation
/// tokens rather than panicking, so the lint stays usable on code that does
/// not yet compile.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor { chars: src.chars().collect(), at: 0, line: 1 };
    let mut out = Lexed::default();
    while let Some(c) = cur.peek(0) {
        if c.is_whitespace() {
            cur.bump();
        } else if c == '/' && cur.peek(1) == Some('/') {
            line_comment(&mut cur, &mut out);
        } else if c == '/' && cur.peek(1) == Some('*') {
            block_comment(&mut cur, &mut out);
        } else if c == '"' {
            let line = cur.line;
            string_literal(&mut cur);
            out.toks.push(Tok { kind: TokKind::Literal, line });
        } else if c == '\'' {
            char_or_lifetime(&mut cur, &mut out);
        } else if try_prefixed_literal(&mut cur, &mut out) {
            // r"…", r#"…"#, b"…", b'…', br#"…"#, c"…", cr#"…"# or r#ident —
            // consumed by the helper.
        } else if is_ident_start(c) {
            let line = cur.line;
            let name = read_ident(&mut cur);
            out.toks.push(Tok { kind: TokKind::Ident(name), line });
        } else if c.is_ascii_digit() {
            let line = cur.line;
            number_literal(&mut cur);
            out.toks.push(Tok { kind: TokKind::Literal, line });
        } else {
            let line = cur.line;
            cur.bump();
            out.toks.push(Tok { kind: TokKind::Punct(c), line });
        }
    }
    out
}

fn line_comment(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment { line, text });
}

fn block_comment(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump_n(2);
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump_n(2);
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    out.comments.push(Comment { line, text });
}

/// Consumes a `"…"` string with backslash escapes (opening quote included).
fn string_literal(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        if c == '\\' {
            cur.bump(); // the escaped character, whatever it is
        } else if c == '"' {
            break;
        }
    }
}

/// Consumes a raw string starting at the current `#`-or-quote position
/// (prefix letters already consumed): `#`*n* `"` … `"` `#`*n*.
fn raw_string_body(cur: &mut Cursor) {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    'scan: while let Some(c) = cur.bump() {
        if c == '"' {
            for k in 0..hashes {
                if cur.peek(k) != Some('#') {
                    continue 'scan;
                }
            }
            cur.bump_n(hashes);
            break;
        }
    }
}

/// Number of `#`s following offset `from`, plus whether a `"` comes next —
/// the raw-string opener test for `r`/`br`/`cr` prefixes.
fn raw_opener_at(cur: &Cursor, from: usize) -> bool {
    let mut k = from;
    while cur.peek(k) == Some('#') {
        k += 1;
    }
    cur.peek(k) == Some('"')
}

/// Handles `r`/`b`/`c`-prefixed literals and raw identifiers. Returns true
/// if it consumed something.
fn try_prefixed_literal(cur: &mut Cursor, out: &mut Lexed) -> bool {
    let line = cur.line;
    let (c0, c1) = (cur.peek(0), cur.peek(1));
    match c0 {
        Some('r') => {
            if raw_opener_at(cur, 1) {
                cur.bump(); // r
                raw_string_body(cur);
                out.toks.push(Tok { kind: TokKind::Literal, line });
                return true;
            }
            if c1 == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
                cur.bump_n(2); // r#
                let name = read_ident(cur);
                out.toks.push(Tok { kind: TokKind::Ident(name), line });
                return true;
            }
        }
        Some('b') => {
            if c1 == Some('"') {
                cur.bump(); // b
                string_literal(cur);
                out.toks.push(Tok { kind: TokKind::Literal, line });
                return true;
            }
            if c1 == Some('\'') {
                cur.bump(); // b
                char_body(cur);
                out.toks.push(Tok { kind: TokKind::Literal, line });
                return true;
            }
            if c1 == Some('r') && raw_opener_at(cur, 2) {
                cur.bump_n(2); // br
                raw_string_body(cur);
                out.toks.push(Tok { kind: TokKind::Literal, line });
                return true;
            }
        }
        Some('c') => {
            if c1 == Some('"') {
                cur.bump(); // c
                string_literal(cur);
                out.toks.push(Tok { kind: TokKind::Literal, line });
                return true;
            }
            if c1 == Some('r') && raw_opener_at(cur, 2) {
                cur.bump_n(2); // cr
                raw_string_body(cur);
                out.toks.push(Tok { kind: TokKind::Literal, line });
                return true;
            }
        }
        _ => {}
    }
    false
}

fn read_ident(cur: &mut Cursor) -> String {
    let mut name = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        name.push(c);
        cur.bump();
    }
    name
}

/// Consumes a char literal body starting at the opening tick.
fn char_body(cur: &mut Cursor) {
    cur.bump(); // opening tick
    while let Some(c) = cur.bump() {
        if c == '\\' {
            cur.bump();
        } else if c == '\'' {
            break;
        }
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) at an opening tick.
fn char_or_lifetime(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    // `'\…'` is always a char escape; `'x'` (any single char then a tick)
    // is a char literal; otherwise ident chars form a lifetime/label.
    if cur.peek(1) == Some('\\') || (cur.peek(2) == Some('\'') && cur.peek(1) != Some('\'')) {
        char_body(cur);
        out.toks.push(Tok { kind: TokKind::Literal, line });
    } else if cur.peek(1).is_some_and(is_ident_start) {
        cur.bump(); // tick
        let name = read_ident(cur);
        out.toks.push(Tok { kind: TokKind::Lifetime(name), line });
    } else {
        // Stray tick (not valid Rust); surface as punctuation.
        cur.bump();
        out.toks.push(Tok { kind: TokKind::Punct('\''), line });
    }
}

/// Consumes a numeric literal. `.` is only swallowed when a digit follows
/// (so `0..n` and `1.max(2)` are left intact); `e`/`E` exponents may carry a
/// sign; alphanumeric suffixes (`u64`, `f32`, hex digits) are absorbed.
fn number_literal(cur: &mut Cursor) {
    let mut prev = '0';
    while let Some(c) = cur.peek(0) {
        let digit_follows = || cur.peek(1).is_some_and(|d| d.is_ascii_digit());
        let continues = c.is_ascii_alphanumeric()
            || c == '_'
            || (c == '.' && digit_follows())
            || ((c == '+' || c == '-') && (prev == 'e' || prev == 'E') && digit_follows());
        if !continues {
            break;
        }
        prev = c;
        cur.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_hide_code() {
        let src = "// HashMap here\nlet x = 1; /* HashSet /* nested HashMap */ still */ use y;";
        assert_eq!(idents(src), ["let", "x", "use", "y"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[1].text.contains("nested HashMap"));
    }

    #[test]
    fn strings_and_raw_strings_hide_code() {
        let src = r####"let a = "HashMap"; let b = r#"HashSet "quoted" inside"#; let c = r"x";"####;
        assert_eq!(idents(src), ["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn raw_string_with_many_hashes_and_newlines() {
        let src = "let s = r##\"line1 \"# still inside\nline2 HashMap\"##; next";
        let lexed = lex(src);
        assert_eq!(idents(src), ["let", "s", "next"]);
        // `next` is on line 2 because the raw string spans a newline.
        assert_eq!(lexed.toks.last().unwrap().line, 2);
    }

    #[test]
    fn byte_and_c_string_prefixes() {
        let src = r##"let a = b"HashMap"; let b = br#"HashSet"#; let c = c"Instant";"##;
        assert_eq!(idents(src), ["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; let e = '\\u{41}'; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Lifetime(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let literals = lexed.toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(literals, 3, "'x', '\\n' and '\\u{{41}}' are char literals");
    }

    #[test]
    fn static_lifetime_and_label() {
        let src = "static S: &'static str = \"\"; 'outer: loop { break 'outer; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Lifetime(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, ["static", "outer", "outer"]);
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_raw_string() {
        assert_eq!(idents("let r#type = r#struct;"), ["let", "type", "struct"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let src = "for i in 0..n { let x = 1.5e-3f64; let y = 2.max(i); let h = 0xFF_u8; }";
        let lexed = lex(src);
        assert_eq!(
            idents(src),
            ["for", "i", "in", "n", "let", "x", "let", "y", "max", "i", "let", "h"]
        );
        let dots = lexed.toks.iter().filter(|t| t.kind == TokKind::Punct('.')).count();
        assert_eq!(dots, 3, "`..` plus the `.max` call survive as punctuation");
    }

    #[test]
    fn doc_comment_classification() {
        let lexed =
            lex("/// doc\n//! inner\n//// not doc\n// plain\n/** block doc */\n/*! bang */");
        let docs: Vec<bool> = lexed.comments.iter().map(Comment::is_doc).collect();
        assert_eq!(docs, [true, true, false, false, true, true]);
    }

    #[test]
    fn line_numbers_are_exact() {
        let lexed = lex("a\n\nb /* c\nd */ e\nf");
        let lines: Vec<(String, u32)> = lexed
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some((s.clone(), t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(lines, [("a".into(), 1), ("b".into(), 3), ("e".into(), 4), ("f".into(), 5)]);
        assert_eq!(lexed.comments[0].line, 3, "block comment starts on line 3");
    }

    #[test]
    fn unterminated_input_degrades_gracefully() {
        // Never panic on malformed source: the lint may run pre-compile.
        lex("let s = \"unterminated");
        lex("/* unterminated");
        lex("let s = r#\"unterminated");
        lex("let c = '");
    }
}
