//! Differential gate for the pooled trial path: every registered protocol
//! family, run through [`rn_sim::Runnable::run_trial_under_faults_pooled`]
//! with ONE long-lived [`rn_sim::TrialPool`], must produce a
//! [`rn_sim::TrialRecord`] byte-identical to the fresh
//! [`rn_sim::Runnable::run_trial_under_faults`] path — across topologies of
//! different sizes and shapes, both collision models, every fault-plan form,
//! and repeated seeds.
//!
//! Sharing a single pool across the whole sweep is the point: it forces
//! every scenario-type switch (the pool's `Any` slot is recreated), every
//! graph-size switch (scratch re-arms), and every back-to-back reuse (stale
//! state from the previous trial must be unobservable) that the campaign
//! executor's per-worker pools see in production.

use rn_bench::ProtocolSpec;
use rn_graph::TopologySpec;
use rn_sim::{CollisionModel, FaultPlan, NetParams, TrialPool};

#[test]
fn pooled_trials_match_fresh_trials_across_the_whole_registry() {
    let topologies = [
        TopologySpec::Grid { w: 8, h: 8 },
        TopologySpec::Complete(24),
        TopologySpec::Path(40),
        TopologySpec::Rgg { n: 48, radius: 0.3 },
    ];
    let faults = [FaultPlan::none(), FaultPlan::drop(0.05), FaultPlan::jam(2, 0.5)];
    // One pool for everything — the worst-case reuse schedule.
    let mut pool = TrialPool::new();
    for topo in &topologies {
        let g = topo.build(0xD1FF);
        let net = NetParams::new(g.n(), g.diameter_double_sweep());
        for spec in ProtocolSpec::all() {
            if spec.required_nodes() > g.n() {
                continue;
            }
            let runnable = spec.instantiate();
            for model in [CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection]
            {
                for (fi, fault) in faults.iter().enumerate() {
                    for seed in 0..2u64 {
                        let fresh = runnable.run_trial_under_faults(&g, net, model, seed, fault);
                        let pooled = runnable
                            .run_trial_under_faults_pooled(&g, net, model, seed, fault, &mut pool);
                        assert_eq!(
                            fresh, pooled,
                            "{spec} × {topo} × {model:?} × fault[{fi}] × seed {seed} diverged \
                             between the fresh and pooled trial paths"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn pooled_path_is_deterministic_across_distinct_pools() {
    // Two pools with different histories must replay the same trial
    // identically: records depend on (scenario, graph, model, seed, faults),
    // never on what a pool ran before.
    let g = TopologySpec::Grid { w: 8, h: 8 }.build(1);
    let net = NetParams::new(g.n(), g.diameter_double_sweep());
    let mut warm = TrialPool::new();
    for spec in ProtocolSpec::all() {
        if spec.required_nodes() > g.n() {
            continue;
        }
        // Warm this pool with a different seed first.
        let r = spec.instantiate();
        r.run_trial_under_faults_pooled(
            &g,
            net,
            CollisionModel::NoCollisionDetection,
            99,
            &FaultPlan::none(),
            &mut warm,
        );
        let mut cold = TrialPool::new();
        let a = r.run_trial_under_faults_pooled(
            &g,
            net,
            CollisionModel::NoCollisionDetection,
            7,
            &FaultPlan::none(),
            &mut warm,
        );
        let b = r.run_trial_under_faults_pooled(
            &g,
            net,
            CollisionModel::NoCollisionDetection,
            7,
            &FaultPlan::none(),
            &mut cold,
        );
        assert_eq!(a, b, "{spec}: pool history leaked into the record");
    }
}
