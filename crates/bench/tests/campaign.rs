//! Integration tests for the scenario subsystem: registry-driven campaign
//! runs, seed determinism of the JSON results file, and the zero-code-change
//! scenario path the CLI exposes.

use rn_bench::{
    executor, validate_results, Campaign, Json, JsonStreamSink, ProtocolSpec, ScenarioSpec,
    TrialPlan,
};
use rn_graph::TopologySpec;
use rn_sim::{CollisionModel, FaultPlan};

fn small_campaign() -> Campaign {
    Campaign {
        id: "determinism".into(),
        // One deterministic and one seeded topology, one paper protocol and
        // one baseline, one faulted cell per pair — exercises every
        // seed-derivation path.
        topologies: vec![
            TopologySpec::Grid { w: 6, h: 6 },
            TopologySpec::Rgg { n: 64, radius: 0.25 },
        ],
        protocols: vec![ProtocolSpec::parse("broadcast"), ProtocolSpec::parse("bgi")],
        models: vec![CollisionModel::NoCollisionDetection],
        faults: vec![FaultPlan::none(), FaultPlan::jam(2, 0.5)],
        plan: TrialPlan::new(3),
    }
}

#[test]
fn same_master_seed_gives_byte_identical_json() {
    let campaign = small_campaign();
    let a = campaign.run(1234).to_json();
    let b = campaign.run(1234).to_json();
    assert_eq!(a, b, "same campaign + same master seed must be byte-identical");

    let c = campaign.run(1235).to_json();
    assert_ne!(a, c, "a different master seed must change the results file");

    let doc = Json::parse(&a).expect("results parse");
    validate_results(&doc).expect("results validate against the v1 schema");
    assert_eq!(doc.get("master_seed").and_then(Json::as_u64), Some(1234));
    assert_eq!(doc.get("cells").and_then(Json::as_arr).map(<[Json]>::len), Some(8));
}

#[test]
fn scenario_string_runs_protocol_topology_pair_without_bench_edits() {
    // The acceptance path: an algorithm/topology pairing that exists nowhere
    // in the bench crate as code — only as this string.
    let spec: ScenarioSpec =
        "leader_election@ring_of_cliques(5,6)".parse().expect("scenario parses");
    let result = Campaign::single(&spec, 3).run(99);
    assert_eq!(result.cells.len(), 1);
    let cell = &result.cells[0];
    assert_eq!(cell.protocol, "leader_election");
    assert_eq!(cell.topology, "ring_of_cliques(5,6)");
    assert_eq!(cell.n, 30);
    assert_eq!(cell.completed, cell.trials, "leader election must elect on every trial");
    assert!(cell.rounds.mean > 0.0);
}

#[test]
fn collision_model_axis_produces_distinct_cells() {
    let campaign = Campaign {
        id: "models".into(),
        topologies: vec![TopologySpec::Star(64)],
        protocols: vec![ProtocolSpec::parse("decay(8)")],
        models: vec![CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection],
        faults: Campaign::no_faults(),
        plan: TrialPlan::new(2),
    };
    let result = campaign.run(7);
    assert_eq!(result.cells.len(), 2);
    assert_eq!(result.cells[0].model, "nocd");
    assert_eq!(result.cells[1].model, "cd");
}

#[test]
fn faulted_scenario_string_runs_records_and_reproduces() {
    // The acceptance path: a Compete-family protocol with a parameter
    // override, crossed with interference, all from one string. (Scaled-down
    // topology versus the CLI example so the test stays fast.)
    let spec: ScenarioSpec =
        "broadcast{curtail=1e6}@rgg(100,0.2)!jam(3,0.5)".parse().expect("scenario parses");
    let campaign = Campaign::single(&spec, 3);
    let a = campaign.run(42);
    let b = campaign.run(42);
    assert_eq!(a.to_json(), b.to_json(), "faulted runs are byte-identical per master seed");

    assert_eq!(a.cells.len(), 1);
    let cell = &a.cells[0];
    assert_eq!(cell.protocol, "broadcast{curtail=1000000}");
    assert_eq!(cell.faults, "jam(3,0.5)");
    let doc = Json::parse(&a.to_json()).expect("parses");
    validate_results(&doc).expect("fault fields are schema-valid");
    let cells = doc.get("cells").and_then(Json::as_arr).expect("cells");
    assert_eq!(cells[0].get("faults").and_then(Json::as_str), Some("jam(3,0.5)"));
}

#[test]
fn jammed_cells_degrade_relative_to_sunny_day_cells() {
    // Same protocol, same topology, fault axis [none, heavy jam]: the
    // faulted cell must never beat the sunny-day cell on completions, and
    // under total jamming nothing completes.
    let campaign = Campaign {
        id: "degrade".into(),
        topologies: vec![TopologySpec::Grid { w: 8, h: 8 }],
        protocols: vec![ProtocolSpec::parse("bgi")],
        models: vec![CollisionModel::NoCollisionDetection],
        faults: vec![FaultPlan::none(), FaultPlan::jam(64, 1.0)],
        plan: TrialPlan::new(3),
    };
    let r = campaign.run(5);
    assert_eq!(r.cells.len(), 2);
    assert_eq!(r.cells[0].completed, 3);
    assert_eq!(r.cells[1].completed, 0, "total jamming defeats every trial");
    // With every node jamming every round there are no listeners left at
    // all: the channel is saturated with noise and delivers nothing.
    assert!(r.cells[1].transmissions.mean > 0.0, "the jammers really transmit");
    assert_eq!(r.cells[1].deliveries.mean, 0.0, "nothing gets through");
}

#[test]
fn thread_count_never_changes_the_results_file() {
    // The acceptance property behind `--threads`: the executor's output is a
    // pure function of (campaign, master seed). One thread and eight threads
    // must produce byte-identical JSON, faulted cells included.
    let campaign = small_campaign();
    let serial = campaign.run_with_threads(1234, 1).to_json();
    let parallel = campaign.run_with_threads(1234, 8).to_json();
    assert_eq!(serial, parallel, "--threads 1 and --threads 8 must agree byte-for-byte");
    validate_results(&Json::parse(&serial).expect("parses")).expect("schema-valid");
}

#[test]
fn streamed_json_is_byte_identical_to_the_in_memory_path() {
    // The CLI's --json path streams cells as they complete; the bytes on
    // disk must equal CampaignResult::to_json exactly — same master seed,
    // any thread count.
    let campaign = small_campaign();
    let expected = campaign.run_with_threads(77, 1).to_json();
    let mut sink = JsonStreamSink::new(Vec::new());
    executor::execute(&campaign, 77, 8, &mut sink).expect("streamed run");
    let streamed = String::from_utf8(sink.into_inner().expect("flush")).expect("utf8");
    assert_eq!(streamed, expected);
}

#[test]
fn placement_scenario_string_runs_and_separates_from_uniform() {
    // The new placement axis end-to-end: corner placement runs from a pure
    // string, labels its cells, and (being a different source set) produces
    // a different trial stream than uniform placement under the same seed.
    let corner: ScenarioSpec = "compete(4,corner)@grid(8x8)".parse().expect("parses");
    let r = Campaign::single(&corner, 3).run(21);
    assert_eq!(r.cells[0].protocol, "compete(4,corner)");
    assert_eq!(r.cells[0].completed, 3);
    let uniform: ScenarioSpec = "compete(4)@grid(8x8)".parse().expect("parses");
    let u = Campaign::single(&uniform, 3).run(21);
    assert_ne!(
        r.cells[0].rounds, u.cells[0].rounds,
        "corner and uniform placement are distinct workloads"
    );
}

#[test]
fn model_record_is_the_effective_model_not_the_requested_one() {
    // A beep-wave probe can only run under collision detection; requesting
    // nocd must not mislabel the results file.
    let spec: ScenarioSpec = "binsearch_le(beep)@grid(6x6)".parse().expect("parses");
    let campaign = Campaign::single(&spec, 2); // requests nocd by default
    let result = campaign.run(3);
    assert_eq!(result.cells[0].model, "cd", "record states the model trials truly ran under");
    assert_eq!(result.cells[0].completed, 2);
}

#[test]
fn smoke_preset_json_is_byte_identical_to_the_committed_baseline() {
    // The registry redesign's byte-compatibility gate: the `smoke` preset
    // under the CI seed must reproduce `benchmarks/baseline_smoke.json`
    // (generated before the ProtocolFamily redesign) byte for byte — same
    // grammar canonicalization, same per-axis seed streams, same
    // aggregation. If this fails after an *intentional* workload change,
    // refresh the baseline as documented in `.github/workflows/ci.yml`.
    let baseline = include_str!("../../../benchmarks/baseline_smoke.json");
    let preset = rn_bench::presets::find("smoke").expect("smoke preset registered");
    let rn_bench::presets::PresetKind::Campaign(build) = preset.kind else {
        panic!("smoke must be a campaign preset");
    };
    let json = build().run(20170725).to_json();
    assert_eq!(json, baseline, "smoke campaign JSON drifted from the committed baseline");
}

#[test]
fn subprotocol_scenarios_run_and_land_in_campaign_json() {
    // The acceptance strings for the new families, scaled to test size
    // where the full-size topology is slow; each must parse, run, and
    // appear in schema-valid campaign JSON under its canonical name.
    for (spec_str, trials) in [
        ("partition(0.5)@grid(16x16)", 2),
        ("schedule(upcast)@torus(12x12)", 2),
        ("schedule(downcast)@grid(12x12)", 2),
        ("compete_cd(4)@rgg(200,0.12)!crash(0.01)", 2),
        ("broadcast_cd@grid(12x12)", 2),
    ] {
        let spec: ScenarioSpec = spec_str.parse().unwrap_or_else(|e| panic!("{spec_str}: {e}"));
        let r = Campaign::single(&spec, trials).run(17);
        assert_eq!(r.cells.len(), 1, "{spec_str}");
        let cell = &r.cells[0];
        assert_eq!(cell.protocol, spec.protocol.to_string(), "{spec_str}");
        assert_eq!(cell.trials, trials);
        assert!(cell.rounds.mean > 0.0, "{spec_str} consumed rounds");
        let doc = Json::parse(&r.to_json()).expect("parses");
        validate_results(&doc).unwrap_or_else(|e| panic!("{spec_str}: {e}"));
        let cells = doc.get("cells").and_then(Json::as_arr).expect("cells");
        assert_eq!(
            cells[0].get("protocol").and_then(Json::as_str),
            Some(spec.protocol.to_string().as_str()),
            "{spec_str} appears in campaign JSON"
        );
    }
}

#[test]
fn cd_exploiting_cells_complete_where_the_wave_has_cd() {
    // The point of the cd axis redesign: broadcast_cd *uses* the extra bit.
    // On a modest grid its cells complete, and the recorded model is cd
    // regardless of the requested axis value.
    let spec: ScenarioSpec = "broadcast_cd@grid(10x10)".parse().expect("parses");
    let r = Campaign::single(&spec, 3).run(5);
    assert_eq!(r.cells[0].model, "cd", "record states the model trials truly ran under");
    assert_eq!(r.cells[0].completed, 3, "broadcast_cd completes on grid-10x10");
}

#[test]
fn crash_faulted_scenarios_degrade_and_reproduce() {
    // Crash-stop end to end through the campaign path: heavy crash defeats
    // broadcasting, and the fault plan travels into the results file.
    let spec: ScenarioSpec = "bgi@grid(8x8)!crash(0.2)".parse().expect("parses");
    let campaign = Campaign::single(&spec, 3);
    let a = campaign.run(9);
    let b = campaign.run(9);
    assert_eq!(a.to_json(), b.to_json(), "crash-faulted runs are byte-identical per seed");
    assert_eq!(a.cells[0].faults, "crash(0.2)");
    assert!(
        a.cells[0].completed < 3,
        "a 20%/round crash hazard must defeat some grid-8x8 broadcasts"
    );
    let doc = Json::parse(&a.to_json()).expect("parses");
    validate_results(&doc).expect("crash fault fields are schema-valid");
}
