//! Golden test for the registry listing (`experiments --list`): any change
//! to the topology grammar, a protocol family's grammar/about line, an
//! override schema, the fault grammar or the preset table must show up as a
//! reviewed diff of `tests/golden_list.txt` — grammar drift cannot land
//! silently.
//!
//! To refresh after an intentional change:
//!
//! ```text
//! cargo run --release -p rn_bench --bin experiments -- --list \
//!     > crates/bench/tests/golden_list.txt
//! ```

#[test]
fn registry_listing_matches_the_committed_golden_file() {
    let golden = include_str!("golden_list.txt");
    let live = rn_bench::registry_listing();
    assert!(
        live == golden,
        "`experiments --list` output drifted from tests/golden_list.txt.\n\
         If the change is intentional, refresh the golden file (see the\n\
         module docs).\n--- golden ---\n{golden}\n--- live ---\n{live}"
    );
}
