//! Differential gate for the engine's frontier fast path: every registered
//! protocol family, run through the real scenario plumbing
//! ([`rn_sim::Runnable::run_trial_under_faults`]), must produce an
//! *identical* [`rn_sim::TrialRecord`] under [`EngineMode::Frontier`] and
//! [`EngineMode::Reference`] — same completion, same round count, same
//! channel metrics — across random small topologies, both collision models
//! and every fault-plan form (`none`, `jam`, `drop`, `crash`).
//!
//! This is the cross-crate complement of the in-crate engine tests: those
//! pin the channel semantics callback-by-callback on hand-built protocols;
//! this one pins the full registry surface, so a new family (or a
//! frontier-aware protocol fast path) cannot drift from the reference
//! engine without failing here.

use proptest::prelude::*;
use rn_bench::ProtocolSpec;
use rn_graph::TopologySpec;
use rn_sim::{
    with_default_engine_mode, CollisionModel, EngineMode, FaultPlan, NetParams, TrialRecord,
};

/// Runs one trial of every canonical registry instance that fits the graph,
/// under both collision models, on the current thread (so the engine-mode
/// scope override applies). Returns labelled records for comparison.
fn run_registry(
    topo: &TopologySpec,
    fault: &FaultPlan,
    seed: u64,
) -> Vec<(String, &'static str, TrialRecord)> {
    let g = topo.build(seed);
    let net = NetParams::new(g.n(), g.diameter_double_sweep());
    let mut out = Vec::new();
    for spec in ProtocolSpec::all() {
        if spec.required_nodes() > g.n() {
            continue;
        }
        let runnable = spec.instantiate();
        for (model, tag) in [
            (CollisionModel::NoCollisionDetection, "nocd"),
            (CollisionModel::CollisionDetection, "cd"),
        ] {
            let record = runnable.run_trial_under_faults(&g, net, model, seed, fault);
            out.push((spec.to_string(), tag, record));
        }
    }
    out
}

fn topology() -> impl Strategy<Value = TopologySpec> {
    // The shim's strategy surface has no prop_oneof; an index-mapped pair of
    // ranges draws uniformly over the same shapes. The last three families
    // are dense on purpose: a complete graph or near-critical RGG/Gnp makes
    // the frontier engine's degree-sum trigger flip between the sparse
    // per-edge path and the word-level dense kernel *within* a single run
    // (small frontier early, saturated mid-broadcast), so every proptest
    // case crosses the dispatch boundary both ways.
    (0usize..9, 0usize..64).prop_map(|(family, x)| match family {
        0 => TopologySpec::Path(9 + x % 19),
        1 => TopologySpec::Cycle(9 + x % 19),
        2 => TopologySpec::Star(9 + x % 11),
        3 => TopologySpec::Grid { w: 3 + x % 3, h: 3 + (x / 3) % 3 },
        4 => TopologySpec::RandomTree(9 + x % 15),
        5 => TopologySpec::Rgg { n: 12 + x % 12, radius: 0.45 },
        6 => TopologySpec::Complete(9 + x % 24),
        7 => TopologySpec::Rgg { n: 24 + x % 24, radius: 0.9 },
        _ => TopologySpec::Gnp { n: 24 + x % 24, p: 0.6 },
    })
}

fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (0usize..4, 0usize..2).prop_map(|(kind, x)| match kind {
        0 => FaultPlan::none(),
        1 => FaultPlan::jam(1 + x, [0.3, 0.7][x]),
        2 => FaultPlan::drop([0.05, 0.2][x]),
        _ => format!("crash({})", [0.1, 0.3][x]).parse().expect("crash plan parses"),
    })
}

proptest! {
    // Each case runs the whole registry (≈ 18 instances × 2 models) twice;
    // a handful of cases already crosses every family with every fault
    // form over the run history.
    #![proptest_config(ProptestConfig { cases: 5 })]

    #[test]
    fn frontier_engine_matches_reference_for_every_registered_family(
        topo in topology(),
        fault in fault_plan(),
        seed in any::<u64>(),
    ) {
        // Every case runs the drawn topology *and* a complete graph: the
        // complete graph saturates the degree-sum trigger from round one, so
        // the CD-model word-level dense kernel (whole-frontier collisions,
        // busy-channel noise at every listener) is exercised on every single
        // proptest case, not just when the draw lands on a dense family.
        for topo in [&topo, &TopologySpec::Complete(17 + (seed % 16) as usize)] {
            let reference = with_default_engine_mode(EngineMode::Reference, || {
                run_registry(topo, &fault, seed)
            });
            let frontier = with_default_engine_mode(EngineMode::Frontier, || {
                run_registry(topo, &fault, seed)
            });
            prop_assert_eq!(reference.len(), frontier.len());
            for (r, f) in reference.iter().zip(&frontier) {
                prop_assert_eq!(r, f, "{} × {} × {} × {} diverged", r.0, r.1, topo, fault);
            }
        }
    }
}
