//! Allocation-count regression gate for the pooled trial path: in steady
//! state (every trial after a scenario's first on a given pool), a pooled
//! trial performs **zero** heap allocations.
//!
//! A counting `#[global_allocator]` wraps the system allocator and counts
//! every `alloc`/`alloc_zeroed`/`realloc` call. The test warms a
//! [`rn_sim::TrialPool`] with one trial per scenario — that trial is allowed
//! to allocate freely (it builds protocol tables, reserves worst-case
//! scratch, memoizes connectivity) — then asserts the allocation counter
//! does not move across subsequent trials.
//!
//! This file is its own integration-test binary on purpose: the global
//! allocator override must not leak into other tests, and the single
//! `#[test]` keeps the harness from running trials concurrently with the
//! measurement.

use rn_bench::ProtocolSpec;
use rn_graph::TopologySpec;
use rn_sim::{CollisionModel, NetParams, TrialPool};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator with a global counter on every allocating entry point.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure forwarding wrapper around `System`; every method delegates
// to the corresponding `System` entry point with unchanged arguments, so
// `System`'s layout/provenance contract is upheld verbatim.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards to `System.alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwards to `System.alloc_zeroed` with the caller's layout.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: forwards to `System.realloc` with the caller's pointer/layout.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: forwards to `System.dealloc` with the caller's pointer/layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_pooled_trials_allocate_nothing() {
    // The smoke-campaign topology: the cell the committed baseline pins.
    let g = TopologySpec::Rgg { n: 2000, radius: 0.05 }.build(0x5EED);
    let net = NetParams::new(g.n(), g.diameter_double_sweep());
    let mut pool = TrialPool::new();
    // Four families spanning the scratch paths the clear-before-reserve
    // lint reasons about: plain broadcast, Decay's coin batching, the
    // CD compete path (pins CollisionDetection via `effective_model`),
    // and the cluster partition scratch.
    for name in ["broadcast", "decay(16)", "compete_cd(4)", "partition(0.5)"] {
        let runnable = ProtocolSpec::parse(name).instantiate();
        let model = runnable.effective_model(CollisionModel::NoCollisionDetection);
        // Warm-up: the first trial on this (pool, scenario, graph) may
        // allocate — it builds the protocol state, reserves worst-case
        // scratch, and memoizes graph connectivity.
        runnable.run_trial_pooled(&g, net, model, 0, None, &mut pool);
        for seed in 1..=5u64 {
            let before = allocation_count();
            let record = runnable.run_trial_pooled(&g, net, model, seed, None, &mut pool);
            let during = allocation_count() - before;
            assert!(record.rounds > 0, "{name} seed {seed}: the trial really ran");
            assert_eq!(
                during, 0,
                "{name} seed {seed}: a steady-state pooled trial must not touch \
                 the heap, but performed {during} allocation(s)"
            );
        }
    }
}
