//! Property tests for the distribution-telemetry layer: the P² quantile
//! sketch against exact sorted quantiles, and the trial accumulator's
//! merge-order determinism (any worker interleaving → identical bytes).
//!
//! **Documented sketch tolerance** (what these tests pin): on samples of up
//! to 1000 values, each P² estimate must fall inside the *exact* quantile
//! window `q(p − 0.10) ..= q(p + 0.10)` widened by 5% of the sample range —
//! a rank tolerance of ±10 percentage points plus a small value slack. P²
//! carries no worst-case guarantee, but staying inside this envelope on
//! randomized data is what makes the p50/p95/p99 columns trustworthy for
//! regression gating; estimates are additionally always inside
//! `[min, max]`, and exact (interpolated order statistics) for n ≤ 5.

use proptest::prelude::*;
use rn_bench::{exact_quantile_sorted, CellStats, P2Sketch, TrialAccumulator};
use rn_sim::{Metrics, TrialRecord};

/// The documented accuracy envelope: the exact `q(p ± 0.10)` window widened
/// by 5% of the sample range.
fn envelope(sorted: &[f64], p: f64) -> (f64, f64) {
    let lo = exact_quantile_sorted(sorted, (p - 0.10).max(0.0));
    let hi = exact_quantile_sorted(sorted, (p + 0.10).min(1.0));
    let slack = 0.05 * (sorted[sorted.len() - 1] - sorted[0]);
    (lo - slack - 1e-9, hi + slack + 1e-9)
}

proptest! {
    #[test]
    fn sketch_estimates_stay_inside_the_documented_envelope(
        values in proptest::collection::vec(0u64..100_000, 6..=1000),
    ) {
        let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        sorted.sort_by(f64::total_cmp);
        for p in [0.50, 0.95, 0.99] {
            let mut sketch = P2Sketch::new(p);
            for &v in &values {
                sketch.push(v as f64);
            }
            let q = sketch.quantile();
            let (lo, hi) = envelope(&sorted, p);
            prop_assert!(
                (lo..=hi).contains(&q),
                "p{p}: estimate {q} outside [{lo}, {hi}] on {} samples",
                values.len()
            );
            // The hard invariant, tolerance aside: never outside the data.
            prop_assert!((sorted[0]..=sorted[sorted.len() - 1]).contains(&q));
        }
    }

    #[test]
    fn sketch_is_exact_while_it_still_holds_every_observation(
        values in proptest::collection::vec(0u64..1000, 1..=5),
        p in 0.0f64..1.0,
    ) {
        let mut sketch = P2Sketch::new(p);
        for &v in &values {
            sketch.push(v as f64);
        }
        let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(sketch.quantile(), exact_quantile_sorted(&sorted, p));
    }

    #[test]
    fn any_push_interleaving_yields_identical_bytes(
        trials in proptest::collection::vec(
            // (rounds, shuffle key, deliveries, collisions, transmissions)
            (0u64..5000, proptest::prelude::any::<u64>(), 0u64..200, 0u64..200, 0u64..200),
            1..=150,
        ),
    ) {
        let records: Vec<TrialRecord> = trials
            .iter()
            .enumerate()
            .map(|(i, &(rounds, _, deliveries, collisions, transmissions))| {
                TrialRecord::new(
                    i % 7 != 0,
                    rounds,
                    Metrics { rounds: 0, transmissions, deliveries, collisions },
                )
            })
            .collect();
        // Trial-index push order: the reference fold.
        let mut sequential = TrialAccumulator::new(records.len() as u64, false);
        for (i, r) in records.iter().enumerate() {
            sequential.push(i as u64, *r, None);
        }
        // An arbitrary worker interleaving: the same trials pushed in the
        // order of their generated shuffle keys.
        let mut order: Vec<usize> = (0..records.len()).collect();
        order.sort_by_key(|&i| (trials[i].1, i));
        let mut shuffled = TrialAccumulator::new(records.len() as u64, false);
        for &i in &order {
            shuffled.push(i as u64, records[i], None);
        }
        prop_assert!(sequential.is_complete() && shuffled.is_complete());
        prop_assert_eq!(sequential.completed(), shuffled.completed());
        prop_assert_eq!(sequential.metrics_present(), shuffled.metrics_present());
        for (a, b) in [
            (sequential.rounds_stats(), shuffled.rounds_stats()),
            (sequential.deliveries_stats(), shuffled.deliveries_stats()),
            (sequential.collisions_stats(), shuffled.collisions_stats()),
            (sequential.transmissions_stats(), shuffled.transmissions_stats()),
        ] {
            // Bit-level equality, not just PartialEq: the JSON renderer
            // prints these floats, so "equal" must mean "identical bytes
            // in the results file" (e.g. -0.0 and 0.0 compare equal but
            // render differently).
            prop_assert_eq!(stat_bits(&a), stat_bits(&b));
        }
    }
}

/// The raw bit patterns of every CellStats field, in declaration order.
fn stat_bits(s: &CellStats) -> [u64; 7] {
    [
        s.mean.to_bits(),
        s.min,
        s.max,
        s.stddev.to_bits(),
        s.p50.to_bits(),
        s.p95.to_bits(),
        s.p99.to_bits(),
    ]
}
