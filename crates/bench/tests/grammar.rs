//! Property-based round-trip tests for the scenario-string grammar over the
//! **open family registry**: `!jam(K,P)` / `!drop(P)` / `!crash(P)` fault
//! suffixes, `{key=value}` parameter overrides, per-family positional
//! arguments (`compete(K,POLICY)`, `partition(BETA)`,
//! `schedule(OP[,BETA])`, …). `parse(display(x)) == x` must hold for every
//! constructible value, not just hand-picked examples — float values rely
//! on Rust's shortest-round-trip `Display`, which these tests pin down.

use proptest::prelude::*;
use rn_bench::{find_family, Overrides, ProtocolSpec, ScenarioSpec};
use rn_sim::{FaultPlan, OverrideClass};

/// Strategy: an arbitrary *valid* fault plan (including the fault-free one).
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (0usize..5, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0u8..8).prop_map(
        |(jammers, jp, dp, cp, shape)| {
            // The shape bits toggle each clause so all eight combinations of
            // jam/drop/crash (including none) are exercised.
            let jammers = if shape & 1 != 0 { jammers.max(1) } else { 0 };
            let dp = if shape & 2 != 0 { dp } else { 0.0 };
            let cp = if shape & 4 != 0 { cp } else { 0.0 };
            FaultPlan::try_new(jammers, jp, dp, cp).expect("generated plans are valid")
        },
    )
}

/// Strategy: a valid override list over distinct keys of the Compete
/// schema (possibly empty), with values in each key's class.
fn arb_overrides() -> impl Strategy<Value = Overrides> {
    let family = find_family("broadcast").expect("broadcast is registered");
    let schema = family.overrides();
    let bits = schema.len() as u32;
    (0u32..(1 << bits), proptest::collection::vec(0.0f64..8.0, schema.len())).prop_map(
        move |(mask, raw)| {
            let pairs = schema.iter().enumerate().filter_map(|(i, spec)| {
                if mask & (1 << i) == 0 {
                    return None;
                }
                let v = raw[i];
                let v = match spec.class {
                    OverrideClass::Flag => {
                        if v < 4.0 {
                            0.0
                        } else {
                            1.0
                        }
                    }
                    OverrideClass::Int => 1.0 + v.floor(),
                    OverrideClass::Float => v,
                    OverrideClass::Enum(names) => (v as usize % names.len()) as f64,
                };
                Some((spec.key, v))
            });
            Overrides::try_from_pairs(family, pairs).expect("generated overrides are valid")
        },
    )
}

/// Strategy: a canonical protocol-spec *string* drawn from every registered
/// family, with randomized positional arguments where the family takes any.
fn arb_protocol_string() -> impl Strategy<Value = String> {
    (0usize..13, 1usize..16, 0usize..3, 1u32..10, 0u8..2).prop_map(
        |(pick, k, policy, beta_grid, with_beta)| {
            let with_beta = with_beta == 1;
            let beta = f64::from(beta_grid) / 10.0;
            let policy = ["", ",clustered", ",corner"][policy];
            match pick {
                0 => "broadcast".into(),
                1 => "broadcast_hw".into(),
                2 => format!("compete({k}{policy})"),
                3 => "leader_election".into(),
                4 => "bgi".into(),
                5 => "truncated".into(),
                6 => {
                    ["binsearch_le(bgi)", "binsearch_le(cd17)", "binsearch_le(beep)"][k % 3].into()
                }
                7 => format!("decay({k})"),
                8 => format!("decay_trunc({k})"),
                9 => "broadcast_cd".into(),
                10 => format!("compete_cd({k})"),
                11 => format!("partition({beta})"),
                12 => {
                    let op = ["downcast", "upcast"][k % 2];
                    if with_beta && beta != 0.25 {
                        format!("schedule({op},{beta})")
                    } else {
                        format!("schedule({op})")
                    }
                }
                _ => unreachable!(),
            }
        },
    )
}

proptest! {
    #[test]
    fn fault_plan_strings_round_trip(plan in arb_fault_plan()) {
        let s = plan.to_string();
        let back: FaultPlan = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
        prop_assert_eq!(back, plan, "parse(display) for {}", s);
    }

    #[test]
    fn fault_suffixes_round_trip_through_scenario_specs(plan in arb_fault_plan()) {
        let mut s = "bgi@grid(4x4)".to_string();
        if !plan.is_none() {
            s.push('!');
            s.push_str(&plan.to_string());
        }
        let spec: ScenarioSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
        prop_assert_eq!(spec.faults, plan);
        prop_assert_eq!(spec.to_string(), s, "canonical form is stable");
    }

    #[test]
    fn override_lists_round_trip_through_protocol_specs(overrides in arb_overrides()) {
        let mut spec = ProtocolSpec::parse("broadcast");
        spec.overrides = overrides;
        let s = spec.to_string();
        let back: ProtocolSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
        prop_assert_eq!(back, spec, "parse(display) for {}", s);
    }

    #[test]
    fn decay_coin_override_strings_round_trip(
        k in 1usize..16,
        trunc in 0u8..2,
        coins in 0usize..3,
    ) {
        // The decay families' enum-valued `coins` override: symbolic names
        // parse, display canonically (never as an index), and the
        // instantiated runnable reports the full spec string.
        let family = if trunc == 1 { "decay_trunc" } else { "decay" };
        let suffix = ["", "{coins=per_index}", "{coins=batched}"][coins];
        let s = format!("{family}({k}){suffix}");
        let spec: ProtocolSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
        prop_assert_eq!(spec.to_string(), s.clone(), "canonical form is stable");
        let back: ProtocolSpec = spec.to_string().parse().expect("reparses");
        prop_assert_eq!(back, spec.clone(), "parse(display) for {}", s);
        prop_assert_eq!(spec.instantiate().name(), s);
    }

    #[test]
    fn every_registered_family_round_trips(proto in arb_protocol_string()) {
        let spec: ProtocolSpec = proto.parse().unwrap_or_else(|e| panic!("{proto}: {e}"));
        prop_assert_eq!(spec.to_string(), proto.clone(), "canonical form is stable");
        let back: ProtocolSpec = spec.to_string().parse().expect("reparses");
        prop_assert_eq!(back, spec, "parse(display) for {}", proto);
    }

    #[test]
    fn full_scenario_strings_round_trip(
        proto in arb_protocol_string(),
        overrides in arb_overrides(),
        plan in arb_fault_plan(),
    ) {
        let mut protocol: ProtocolSpec = proto.parse().expect("protocol");
        // The generated overrides reference the Compete schema, so they only
        // attach to families sharing it (decay's `coins` schema differs).
        let compete_schema = find_family("broadcast").expect("registered").overrides();
        if protocol.family().overrides() != compete_schema {
            protocol = ProtocolSpec::parse("compete(4)");
        }
        protocol.overrides = overrides;
        let spec = ScenarioSpec {
            protocol,
            topology: "grid(4x4)".parse().expect("topology"),
            faults: plan,
        };
        let s = spec.to_string();
        let back: ScenarioSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
        prop_assert_eq!(back, spec, "parse(display) for {}", s);
    }

    #[test]
    fn overridden_specs_survive_the_string_trip_exactly(value in 0.001f64..1000.0) {
        let spec: ProtocolSpec = format!("broadcast{{curtail={value}}}")
            .parse()
            .unwrap_or_else(|e| panic!("curtail={value}: {e}"));
        let (key, parsed) = spec.overrides.pairs()[0];
        prop_assert_eq!(key.key, "curtail");
        prop_assert_eq!(parsed, value, "float survives the string trip");
    }
}
