//! Property-based round-trip tests for the scenario-string grammar
//! extensions: `!jam(K,P)` / `!drop(P)` fault suffixes, `{key=value}`
//! parameter overrides and `compete(K,POLICY)` source placement.
//! `parse(display(x)) == x` must hold for every constructible value, not
//! just hand-picked examples — float values rely on Rust's
//! shortest-round-trip `Display`, which these tests pin down.

use proptest::prelude::*;
use rn_bench::{OverrideKey, Overrides, ProtocolKind, ProtocolSpec, ScenarioSpec, SourcePlacement};
use rn_sim::FaultPlan;

/// Strategy: an arbitrary *valid* fault plan (including the fault-free one).
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (0usize..5, 0.0f64..1.0, 0.0f64..1.0, 0u8..4).prop_map(|(jammers, jp, dp, shape)| {
        // Exercise all four shapes: none, jam-only, drop-only, both.
        let (jammers, dp) = match shape {
            0 => (0, 0.0),
            1 => (jammers.max(1), 0.0),
            2 => (0, dp),
            _ => (jammers.max(1), dp),
        };
        FaultPlan::try_new(jammers, jp, dp).expect("generated plans are valid")
    })
}

/// Strategy: a valid override list over distinct keys (possibly empty),
/// with values in each key's class.
fn arb_overrides() -> impl Strategy<Value = Overrides> {
    (0u16..(1 << OverrideKey::ALL.len() as u16), proptest::collection::vec(0.0f64..8.0, 14))
        .prop_map(|(mask, raw)| {
            let pairs = OverrideKey::ALL.iter().enumerate().filter_map(|(i, &k)| {
                if mask & (1 << i) == 0 {
                    return None;
                }
                let v = raw[i];
                let v = match k {
                    OverrideKey::Background | OverrideKey::IcpBg | OverrideKey::Foreign => {
                        if v < 4.0 {
                            0.0
                        } else {
                            1.0
                        }
                    }
                    OverrideKey::CopiesCap | OverrideKey::MaxRounds => 1.0 + v.floor(),
                    _ => v,
                };
                Some((k, v))
            });
            Overrides::try_from_pairs(pairs).expect("generated overrides are valid")
        })
}

proptest! {
    #[test]
    fn fault_plan_strings_round_trip(plan in arb_fault_plan()) {
        let s = plan.to_string();
        let back: FaultPlan = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
        prop_assert_eq!(back, plan, "parse(display) for {}", s);
    }

    #[test]
    fn fault_suffixes_round_trip_through_scenario_specs(plan in arb_fault_plan()) {
        let mut s = "bgi@grid(4x4)".to_string();
        if !plan.is_none() {
            s.push('!');
            s.push_str(&plan.to_string());
        }
        let spec: ScenarioSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
        prop_assert_eq!(spec.faults, plan);
        prop_assert_eq!(spec.to_string(), s, "canonical form is stable");
    }

    #[test]
    fn override_lists_round_trip_through_protocol_specs(overrides in arb_overrides()) {
        let spec = ProtocolSpec { kind: ProtocolKind::Broadcast, overrides };
        let s = spec.to_string();
        let back: ProtocolSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
        prop_assert_eq!(back, spec, "parse(display) for {}", s);
    }

    #[test]
    fn full_scenario_strings_round_trip(
        overrides in arb_overrides(),
        plan in arb_fault_plan(),
        sources in 1usize..16,
        placement_idx in 0usize..SourcePlacement::ALL.len(),
    ) {
        let placement = SourcePlacement::ALL[placement_idx];
        let spec = ScenarioSpec {
            protocol: ProtocolSpec { kind: ProtocolKind::Compete(sources, placement), overrides },
            topology: "grid(4x4)".parse().expect("topology"),
            faults: plan,
        };
        let s = spec.to_string();
        let back: ScenarioSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
        prop_assert_eq!(back, spec, "parse(display) for {}", s);
    }

    #[test]
    fn overridden_specs_resolve_params_exactly(value in 0.001f64..1000.0) {
        let spec: ProtocolSpec = format!("broadcast{{curtail={value}}}")
            .parse()
            .unwrap_or_else(|e| panic!("curtail={value}: {e}"));
        prop_assert_eq!(spec.params().curtail_const, value, "float survives the string trip");
    }
}
