//! Cross-run regression detection: compares two `rn-bench-results/v1`
//! documents cell-by-cell and flags mean-rounds movements that exceed trial
//! noise.
//!
//! Cells are keyed on `topology × protocol × model × faults`. For a matched
//! pair the mean-rounds delta is judged against a noise band derived from
//! the recorded per-cell `stddev` and trial counts: the standard error of a
//! difference of means,
//!
//! ```text
//! band = sigma · sqrt(s_a²/t_a + s_b²/t_b)
//! ```
//!
//! with `sigma` the caller's confidence multiplier (default 3). Files
//! predating the `stddev` field get a zero-width band, so *any* movement is
//! flagged — strict, but honest about having no noise estimate. A cell
//! present in the baseline but missing from the new run counts as a
//! regression (coverage loss must fail loudly); cells only in the new run
//! are reported informationally.
//!
//! Beyond the mean, matched cells also report their rounds p50/p95 tail
//! estimates side by side (when the files carry the additive quantile
//! fields). The tail is the paper's actual guarantee — w.h.p. round bounds
//! — so [`DiffOptions::p95_gate_pct`] opts into failing cells whose rounds
//! p95 grew by more than a percentage, exactly parallel to the opt-in
//! wall-clock gate. Cells missing p95 on either side (pre-quantile files)
//! are never p95-gated, so old baselines keep diffing gracefully.
//!
//! The `bench-diff` binary wraps this module: markdown report to stdout,
//! exit code 1 when [`DiffReport::has_regressions`].

use crate::campaign::validate_results;
use crate::harness::Table;
use crate::json::Json;

/// Default confidence multiplier for the noise band (≈ 3 standard errors).
pub const DEFAULT_SIGMA: f64 = 3.0;

/// How one baseline/new cell pair compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Mean rounds rose beyond the noise band — the failure condition.
    Regressed,
    /// Mean rounds fell beyond the noise band.
    Improved,
    /// The delta is within the noise band.
    WithinNoise,
    /// The cell exists in the baseline but not in the new run (treated as a
    /// regression: coverage was lost).
    MissingInNew,
    /// The cell exists only in the new run (informational).
    NewOnly,
}

impl DiffStatus {
    /// Short human label for the report table.
    pub fn label(self) -> &'static str {
        match self {
            DiffStatus::Regressed => "REGRESSED",
            DiffStatus::Improved => "improved",
            DiffStatus::WithinNoise => "ok",
            DiffStatus::MissingInNew => "MISSING",
            DiffStatus::NewOnly => "new",
        }
    }
}

/// One row of the comparison: a cell key and how its mean rounds moved.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// `topology × protocol × model × faults` key.
    pub key: String,
    /// Baseline mean rounds (`None` for [`DiffStatus::NewOnly`]).
    pub base_mean: Option<f64>,
    /// New mean rounds (`None` for [`DiffStatus::MissingInNew`]).
    pub new_mean: Option<f64>,
    /// Half-width of the noise band the delta was judged against.
    pub noise: f64,
    /// The verdict.
    pub status: DiffStatus,
    /// Baseline rounds p50 (absent in pre-quantile files).
    pub base_p50: Option<f64>,
    /// New-run rounds p50 (absent in pre-quantile files).
    pub new_p50: Option<f64>,
    /// Baseline rounds p95 — informational unless
    /// [`DiffOptions::p95_gate_pct`] opts into gating on it.
    pub base_p95: Option<f64>,
    /// New-run rounds p95, same default-informational status.
    pub new_p95: Option<f64>,
    /// Baseline `elapsed_ms` annotation, when the file has one.
    /// **Informational by default** — wall-clock is machine-dependent, so
    /// it only gates when the caller opts in via [`diff_results_gated`]'s
    /// time-gate percentage (the scale lane, where machine and scenario are
    /// pinned); perf regressions elsewhere are caught by the criterion
    /// scale suite.
    pub base_elapsed_ms: Option<u64>,
    /// New-run `elapsed_ms` annotation, same default-informational status.
    pub new_elapsed_ms: Option<u64>,
}

impl DiffRow {
    /// `new_mean - base_mean` when both sides exist.
    pub fn delta(&self) -> Option<f64> {
        Some(self.new_mean? - self.base_mean?)
    }
}

/// Full comparison of two results documents.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Baseline document id.
    pub base_id: String,
    /// New document id.
    pub new_id: String,
    /// The sigma multiplier the bands used.
    pub sigma: f64,
    /// Opt-in wall-clock gate: cells whose `elapsed_ms` grew by more than
    /// this percentage count as regressed. `None` (the default) keeps
    /// elapsed time informational.
    pub time_gate_pct: Option<f64>,
    /// Opt-in tail gate: cells whose rounds p95 grew by more than this
    /// percentage count as regressed. `None` (the default) keeps the
    /// quantile columns informational.
    pub p95_gate_pct: Option<f64>,
    /// One row per cell key, in baseline order (new-only cells last).
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// Whether any row fails the gate (regressed or missing coverage).
    pub fn has_regressions(&self) -> bool {
        self.rows
            .iter()
            .any(|r| matches!(r.status, DiffStatus::Regressed | DiffStatus::MissingInNew))
    }

    /// Count of rows with the given status.
    pub fn count(&self, status: DiffStatus) -> usize {
        self.rows.iter().filter(|r| r.status == status).count()
    }

    /// Renders the comparison as a markdown table with a verdict footnote.
    pub fn to_markdown(&self) -> String {
        let time_gate =
            self.time_gate_pct.map_or(String::new(), |pct| format!(", elapsed-ms gate +{pct}%"));
        let p95_gate = self.p95_gate_pct.map_or(String::new(), |pct| format!(", p95 gate +{pct}%"));
        let mut t = Table::new(
            format!(
                "bench-diff: {} → {} (±{}σ noise band{p95_gate}{time_gate})",
                self.base_id, self.new_id, self.sigma
            ),
            &[
                "cell",
                "base mean",
                "new mean",
                "delta",
                "band",
                "p50",
                "p95",
                "verdict",
                "elapsed ms",
            ],
        );
        let num = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.1}"));
        let ms = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |x| x.to_string());
        // "base → new" pairs collapse to "-" when neither side has the
        // value (pre-quantile / untimed files).
        let pair = |base: String, new: String| {
            if base == "-" && new == "-" {
                "-".to_string()
            } else {
                format!("{base} → {new}")
            }
        };
        for r in &self.rows {
            let delta = r.delta().map_or_else(
                || "-".to_string(),
                |d| format!("{}{:.1}", if d >= 0.0 { "+" } else { "" }, d),
            );
            t.row(&[
                r.key.clone(),
                num(r.base_mean),
                num(r.new_mean),
                delta,
                format!("±{:.1}", r.noise),
                // Tail estimates are shown whenever a side has them but
                // only judged under an explicit p95-gate percentage.
                pair(num(r.base_p50), num(r.new_p50)),
                pair(num(r.base_p95), num(r.new_p95)),
                r.status.label().to_string(),
                // Wall-clock likewise gates only under an explicit
                // time-gate percentage; by default the seed-deterministic
                // round counts alone gate.
                pair(ms(r.base_elapsed_ms), ms(r.new_elapsed_ms)),
            ]);
        }
        t.note(if self.has_regressions() {
            format!(
                "FAIL: {} regressed, {} missing (of {} cells)",
                self.count(DiffStatus::Regressed),
                self.count(DiffStatus::MissingInNew),
                self.rows.len()
            )
        } else {
            format!(
                "PASS: {} cells — {} within noise, {} improved, {} new",
                self.rows.len(),
                self.count(DiffStatus::WithinNoise),
                self.count(DiffStatus::Improved),
                self.count(DiffStatus::NewOnly)
            )
        });
        t.to_markdown()
    }
}

/// Knobs for a diff beyond the two documents: the noise multiplier and the
/// two opt-in gates. `Default` reproduces the plain informational diff.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Confidence multiplier for the mean-rounds noise band.
    pub sigma: f64,
    /// Opt-in wall-clock gate percentage (see [`DiffReport::time_gate_pct`]).
    pub time_gate_pct: Option<f64>,
    /// Opt-in rounds-p95 tail gate percentage (see
    /// [`DiffReport::p95_gate_pct`]).
    pub p95_gate_pct: Option<f64>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions { sigma: DEFAULT_SIGMA, time_gate_pct: None, p95_gate_pct: None }
    }
}

/// A cell's comparison-relevant numbers.
struct CellNums {
    key: String,
    mean: f64,
    stddev: f64,
    p50: Option<f64>,
    p95: Option<f64>,
    trials: f64,
    elapsed_ms: Option<u64>,
}

fn extract(doc: &Json) -> Result<(String, Vec<CellNums>), String> {
    validate_results(doc)?;
    let id = doc.get("id").and_then(Json::as_str).expect("validated above").to_string();
    let cells = doc.get("cells").and_then(Json::as_arr).expect("validated above");
    let mut out = Vec::with_capacity(cells.len());
    for cell in cells {
        let s = |k: &str| cell.get(k).and_then(Json::as_str).expect("validated above");
        // `faults` is additive in v1: absent means the pre-fault-axis
        // fault-free default, which keys identically to "none".
        let faults = cell.get("faults").and_then(Json::as_str).unwrap_or("none");
        let rounds = cell.get("rounds").expect("validated above");
        out.push(CellNums {
            key: format!("{} × {} × {} × {}", s("topology"), s("protocol"), s("model"), faults),
            mean: rounds.get("mean").and_then(Json::as_f64).expect("validated above"),
            stddev: rounds.get("stddev").and_then(Json::as_f64).unwrap_or(0.0),
            // Additive quantile fields: absent in pre-quantile files, in
            // which case the tail columns degrade to "-" and the p95 gate
            // never fires.
            p50: rounds.get("p50").and_then(Json::as_f64),
            p95: rounds.get("p95").and_then(Json::as_f64),
            trials: cell.get("trials").and_then(Json::as_u64).expect("validated above") as f64,
            elapsed_ms: cell.get("elapsed_ms").and_then(Json::as_u64),
        });
    }
    Ok((id, out))
}

/// Compares `base` and `new` (parsed results documents) under a `sigma`
/// noise multiplier, with elapsed time informational only.
///
/// # Errors
///
/// A schema-validation message if either document is not a well-formed
/// `rn-bench-results/v1` file, or a description of duplicate cell keys.
pub fn diff_results(base: &Json, new: &Json, sigma: f64) -> Result<DiffReport, String> {
    diff_results_gated(base, new, sigma, None)
}

/// [`diff_results`] with an opt-in wall-clock gate: when `time_gate_pct` is
/// `Some(pct)`, a matched cell whose `elapsed_ms` grew by more than `pct`
/// percent over the baseline counts as [`DiffStatus::Regressed`] even if
/// its rounds are within noise. Cells missing `elapsed_ms` on either side
/// are never time-gated (there is nothing to judge) — the round gate still
/// applies to them as usual.
///
/// # Errors
///
/// Same conditions as [`diff_results`].
pub fn diff_results_gated(
    base: &Json,
    new: &Json,
    sigma: f64,
    time_gate_pct: Option<f64>,
) -> Result<DiffReport, String> {
    diff_results_with(base, new, DiffOptions { sigma, time_gate_pct, ..DiffOptions::default() })
}

/// The full-option diff: [`diff_results`] plus both opt-in gates. The p95
/// gate mirrors the time gate — a matched cell whose rounds p95 grew by
/// more than [`DiffOptions::p95_gate_pct`] percent counts as
/// [`DiffStatus::Regressed`]; cells missing p95 on either side (files
/// predating the quantile fields) are never p95-gated.
///
/// # Errors
///
/// Same conditions as [`diff_results`].
pub fn diff_results_with(
    base: &Json,
    new: &Json,
    options: DiffOptions,
) -> Result<DiffReport, String> {
    let DiffOptions { sigma, time_gate_pct, p95_gate_pct } = options;
    let (base_id, base_cells) = extract(base)?;
    let (new_id, new_cells) = extract(new)?;
    for cells in [&base_cells, &new_cells] {
        let mut keys: Vec<&str> = cells.iter().map(|c| c.key.as_str()).collect();
        keys.sort_unstable();
        if let Some(w) = keys.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("duplicate cell key {:?} (not a valid campaign cross)", w[0]));
        }
    }
    let mut rows = Vec::with_capacity(base_cells.len());
    for b in &base_cells {
        let row = match new_cells.iter().find(|n| n.key == b.key) {
            None => DiffRow {
                key: b.key.clone(),
                base_mean: Some(b.mean),
                new_mean: None,
                noise: 0.0,
                status: DiffStatus::MissingInNew,
                base_p50: b.p50,
                new_p50: None,
                base_p95: b.p95,
                new_p95: None,
                base_elapsed_ms: b.elapsed_ms,
                new_elapsed_ms: None,
            },
            Some(n) => {
                let noise = sigma
                    * (b.stddev * b.stddev / b.trials.max(1.0)
                        + n.stddev * n.stddev / n.trials.max(1.0))
                    .sqrt();
                let delta = n.mean - b.mean;
                let mut status = if delta > noise {
                    DiffStatus::Regressed
                } else if -delta > noise {
                    DiffStatus::Improved
                } else {
                    DiffStatus::WithinNoise
                };
                // Both opt-in gates share the missing-field semantics: a
                // side without the value cannot be judged, so the gate
                // stays silent and the mean gate alone applies.
                if let (Some(pct), Some(bp), Some(np)) = (p95_gate_pct, b.p95, n.p95) {
                    if np > bp * (1.0 + pct / 100.0) {
                        status = DiffStatus::Regressed;
                    }
                }
                if let (Some(pct), Some(be), Some(ne)) = (time_gate_pct, b.elapsed_ms, n.elapsed_ms)
                {
                    if ne as f64 > be as f64 * (1.0 + pct / 100.0) {
                        status = DiffStatus::Regressed;
                    }
                }
                DiffRow {
                    key: b.key.clone(),
                    base_mean: Some(b.mean),
                    new_mean: Some(n.mean),
                    noise,
                    status,
                    base_p50: b.p50,
                    new_p50: n.p50,
                    base_p95: b.p95,
                    new_p95: n.p95,
                    base_elapsed_ms: b.elapsed_ms,
                    new_elapsed_ms: n.elapsed_ms,
                }
            }
        };
        rows.push(row);
    }
    for n in &new_cells {
        if !base_cells.iter().any(|b| b.key == n.key) {
            rows.push(DiffRow {
                key: n.key.clone(),
                base_mean: None,
                new_mean: Some(n.mean),
                noise: 0.0,
                status: DiffStatus::NewOnly,
                base_p50: None,
                new_p50: n.p50,
                base_p95: None,
                new_p95: n.p95,
                base_elapsed_ms: None,
                new_elapsed_ms: n.elapsed_ms,
            });
        }
    }
    Ok(DiffReport { base_id, new_id, sigma, time_gate_pct, p95_gate_pct, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal schema-valid document with one tweakable cell.
    fn doc(mean: f64, stddev: f64, trials: u64, protocol: &str) -> String {
        format!(
            r#"{{"schema":"rn-bench-results/v1","id":"unit","master_seed":1,"trials_per_cell":{trials},"cells":[{{"topology":"grid(4x4)","protocol":"{protocol}","model":"nocd","faults":"none","n":16,"diameter":6,"trials":{trials},"completed":{trials},"rounds":{{"mean":{mean},"min":1,"max":9,"stddev":{stddev}}},"deliveries":{{"mean":1,"min":1,"max":1,"stddev":0}},"collisions":{{"mean":1,"min":1,"max":1,"stddev":0}},"transmissions":{{"mean":1,"min":1,"max":1,"stddev":0}}}}]}}"#
        )
    }

    fn parse(s: &str) -> Json {
        Json::parse(s).expect("test doc parses")
    }

    #[test]
    fn identical_files_report_zero_regressions() {
        let a = parse(&doc(100.0, 5.0, 10, "bgi"));
        let r = diff_results(&a, &a, DEFAULT_SIGMA).expect("diffs");
        assert!(!r.has_regressions());
        assert_eq!(r.count(DiffStatus::WithinNoise), 1);
        assert!(r.to_markdown().contains("PASS"), "{}", r.to_markdown());
    }

    #[test]
    fn regression_beyond_the_noise_band_is_flagged() {
        // band = 3·sqrt(25/10 + 25/10) ≈ 6.7; a +50 move is far outside.
        let a = parse(&doc(100.0, 5.0, 10, "bgi"));
        let b = parse(&doc(150.0, 5.0, 10, "bgi"));
        let r = diff_results(&a, &b, DEFAULT_SIGMA).expect("diffs");
        assert!(r.has_regressions());
        assert_eq!(r.rows[0].status, DiffStatus::Regressed);
        assert_eq!(r.rows[0].delta(), Some(50.0));
        assert!(r.to_markdown().contains("REGRESSED"));
        // The same move downward is an improvement, not a failure.
        let r = diff_results(&b, &a, DEFAULT_SIGMA).expect("diffs");
        assert!(!r.has_regressions());
        assert_eq!(r.rows[0].status, DiffStatus::Improved);
    }

    #[test]
    fn small_moves_stay_within_noise_and_zero_stddev_is_strict() {
        // +4 against a ±6.7 band: noise.
        let a = parse(&doc(100.0, 5.0, 10, "bgi"));
        let b = parse(&doc(104.0, 5.0, 10, "bgi"));
        let r = diff_results(&a, &b, DEFAULT_SIGMA).expect("diffs");
        assert_eq!(r.rows[0].status, DiffStatus::WithinNoise);
        // stddev 0 (deterministic cells or pre-stddev files): any upward
        // movement is out of band.
        let a = parse(&doc(100.0, 0.0, 10, "bgi"));
        let b = parse(&doc(100.5, 0.0, 10, "bgi"));
        assert!(diff_results(&a, &b, DEFAULT_SIGMA).expect("diffs").has_regressions());
    }

    #[test]
    fn missing_cells_fail_and_new_cells_inform() {
        let a = parse(&doc(100.0, 5.0, 10, "bgi"));
        let b = parse(&doc(100.0, 5.0, 10, "truncated"));
        let r = diff_results(&a, &b, DEFAULT_SIGMA).expect("diffs");
        assert!(r.has_regressions(), "losing a baseline cell must fail the gate");
        assert_eq!(r.count(DiffStatus::MissingInNew), 1);
        assert_eq!(r.count(DiffStatus::NewOnly), 1);
        let md = r.to_markdown();
        assert!(md.contains("MISSING") && md.contains("new"), "{md}");
    }

    #[test]
    fn pre_stddev_files_diff_with_a_zero_band() {
        // Drop the stddev fields entirely (a PR-3-era file): still diffs.
        let old = doc(100.0, 0.0, 10, "bgi").replace(",\"stddev\":0}", "}");
        assert!(!old.contains("stddev"));
        let a = parse(&old);
        let r = diff_results(&a, &a, DEFAULT_SIGMA).expect("old schema diffs");
        assert!(!r.has_regressions());
        assert_eq!(r.rows[0].noise, 0.0);
    }

    #[test]
    fn elapsed_ms_is_reported_but_never_gates() {
        // A timed new run that is 100× slower on the wall clock but has
        // identical rounds must still pass: elapsed_ms is informational.
        let a = parse(&doc(100.0, 5.0, 10, "bgi"));
        let timed = doc(100.0, 5.0, 10, "bgi")
            .replace("\"stddev\":0}}]}", "\"stddev\":0},\"elapsed_ms\":52100}]}");
        let b = parse(&timed);
        assert!(b.get("cells").unwrap().as_arr().unwrap()[0].get("elapsed_ms").is_some());
        let r = diff_results(&a, &b, DEFAULT_SIGMA).expect("diffs");
        assert!(!r.has_regressions());
        assert_eq!(r.rows[0].base_elapsed_ms, None);
        assert_eq!(r.rows[0].new_elapsed_ms, Some(52100));
        let md = r.to_markdown();
        assert!(md.contains("- → 52100"), "{md}");
        // Both sides timed: rendered as base → new.
        let r = diff_results(&b, &b, DEFAULT_SIGMA).expect("diffs");
        assert!(r.to_markdown().contains("52100 → 52100"));
    }

    /// A timed variant of [`doc`] (fixed rounds, tweakable wall-clock).
    fn timed_doc(ms: u64) -> Json {
        parse(
            &doc(100.0, 5.0, 10, "bgi")
                .replace("\"stddev\":0}}]}", &format!("\"stddev\":0}},\"elapsed_ms\":{ms}}}]}}")),
        )
    }

    #[test]
    fn time_gate_passes_growth_within_the_percentage() {
        let r = diff_results_gated(&timed_doc(1000), &timed_doc(1040), DEFAULT_SIGMA, Some(10.0))
            .expect("diffs");
        assert!(!r.has_regressions(), "+4% elapsed is inside a 10% gate");
        assert_eq!(r.rows[0].status, DiffStatus::WithinNoise);
        assert!(r.to_markdown().contains("elapsed-ms gate +10%"), "{}", r.to_markdown());
        // Exactly at the threshold is still a pass (the gate is strict >).
        let r = diff_results_gated(&timed_doc(1000), &timed_doc(1100), DEFAULT_SIGMA, Some(10.0))
            .expect("diffs");
        assert!(!r.has_regressions());
    }

    #[test]
    fn time_gate_flags_elapsed_regressions_beyond_the_percentage() {
        let base = timed_doc(1000);
        let slow = timed_doc(1200);
        // Without the gate the same pair passes (informational default).
        let r = diff_results(&base, &slow, DEFAULT_SIGMA).expect("diffs");
        assert!(!r.has_regressions(), "default stays informational");
        // With a 10% gate, +20% wall-clock is a regression even though the
        // round counts are identical.
        let r = diff_results_gated(&base, &slow, DEFAULT_SIGMA, Some(10.0)).expect("diffs");
        assert!(r.has_regressions());
        assert_eq!(r.rows[0].status, DiffStatus::Regressed);
        assert!(r.to_markdown().contains("FAIL"), "{}", r.to_markdown());
    }

    #[test]
    fn time_gate_ignores_cells_missing_elapsed_on_either_side() {
        let untimed = parse(&doc(100.0, 5.0, 10, "bgi"));
        for (a, b) in [(&untimed, &timed_doc(9999)), (&timed_doc(9999), &untimed)] {
            let r = diff_results_gated(a, b, DEFAULT_SIGMA, Some(10.0)).expect("diffs");
            assert!(!r.has_regressions(), "absent elapsed_ms cannot be judged");
            assert_eq!(r.rows[0].status, DiffStatus::WithinNoise);
        }
    }

    /// A quantile-carrying variant of [`doc`] (fixed mean, tweakable tail).
    fn quantile_doc(p95: f64) -> Json {
        parse(&doc(100.0, 5.0, 10, "bgi").replace(
            "\"stddev\":5}",
            &format!("\"stddev\":5,\"p50\":99.0,\"p95\":{p95},\"p99\":{}}}", p95 + 4.0),
        ))
    }

    #[test]
    fn p95_gate_flags_tail_regressions_beyond_the_percentage() {
        let base = quantile_doc(120.0);
        let heavy_tail = quantile_doc(150.0);
        // Without the gate the same pair passes: quantiles are
        // informational by default, and the means are identical.
        let r = diff_results(&base, &heavy_tail, DEFAULT_SIGMA).expect("diffs");
        assert!(!r.has_regressions(), "default keeps the tail informational");
        assert!(r.to_markdown().contains("120.0 → 150.0"), "{}", r.to_markdown());
        // With a 10% gate, +25% p95 is a regression even at equal means.
        let opts = DiffOptions { p95_gate_pct: Some(10.0), ..DiffOptions::default() };
        let r = diff_results_with(&base, &heavy_tail, opts).expect("diffs");
        assert!(r.has_regressions());
        assert_eq!(r.rows[0].status, DiffStatus::Regressed);
        let md = r.to_markdown();
        assert!(md.contains("p95 gate +10%") && md.contains("FAIL"), "{md}");
        // Growth inside the gate — and an identical pair — both pass.
        let mild = quantile_doc(126.0);
        assert!(!diff_results_with(&base, &mild, opts).expect("diffs").has_regressions());
        assert!(!diff_results_with(&base, &base, opts).expect("diffs").has_regressions());
    }

    #[test]
    fn new_results_degrade_gracefully_against_pre_quantile_files() {
        // Satellite: a v1 file written before the quantile fields existed
        // diffs against a quantile-carrying one with "-" tail columns, a
        // silent p95 gate, a live mean gate, and unchanged exit semantics.
        let old = parse(&doc(100.0, 5.0, 10, "bgi"));
        let new = quantile_doc(120.0);
        let opts = DiffOptions { p95_gate_pct: Some(0.0), ..DiffOptions::default() };
        for (a, b) in [(&old, &new), (&new, &old)] {
            let r = diff_results_with(a, b, opts).expect("mixed generations diff");
            assert!(!r.has_regressions(), "absent p95 cannot be judged, even at gate 0%");
            assert_eq!(r.rows[0].status, DiffStatus::WithinNoise);
        }
        // One-sided tails render as "- → x" (and x → -), like elapsed ms.
        let md = diff_results_with(&old, &new, opts).expect("diffs").to_markdown();
        assert!(md.contains("- → 120.0"), "{md}");
        // Two pre-quantile files: tail columns collapse to "-".
        let r = diff_results_with(&old, &old, opts).expect("diffs");
        assert_eq!(r.rows[0].base_p95, None);
        let md = r.to_markdown();
        let data_row = md.lines().find(|l| l.contains("bgi")).expect("row");
        let dashes = data_row.split('|').filter(|cell| cell.trim() == "-").count();
        assert!(dashes >= 3, "p50/p95/elapsed columns degrade to '-': {data_row}");
        // The mean gate still fires across generations.
        let regressed = parse(&doc(150.0, 5.0, 10, "bgi"));
        assert!(diff_results_with(&old, &regressed, opts).expect("diffs").has_regressions());
    }

    #[test]
    fn invalid_documents_are_rejected() {
        let good = parse(&doc(1.0, 0.0, 1, "bgi"));
        let bad = parse(r#"{"schema":"other/v9","id":"x","master_seed":1,"cells":[{}]}"#);
        assert!(diff_results(&bad, &good, 3.0).is_err());
        assert!(diff_results(&good, &bad, 3.0).is_err());
    }
}
