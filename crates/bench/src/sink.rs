//! Campaign result sinks: where finished cells go as the executor completes
//! them.
//!
//! The executor hands a [`CampaignSink`] one [`CellResult`] at a time, in
//! deterministic plan order (a small reorder buffer inside the executor
//! absorbs out-of-order completion). Two implementations cover the two
//! consumption modes:
//!
//! * [`MemorySink`] collects everything into a [`CampaignResult`] — the
//!   classic in-memory path behind [`crate::Campaign::run`];
//! * [`JsonStreamSink`] writes the versioned results document
//!   incrementally to any [`io::Write`], keeping memory proportional to the
//!   cells in flight rather than the whole sweep. Its output is
//!   **byte-identical** to [`CampaignResult::to_json`] for the same
//!   campaign and master seed — both render through the deterministic
//!   [`crate::json`] writer.

use crate::campaign::{CampaignResult, CellResult, RESULTS_SCHEMA};
use crate::json::Json;
use std::io;

/// Identifying header of one campaign run, handed to
/// [`CampaignSink::begin`] before any cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunHeader {
    /// Campaign identifier.
    pub id: String,
    /// The master seed the run derives everything from.
    pub master_seed: u64,
    /// Trials per cell.
    pub trials_per_cell: u64,
}

/// A consumer of campaign results, fed in deterministic plan order.
///
/// The executor calls `begin` once, then `cell` once per planned cell (in
/// plan order), then `finish` once. Sinks must be `Send` — the executor
/// invokes `cell` from whichever worker thread completes a cell's final
/// trial (under a lock, so calls never overlap).
///
/// # Errors
///
/// All methods return [`io::Result`]; the executor aborts emission on the
/// first error and surfaces it from [`crate::executor::execute`].
pub trait CampaignSink: Send {
    /// Called once before any cell, with the run's identifying header.
    fn begin(&mut self, header: &RunHeader) -> io::Result<()>;

    /// Called once per finished cell, in plan order.
    fn cell(&mut self, cell: &CellResult) -> io::Result<()>;

    /// Called once after the last cell.
    fn finish(&mut self) -> io::Result<()>;
}

/// Collects every cell in memory and assembles a [`CampaignResult`].
#[derive(Debug, Default)]
pub struct MemorySink {
    header: Option<RunHeader>,
    cells: Vec<CellResult>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The assembled result.
    ///
    /// # Panics
    ///
    /// Panics if the sink was never fed (no `begin` call).
    pub fn into_result(self) -> CampaignResult {
        let header = self.header.expect("MemorySink::into_result before any begin() call");
        CampaignResult {
            id: header.id,
            master_seed: header.master_seed,
            trials_per_cell: header.trials_per_cell,
            cells: self.cells,
        }
    }
}

impl CampaignSink for MemorySink {
    fn begin(&mut self, header: &RunHeader) -> io::Result<()> {
        self.header = Some(header.clone());
        Ok(())
    }

    fn cell(&mut self, cell: &CellResult) -> io::Result<()> {
        self.cells.push(cell.clone());
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streams the `rn-bench-results/v1` document to a writer, one cell at a
/// time: header and opening `"cells":[` on `begin`, one rendered cell per
/// `cell` call, closing `]}` on `finish`. Byte-identical to
/// [`CampaignResult::to_json`] for the same run.
#[derive(Debug)]
pub struct JsonStreamSink<W: io::Write + Send> {
    w: W,
    cells_written: usize,
}

impl<W: io::Write + Send> JsonStreamSink<W> {
    /// Wraps `w`; nothing is written until the executor calls `begin`.
    pub fn new(w: W) -> JsonStreamSink<W> {
        JsonStreamSink { w, cells_written: 0 }
    }

    /// Number of cells written so far.
    pub fn cells_written(&self) -> usize {
        self.cells_written
    }

    /// Flushes and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: io::Write + Send> CampaignSink for JsonStreamSink<W> {
    fn begin(&mut self, header: &RunHeader) -> io::Result<()> {
        // Field order and rendering must match CampaignResult::to_json
        // exactly; strings go through the same Json escaper.
        write!(
            self.w,
            "{{\"schema\":{},\"id\":{},\"master_seed\":{},\"trials_per_cell\":{},\"cells\":[",
            Json::Str(RESULTS_SCHEMA.into()).render(),
            Json::Str(header.id.clone()).render(),
            header.master_seed,
            header.trials_per_cell,
        )
    }

    fn cell(&mut self, cell: &CellResult) -> io::Result<()> {
        if self.cells_written > 0 {
            self.w.write_all(b",")?;
        }
        self.cells_written += 1;
        self.w.write_all(cell.to_json().render().as_bytes())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.write_all(b"]}")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, TrialPlan};
    use crate::executor;
    use crate::registry::ProtocolSpec;
    use rn_graph::TopologySpec;
    use rn_sim::CollisionModel;

    fn tiny() -> Campaign {
        Campaign {
            id: "sink-unit".into(),
            topologies: vec![TopologySpec::Path(12), TopologySpec::Star(7)],
            protocols: vec![ProtocolSpec::parse("bgi"), ProtocolSpec::parse("decay(2)")],
            models: vec![CollisionModel::NoCollisionDetection],
            faults: Campaign::no_faults(),
            plan: TrialPlan::new(3),
        }
    }

    #[test]
    fn streamed_bytes_equal_the_in_memory_document() {
        let campaign = tiny();
        let expected = campaign.run(77).to_json();
        let mut sink = JsonStreamSink::new(Vec::new());
        executor::execute(&campaign, 77, 4, &mut sink).expect("streamed run");
        assert_eq!(sink.cells_written(), 4);
        let streamed = String::from_utf8(sink.into_inner().expect("flush")).expect("utf8");
        assert_eq!(streamed, expected, "streaming sink must be byte-identical to to_json()");
    }

    #[test]
    fn stream_sink_handles_the_empty_campaign() {
        let mut campaign = tiny();
        campaign.topologies.clear();
        let mut sink = JsonStreamSink::new(Vec::new());
        executor::execute(&campaign, 1, 2, &mut sink).expect("empty run");
        let streamed = String::from_utf8(sink.into_inner().expect("flush")).expect("utf8");
        assert_eq!(streamed, campaign.run(1).to_json());
        assert!(streamed.ends_with("\"cells\":[]}"), "{streamed}");
    }

    #[test]
    fn write_errors_surface_from_execute() {
        /// A writer that fails after a fixed byte budget.
        struct Failing(usize);
        impl io::Write for Failing {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 < buf.len() {
                    return Err(io::Error::other("disk full (synthetic)"));
                }
                self.0 -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let campaign = tiny();
        let mut sink = JsonStreamSink::new(Failing(120));
        let err = executor::execute(&campaign, 77, 2, &mut sink).unwrap_err();
        assert!(err.to_string().contains("disk full"), "{err}");
    }
}
