//! Streaming distribution statistics for the campaign pipeline.
//!
//! The paper's guarantees are high-probability round bounds, so the *tail*
//! of the round distribution — not the mean — is the quantity a
//! reproduction should track. This module provides the three layers that
//! carry distributions from trial records to the results file:
//!
//! * [`P2Sketch`] — the P² streaming quantile estimator (Jain & Chlamtac,
//!   CACM 1985): five markers per tracked quantile, O(1) memory and update,
//!   exact for the first five observations;
//! * [`QuantityAccum`] — one per-trial quantity folded in a single pass:
//!   Welford moments (mean/stddev), integer min/max, and P² sketches for
//!   p50/p95/p99, finishing into a [`CellStats`];
//! * [`TrialAccumulator`] — the per-cell accumulator the executor's workers
//!   fold [`TrialRecord`]s into as trials finish, replacing the old
//!   buffer-everything-then-aggregate path.
//!
//! **Determinism.** Campaign results must be byte-identical for any thread
//! count, but both Welford and P² are order-sensitive in floating point.
//! [`TrialAccumulator`] therefore owns a small reorder buffer: records may
//! arrive in any worker interleaving, but only the contiguous prefix (in
//! trial-index order) is folded, so the folded sequence — and every byte
//! derived from it — is a pure function of the trial records themselves.
//! Memory is O(out-of-order window), not O(trials).

use crate::json::Json;
use rn_sim::TrialRecord;
use std::collections::BTreeMap;
use std::time::Duration;

/// Exact quantile of an ascending-sorted sample, with linear interpolation
/// between order statistics (the `h = p·(n−1)` convention; 0 for an empty
/// slice). This is the ground truth the P² sketch approximates — and matches
/// it exactly while the sketch still holds every observation (n ≤ 5).
pub fn exact_quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        n => {
            let h = p.clamp(0.0, 1.0) * (n - 1) as f64;
            let lo = h.floor() as usize;
            let hi = (lo + 1).min(n - 1);
            sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
        }
    }
}

/// A P² streaming estimator for one quantile: five marker heights whose
/// positions are nudged toward the ideal order-statistic positions by
/// piecewise-parabolic (hence "P²") interpolation. The estimate is exact
/// (interpolated order statistic) for up to five observations, then O(1)
/// per update with bounded error for unimodal-ish data.
///
/// The sketch is a pure function of the observation *sequence* — same
/// values in the same order, same estimate to the last bit — which is why
/// [`TrialAccumulator`] feeds it in trial-index order regardless of worker
/// scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Sketch {
    p: f64,
    count: u64,
    /// Marker heights q₀..q₄ (q₀ = running min, q₄ = running max once
    /// initialized; the estimate is q₂). Holds the raw first observations,
    /// unsorted, until the fifth arrives.
    heights: [f64; 5],
    /// Actual marker positions n₀..n₄ (1-based ranks, kept as f64 but
    /// always integral).
    positions: [f64; 5],
    /// Desired marker positions n′₀..n′₄.
    desired: [f64; 5],
    /// Per-observation increments dn′₀..dn′₄.
    increments: [f64; 5],
}

impl P2Sketch {
    /// A sketch tracking the `p`-quantile (`0 ≤ p ≤ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> P2Sketch {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0, 1], got {p}");
        P2Sketch {
            p,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
        }
    }

    /// The tracked quantile.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Observations folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one observation.
    pub fn push(&mut self, x: f64) {
        let n = self.count as usize;
        self.count += 1;
        if n < 5 {
            self.heights[n] = x;
            if n == 4 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        // Locate the marker cell containing x, extending the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (0..4)
                .find(|&i| self.heights[i] <= x && x < self.heights[i + 1])
                .expect("x is between the extremes, so some cell contains it")
        };
        for i in k + 1..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        // Nudge the three interior markers toward their desired positions.
        for i in 1..4 {
            let drift = self.desired[i] - self.positions[i];
            let room_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let room_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (drift >= 1.0 && room_up) || (drift <= -1.0 && room_down) {
                let s = if drift >= 1.0 { 1.0 } else { -1.0 };
                let q = self.parabolic(i, s);
                // The parabolic candidate must keep the heights ordered;
                // fall back to linear interpolation toward the neighbor.
                self.heights[i] = if self.heights[i - 1] < q && q < self.heights[i + 1] {
                    q
                } else {
                    self.linear(i, s)
                };
                self.positions[i] += s;
            }
        }
    }

    /// Piecewise-parabolic candidate height for marker `i` moved by `s`.
    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (q, n) = (&self.heights, &self.positions);
        q[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback height for marker `i` moved by `s` (s is ±1).
    fn linear(&self, i: usize, s: f64) -> f64 {
        let (q, n) = (&self.heights, &self.positions);
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        q[i] + s * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// The current quantile estimate: exact (interpolated order statistic)
    /// while n ≤ 5, the center P² marker after; 0 with no observations.
    pub fn quantile(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count <= 5 {
            let mut held = self.heights[..self.count as usize].to_vec();
            held.sort_by(f64::total_cmp);
            return exact_quantile_sorted(&held, self.p);
        }
        self.heights[2]
    }
}

/// Distribution summary of one per-trial quantity: mean, min, max, sample
/// standard deviation, and streaming p50/p95/p99 estimates — the per-key
/// stats object of the `rn-bench-results/v1` schema.
///
/// `stddev` uses the `n−1` denominator (`0` for fewer than two trials) and
/// feeds `bench-diff`'s noise band; the quantile fields are additive v1
/// fields (see [`crate::validate_results`]) that `bench-diff --gate-p95`
/// judges tail regressions from. All values are exact for ≤ 5 trials and
/// P²-approximated above (documented tolerance in the property tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// Mean over trials.
    pub mean: f64,
    /// Minimum over trials.
    pub min: u64,
    /// Maximum over trials.
    pub max: u64,
    /// Sample standard deviation over trials (0 when trials < 2).
    pub stddev: f64,
    /// Streaming median estimate.
    pub p50: f64,
    /// Streaming 95th-percentile estimate.
    pub p95: f64,
    /// Streaming 99th-percentile estimate.
    pub p99: f64,
}

impl CellStats {
    /// Accumulates every statistic in one pass over `values`, in iteration
    /// order (the moments and the sketches are both order-sensitive in
    /// floating point — callers feed trial order).
    pub fn over(values: impl IntoIterator<Item = u64>) -> CellStats {
        let mut acc = QuantityAccum::new();
        for v in values {
            acc.push(v);
        }
        acc.finish()
    }

    pub(crate) fn to_json(self) -> Json {
        Json::obj(vec![
            ("mean", Json::Num(self.mean)),
            ("min", Json::UInt(self.min)),
            ("max", Json::UInt(self.max)),
            ("stddev", Json::Num(self.stddev)),
            // Additive v1 fields: absent in pre-quantile files, so old
            // documents still validate (and old readers ignore them).
            ("p50", Json::Num(self.p50)),
            ("p95", Json::Num(self.p95)),
            ("p99", Json::Num(self.p99)),
        ])
    }
}

/// Single-pass accumulator for one per-trial quantity: Welford moments
/// (numerically stable when the mean is large and the spread small), integer
/// min/max, and the three standard quantile sketches. Finishes into a
/// [`CellStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantityAccum {
    count: u64,
    mean: f64,
    m2: f64,
    min: u64,
    max: u64,
    p50: P2Sketch,
    p95: P2Sketch,
    p99: P2Sketch,
}

impl Default for QuantityAccum {
    fn default() -> Self {
        QuantityAccum::new()
    }
}

impl QuantityAccum {
    /// An empty accumulator.
    pub fn new() -> QuantityAccum {
        QuantityAccum {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: u64::MAX,
            max: 0,
            p50: P2Sketch::new(0.50),
            p95: P2Sketch::new(0.95),
            p99: P2Sketch::new(0.99),
        }
    }

    /// Folds one observation.
    pub fn push(&mut self, v: u64) {
        self.count += 1;
        let x = v as f64;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.p50.push(x);
        self.p95.push(x);
        self.p99.push(x);
    }

    /// Observations folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The summary statistics (all-zero for an empty accumulator).
    pub fn finish(&self) -> CellStats {
        if self.count == 0 {
            return CellStats {
                mean: 0.0,
                min: 0,
                max: 0,
                stddev: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let stddev =
            if self.count > 1 { (self.m2 / (self.count - 1) as f64).max(0.0).sqrt() } else { 0.0 };
        CellStats {
            mean: self.mean,
            min: self.min,
            max: self.max,
            stddev,
            p50: self.p50.quantile(),
            p95: self.p95.quantile(),
            p99: self.p99.quantile(),
        }
    }
}

/// The per-cell accumulator executor workers fold trial records into as
/// they finish — mergeable in the sense that pushes may arrive in *any*
/// interleaving (each trial index exactly once) and the result is still a
/// pure function of the records: an internal reorder buffer holds
/// out-of-order arrivals and folds only the contiguous prefix in
/// trial-index order.
///
/// Tracks every per-trial quantity (rounds, deliveries, collisions,
/// transmissions), the completion count, whether *all* folded records carry
/// real channel metrics (see [`TrialRecord::metrics_recorded`]), and — when
/// constructed with timing on — the summed wall-clock plus a per-trial
/// elapsed-milliseconds distribution.
#[derive(Debug)]
pub struct TrialAccumulator {
    trials: u64,
    timing: bool,
    /// Next trial index to fold; everything below is already folded.
    next: u64,
    /// Out-of-order arrivals, keyed by trial index, waiting for `next`.
    pending: BTreeMap<u64, (TrialRecord, Duration)>,
    completed: u64,
    metrics_recorded: u64,
    rounds: QuantityAccum,
    deliveries: QuantityAccum,
    collisions: QuantityAccum,
    transmissions: QuantityAccum,
    elapsed_total: Duration,
    trial_elapsed_ms: QuantityAccum,
}

impl TrialAccumulator {
    /// An empty accumulator expecting `trials` records (trial indices
    /// `0..trials`). `timing` mirrors
    /// [`crate::executor::ExecOptions::timing`]: when off, per-trial
    /// durations are ignored so wall-clock never leaks into byte-compared
    /// output.
    pub fn new(trials: u64, timing: bool) -> TrialAccumulator {
        TrialAccumulator {
            trials,
            timing,
            next: 0,
            pending: BTreeMap::new(),
            completed: 0,
            metrics_recorded: 0,
            rounds: QuantityAccum::new(),
            deliveries: QuantityAccum::new(),
            collisions: QuantityAccum::new(),
            transmissions: QuantityAccum::new(),
            elapsed_total: Duration::ZERO,
            trial_elapsed_ms: QuantityAccum::new(),
        }
    }

    /// Folds the record of trial `trial` (plus its wall-clock, when the run
    /// is timed). Any arrival order is accepted; the fold itself always
    /// happens in trial-index order.
    ///
    /// # Panics
    ///
    /// Panics if `trial` is out of range or already pushed — both are
    /// executor bugs (a work unit claimed twice).
    pub fn push(&mut self, trial: u64, record: TrialRecord, elapsed: Option<Duration>) {
        assert!(trial < self.trials, "trial {trial} out of range (cell has {})", self.trials);
        assert!(
            trial >= self.next && !self.pending.contains_key(&trial),
            "trial {trial} pushed twice"
        );
        self.pending.insert(trial, (record, elapsed.unwrap_or(Duration::ZERO)));
        while let Some((record, dt)) = self.pending.remove(&self.next) {
            self.next += 1;
            self.fold(record, dt);
        }
    }

    fn fold(&mut self, record: TrialRecord, dt: Duration) {
        self.completed += u64::from(record.completed);
        self.metrics_recorded += u64::from(record.metrics_recorded);
        self.rounds.push(record.rounds);
        self.deliveries.push(record.metrics.deliveries);
        self.collisions.push(record.metrics.collisions);
        self.transmissions.push(record.metrics.transmissions);
        if self.timing {
            self.elapsed_total += dt;
            self.trial_elapsed_ms.push(u64::try_from(dt.as_millis()).unwrap_or(u64::MAX));
        }
    }

    /// Records folded so far (the contiguous prefix; excludes any still in
    /// the reorder buffer).
    pub fn folded(&self) -> u64 {
        self.next
    }

    /// Whether every expected trial has been folded.
    pub fn is_complete(&self) -> bool {
        self.next == self.trials && self.pending.is_empty()
    }

    /// The expected trial count.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Folded trials that reached their goal.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Whether the cell's channel metrics are real samples: true iff at
    /// least one record was folded and *every* folded record recorded
    /// metrics. Rounds-only scenarios (and empty cells) report `false`, so
    /// their zeroed placeholders are omitted rather than reported as fake
    /// 0-means.
    pub fn metrics_present(&self) -> bool {
        self.next > 0 && self.metrics_recorded == self.next
    }

    /// Rounds-per-trial distribution.
    pub fn rounds_stats(&self) -> CellStats {
        self.rounds.finish()
    }

    /// Deliveries-per-trial distribution (meaningful only when
    /// [`TrialAccumulator::metrics_present`]).
    pub fn deliveries_stats(&self) -> CellStats {
        self.deliveries.finish()
    }

    /// Collisions-per-trial distribution (meaningful only when
    /// [`TrialAccumulator::metrics_present`]).
    pub fn collisions_stats(&self) -> CellStats {
        self.collisions.finish()
    }

    /// Transmissions-per-trial distribution (meaningful only when
    /// [`TrialAccumulator::metrics_present`]).
    pub fn transmissions_stats(&self) -> CellStats {
        self.transmissions.finish()
    }

    /// Summed wall-clock across folded trials, in ms — `Some` only on timed
    /// runs (machine-dependent, so it must stay out of byte-pinned
    /// baselines).
    pub fn elapsed_ms(&self) -> Option<u64> {
        self.timing.then(|| u64::try_from(self.elapsed_total.as_millis()).unwrap_or(u64::MAX))
    }

    /// Per-trial wall-clock distribution in ms — `Some` only on timed runs.
    pub fn trial_elapsed_stats(&self) -> Option<CellStats> {
        self.timing.then(|| self.trial_elapsed_ms.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_sim::Metrics;

    #[test]
    fn sketch_is_exact_for_up_to_five_observations() {
        let mut s = P2Sketch::new(0.5);
        assert_eq!(s.quantile(), 0.0, "empty sketch reports 0");
        for (i, x) in [9.0, 1.0, 5.0, 3.0, 7.0].into_iter().enumerate() {
            s.push(x);
            let mut sorted = [9.0, 1.0, 5.0, 3.0, 7.0][..=i].to_vec();
            sorted.sort_by(f64::total_cmp);
            assert_eq!(s.quantile(), exact_quantile_sorted(&sorted, 0.5), "n = {}", i + 1);
        }
        assert_eq!(s.quantile(), 5.0);
    }

    #[test]
    fn sketch_tracks_uniform_ramps_closely() {
        // 0..1000 in order: the p-quantile of the ramp is ≈ 1000p. P² on
        // sorted input is an easy case; the tolerance here is deliberately
        // loose (the adversarial bounds live in the proptest suite).
        for (p, expect) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let mut s = P2Sketch::new(p);
            for v in 0..=1000 {
                s.push(v as f64);
            }
            assert!((s.quantile() - expect).abs() < 15.0, "p{p}: {} vs {expect}", s.quantile());
        }
    }

    #[test]
    fn sketch_estimate_stays_within_observed_range() {
        let mut s = P2Sketch::new(0.95);
        let mut x = 123u64;
        for _ in 0..5000 {
            // SplitMix-style scramble: arbitrary-looking but deterministic.
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            s.push((x >> 40) as f64);
        }
        let q = s.quantile();
        assert!((0.0..=(1u64 << 24) as f64).contains(&q), "estimate {q} escaped the range");
    }

    #[test]
    fn quantity_accum_matches_the_naive_moments() {
        // Large offset, small spread: the regime where a sum-of-squares
        // shortcut catastrophically cancels — Welford must not.
        let values: Vec<u64> = (0..10_000u64).map(|i| 1_000_000 + i % 1000).collect();
        let s = CellStats::over(values.iter().copied());
        let naive_mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        let naive_var = values.iter().map(|&v| (v as f64 - naive_mean).powi(2)).sum::<f64>()
            / (values.len() - 1) as f64;
        assert!((s.mean - naive_mean).abs() < 1e-6);
        assert!((s.stddev - naive_var.sqrt()).abs() / naive_var.sqrt() < 1e-9);
        assert_eq!((s.min, s.max), (1_000_000, 1_000_999));
        // The ramp repeats 0..1000 uniformly, so quantiles sit near the
        // offset plus 1000p.
        assert!((s.p50 - 1_000_500.0).abs() < 25.0, "p50 {}", s.p50);
        assert!((s.p95 - 1_000_950.0).abs() < 25.0, "p95 {}", s.p95);
    }

    #[test]
    fn trial_accumulator_folds_out_of_order_pushes_identically() {
        let records: Vec<TrialRecord> = (0..40u64)
            .map(|i| {
                TrialRecord::new(
                    i % 5 != 0,
                    100 + (i * 37) % 50,
                    Metrics { rounds: 0, transmissions: i, deliveries: 2 * i, collisions: i / 3 },
                )
            })
            .collect();
        let mut forward = TrialAccumulator::new(40, false);
        for (i, r) in records.iter().enumerate() {
            forward.push(i as u64, *r, None);
        }
        // Reverse order exercises the worst-case reorder buffer (39 held).
        let mut backward = TrialAccumulator::new(40, false);
        for (i, r) in records.iter().enumerate().rev() {
            backward.push(i as u64, *r, None);
        }
        assert!(forward.is_complete() && backward.is_complete());
        assert_eq!(forward.rounds_stats(), backward.rounds_stats());
        assert_eq!(forward.transmissions_stats(), backward.transmissions_stats());
        assert_eq!(forward.completed(), backward.completed());
        assert!(forward.metrics_present());
        assert_eq!(forward.elapsed_ms(), None, "untimed accumulators never report wall-clock");
    }

    #[test]
    fn rounds_only_records_clear_the_metrics_present_flag() {
        let mut acc = TrialAccumulator::new(3, false);
        acc.push(0, TrialRecord::new(true, 10, Metrics::default()), None);
        acc.push(1, TrialRecord::rounds_only(true, 12), None);
        acc.push(2, TrialRecord::new(true, 11, Metrics::default()), None);
        assert!(acc.is_complete());
        assert!(!acc.metrics_present(), "one placeholder record poisons the cell");
        let empty = TrialAccumulator::new(0, false);
        assert!(empty.is_complete() && !empty.metrics_present());
    }

    #[test]
    #[should_panic(expected = "pushed twice")]
    fn duplicate_pushes_are_executor_bugs() {
        let mut acc = TrialAccumulator::new(2, false);
        acc.push(0, TrialRecord::rounds_only(true, 1), None);
        acc.push(0, TrialRecord::rounds_only(true, 1), None);
    }

    #[test]
    fn timed_accumulators_report_sum_and_distribution() {
        let mut acc = TrialAccumulator::new(2, true);
        acc.push(0, TrialRecord::rounds_only(true, 5), Some(Duration::from_millis(30)));
        acc.push(1, TrialRecord::rounds_only(true, 6), Some(Duration::from_millis(10)));
        assert_eq!(acc.elapsed_ms(), Some(40));
        let dist = acc.trial_elapsed_stats().expect("timed run has a distribution");
        assert_eq!((dist.min, dist.max), (10, 30));
        assert_eq!(dist.mean, 20.0);
    }
}
