//! Experiment runner: dispatches through the preset registry
//! (`rn_bench::presets`) and the scenario registry (`rn_bench::registry`).
//!
//! Usage:
//!
//! ```text
//! experiments [--seed N] [--trials N] [--threads N] [--model nocd|cd]
//!             [--engine-mode reference|frontier] [--faults SPEC]
//!             [--json PATH] [--no-table] [--timing]
//!             (--list | --check PATH | --scenario SPEC | all | ID [ID ...])
//! ```
//!
//! * `--list` — print every topology form, protocol, fault form, override
//!   key and preset, then exit;
//! * `--scenario "PROTO@TOPO[!FAULTS]"` — run an ad-hoc one-cell campaign,
//!   e.g. `--scenario "broadcast{curtail=1e6}@rgg(500,0.08)!jam(5,0.5)"
//!   --trials 20 --json out.json`;
//! * `ID` — a preset id: a table experiment (`e1`…`e12`) or a campaign
//!   (`smoke`, `sweep_broadcast`, `sweep_faults`, …); `all` runs every
//!   preset;
//! * `--threads N` — campaign worker-thread budget (default: the
//!   `RN_BENCH_THREADS` env var, else available parallelism capped at 16);
//!   results are byte-identical for any value;
//! * `--engine-mode reference|frontier` — pin the process-wide engine
//!   implementation for every trial (all worker threads); equivalent to the
//!   `RN_ENGINE_MODE` env var, which it overrides. Default: `frontier`.
//!   Both engines produce byte-identical results (CI-gated); the flag
//!   exists for timing comparisons and for pinning the reference engine
//!   when validating a new fast path;
//! * `--faults SPEC` — replace a campaign target's fault axis with one plan
//!   (`jam(K,P)`, `drop(P)`, `jam(K,P)!drop(P)` or `none`);
//! * `--json PATH` — additionally stream the campaign's versioned JSON
//!   results file, cell by cell as they finish (campaign targets only, one
//!   target per run);
//! * `--no-table` — skip the in-memory markdown table entirely (requires
//!   `--json`): huge streamed sweeps then hold only the cells in flight,
//!   never the whole result;
//! * `--timing` — annotate every emitted cell with `elapsed_ms` (summed
//!   per-trial wall-clock). Off by default because wall-clock is
//!   machine-dependent: byte-compared baselines must be generated without
//!   it, scale-lane files with it;
//! * `--check PATH` — parse and schema-validate a results file, then exit
//!   (the CI smoke gate).

#![forbid(unsafe_code)]

use rn_bench::presets::{self, PresetKind};
use rn_bench::registry::parse_model;
use rn_bench::sink::{CampaignSink, RunHeader};
use rn_bench::{
    executor, registry_listing, Campaign, CellResult, Json, JsonStreamSink, MemorySink,
    ScenarioSpec, TrialPlan,
};
use rn_sim::{CollisionModel, EngineMode, FaultPlan};
use std::io::{self, BufWriter};
use std::time::Instant;

/// Everything the CLI accepted, before target resolution.
struct Args {
    seed: u64,
    trials: Option<u64>,
    threads: Option<usize>,
    model: Option<CollisionModel>,
    faults: Option<FaultPlan>,
    json: Option<String>,
    no_table: bool,
    timing: bool,
    scenario: Option<String>,
    check: Option<String>,
    list: bool,
    ids: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 20170725, // PODC 2017 paper, why not
        trials: None,
        threads: None,
        model: None,
        faults: None,
        json: None,
        no_table: false,
        timing: false,
        scenario: None,
        check: None,
        list: false,
        ids: Vec::new(),
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| usage(&format!("missing value for {flag}")))
        };
        match a.as_str() {
            "--seed" => {
                args.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed takes an unsigned integer"));
            }
            "--trials" => {
                args.trials = Some(
                    value("--trials")
                        .parse()
                        .unwrap_or_else(|_| usage("--trials takes an unsigned integer")),
                );
            }
            "--threads" => {
                args.threads = Some(
                    value("--threads")
                        .parse::<usize>()
                        .ok()
                        .filter(|&t| t >= 1)
                        .unwrap_or_else(|| usage("--threads takes a positive integer")),
                );
            }
            "--model" => {
                args.model =
                    Some(parse_model(&value("--model")).unwrap_or_else(|e| usage(&e.to_string())));
            }
            "--engine-mode" => {
                let mode =
                    EngineMode::parse_name(&value("--engine-mode")).unwrap_or_else(|e| usage(&e));
                // Pin before any simulator exists so every worker thread
                // sees it; args parse first, so only a contradictory
                // RN_ENGINE_MODE (or repeated flag) can have frozen it.
                if let Err(frozen) = EngineMode::set_process_default(mode) {
                    usage(&format!(
                        "--engine-mode {mode:?} contradicts the already-pinned {frozen:?} \
                         (RN_ENGINE_MODE or a repeated flag)"
                    ));
                }
            }
            "--faults" => {
                args.faults =
                    Some(value("--faults").parse().unwrap_or_else(|e| usage(&format!("{e}"))));
            }
            "--json" => args.json = Some(value("--json")),
            "--no-table" => args.no_table = true,
            "--timing" => args.timing = true,
            "--scenario" => args.scenario = Some(value("--scenario")),
            "--check" => args.check = Some(value("--check")),
            "--list" => args.list = true,
            "all" => {
                args.ids.extend(presets::presets().iter().map(|p| p.id.to_string()));
            }
            other if !other.starts_with('-') => args.ids.push(other.to_string()),
            other => usage(&format!("unexpected argument {other:?}")),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    if args.list {
        print_list();
        return;
    }
    if let Some(path) = &args.check {
        // --check is exclusive: silently skipping other targets would let a
        // typo'd invocation look like it ran them.
        if args.scenario.is_some() || !args.ids.is_empty() {
            usage("--check cannot be combined with --scenario or preset ids");
        }
        check_results_file(path);
        return;
    }
    if args.scenario.is_some() && !args.ids.is_empty() {
        usage("--scenario cannot be combined with preset ids (run them separately)");
    }
    if args.no_table && args.json.is_none() {
        usage("--no-table only makes sense with --json (there would be no output at all)");
    }

    // rn-lint: allow(no-wall-clock) — CLI progress timing only, not results.
    let t_total = Instant::now();
    if let Some(spec_str) = &args.scenario {
        run_scenario(&args, spec_str);
    } else if args.ids.is_empty() {
        usage("no experiments requested");
    } else {
        run_presets(&args);
    }
    println!("\n_total: {:.1?}_", t_total.elapsed());
}

/// Runs an ad-hoc one-cell campaign from a `protocol@topology[!faults]`
/// spec.
fn run_scenario(args: &Args, spec_str: &str) {
    let spec: ScenarioSpec =
        spec_str.parse().unwrap_or_else(|e| usage(&format!("--scenario: {e}")));
    let mut campaign = Campaign::single(&spec, args.trials.unwrap_or(10));
    if let Some(model) = args.model {
        campaign.models = vec![model];
    }
    if let Some(faults) = args.faults {
        if !spec.faults.is_none() {
            usage("faults specified twice (both --faults and a !suffix on --scenario)");
        }
        campaign.faults = vec![faults];
    }
    println!("# Scenario run: {spec} (seed {})\n", args.seed);
    run_campaign(&campaign, args);
}

/// Runs every requested preset id through the registry.
fn run_presets(args: &Args) {
    let campaign_targets = args
        .ids
        .iter()
        .filter(
            |id| matches!(presets::find(id), Some(p) if matches!(p.kind, PresetKind::Campaign(_))),
        )
        .count();
    if args.json.is_some() && campaign_targets != 1 {
        usage("--json needs exactly one campaign target (a campaign preset or --scenario)");
    }
    // Table presets have hard-coded sweeps: silently ignoring --trials,
    // --model or --faults would print tables that look like the requested
    // configuration but are not.
    if (args.trials.is_some() || args.model.is_some() || args.faults.is_some())
        && campaign_targets != args.ids.len()
    {
        usage(
            "--trials/--model/--faults only apply to campaign targets, not table presets (e1..e12)",
        );
    }
    println!("# Experiment run (seed {})\n", args.seed);
    for id in &args.ids {
        let preset = presets::find(id).unwrap_or_else(|| {
            usage(&format!("unknown preset {id:?} (run with --list to see the registry)"))
        });
        // rn-lint: allow(no-wall-clock) — CLI progress timing only, not results.
        let t0 = Instant::now();
        match preset.kind {
            PresetKind::Tables(run) => {
                for t in run(args.seed) {
                    t.print();
                }
            }
            PresetKind::Campaign(build) => {
                let mut campaign = build();
                if let Some(trials) = args.trials {
                    campaign.plan = TrialPlan::new(trials);
                }
                if let Some(model) = args.model {
                    campaign.models = vec![model];
                }
                if let Some(faults) = args.faults {
                    campaign.faults = vec![faults];
                }
                run_campaign(&campaign, args);
            }
        }
        println!("\n_[{id} took {:.1?}]_", t0.elapsed());
    }
}

/// A sink that both streams JSON to a writer and keeps the cells the
/// markdown table needs — so the results file is written incrementally
/// while the table still renders at the end.
struct TableAndJson<W: io::Write + Send> {
    table: MemorySink,
    json: JsonStreamSink<W>,
}

impl<W: io::Write + Send> CampaignSink for TableAndJson<W> {
    fn begin(&mut self, header: &RunHeader) -> io::Result<()> {
        self.table.begin(header)?;
        self.json.begin(header)
    }

    fn cell(&mut self, cell: &CellResult) -> io::Result<()> {
        self.table.cell(cell)?;
        self.json.cell(cell)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.table.finish()?;
        self.json.finish()
    }
}

/// Runs one campaign on the resolved thread budget: markdown to stdout,
/// and — when `--json` is given — the results file streamed cell-by-cell
/// (byte-identical to the in-memory rendering for the same seed). With
/// `--no-table` the in-memory tee is skipped entirely, so memory stays
/// proportional to the cells in flight, never the whole sweep.
fn run_campaign(campaign: &Campaign, args: &Args) {
    // --faults/--model edits bypass the scenario-string parser's placement
    // checks; re-validate so an oversized plan is a usage error, not a
    // panic inside a trial worker.
    if let Err(e) = campaign.validate() {
        usage(&e);
    }
    let threads = executor::resolve_threads(args.threads);
    let seed = args.seed;
    let options = executor::ExecOptions { timing: args.timing };
    match args.json.as_deref() {
        None => {
            let mut sink = MemorySink::new();
            executor::execute_with(campaign, seed, threads, &mut sink, options)
                .expect("the in-memory sink cannot fail");
            sink.into_result().to_table().print();
        }
        Some(path) => {
            let file = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            });
            let stream = JsonStreamSink::new(BufWriter::new(file));
            let io_error = |e: io::Error| -> ! {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            };
            let cells = if args.no_table {
                let mut sink = stream;
                executor::execute_with(campaign, seed, threads, &mut sink, options)
                    .unwrap_or_else(|e| io_error(e));
                sink.cells_written()
            } else {
                let mut sink = TableAndJson { table: MemorySink::new(), json: stream };
                executor::execute_with(campaign, seed, threads, &mut sink, options)
                    .unwrap_or_else(|e| io_error(e));
                sink.table.into_result().to_table().print();
                sink.json.cells_written()
            };
            println!("\n_[results streamed to {path} ({cells} cells, {threads} threads)]_");
        }
    }
}

/// Parses and schema-validates a results file (CI smoke gate).
fn check_results_file(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(1);
    });
    match rn_bench::validate_results(&doc) {
        Ok(summary) => println!("ok: {path}: {summary}"),
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Prints the full registry: topology grammar, protocol families (grammar,
/// about, override schemas), fault grammar, presets. Rendered by
/// [`registry_listing`], which `tests/golden_list.rs` pins against a
/// committed golden file so grammar drift is caught in review.
fn print_list() {
    print!("{}", registry_listing());
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: experiments [--seed N] [--trials N] [--threads N] [--model nocd|cd]\n\
         \x20                  [--engine-mode reference|frontier] [--faults SPEC]\n\
         \x20                  [--json PATH] [--no-table] [--timing]\n\
         \x20                  (--list | --check PATH | --scenario SPEC | all | ID [ID ...])"
    );
    std::process::exit(2);
}
