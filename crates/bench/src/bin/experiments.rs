//! Experiment runner: regenerates the tables of `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! experiments [--seed N] all | e1 [e2 ...]
//! ```

use rn_bench::experiments::{run, ALL_IDS};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 20170725u64; // PODC 2017 paper, why not
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("missing/invalid --seed value"));
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with('e') => ids.push(other.to_string()),
            other => usage(&format!("unexpected argument {other:?}")),
        }
    }
    if ids.is_empty() {
        usage("no experiments requested");
    }

    println!("# Experiment run (seed {seed})\n");
    let t_total = Instant::now();
    for id in &ids {
        let t0 = Instant::now();
        let tables = run(id, seed);
        for t in &tables {
            t.print();
        }
        println!("\n_[{id} took {:.1?}]_", t0.elapsed());
    }
    println!("\n_total: {:.1?}_", t_total.elapsed());
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: experiments [--seed N] all | e1 [e2 ...]");
    std::process::exit(2);
}
