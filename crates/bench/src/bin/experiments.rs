//! Experiment runner: dispatches through the preset registry
//! (`rn_bench::presets`) and the scenario registry (`rn_bench::registry`).
//!
//! Usage:
//!
//! ```text
//! experiments [--seed N] [--trials N] [--model nocd|cd] [--faults SPEC]
//!             [--json PATH]
//!             (--list | --check PATH | --scenario SPEC | all | ID [ID ...])
//! ```
//!
//! * `--list` — print every topology form, protocol, fault form, override
//!   key and preset, then exit;
//! * `--scenario "PROTO@TOPO[!FAULTS]"` — run an ad-hoc one-cell campaign,
//!   e.g. `--scenario "broadcast{curtail=1e6}@rgg(500,0.08)!jam(5,0.5)"
//!   --trials 20 --json out.json`;
//! * `ID` — a preset id: a table experiment (`e1`…`e12`) or a campaign
//!   (`smoke`, `sweep_broadcast`, `sweep_faults`, …); `all` runs every
//!   preset;
//! * `--faults SPEC` — replace a campaign target's fault axis with one plan
//!   (`jam(K,P)`, `drop(P)`, `jam(K,P)!drop(P)` or `none`);
//! * `--json PATH` — additionally write the campaign's versioned JSON
//!   results file (campaign targets only, one target per run);
//! * `--check PATH` — parse and schema-validate a results file, then exit
//!   (the CI smoke gate).

use rn_bench::presets::{self, PresetKind};
use rn_bench::registry::parse_model;
use rn_bench::{Campaign, Json, OverrideKey, ScenarioSpec, TrialPlan};
use rn_graph::TopologySpec;
use rn_sim::{CollisionModel, FaultPlan};
use std::time::Instant;

/// Everything the CLI accepted, before target resolution.
struct Args {
    seed: u64,
    trials: Option<u64>,
    model: Option<CollisionModel>,
    faults: Option<FaultPlan>,
    json: Option<String>,
    scenario: Option<String>,
    check: Option<String>,
    list: bool,
    ids: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 20170725, // PODC 2017 paper, why not
        trials: None,
        model: None,
        faults: None,
        json: None,
        scenario: None,
        check: None,
        list: false,
        ids: Vec::new(),
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| usage(&format!("missing value for {flag}")))
        };
        match a.as_str() {
            "--seed" => {
                args.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed takes an unsigned integer"));
            }
            "--trials" => {
                args.trials = Some(
                    value("--trials")
                        .parse()
                        .unwrap_or_else(|_| usage("--trials takes an unsigned integer")),
                );
            }
            "--model" => {
                args.model =
                    Some(parse_model(&value("--model")).unwrap_or_else(|e| usage(&e.to_string())));
            }
            "--faults" => {
                args.faults =
                    Some(value("--faults").parse().unwrap_or_else(|e| usage(&format!("{e}"))));
            }
            "--json" => args.json = Some(value("--json")),
            "--scenario" => args.scenario = Some(value("--scenario")),
            "--check" => args.check = Some(value("--check")),
            "--list" => args.list = true,
            "all" => {
                args.ids.extend(presets::presets().iter().map(|p| p.id.to_string()));
            }
            other if !other.starts_with('-') => args.ids.push(other.to_string()),
            other => usage(&format!("unexpected argument {other:?}")),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    if args.list {
        print_list();
        return;
    }
    if let Some(path) = &args.check {
        // --check is exclusive: silently skipping other targets would let a
        // typo'd invocation look like it ran them.
        if args.scenario.is_some() || !args.ids.is_empty() {
            usage("--check cannot be combined with --scenario or preset ids");
        }
        check_results_file(path);
        return;
    }
    if args.scenario.is_some() && !args.ids.is_empty() {
        usage("--scenario cannot be combined with preset ids (run them separately)");
    }

    let t_total = Instant::now();
    if let Some(spec_str) = &args.scenario {
        run_scenario(&args, spec_str);
    } else if args.ids.is_empty() {
        usage("no experiments requested");
    } else {
        run_presets(&args);
    }
    println!("\n_total: {:.1?}_", t_total.elapsed());
}

/// Runs an ad-hoc one-cell campaign from a `protocol@topology[!faults]`
/// spec.
fn run_scenario(args: &Args, spec_str: &str) {
    let spec: ScenarioSpec =
        spec_str.parse().unwrap_or_else(|e| usage(&format!("--scenario: {e}")));
    let mut campaign = Campaign::single(&spec, args.trials.unwrap_or(10));
    if let Some(model) = args.model {
        campaign.models = vec![model];
    }
    if let Some(faults) = args.faults {
        if !spec.faults.is_none() {
            usage("faults specified twice (both --faults and a !suffix on --scenario)");
        }
        campaign.faults = vec![faults];
    }
    println!("# Scenario run: {spec} (seed {})\n", args.seed);
    run_campaign(&campaign, args.seed, args.json.as_deref());
}

/// Runs every requested preset id through the registry.
fn run_presets(args: &Args) {
    let campaign_targets = args
        .ids
        .iter()
        .filter(
            |id| matches!(presets::find(id), Some(p) if matches!(p.kind, PresetKind::Campaign(_))),
        )
        .count();
    if args.json.is_some() && campaign_targets != 1 {
        usage("--json needs exactly one campaign target (a campaign preset or --scenario)");
    }
    // Table presets have hard-coded sweeps: silently ignoring --trials,
    // --model or --faults would print tables that look like the requested
    // configuration but are not.
    if (args.trials.is_some() || args.model.is_some() || args.faults.is_some())
        && campaign_targets != args.ids.len()
    {
        usage(
            "--trials/--model/--faults only apply to campaign targets, not table presets (e1..e12)",
        );
    }
    println!("# Experiment run (seed {})\n", args.seed);
    for id in &args.ids {
        let preset = presets::find(id).unwrap_or_else(|| {
            usage(&format!("unknown preset {id:?} (run with --list to see the registry)"))
        });
        let t0 = Instant::now();
        match preset.kind {
            PresetKind::Tables(run) => {
                for t in run(args.seed) {
                    t.print();
                }
            }
            PresetKind::Campaign(build) => {
                let mut campaign = build();
                if let Some(trials) = args.trials {
                    campaign.plan = TrialPlan::new(trials);
                }
                if let Some(model) = args.model {
                    campaign.models = vec![model];
                }
                if let Some(faults) = args.faults {
                    campaign.faults = vec![faults];
                }
                run_campaign(&campaign, args.seed, args.json.as_deref());
            }
        }
        println!("\n_[{id} took {:.1?}]_", t0.elapsed());
    }
}

/// Runs one campaign: markdown to stdout, JSON to `json_path` when given.
fn run_campaign(campaign: &Campaign, seed: u64, json_path: Option<&str>) {
    // --faults/--model edits bypass the scenario-string parser's placement
    // checks; re-validate so an oversized plan is a usage error, not a
    // panic inside a trial worker.
    if let Err(e) = campaign.validate() {
        usage(&e);
    }
    let result = campaign.run(seed);
    result.to_table().print();
    if let Some(path) = json_path {
        let doc = result.to_json();
        std::fs::write(path, &doc).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("\n_[results written to {path} ({} bytes)]_", doc.len());
    }
}

/// Parses and schema-validates a results file (CI smoke gate).
fn check_results_file(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(1);
    });
    match rn_bench::validate_results(&doc) {
        Ok(summary) => println!("ok: {path}: {summary}"),
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Prints the full registry: topology grammar, protocols, fault grammar,
/// override keys, presets.
fn print_list() {
    println!("topology specs:");
    for form in TopologySpec::GRAMMAR {
        println!("  {form}");
    }
    println!("\nprotocols (Compete-family ones take {{key=value}} overrides):");
    for p in rn_bench::ProtocolSpec::all() {
        println!("  {p}");
    }
    println!("\ncollision models:\n  nocd\n  cd");
    println!("\nfault suffixes (append to the topology, also accepted by --faults):");
    for form in FaultPlan::GRAMMAR {
        println!("  !{form}");
    }
    println!("\noverride keys:");
    for k in OverrideKey::ALL {
        println!("  {:<12} {}", k.as_str(), k.about());
    }
    println!("\npresets:");
    for p in presets::presets() {
        println!("  {:<16} [{:>8}]  {}", p.id, p.kind_name(), p.about);
    }
    println!(
        "\nscenario syntax: PROTOCOL[{{OVERRIDES}}]@TOPOLOGY[!FAULTS], e.g.\n  \
         \"leader_election@torus(32x32)\"\n  \
         \"broadcast{{curtail=1e6}}@rgg(500,0.08)!jam(5,0.5)\""
    );
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: experiments [--seed N] [--trials N] [--model nocd|cd] [--faults SPEC]\n\
         \x20                  [--json PATH]\n\
         \x20                  (--list | --check PATH | --scenario SPEC | all | ID [ID ...])"
    );
    std::process::exit(2);
}
