//! Cross-run regression gate: compares two `rn-bench-results/v1` files
//! cell-by-cell and fails on mean-rounds regressions beyond trial noise.
//!
//! Usage:
//!
//! ```text
//! bench-diff [--sigma N] [--gate-p95 PCT] [--gate-time PCT] BASELINE.json NEW.json
//! ```
//!
//! Prints a markdown report to stdout. Exit codes: `0` — no regressions
//! (improvements and within-noise movements are fine); `1` — at least one
//! cell regressed beyond its noise band or vanished from the new file;
//! `2` — usage or I/O error. The noise band is
//! `sigma · sqrt(s_a²/t_a + s_b²/t_b)` per cell, from the files' recorded
//! `stddev` and trial counts (see `rn_bench::diff`). By default the
//! rounds-p50/p95 and `elapsed_ms` columns are informational only:
//! `--gate-p95 PCT` opts into failing cells whose rounds p95 — the paper's
//! w.h.p. tail, the production metric — grew by more than `PCT` percent,
//! and `--gate-time PCT` does the same for wall-clock (for the scale lane,
//! where machine and scenario are pinned). Cells missing the respective
//! field on either side (e.g. pre-quantile baselines) are never gated on
//! it. CI runs this against the committed `benchmarks/baseline_smoke.json`.

#![forbid(unsafe_code)]

use rn_bench::diff::DEFAULT_SIGMA;
use rn_bench::{diff_results_with, DiffOptions, Json};

fn main() {
    let mut sigma = DEFAULT_SIGMA;
    let mut gate_time: Option<f64> = None;
    let mut gate_p95: Option<f64> = None;
    let mut files: Vec<String> = Vec::new();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sigma" => {
                let v = it.next().unwrap_or_else(|| usage("missing value for --sigma"));
                sigma = v
                    .parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s >= 0.0)
                    .unwrap_or_else(|| usage("--sigma takes a non-negative number"));
            }
            "--gate-time" => {
                let v = it.next().unwrap_or_else(|| usage("missing value for --gate-time"));
                gate_time = Some(
                    v.parse::<f64>()
                        .ok()
                        .filter(|p| p.is_finite() && *p >= 0.0)
                        .unwrap_or_else(|| usage("--gate-time takes a non-negative percentage")),
                );
            }
            "--gate-p95" => {
                let v = it.next().unwrap_or_else(|| usage("missing value for --gate-p95"));
                gate_p95 = Some(
                    v.parse::<f64>()
                        .ok()
                        .filter(|p| p.is_finite() && *p >= 0.0)
                        .unwrap_or_else(|| usage("--gate-p95 takes a non-negative percentage")),
                );
            }
            other if !other.starts_with('-') => files.push(other.to_string()),
            other => usage(&format!("unexpected argument {other:?}")),
        }
    }
    let [base_path, new_path] = files.as_slice() else {
        usage("expected exactly two results files (BASELINE NEW)");
    };

    let base = load(base_path);
    let new = load(new_path);
    let options = DiffOptions { sigma, time_gate_pct: gate_time, p95_gate_pct: gate_p95 };
    let report = diff_results_with(&base, &new, options).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    print!("{}", report.to_markdown());
    if report.has_regressions() {
        std::process::exit(1);
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    })
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: bench-diff [--sigma N] [--gate-p95 PCT] [--gate-time PCT] BASELINE.json NEW.json"
    );
    std::process::exit(2);
}
