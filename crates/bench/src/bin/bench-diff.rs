//! Cross-run regression gate: compares two `rn-bench-results/v1` files
//! cell-by-cell and fails on mean-rounds regressions beyond trial noise.
//!
//! Usage:
//!
//! ```text
//! bench-diff [--sigma N] BASELINE.json NEW.json
//! ```
//!
//! Prints a markdown report to stdout. Exit codes: `0` — no regressions
//! (improvements and within-noise movements are fine); `1` — at least one
//! cell regressed beyond its noise band or vanished from the new file;
//! `2` — usage or I/O error. The noise band is
//! `sigma · sqrt(s_a²/t_a + s_b²/t_b)` per cell, from the files' recorded
//! `stddev` and trial counts (see `rn_bench::diff`). CI runs this against
//! the committed `benchmarks/baseline_smoke.json`.

use rn_bench::diff::DEFAULT_SIGMA;
use rn_bench::{diff_results, Json};

fn main() {
    let mut sigma = DEFAULT_SIGMA;
    let mut files: Vec<String> = Vec::new();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sigma" => {
                let v = it.next().unwrap_or_else(|| usage("missing value for --sigma"));
                sigma = v
                    .parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s >= 0.0)
                    .unwrap_or_else(|| usage("--sigma takes a non-negative number"));
            }
            other if !other.starts_with('-') => files.push(other.to_string()),
            other => usage(&format!("unexpected argument {other:?}")),
        }
    }
    let [base_path, new_path] = files.as_slice() else {
        usage("expected exactly two results files (BASELINE NEW)");
    };

    let base = load(base_path);
    let new = load(new_path);
    let report = diff_results(&base, &new, sigma).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    print!("{}", report.to_markdown());
    if report.has_regressions() {
        std::process::exit(1);
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    })
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: bench-diff [--sigma N] BASELINE.json NEW.json");
    std::process::exit(2);
}
