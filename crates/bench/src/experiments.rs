//! The paper-reproduction experiment suite: one function per experiment id
//! of `DESIGN.md` §5.
//!
//! Every function takes a master seed, runs its sweep (parallel over
//! trials), and returns markdown [`Table`]s. The `experiments` binary
//! reaches these through the preset registry ([`crate::presets`]), which
//! also hosts the declarative campaign presets built on
//! [`crate::campaign`].

use crate::harness::{mean, parallel_trials, Table};
use rn_baselines::{
    bgi_broadcast, binary_search_leader_election, truncated_broadcast, BroadcastKind,
};

use rn_cluster::{stats, theory, DistributedPartition, DistributedPartitionConfig, Partition};
use rn_core::{compete_with_net, leader_election_with_net, CompeteParams, SequenceScope};
use rn_decay::SingleDecayRound;
use rn_graph::{generators, Graph, NodeId};
use rn_sim::{rng, CollisionModel, NetParams, Simulator};

fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// E1 — Lemma 3.1: a single decay round informs a listener with constant
/// probability, uniformly in the number of participating neighbors.
pub fn e1_decay_success(seed: u64) -> Vec<Table> {
    let mut t = Table::new(
        "E1 (Lemma 3.1): single decay-round success probability at the hub of a star",
        &["participants k", "trials", "success rate"],
    );
    let trials = 3000u64;
    let depth = 13; // ⌈log₂ 8193⌉
    let mut min_rate: f64 = 1.0;
    for k in [1usize, 2, 4, 16, 64, 256, 1024, 4096] {
        let g = generators::star(k + 1);
        let participants: Vec<NodeId> = (1..=k as NodeId).collect();
        let successes: u64 = parallel_trials(trials, |i| {
            let s = rng::derive(seed, i ^ (k as u64) << 32);
            let mut p = SingleDecayRound::new(k + 1, depth, participants.clone(), s);
            let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, s);
            sim.run(&mut p, depth as u64);
            u64::from(p.has_received(0))
        })
        .into_iter()
        .sum();
        let rate = successes as f64 / trials as f64;
        min_rate = min_rate.min(rate);
        t.row(&[k.to_string(), trials.to_string(), fmt_f(rate)]);
    }
    t.note(format!(
        "Paper: constant success probability per decay round for any k ≥ 1. \
         Measured minimum over k: {:.3} (seed {seed}).",
        min_rate
    ));
    vec![t]
}

/// E2 — Lemma 2.1: Partition(β) strong radius `O(log n / β)` and edge-cut
/// probability `O(β)`.
pub fn e2_partition_properties(seed: u64) -> Vec<Table> {
    let mut rng0 = rng::stream_rng(seed, 1);
    let graphs: Vec<(&str, Graph)> = vec![
        ("grid-40x40", generators::grid(40, 40)),
        ("rgg-1600", generators::random_geometric(1600, 0.05, &mut rng0)),
        ("gnp-1600", generators::gnp_connected(1600, 0.004, &mut rng0)),
    ];
    let mut t = Table::new(
        "E2 (Lemma 2.1): Partition(β) cluster radius, edge-cut rate and bordering clusters (30 trials)",
        &["graph", "β", "mean max radius", "radius·β/ln n", "cut fraction", "cut/β", "max q (Cor 3.9)"],
    );
    for (name, g) in &graphs {
        let ln_n = (g.n() as f64).ln();
        for j in [1u32, 2, 3, 4, 5, 6, 7] {
            let beta = (2.0f64).powi(-(j as i32));
            let results = parallel_trials(30, |i| {
                let mut r = rng::stream_rng(seed, i ^ (j as u64) << 40);
                let p = Partition::compute(g, beta, &mut r);
                let s = stats::PartitionStats::measure(g, &p);
                (s.max_radius as f64, s.cut_fraction, s.max_bordering_clusters as f64)
            });
            let rad = mean(&results.iter().map(|r| r.0).collect::<Vec<_>>());
            let cut = mean(&results.iter().map(|r| r.1).collect::<Vec<_>>());
            let q = results.iter().map(|r| r.2).fold(0.0f64, f64::max);
            t.row(&[
                name.to_string(),
                format!("2^-{j}"),
                fmt_f(rad),
                fmt_f(rad * beta / ln_n),
                fmt_f(cut),
                fmt_f(cut / beta),
                fmt_f(q),
            ]);
        }
    }
    t.note(
        "Paper: radius·β/ln n bounded by a constant whp; cut/β bounded by a constant. \
         Both normalized columns should be flat across β and graphs. The last column is the \
         worst number of *other* clusters any node borders — Corollary 3.9 of [12] bounds it \
         by O(log n / log D) whp (≈ 3–11 here), the quantity behind Lemma 4.2's waiting time.",
    );
    vec![t]
}

/// E3 — Theorem 2.2: for a random `j`, with probability ≥ 0.55 the expected
/// distance to the cluster center is `O(log n / (β log D))`.
pub fn e3_theorem_2_2(seed: u64) -> Vec<Table> {
    let mut rng0 = rng::stream_rng(seed, 2);
    let graphs: Vec<(&str, Graph)> = vec![
        ("path-2048", generators::path(2048)),
        ("grid-64x64", generators::grid(64, 64)),
        ("rgg-2000", generators::random_geometric(2000, 0.045, &mut rng0)),
    ];
    let mut t = Table::new(
        "E3 (Theorem 2.2): E[dist to cluster center]·β·log D / log n by j (30 trials)",
        &["graph", "j", "β", "E[dist]", "normalized"],
    );
    let mut good_fraction = Vec::new();
    for (name, g) in &graphs {
        let log_n = (g.n() as f64).log2();
        let d = g.diameter_double_sweep();
        let log_d = (d.max(2) as f64).log2();
        let v = (g.n() / 2) as NodeId;
        let mut normalized_all = Vec::new();
        for j in 1u32..=7 {
            let beta = (2.0f64).powi(-(j as i32));
            let dists = parallel_trials(30, |i| {
                let mut r = rng::stream_rng(seed, i ^ (j as u64) << 44);
                let p = Partition::compute(g, beta, &mut r);
                p.strong_dist_to_center(g)[v as usize] as f64
            });
            let e_dist = mean(&dists);
            let normalized = e_dist * beta * log_d / log_n;
            normalized_all.push(normalized);
            t.row(&[
                name.to_string(),
                j.to_string(),
                format!("2^-{j}"),
                fmt_f(e_dist),
                fmt_f(normalized),
            ]);
        }
        // Fraction of j whose normalized distance is within 3x the per-graph
        // median — the "good j" of Theorem 2.2.
        let mut sorted = normalized_all.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let good = normalized_all.iter().filter(|&&x| x <= 3.0 * median.max(1e-9)).count() as f64;
        good_fraction.push((name.to_string(), good / normalized_all.len() as f64));
    }
    for (name, frac) in good_fraction {
        t.note(format!(
            "{name}: fraction of j with normalized distance ≤ 3×median: {frac:.2} \
             (Theorem 2.2 needs ≥ 0.55)."
        ));
    }
    t.note(
        "Haeupler–Wajc would allow an extra log log n factor in the normalized column; \
         flatness near a small constant is this paper's improvement.",
    );
    vec![t]
}

/// E4 — Section 6 machinery: Lemmas 6.1, 6.2, 6.4, 6.7 on real layer
/// vectors.
pub fn e4_section6(seed: u64) -> Vec<Table> {
    let mut rng0 = rng::stream_rng(seed, 3);
    let graphs: Vec<(&str, Graph)> = vec![
        ("path-1024", generators::path(1024)),
        ("grid-48x48", generators::grid(48, 48)),
        ("btree-1023", generators::binary_tree(1023)),
        ("rgg-1500", generators::random_geometric(1500, 0.05, &mut rng0)),
    ];
    let mut t = Table::new(
        "E4 (Section 6): computable analysis quantities on real layer vectors",
        &[
            "graph",
            "β",
            "S_x",
            "S_x/S_f(x) (≤11)",
            "S_x/S_g(f(x))·… (≤22)",
            "5·S_x vs MC E[dist]",
            "bad j (≤0.04·logD)",
        ],
    );
    for (name, g) in &graphs {
        let v = (g.n() / 3) as NodeId;
        let x = theory::layer_vector(g, v);
        let d = g.diameter_double_sweep().max(2);
        let log_d = (d as f64).log2();
        let log_n = (g.n() as f64).log2();
        let ks = theory::ratio_sequence(&theory::x_prime(&x));
        let bad = theory::count_bad_j(&ks, 1, (0.5 * log_d).round() as i64, log_n, log_d);
        for j in [2u32, 4] {
            let beta = (2.0f64).powi(-(j as i32));
            let s_x = theory::s_value(&x, beta);
            let f = theory::transform_f(&x);
            let ratio_f =
                if theory::b_value(&f, beta) > 0.0 { s_x / theory::s_value(&f, beta) } else { 0.0 };
            let xp = theory::x_prime(&x);
            let ratio_fg = if theory::b_value(&xp, beta) > 0.0 {
                s_x / theory::s_value(&xp, beta)
            } else {
                0.0
            };
            // Monte-Carlo E[dist to center] for Lemma 6.1.
            let dists = parallel_trials(20, |i| {
                let mut r = rng::stream_rng(seed, i ^ (j as u64) << 48);
                let p = Partition::compute(g, beta, &mut r);
                p.strong_dist_to_center(g)[v as usize] as f64
            });
            let e_dist = mean(&dists);
            t.row(&[
                name.to_string(),
                format!("2^-{j}"),
                fmt_f(s_x),
                fmt_f(ratio_f),
                fmt_f(ratio_fg),
                format!("{} vs {}", fmt_f(5.0 * s_x), fmt_f(e_dist)),
                format!("{bad} (≤{})", fmt_f(0.04 * log_d)),
            ]);
        }
    }
    t.note(
        "Lemma 6.1: E[dist] ≤ 5·S_x — the MC column must not exceed the bound column. \
         Lemma 6.2: S_x ≤ 11·S_f(x). Lemmas 6.2+6.4 composed: S_x ≤ 22·S_{g(f(x))}. \
         Lemma 6.7: few bad j. (Property tests cover random vectors; this table, real graphs.)",
    );
    vec![t]
}

/// E5 — Lemma 4.3 (cluster counts near a node) and Lemma 4.4 (bad subpaths).
pub fn e5_bad_subpaths(seed: u64) -> Vec<Table> {
    let mut rng0 = rng::stream_rng(seed, 4);
    let graphs: Vec<(&str, Graph)> = vec![
        ("grid-64x64", generators::grid(64, 64)),
        ("rgg-2500", generators::random_geometric(2500, 0.04, &mut rng0)),
    ];
    let mut t43 = Table::new(
        "E5a (Lemma 4.3): P[≥ 2 coarse clusters within distance d] vs the paper bound",
        &["graph", "d", "empirical", "bound 1−e^{−β(2d+1)}"],
    );
    let mut t44 = Table::new(
        "E5b (Lemma 4.4): bad subpaths along canonical shortest paths (coarse β = D^-0.5)",
        &["graph", "D", "sub len", "nbhd radius", "paths", "mean subpaths", "mean bad", "D^0.63"],
    );
    for (name, g) in &graphs {
        let d_diam = g.diameter_double_sweep().max(4);
        let beta = (d_diam as f64).powf(-0.5);
        // Lemma 4.3: sample nodes, three radii.
        for probe_d in [1u32, 2, 4] {
            let hits = parallel_trials(25, |i| {
                let mut r = rng::stream_rng(seed, i ^ 0xE5);
                let p = Partition::compute(g, beta, &mut r);
                let mut count = 0usize;
                let mut total = 0usize;
                for k in 0..20 {
                    let v = ((k * g.n()) / 20) as NodeId;
                    total += 1;
                    if stats::clusters_within(g, &p, v, probe_d) >= 2 {
                        count += 1;
                    }
                }
                count as f64 / total as f64
            });
            let emp = mean(&hits);
            let bound = 1.0 - (-beta * (2.0 * probe_d as f64 + 1.0)).exp();
            t43.row(&[name.to_string(), probe_d.to_string(), fmt_f(emp), fmt_f(bound)]);
        }
        // Lemma 4.4: canonical paths between spread pairs.
        let sub_len = ((d_diam as f64).powf(0.12).round() as usize).max(3);
        let nbhd = ((d_diam as f64).powf(0.11).round() as u32).max(1);
        let outcomes = parallel_trials(15, |i| {
            let mut r = rng::stream_rng(seed, i ^ 0xE5B);
            let p = Partition::compute(g, beta, &mut r);
            let u = ((i as usize * 37) % g.n()) as NodeId;
            let w = ((i as usize * 101 + g.n() / 2) % g.n()) as NodeId;
            match rn_graph::traversal::canonical_shortest_path(g, u, w) {
                Some(path) if path.len() >= 2 => {
                    let b = stats::classify_subpaths(g, &p, &path, sub_len, nbhd);
                    (b.total as f64, b.bad as f64)
                }
                _ => (0.0, 0.0),
            }
        });
        let totals = mean(&outcomes.iter().map(|o| o.0).collect::<Vec<_>>());
        let bads = mean(&outcomes.iter().map(|o| o.1).collect::<Vec<_>>());
        t44.row(&[
            name.to_string(),
            d_diam.to_string(),
            sub_len.to_string(),
            nbhd.to_string(),
            "15".into(),
            fmt_f(totals),
            fmt_f(bads),
            fmt_f((d_diam as f64).powf(0.63)),
        ]);
    }
    t43.note("The empirical column must stay at or below the bound column.");
    t44.note("Paper: all shortest paths have O(D^0.63) bad subpaths whp; mean bad ≪ D^0.63.");
    vec![t43, t44]
}

/// E6 — Lemma 2.3 contract: schedule passes reach distance ℓ in
/// `(ℓ+1)·W` rounds with period `W = O(log n)`.
pub fn e6_schedule_contract(seed: u64) -> Vec<Table> {
    use rn_schedule::{Downcast, SlotPolicy, TreeSchedule};
    let mut rng0 = rng::stream_rng(seed, 5);
    let graphs: Vec<(&str, Graph)> = vec![
        ("path-512", generators::path(512)),
        ("grid-32x32", generators::grid(32, 32)),
        ("rgg-1200", generators::random_geometric(1200, 0.055, &mut rng0)),
        ("btree-511", generators::binary_tree(511)),
    ];
    let mut t = Table::new(
        "E6 (Lemma 2.3): intra-cluster downcast cost — rounds to serve radius ℓ",
        &["graph", "window W", "4·log n cap", "overflow", "ℓ", "rounds", "rounds/(ℓ+1)"],
    );
    for (name, g) in &graphs {
        let mut r = rng::stream_rng(seed, 6);
        let single = Partition::compute(g, 1e-9, &mut r);
        let sched = TreeSchedule::build(g, &single, SlotPolicy::Auto);
        let cap = 4 * NetParams::new(g.n(), sched.max_depth()).log2_n();
        for l in [2u32, 4, 8, 16, 32] {
            let l = l.min(sched.max_depth());
            let mut dc = Downcast::from_center_values(&sched, l, &[Some(1)]);
            let budget = dc.pass_len();
            let mut sim = Simulator::new(g, CollisionModel::NoCollisionDetection, seed);
            // Stop as soon as every node within ℓ is served.
            let stats = sim.run_until(&mut dc, budget, |_, dc| {
                g.nodes().filter(|&v| sched.depth(v) <= l).all(|v| dc.value_of(v).is_some())
            });
            t.row(&[
                name.to_string(),
                sched.window().to_string(),
                cap.to_string(),
                sched.overflow().to_string(),
                l.to_string(),
                stats.rounds.to_string(),
                fmt_f(stats.rounds as f64 / (l as f64 + 1.0)),
            ]);
        }
    }
    t.note(
        "Paper contract: O(ℓ + polylog) rounds with period O(log n). rounds/(ℓ+1) ≈ W \
         (constant per graph) and W stays below its 4·log n cap.",
    );
    vec![t]
}

/// Helper: our broadcast, returning (completed, propagation rounds, total).
fn cd_rounds(g: &Graph, net: NetParams, params: &CompeteParams, seed: u64) -> (bool, u64, u64) {
    let r = compete_with_net(g, net, &[(0, 1)], params, seed).expect("valid run");
    (r.completed, r.propagation_rounds, r.total_rounds)
}

/// E7 — Theorem 5.1 headline: broadcast scaling `O(D·log n / log D)`.
pub fn e7_broadcast_scaling(seed: u64) -> Vec<Table> {
    let mut t = Table::new(
        "E7 (Theorem 5.1): broadcast rounds vs D (3 seeds each)",
        &["graph", "n", "D", "prop rounds", "prop/D", "prop/(D·logn/logD)", "completed"],
    );
    let mut configs: Vec<(String, Graph)> = Vec::new();
    for m in [32usize, 48, 64, 96, 128] {
        configs.push((format!("grid-{m}x{m}"), generators::grid(m, m)));
    }
    for n in [512usize, 1024, 2048, 4096] {
        configs.push((format!("path-{n}"), generators::path(n)));
    }
    let params = CompeteParams::default();
    for (name, g) in &configs {
        let net = NetParams::new(g.n(), g.diameter_double_sweep());
        let outcomes = parallel_trials(3, |i| cd_rounds(g, net, &params, rng::derive(seed, i)));
        let prop = mean(&outcomes.iter().map(|o| o.1 as f64).collect::<Vec<_>>());
        let all_ok = outcomes.iter().all(|o| o.0);
        let d = net.diameter() as f64;
        let norm = d * net.log2_n() as f64 / net.log2_d() as f64;
        t.row(&[
            name.clone(),
            g.n().to_string(),
            net.diameter().to_string(),
            fmt_f(prop),
            fmt_f(prop / d),
            fmt_f(prop / norm),
            all_ok.to_string(),
        ]);
    }
    t.note(
        "Paper: rounds = O(D·log n/log D + polylog n); the last normalized column should be \
         flat (constant) across the sweep, and prop/D bounded — optimal O(D) when n = poly(D).",
    );
    vec![t]
}

/// E8 — the §1.3 comparison table: ours vs BGI'92 vs CR/KP-style vs HW'16.
pub fn e8_comparison(seed: u64) -> Vec<Table> {
    let mut t = Table::new(
        "E8 (§1.3 table): broadcast rounds by algorithm (3 seeds each)",
        &[
            "graph",
            "n",
            "D",
            "BGI'92",
            "CR/KP-style",
            "HW'16 (prop)",
            "CD'17 (prop)",
            "CD speedup vs BGI",
        ],
    );
    let mut configs: Vec<(String, Graph)> = Vec::new();
    for m in [32usize, 64, 96] {
        configs.push((format!("grid-{m}x{m}"), generators::grid(m, m)));
    }
    for n in [1024usize, 2048] {
        configs.push((format!("path-{n}"), generators::path(n)));
    }
    for (name, g) in &configs {
        let net = NetParams::new(g.n(), g.diameter_double_sweep());
        let bgi = mean(&parallel_trials(3, |i| {
            bgi_broadcast(g, net, 0, rng::derive(seed, i)).rounds as f64
        }));
        let cr = mean(&parallel_trials(3, |i| {
            truncated_broadcast(g, net, 0, rng::derive(seed, 0x10 + i)).rounds as f64
        }));
        let hw_params = CompeteParams::haeupler_wajc();
        let hw = mean(&parallel_trials(3, |i| {
            cd_rounds(g, net, &hw_params, rng::derive(seed, 0x20 + i)).1 as f64
        }));
        let cd_params = CompeteParams::default();
        let cd = mean(&parallel_trials(3, |i| {
            cd_rounds(g, net, &cd_params, rng::derive(seed, 0x30 + i)).1 as f64
        }));
        t.row(&[
            name.clone(),
            g.n().to_string(),
            net.diameter().to_string(),
            fmt_f(bgi),
            fmt_f(cr),
            fmt_f(hw),
            fmt_f(cd),
            fmt_f(bgi / cd),
        ]);
    }
    t.note(
        "Asymptotic ordering per the paper: CD'17 ≤ HW'16 ≤ CR/KP ≤ BGI. At laptop scale the \
         decay baselines win on constants: BGI costs ≈ 1·D·log n while the clustering pipeline \
         costs ≈ 40·D·log n/log D, so the predicted crossover sits at log D ≈ 40. The *growth \
         rates* (E7's flat normalized column vs E12c's growing BGI/D) are the reproducible \
         claim; see EXPERIMENTS.md.",
    );
    vec![t]
}

/// E9 — Theorem 5.2: leader election ≈ broadcast time; binary-search
/// reduction costs Θ(log n)× more.
pub fn e9_leader_election(seed: u64) -> Vec<Table> {
    let mut t = Table::new(
        "E9 (Theorem 5.2): leader election vs broadcast (3 seeds each)",
        &[
            "graph",
            "n",
            "D",
            "Alg6 LE (prop)",
            "broadcast (prop)",
            "LE/BC",
            "binsearch-BGI LE",
            "binsearch/BGI-BC",
        ],
    );
    let mut configs: Vec<(String, Graph)> = Vec::new();
    for m in [32usize, 64] {
        configs.push((format!("grid-{m}x{m}"), generators::grid(m, m)));
    }
    configs.push(("path-1024".into(), generators::path(1024)));
    let params = CompeteParams::default();
    for (name, g) in &configs {
        let net = NetParams::new(g.n(), g.diameter_double_sweep());
        let le = mean(&parallel_trials(3, |i| {
            let r =
                leader_election_with_net(g, net, &params, rng::derive(seed, i)).expect("connected");
            assert!(r.compete.completed && r.unique_winner);
            r.compete.propagation_rounds as f64
        }));
        let bc = mean(&parallel_trials(3, |i| {
            cd_rounds(g, net, &params, rng::derive(seed, 0x40 + i)).1 as f64
        }));
        let bgi_bc = mean(&parallel_trials(3, |i| {
            bgi_broadcast(g, net, 0, rng::derive(seed, 0x50 + i)).rounds as f64
        }));
        let bs = mean(&parallel_trials(2, |i| {
            binary_search_leader_election(g, net, BroadcastKind::Bgi, 1.0, rng::derive(seed, i))
                .rounds as f64
        }));
        t.row(&[
            name.clone(),
            g.n().to_string(),
            net.diameter().to_string(),
            fmt_f(le),
            fmt_f(bc),
            fmt_f(le / bc),
            fmt_f(bs),
            fmt_f(bs / bgi_bc),
        ]);
    }
    t.note(
        "Paper: Algorithm 6 matches broadcasting (LE/BC = O(1)) — previously leader election \
         was strictly slower; the classical reduction pays Θ(log n)× its broadcast (last column).",
    );
    vec![t]
}

/// E10 — Theorem 4.1: Compete cost vs |S|.
pub fn e10_compete_sources(seed: u64) -> Vec<Table> {
    let mut t = Table::new(
        "E10 (Theorem 4.1): Compete propagation rounds vs |S| on grid-64x64 (3 seeds)",
        &["|S|", "prop rounds", "completed", "rounds/bound(D·logn/logD + |S|·D^0.125)"],
    );
    let g = generators::grid(64, 64);
    let net = NetParams::new(g.n(), g.diameter_double_sweep());
    let params = CompeteParams::default();
    let d = net.diameter() as f64;
    for s_count in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let outcomes = parallel_trials(3, |i| {
            let mut srng = rng::stream_rng(seed, 0xE10 + i);
            let mut sources = Vec::with_capacity(s_count);
            for k in 0..s_count {
                use rand::Rng;
                let v = srng.gen_range(0..g.n()) as NodeId;
                sources.push((v, (k + 1) as u64));
            }
            let r =
                compete_with_net(&g, net, &sources, &params, rng::derive(seed, i)).expect("valid");
            (r.completed, r.propagation_rounds as f64)
        });
        let rounds = mean(&outcomes.iter().map(|o| o.1).collect::<Vec<_>>());
        let ok = outcomes.iter().all(|o| o.0);
        let bound = d * net.log2_n() as f64 / net.log2_d() as f64 + s_count as f64 * d.powf(0.125);
        t.row(&[s_count.to_string(), fmt_f(rounds), ok.to_string(), fmt_f(rounds / bound)]);
    }
    t.note(
        "Paper: O(D·logn/logD + |S|·D^0.125 + polylog). More sources generally *help* \
         propagation (more seeds) while the bound grows — the normalized column must stay \
         bounded (it may shrink).",
    );
    vec![t]
}

/// E11 — ablations of the paper's design choices.
pub fn e11_ablations(seed: u64) -> Vec<Table> {
    let mut rng0 = rng::stream_rng(seed, 7);
    let graphs: Vec<(&str, Graph)> = vec![
        ("grid-48x48", generators::grid(48, 48)),
        ("chain-10x60", generators::cluster_chain(10, 60, 0.15, &mut rng0)),
    ];
    let mut t = Table::new(
        "E11: ablations (3 seeds; prop rounds, budget-capped)",
        &["graph", "variant", "completed", "prop rounds"],
    );
    let base = CompeteParams::default();
    let variants: Vec<(&str, CompeteParams)> = vec![
        ("default (CD'17)", base),
        ("HW curtailment", CompeteParams::haeupler_wajc()),
        ("no curtailment (full radius)", CompeteParams { curtail_const: 1e6, ..base }),
        ("wide j range (0.5 log D)", CompeteParams { j_frac_max: 0.5, ..base }),
        ("no Alg-4 decay", CompeteParams { icp_background: false, ..base }),
        (
            "strict Alg-4 filter (paper-literal)",
            CompeteParams { alg4_accept_foreign: false, ..base },
        ),
        ("no background process", CompeteParams { background_process: false, ..base }),
        (
            "strict filter + no background",
            CompeteParams { alg4_accept_foreign: false, background_process: false, ..base },
        ),
        ("global sequence", CompeteParams { sequence_scope: SequenceScope::Global, ..base }),
    ];
    for (gname, g) in &graphs {
        let net = NetParams::new(g.n(), g.diameter_double_sweep());
        for (vname, params) in &variants {
            // Cap the budget so failing variants terminate in bounded time.
            let capped = CompeteParams { max_rounds_factor: 8, ..*params };
            let outcomes =
                parallel_trials(3, |i| cd_rounds(g, net, &capped, rng::derive(seed, 0xAB + i)));
            let ok = outcomes.iter().filter(|o| o.0).count();
            let rounds = mean(&outcomes.iter().map(|o| o.1 as f64).collect::<Vec<_>>());
            t.row(&[gname.to_string(), vname.to_string(), format!("{ok}/3"), fmt_f(rounds)]);
        }
    }
    t.note(
        "Crossing a coarse-cluster boundary requires either the background process (Algorithm \
         2) or physically-received foreign values in Algorithm 4 (the default channel \
         semantics, DESIGN.md §4.6): removing BOTH (strict filter + no background) strands \
         every coarse cluster except the source's, and those rows hit the round cap (0/3). \
         Disabling Algorithm 4 alone halves the time-division tax and still completes at this \
         scale because the background process covers boundary nodes. Curtailment variants \
         coincide at this scale: fine clusters are already smaller than the curtail radius \
         (see EXPERIMENTS.md).",
    );
    vec![t]
}

/// E12 — model sanity: exact collision semantics and the role of
/// spontaneous transmissions.
pub fn e12_model(seed: u64) -> Vec<Table> {
    // Part A: the deterministic collision trap.
    let mut ta = Table::new(
        "E12a: exact collision semantics — naive flooding on a 4-cycle",
        &["round budget", "informed nodes (of 4)"],
    );
    {
        use rn_sim::testing::NaiveFlood;
        let g = generators::cycle(4);
        let mut p = NaiveFlood::new(4, 0);
        let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, seed);
        sim.run(&mut p, 50);
        ta.row(&["50".into(), p.informed_count().to_string()]);
        ta.note(
            "The two neighbors of the source are informed simultaneously and collide at the \
             antipode forever: deterministic flooding stalls at 3/4 — the collision model is \
             exact, which is why randomized decay exists at all.",
        );
    }

    // Part B: spontaneous transmissions do the precomputation work.
    let mut tb = Table::new(
        "E12b: spontaneous transmissions build the clustering (distributed Partition(β))",
        &["graph", "β", "protocol rounds", "transmissions", "clusters (vs oracle)"],
    );
    {
        let g = generators::grid(24, 24);
        let net = NetParams::of_graph(&g);
        for beta in [0.5, 0.25] {
            let mut proto = DistributedPartition::new(
                net,
                beta,
                DistributedPartitionConfig::default(),
                rng::derive(seed, 21),
            );
            let budget = proto.total_rounds();
            let mut sim = Simulator::new(&g, CollisionModel::NoCollisionDetection, seed);
            let stats = sim.run(&mut proto, budget);
            let (p, _) = proto.into_partition();
            let mut r = rng::stream_rng(seed, 22);
            let oracle = Partition::compute(&g, beta, &mut r);
            tb.row(&[
                "grid-24x24".into(),
                fmt_f(beta),
                stats.rounds.to_string(),
                stats.metrics.transmissions.to_string(),
                format!("{} (vs {})", p.num_clusters(), oracle.num_clusters()),
            ]);
        }
        tb.note(
            "Every one of these transmissions is *spontaneous* (no node holds any broadcast \
             message yet). Algorithms barred from spontaneous transmissions — the classical \
             lower-bound regime — cannot run this phase at all; that is precisely the paper's \
             separation.",
        );
    }

    // Part C: the n = poly(D) optimality regime.
    let mut tc = Table::new(
        "E12c: the optimality regime n = O(poly D): ours vs BGI on paths (3 seeds)",
        &["n = D+1", "BGI rounds", "BGI/D", "CD'17 prop", "CD/D"],
    );
    {
        let params = CompeteParams::default();
        for n in [512usize, 1024, 2048] {
            let g = generators::path(n);
            let net = NetParams::new(g.n(), (n - 1) as u32);
            let bgi = mean(&parallel_trials(3, |i| {
                bgi_broadcast(&g, net, 0, rng::derive(seed, 0x60 + i)).rounds as f64
            }));
            let cd = mean(&parallel_trials(3, |i| {
                cd_rounds(&g, net, &params, rng::derive(seed, 0x70 + i)).1 as f64
            }));
            let d = (n - 1) as f64;
            tc.row(&[n.to_string(), fmt_f(bgi), fmt_f(bgi / d), fmt_f(cd), fmt_f(cd / d)]);
        }
        tc.note(
            "BGI/D grows like log n; CD/D stays near-constant — the paper's asymptotically \
             optimal O(D) broadcasting when n is polynomial in D.",
        );
    }
    // Part D: collision detection changes the problem entirely.
    let mut td = Table::new(
        "E12d: with collision detection, presence probes are free — binary-search LE by model",
        &["graph", "D", "no-CD probe (BGI) rounds", "CD probe (beep) rounds", "ratio"],
    );
    {
        for m in [24usize, 48] {
            let g = generators::grid(m, m);
            let net = NetParams::new(g.n(), (2 * (m - 1)) as u32);
            let nocd = binary_search_leader_election(
                &g,
                net,
                BroadcastKind::Bgi,
                1.0,
                rng::derive(seed, 0x80),
            );
            let cd = binary_search_leader_election(
                &g,
                net,
                BroadcastKind::BeepWaveCd,
                1.0,
                rng::derive(seed, 0x81),
            );
            td.row(&[
                format!("grid-{m}x{m}"),
                net.diameter().to_string(),
                nocd.rounds.to_string(),
                cd.rounds.to_string(),
                fmt_f(nocd.rounds as f64 / cd.rounds as f64),
            ]);
        }
        td.note(
            "With CD, any channel energy carries one presence bit, so each probe costs exactly              D+1 rounds; without CD each probe must pay a whp decay-broadcast budget. This is              the model separation behind the paper's restriction to the harder no-CD setting.",
        );
    }
    vec![ta, tb, tc, td]
}

/// Runs an experiment by id, returning its tables.
///
/// # Panics
///
/// Panics on an unknown id.
pub fn run(id: &str, seed: u64) -> Vec<Table> {
    match id {
        "e1" => e1_decay_success(seed),
        "e2" => e2_partition_properties(seed),
        "e3" => e3_theorem_2_2(seed),
        "e4" => e4_section6(seed),
        "e5" => e5_bad_subpaths(seed),
        "e6" => e6_schedule_contract(seed),
        "e7" => e7_broadcast_scaling(seed),
        "e8" => e8_comparison(seed),
        "e9" => e9_leader_election(seed),
        "e10" => e10_compete_sources(seed),
        "e11" => e11_ablations(seed),
        "e12" => e12_model(seed),
        other => panic!("unknown experiment id {other:?} (expected e1..e12)"),
    }
}

/// All experiment ids in order.
pub const ALL_IDS: [&str; 12] =
    ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_runs_tiny() {
        // Smoke: the harness path works end to end (full runs live in the bin).
        let tables = e1_decay_success(1);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].len() >= 4);
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        let _ = run("e99", 0);
    }
}
