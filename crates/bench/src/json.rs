//! A minimal, dependency-free JSON value type with a deterministic writer
//! and a strict parser.
//!
//! The offline serde shim has no serializer backend, so the campaign
//! results format (`BENCH_<id>.json`) is emitted and validated through this
//! module instead. Object keys keep insertion order and numbers render via
//! Rust's shortest-round-trip `Display`, so the same [`Json`] value always
//! renders to the same bytes — the property the campaign determinism
//! guarantee ("same master seed ⇒ byte-identical results file") rests on.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (no map reordering, for
/// byte-stable output).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered without a decimal point.
    UInt(u64),
    /// A float, rendered via shortest-round-trip `Display`. Non-finite
    /// values render as `null` (JSON has no NaN/inf).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset where parsing failed.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience: an object from key–value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a `UInt` (or an integral `Num`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Num(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The numeric payload as a float, if this is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Num(v) => Some(v),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to a compact JSON string (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset on malformed input or trailing
    /// garbage.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError { msg: "trailing characters after value".into(), at: pos });
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(msg: impl Into<String>, at: usize) -> JsonError {
    JsonError { msg: msg.into(), at }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(format!("expected {:?}", b as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(err("unexpected end of input", *pos));
    };
    match b {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b't' => parse_literal(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_literal(bytes, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(err(format!("unexpected character {:?}", other as char), *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(format!("expected {lit:?}"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    if !is_float && !text.starts_with('-') {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
    }
    text.parse::<f64>().map(Json::Num).map_err(|_| err(format!("invalid number {text:?}"), start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(err("unterminated string", *pos));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(err("unterminated escape", *pos));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(format!("bad \\u escape {hex:?}"), *pos))?;
                        *pos += 4;
                        // Surrogates are not paired here; results files only
                        // ever contain BMP scalar values.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(err(format!("bad escape \\{}", other as char), *pos - 1)),
                }
            }
            _ => {
                // Re-decode UTF-8 starting at the byte we consumed.
                let s = std::str::from_utf8(&bytes[*pos - 1..])
                    .map_err(|_| err("invalid UTF-8 in string", *pos - 1))?;
                let c = s.chars().next().expect("nonempty by construction");
                out.push(c);
                *pos += c.len_utf8() - 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => {
                *pos += 1;
            }
            Some(&b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => {
                *pos += 1;
            }
            Some(&b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let v = Json::obj(vec![
            ("schema", Json::Str("rn-bench-results/v1".into())),
            ("seed", Json::UInt(20170725)),
            ("mean", Json::Num(123.456)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "cells",
                Json::Arr(vec![Json::obj(vec![
                    ("topology", Json::Str("torus(32x32)".into())),
                    ("rounds", Json::Num(0.05)),
                ])]),
            ),
        ]);
        let s = v.render();
        let back = Json::parse(&s).expect("own output parses");
        assert_eq!(back, v);
        assert_eq!(back.render(), s, "render is a fixed point");
    }

    #[test]
    fn renders_compact_and_ordered() {
        let v = Json::obj(vec![("b", Json::UInt(1)), ("a", Json::UInt(2))]);
        assert_eq!(v.render(), r#"{"b":1,"a":2}"#, "insertion order, no sorting");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}π".into());
        let s = v.render();
        assert_eq!(Json::parse(&s).expect("parses"), v);
    }

    #[test]
    fn parses_standard_forms() {
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("[1, 2]").unwrap(), Json::Arr(vec![Json::UInt(1), Json::UInt(2)]));
        assert_eq!(Json::parse(r#"{"k": "A"}"#).unwrap().get("k").unwrap().as_str(), Some("A"));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "tru", "1 2", r#"{"a"}"#, "nan", "01x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 1024, "r": 1.5, "xs": [1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(1024));
        assert_eq!(v.get("r").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
