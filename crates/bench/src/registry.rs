//! The scenario registry: the assembled **open protocol-family registry**,
//! plus the combined `protocol@topology` scenario spec.
//!
//! The registry is the seam that makes workloads data instead of code: a
//! campaign (or the `experiments --scenario` CLI) names protocols and
//! topologies as strings, and the registry instantiates the matching
//! [`Runnable`] from whichever crate registered the family. Since the
//! [`ProtocolFamily`] redesign, this module no longer *knows* the
//! protocols: it assembles the family lists contributed by `rn_core`,
//! `rn_baselines`, `rn_decay`, `rn_cluster` and `rn_schedule` (in that
//! order) and drives everything — parsing, validation, override schemas,
//! help output, instantiation — through the trait. Adding an algorithm
//! anywhere in the workspace is one `ProtocolFamily` impl plus one line in
//! its crate's `families()`; no code here changes.
//!
//! Three orthogonal string axes ride on the base grammar:
//!
//! * **parameter overrides** — families with an override schema (the
//!   Compete family: `broadcast`, `broadcast_hw`, `compete`,
//!   `leader_election`; the decay families: `decay`, `decay_trunc`) accept
//!   per-cell `{key=value}` overrides, e.g. `broadcast{curtail=1e6}`,
//!   `compete(4){mu=0.2,background=0}` or `decay(16){coins=batched}`
//!   (enum-valued keys take symbolic names);
//! * **positional arguments** — per-family grammar, e.g. `compete(4,corner)`,
//!   `binsearch_le(beep)`, `partition(0.5)`, `schedule(upcast,0.1)`;
//! * **fault suffixes** — a scenario may append `!jam(K,P)`, `!drop(P)`
//!   and/or `!crash(P)` after the topology, e.g.
//!   `broadcast@rgg(500,0.08)!jam(5,0.5)!crash(0.01)`, parsed into an
//!   [`rn_sim::FaultPlan`].
//!
//! All round-trip through `Display`/`FromStr` exactly like the base
//! grammar; non-canonical input (`compete(4,uniform)`) normalizes on the
//! first round trip.

use rn_graph::TopologySpec;
use rn_sim::{CollisionModel, FaultPlan, OverrideClass, OverrideSpec, ProtocolFamily, Runnable};
use std::error::Error;
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// Every registered protocol family, in listing order (assembly order of
/// the contributing crates; the pre-redesign families keep their historic
/// positions so `--list` and error messages stay stable).
pub fn families() -> &'static [&'static dyn ProtocolFamily] {
    static REGISTRY: OnceLock<Vec<&'static dyn ProtocolFamily>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut all: Vec<&'static dyn ProtocolFamily> = Vec::new();
        all.extend(rn_core::families());
        all.extend(rn_baselines::families());
        all.extend(rn_decay::families());
        all.extend(rn_cluster::families());
        all.extend(rn_schedule::families());
        for (i, f) in all.iter().enumerate() {
            assert!(
                all[..i].iter().all(|g| g.name() != f.name()),
                "duplicate protocol family name {:?} in the registry",
                f.name()
            );
        }
        all
    })
}

/// Looks a family up by name.
pub fn find_family(name: &str) -> Option<&'static dyn ProtocolFamily> {
    families().iter().copied().find(|f| f.name() == name)
}

/// Error from parsing a [`ProtocolSpec`] or [`ScenarioSpec`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryError {
    msg: String,
}

impl RegistryError {
    fn new(msg: impl Into<String>) -> RegistryError {
        RegistryError { msg: msg.into() }
    }
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario spec: {}", self.msg)
    }
}

impl Error for RegistryError {}

/// An ordered list of per-cell parameter overrides, written
/// `{key=value,key=value}` after a protocol name. Each pair references an
/// entry of the owning family's [`OverrideSpec`] schema; values display in
/// Rust's shortest-round-trip float form, so `parse(display(x)) == x`
/// exactly.
#[derive(Debug, Clone, Default)]
pub struct Overrides(Vec<(&'static OverrideSpec, f64)>);

impl PartialEq for Overrides {
    fn eq(&self, other: &Overrides) -> bool {
        self.0.len() == other.0.len()
            && self.0.iter().zip(&other.0).all(|(&(a, av), &(b, bv))| a.key == b.key && av == bv)
    }
}

impl Overrides {
    /// No overrides (the default for every plain protocol name).
    pub fn none() -> Overrides {
        Overrides(Vec::new())
    }

    /// Builds from `(key, value)` pairs resolved against `family`'s schema.
    ///
    /// # Errors
    ///
    /// [`RegistryError`] on a key the family does not declare (the message
    /// suggests the family's own keys), an invalid value for the key's
    /// class, or a duplicated key.
    pub fn try_from_pairs<'k>(
        family: &'static dyn ProtocolFamily,
        pairs: impl IntoIterator<Item = (&'k str, f64)>,
    ) -> Result<Overrides, RegistryError> {
        let schema = family.overrides();
        let mut out: Vec<(&'static OverrideSpec, f64)> = Vec::new();
        for (key, v) in pairs {
            let spec = schema.iter().find(|s| s.key == key).ok_or_else(|| {
                RegistryError::new(format!(
                    "unknown override key {key:?} for {} (known: {})",
                    family.name(),
                    schema.iter().map(|s| s.key).collect::<Vec<_>>().join(", ")
                ))
            })?;
            spec.validate(v).map_err(RegistryError::new)?;
            if out.iter().any(|&(seen, _)| seen.key == key) {
                return Err(RegistryError::new(format!("duplicate override key {key:?}")));
            }
            out.push((spec, v));
        }
        Ok(Overrides(out))
    }

    /// Whether there are no overrides.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The override pairs, in spec order.
    pub fn pairs(&self) -> &[(&'static OverrideSpec, f64)] {
        &self.0
    }

    /// Parses the inside of a brace list (`key=value,key=value`) against
    /// `family`'s schema.
    fn parse_inner(
        family: &'static dyn ProtocolFamily,
        s: &str,
    ) -> Result<Overrides, RegistryError> {
        if s.trim().is_empty() {
            return Err(RegistryError::new("empty override list {} (omit the braces instead)"));
        }
        let schema = family.overrides();
        let mut pairs = Vec::new();
        for item in s.split(',') {
            let item = item.trim();
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| RegistryError::new(format!("override {item:?} is not key=value")))?;
            let key = key.trim();
            let value = value.trim();
            // The key's class decides how the value text parses (enum keys
            // take symbolic names, everything else a number), so resolve
            // the spec before touching the value.
            let spec = schema.iter().find(|sp| sp.key == key).ok_or_else(|| {
                RegistryError::new(format!(
                    "unknown override key {key:?} for {} (known: {})",
                    family.name(),
                    schema.iter().map(|s| s.key).collect::<Vec<_>>().join(", ")
                ))
            })?;
            let v: f64 = match spec.class {
                OverrideClass::Enum(names) => {
                    names.iter().position(|&n| n == value).ok_or_else(|| {
                        RegistryError::new(format!("{key} takes one of: {}", names.join(", ")))
                    })? as f64
                }
                _ => value
                    .parse()
                    .map_err(|_| RegistryError::new(format!("{key}: {value:?} is not a number")))?,
            };
            pairs.push((key, v));
        }
        Overrides::try_from_pairs(family, pairs)
    }
}

impl fmt::Display for Overrides {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return Ok(());
        }
        write!(f, "{{")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match k.enum_name(*v) {
                Some(name) => write!(f, "{}={name}", k.key)?,
                None => write!(f, "{}={v}", k.key)?,
            }
        }
        write!(f, "}}")
    }
}

/// A protocol from the registry, in declarative form: a registered
/// [`ProtocolFamily`], its canonical positional arguments, and optional
/// per-cell parameter [`Overrides`]. `Display` and `FromStr` round-trip.
#[derive(Clone)]
pub struct ProtocolSpec {
    family: &'static dyn ProtocolFamily,
    /// Canonical argument text (inside the parentheses), `None` for a bare
    /// name. Always the output of the family's own `parse_args`.
    args: Option<String>,
    /// Distinct nodes the protocol needs of a topology (cached at parse
    /// time).
    required_nodes: usize,
    /// Per-cell parameter overrides (empty for most specs; only families
    /// with an override schema accept any).
    pub overrides: Overrides,
}

impl PartialEq for ProtocolSpec {
    fn eq(&self, other: &ProtocolSpec) -> bool {
        self.family.name() == other.family.name()
            && self.args == other.args
            && self.overrides == other.overrides
    }
}

impl fmt::Debug for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProtocolSpec({self})")
    }
}

impl ProtocolSpec {
    /// Parses a spec, panicking on failure — for statically known strings
    /// (presets, tests). Runtime input should use `FromStr`.
    ///
    /// # Panics
    ///
    /// Panics with the parse error if `s` is not a valid protocol spec.
    pub fn parse(s: &str) -> ProtocolSpec {
        s.parse().unwrap_or_else(|e| panic!("invalid protocol spec {s:?}: {e}"))
    }

    /// The registered family this spec names.
    pub fn family(&self) -> &'static dyn ProtocolFamily {
        self.family
    }

    /// The family name (the part before any `(...)` / `{...}`).
    pub fn family_name(&self) -> &'static str {
        self.family.name()
    }

    /// Canonical positional-argument text, if any.
    pub fn args(&self) -> Option<&str> {
        self.args.as_deref()
    }

    /// The number of distinct nodes this protocol needs the topology to
    /// provide (source placement); 1 for single-source protocols.
    pub fn required_nodes(&self) -> usize {
        self.required_nodes
    }

    /// The spec without its overrides (for error messages).
    pub fn base(&self) -> String {
        match &self.args {
            None => self.family.name().to_string(),
            Some(a) => format!("{}({a})", self.family.name()),
        }
    }

    /// Every protocol in the registry, one canonical instance per
    /// [`ProtocolFamily::canonical_instances`] entry (parameterized forms
    /// use their default arity, no overrides) — the completeness surface
    /// `--list` and the registry tests enumerate.
    pub fn all() -> Vec<ProtocolSpec> {
        families()
            .iter()
            .flat_map(|f| {
                f.canonical_instances().iter().map(|args| {
                    let parsed = f
                        .parse_args(*args)
                        .unwrap_or_else(|e| panic!("{}: bad canonical instance: {e}", f.name()));
                    ProtocolSpec {
                        family: *f,
                        args: parsed.canonical,
                        required_nodes: parsed.required_nodes,
                        overrides: Overrides::none(),
                    }
                })
            })
            .collect()
    }

    /// Instantiates the matching [`Runnable`] from its home crate. The
    /// returned object's [`Runnable::name`] equals `self.to_string()`.
    pub fn instantiate(&self) -> Box<dyn Runnable> {
        self.family.instantiate(self.args.as_deref(), self.overrides.pairs(), &self.to_string())
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.base(), self.overrides)
    }
}

impl FromStr for ProtocolSpec {
    type Err = RegistryError;

    fn from_str(s: &str) -> Result<ProtocolSpec, RegistryError> {
        let s = s.trim();
        let (base, overrides_str) = match s.find('{') {
            Some(open) if s.ends_with('}') => (&s[..open], Some(&s[open + 1..s.len() - 1])),
            Some(_) => return Err(RegistryError::new(format!("{s:?} is missing a closing brace"))),
            None => (s, None),
        };
        let (name, args) = match base.find('(') {
            Some(open) if base.ends_with(')') => {
                (base[..open].trim(), Some(base[open + 1..base.len() - 1].trim()))
            }
            Some(_) => {
                return Err(RegistryError::new(format!(
                    "{base:?} is missing a closing parenthesis"
                )))
            }
            None => (base.trim(), None),
        };
        let family = find_family(name).ok_or_else(|| {
            RegistryError::new(format!(
                "unknown protocol {base:?} (known: {})",
                ProtocolSpec::all()
                    .iter()
                    .map(ProtocolSpec::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
        let parsed = family.parse_args(args).map_err(RegistryError::new)?;
        let overrides = match overrides_str {
            None => Overrides::none(),
            Some(inner) => {
                if family.overrides().is_empty() {
                    let takers: Vec<&str> = families()
                        .iter()
                        .filter(|f| !f.overrides().is_empty())
                        .map(|f| f.name())
                        .collect();
                    return Err(RegistryError::new(format!(
                        "{} takes no {{...}} overrides (only {} do)",
                        family.name(),
                        takers.join(", ")
                    )));
                }
                Overrides::parse_inner(family, inner)?
            }
        };
        Ok(ProtocolSpec {
            family,
            args: parsed.canonical,
            required_nodes: parsed.required_nodes,
            overrides,
        })
    }
}

/// A full scenario: `protocol@topology` with an optional fault suffix, e.g.
/// `leader_election@torus(32x32)`, `partition(0.5)@grid(32x32)` or
/// `compete_cd(4)@rgg(500,0.08)!crash(0.01)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The protocol half (before `@`).
    pub protocol: ProtocolSpec,
    /// The topology half (after `@`, before any `!`).
    pub topology: TopologySpec,
    /// Fault plan from the `!jam(K,P)` / `!drop(P)` / `!crash(P)` suffixes
    /// ([`FaultPlan::none`] when absent).
    pub faults: FaultPlan,
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.protocol, self.topology)?;
        if !self.faults.is_none() {
            write!(f, "!{}", self.faults)?;
        }
        Ok(())
    }
}

impl FromStr for ScenarioSpec {
    type Err = RegistryError;

    fn from_str(s: &str) -> Result<ScenarioSpec, RegistryError> {
        let (proto, rest) = s
            .split_once('@')
            .ok_or_else(|| RegistryError::new(format!("{s:?} must be protocol@topology")))?;
        let (topo, faults) = match rest.split_once('!') {
            Some((topo, faults)) => {
                let plan: FaultPlan = faults
                    .parse()
                    .map_err(|e: rn_sim::FaultError| RegistryError::new(e.to_string()))?;
                (topo, plan)
            }
            None => (rest, FaultPlan::none()),
        };
        let spec = ScenarioSpec {
            protocol: proto.parse()?,
            topology: topo
                .trim()
                .parse()
                .map_err(|e: rn_graph::TopologySpecError| RegistryError::new(e.to_string()))?,
            faults,
        };
        // Placement preconditions are checkable right here, because node
        // counts are static per topology family — reject instead of letting
        // a trial panic (or silently clamp) later.
        let n = spec.topology.nodes();
        let need = spec.protocol.required_nodes();
        if need > n {
            return Err(RegistryError::new(format!(
                "{} needs {need} distinct source nodes but {} has only {n}",
                spec.protocol.base(),
                spec.topology
            )));
        }
        if spec.faults.jammers() > n {
            return Err(RegistryError::new(format!(
                "fault plan {} wants {} jammers but {} has only {n} nodes",
                spec.faults,
                spec.faults.jammers(),
                spec.topology
            )));
        }
        Ok(spec)
    }
}

/// Stable string form of a collision model (`nocd` / `cd`).
pub fn model_name(model: CollisionModel) -> &'static str {
    match model {
        CollisionModel::NoCollisionDetection => "nocd",
        CollisionModel::CollisionDetection => "cd",
    }
}

/// Parses a collision-model name (`nocd` / `cd`).
///
/// # Errors
///
/// [`RegistryError`] on anything else.
pub fn parse_model(s: &str) -> Result<CollisionModel, RegistryError> {
    match s.trim() {
        "nocd" => Ok(CollisionModel::NoCollisionDetection),
        "cd" => Ok(CollisionModel::CollisionDetection),
        other => Err(RegistryError::new(format!("unknown collision model {other:?} (nocd | cd)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assembles_all_contributing_crates() {
        let names: Vec<&str> = families().iter().map(|f| f.name()).collect();
        for expected in [
            // rn_core
            "broadcast",
            "broadcast_hw",
            "compete",
            "leader_election",
            // rn_baselines
            "bgi",
            "truncated",
            "binsearch_le",
            // rn_decay
            "decay",
            "decay_trunc",
            "broadcast_cd",
            "compete_cd",
            // rn_cluster
            "partition",
            // rn_schedule
            "schedule",
        ] {
            assert!(names.contains(&expected), "family {expected:?} missing from the registry");
        }
        // Names are unique (the assembly assert guards this; double-check).
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn every_family_appears_in_all_and_every_instance_round_trips() {
        let all = ProtocolSpec::all();
        for f in families() {
            assert!(
                all.iter().any(|spec| spec.family_name() == f.name()),
                "family {} has no canonical instance in ProtocolSpec::all()",
                f.name()
            );
        }
        for spec in all {
            let s = spec.to_string();
            let back: ProtocolSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(back, spec, "parse(display) round trip for {s}");
            assert_eq!(
                spec.instantiate().name(),
                s,
                "registry name and Runnable::name must agree for {s}"
            );
        }
    }

    #[test]
    fn pre_redesign_spec_strings_parse_and_display_unchanged() {
        // Byte-compatibility: every spelling that parsed before the
        // ProtocolFamily redesign parses to the same canonical form.
        for (input, canonical) in [
            ("broadcast", "broadcast"),
            ("broadcast_hw", "broadcast_hw"),
            ("compete(4)", "compete(4)"),
            ("compete(4,uniform)", "compete(4)"),
            ("compete(4,clustered)", "compete(4,clustered)"),
            ("compete(4,corner)", "compete(4,corner)"),
            ("leader_election", "leader_election"),
            ("bgi", "bgi"),
            ("truncated", "truncated"),
            ("decay(4)", "decay(4)"),
            ("decay_trunc(4)", "decay_trunc(4)"),
            ("binsearch_le(bgi)", "binsearch_le(bgi)"),
            ("binsearch_le(cd17)", "binsearch_le(cd17)"),
            ("binsearch_le(beep)", "binsearch_le(beep)"),
            ("broadcast{curtail=1e6}", "broadcast{curtail=1000000}"),
            ("compete(4){mu=0.2,background=0}", "compete(4){mu=0.2,background=0}"),
        ] {
            let spec: ProtocolSpec = input.parse().unwrap_or_else(|e| panic!("{input}: {e}"));
            assert_eq!(spec.to_string(), canonical, "canonical form of {input}");
        }
    }

    #[test]
    fn new_families_parse_args_and_validate() {
        for (s, nodes) in [
            ("partition(0.5)", 1),
            ("schedule(downcast)", 1),
            ("schedule(upcast)", 1),
            ("schedule(upcast,0.1)", 1),
            ("broadcast_cd", 1),
            ("compete_cd(4)", 4),
        ] {
            let spec: ProtocolSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.to_string(), s);
            assert_eq!(spec.required_nodes(), nodes, "{s}");
            assert_eq!(spec.instantiate().name(), s);
        }
        // Arg canonicalization mirrors the compete(K,uniform) precedent.
        assert_eq!(ProtocolSpec::parse("partition(0.50)").to_string(), "partition(0.5)");
        assert_eq!(ProtocolSpec::parse("schedule(upcast,0.25)").to_string(), "schedule(upcast)");
        for bad in [
            "partition",
            "partition()",
            "partition(0)",
            "partition(2)",
            "partition(x)",
            "schedule",
            "schedule(sideways)",
            "schedule(upcast,9)",
            "compete_cd",
            "compete_cd(0)",
            "broadcast_cd(1)",
        ] {
            assert!(bad.parse::<ProtocolSpec>().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn override_specs_round_trip_and_name_their_runnable() {
        for s in [
            "broadcast{curtail=1e6}",
            "broadcast_hw{curtail=2.5,mu=0.2}",
            "compete(4){mu=0.2}",
            "leader_election{background=0,max_rounds=128}",
        ] {
            let spec: ProtocolSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(!spec.overrides.is_empty());
            let back: ProtocolSpec = spec.to_string().parse().expect("reparses");
            assert_eq!(back, spec, "value round trip for {s}");
            assert_eq!(spec.instantiate().name(), spec.to_string());
        }
        // Display is the shortest float form: 1e6 renders as 1000000 but
        // parses back to the same value.
        let spec: ProtocolSpec = "broadcast{curtail=1e6}".parse().expect("parses");
        assert_eq!(spec.to_string(), "broadcast{curtail=1000000}");
    }

    #[test]
    fn enum_overrides_parse_symbolically_and_display_names() {
        for s in ["decay(4){coins=batched}", "decay_trunc(2){coins=per_index}"] {
            let spec: ProtocolSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.to_string(), s, "enum values display as names, not indices");
            assert_eq!(spec.instantiate().name(), s);
        }
        let err = "decay(4){coins=fast}".parse::<ProtocolSpec>().unwrap_err().to_string();
        assert!(err.contains("coins takes one of: per_index, batched"), "{err}");
    }

    #[test]
    fn unknown_override_keys_suggest_the_familys_own_schema() {
        let err = "broadcast{nosuch=1}".parse::<ProtocolSpec>().unwrap_err().to_string();
        assert!(err.contains("unknown override key \"nosuch\" for broadcast"), "{err}");
        assert!(err.contains("curtail") && err.contains("max_rounds"), "suggests keys: {err}");
        // Schema-less families name who does accept overrides instead.
        let err = "partition(0.5){curtail=1}".parse::<ProtocolSpec>().unwrap_err().to_string();
        assert!(err.contains("partition takes no {...} overrides"), "{err}");
        assert!(err.contains("broadcast") && err.contains("leader_election"), "{err}");
    }

    #[test]
    fn override_parse_rejects_malformed_lists() {
        for bad in [
            "broadcast{}",
            "broadcast{curtail}",
            "broadcast{curtail=}",
            "broadcast{curtail=abc}",
            "broadcast{nosuch=1}",
            "broadcast{curtail=1,curtail=2}",
            "broadcast{background=2}",
            "broadcast{copies_cap=0}",
            "broadcast{copies_cap=1.5}",
            "broadcast{max_rounds=inf}",
            "broadcast{curtail=1",
            "bgi{curtail=1}",
            "decay(4){mu=0.2}",
            "decay(4){coins=1}",
            "decay(4){coins=nosuch}",
            "decay_trunc(4){coins=}",
            "binsearch_le(bgi){curtail=1}",
            "schedule(downcast){mu=0.2}",
            "compete_cd(4){curtail=1}",
        ] {
            assert!(bad.parse::<ProtocolSpec>().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn scenario_spec_round_trips() {
        for s in [
            "leader_election@torus(32x32)",
            "broadcast@rgg(500,0.08)!jam(5,0.5)",
            "bgi@grid(8x8)!drop(0.1)",
            "broadcast{curtail=5}@grid(8x8)!jam(2,0.5)!drop(0.01)",
            "partition(0.5)@grid(32x32)",
            "schedule(upcast)@torus(24x24)",
            "compete_cd(4)@rgg(500,0.08)!crash(0.01)",
            "decay(2)@grid(6x6)!crash(0.05)",
        ] {
            let spec: ScenarioSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.to_string(), s);
        }
        let spec: ScenarioSpec = "broadcast@rgg(500,0.08)!jam(5,0.5)".parse().expect("parses");
        assert_eq!(spec.faults, FaultPlan::jam(5, 0.5));
        let spec: ScenarioSpec = "bgi@grid(4x4)!crash(0.1)".parse().expect("parses");
        assert_eq!(spec.faults, FaultPlan::crash(0.1));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nosuch",
            "compete",
            "compete(0)",
            "compete(x)",
            "binsearch_le",
            "binsearch_le(zz)",
            "broadcast(3)",
            "decay(3",
        ] {
            assert!(bad.parse::<ProtocolSpec>().is_err(), "{bad:?} must be rejected");
        }
        for bad in [
            "broadcast",
            "broadcast@",
            "@grid(3x3)",
            "broadcast@nosuch(1)",
            "broadcast@grid(3x3)!",
            "broadcast@grid(3x3)!flood(1)",
            "broadcast@grid(3x3)!jam(0,0.5)",
            "broadcast@grid(3x3)!jam(2,1.5)",
            "broadcast@grid(3x3)!jam(2,0.5)!jam(2,0.5)",
            "broadcast@grid(3x3)!crash(1.5)",
        ] {
            assert!(bad.parse::<ScenarioSpec>().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn placement_preconditions_are_checked_at_parse_time() {
        // compete(K) with K > n: rejected up front, not clamped or panicked.
        let err = "compete(10)@grid(3x3)".parse::<ScenarioSpec>().unwrap_err();
        assert!(err.to_string().contains("10 distinct source nodes"), "{err}");
        assert!("compete(9)@grid(3x3)".parse::<ScenarioSpec>().is_ok(), "K = n is fine");
        // compete_cd inherits the same guard through its family.
        assert!("compete_cd(10)@grid(3x3)".parse::<ScenarioSpec>().is_err());
        // More jammers than nodes: same treatment.
        let err = "broadcast@grid(3x3)!jam(10,0.5)".parse::<ScenarioSpec>().unwrap_err();
        assert!(err.to_string().contains("10 jammers"), "{err}");
        assert!("broadcast@grid(3x3)!jam(9,0.5)".parse::<ScenarioSpec>().is_ok());
    }

    #[test]
    fn model_names_round_trip() {
        for m in [CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection] {
            assert_eq!(parse_model(model_name(m)).expect("round trips"), m);
        }
        assert!(parse_model("loud").is_err());
    }
}
