//! The scenario registry: every [`Runnable`] protocol in the workspace,
//! addressable by a stable string form, plus the combined
//! `protocol@topology` scenario spec.
//!
//! The registry is the seam that makes workloads data instead of code: a
//! campaign (or the `experiments --scenario` CLI) names protocols and
//! topologies as strings, and the registry instantiates the matching
//! [`Runnable`] from `rn_core`, `rn_baselines` or `rn_decay`. Adding an
//! algorithm means implementing `Runnable` in its home crate and adding one
//! arm here — no experiment code changes anywhere.
//!
//! Three orthogonal string axes ride on the base grammar:
//!
//! * **parameter overrides** — Compete-family protocols accept per-cell
//!   [`CompeteParams`] overrides in braces, e.g. `broadcast{curtail=1e6}` or
//!   `compete(4){mu=0.2,background=0}` (see [`OverrideKey`] for the key
//!   set);
//! * **source placement** — `compete(K)` accepts a placement policy as a
//!   second argument, e.g. `compete(4,clustered)` or `compete(4,corner)`
//!   (see [`SourcePlacement`]; `uniform` is the elided default);
//! * **fault suffixes** — a scenario may append `!jam(K,P)` and/or
//!   `!drop(P)` after the topology, e.g.
//!   `broadcast@rgg(500,0.08)!jam(5,0.5)`, parsed into an
//!   [`rn_sim::FaultPlan`].
//!
//! All round-trip through `Display`/`FromStr` exactly like the base
//! grammar.

use rn_baselines::{BgiScenario, BinarySearchLeScenario, BroadcastKind, TruncatedScenario};
use rn_core::{
    BroadcastScenario, CompeteParams, CompeteScenario, LeaderElectionScenario, SourcePlacement,
};
use rn_decay::DecayScenario;
use rn_graph::TopologySpec;
use rn_sim::{CollisionModel, FaultPlan, Runnable};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A protocol family from the registry (the part of a [`ProtocolSpec`]
/// before any `{...}` overrides), with a stable string representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolKind {
    /// `broadcast` — the paper's broadcast (Theorem 5.1, default params).
    Broadcast,
    /// `broadcast_hw` — same pipeline under Haeupler–Wajc curtailment.
    BroadcastHw,
    /// `compete(K)` / `compete(K,POLICY)` — Compete(S) with `K` distinct
    /// sources (Theorem 4.1), placed per the [`SourcePlacement`] policy
    /// (`uniform` — the default, elided in the canonical form — `clustered`
    /// or `corner`).
    Compete(usize, SourcePlacement),
    /// `leader_election` — Algorithm 6 (Theorem 5.2).
    LeaderElection,
    /// `bgi` — BGI'92 decay broadcast baseline.
    Bgi,
    /// `truncated` — CR/KP-style truncated decay baseline.
    Truncated,
    /// `decay(K)` — raw multi-source decay with `K` spread sources.
    Decay(usize),
    /// `decay_trunc(K)` — truncated multi-source decay.
    DecayTrunc(usize),
    /// `binsearch_le(PROBE)` — the classical leader-election reduction over
    /// probe `bgi`, `cd17` or `beep`.
    BinsearchLe(ProbeSpec),
}

/// The probe of the binary-search leader-election reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeSpec {
    /// BGI decay broadcast probe (the classical setup).
    Bgi,
    /// This paper's Compete broadcast as the probe.
    Cd17,
    /// A beep wave in the collision-detection model (`D + 1` per probe).
    Beep,
}

impl ProbeSpec {
    fn as_str(self) -> &'static str {
        match self {
            ProbeSpec::Bgi => "bgi",
            ProbeSpec::Cd17 => "cd17",
            ProbeSpec::Beep => "beep",
        }
    }

    fn kind(self) -> BroadcastKind {
        match self {
            ProbeSpec::Bgi => BroadcastKind::Bgi,
            ProbeSpec::Cd17 => BroadcastKind::CzumajDavies,
            ProbeSpec::Beep => BroadcastKind::BeepWaveCd,
        }
    }
}

/// Error from parsing a [`ProtocolSpec`] or [`ScenarioSpec`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryError {
    msg: String,
}

impl RegistryError {
    fn new(msg: impl Into<String>) -> RegistryError {
        RegistryError { msg: msg.into() }
    }
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario spec: {}", self.msg)
    }
}

impl Error for RegistryError {}

impl ProtocolKind {
    /// Dense index of the protocol *family* (ignoring parameters). The
    /// exhaustive match here is the registry's completeness guard: adding an
    /// enum variant without registering it in [`ProtocolSpec::all`] fails
    /// the `registry_lists_every_protocol_family` test.
    pub fn family_index(&self) -> usize {
        match self {
            ProtocolKind::Broadcast => 0,
            ProtocolKind::BroadcastHw => 1,
            ProtocolKind::Compete(..) => 2,
            ProtocolKind::LeaderElection => 3,
            ProtocolKind::Bgi => 4,
            ProtocolKind::Truncated => 5,
            ProtocolKind::Decay(_) => 6,
            ProtocolKind::DecayTrunc(_) => 7,
            ProtocolKind::BinsearchLe(_) => 8,
        }
    }

    /// Number of protocol families (the range of
    /// [`ProtocolKind::family_index`]).
    pub const FAMILIES: usize = 9;

    /// Whether this family is parameterized by [`CompeteParams`] and thus
    /// accepts `{key=value}` overrides.
    pub fn accepts_overrides(&self) -> bool {
        matches!(
            self,
            ProtocolKind::Broadcast
                | ProtocolKind::BroadcastHw
                | ProtocolKind::Compete(..)
                | ProtocolKind::LeaderElection
        )
    }

    /// The number of distinct nodes this protocol needs the topology to
    /// provide (source placement); 1 for single-source protocols.
    pub fn required_nodes(&self) -> usize {
        match *self {
            ProtocolKind::Compete(k, _) => k,
            _ => 1,
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProtocolKind::Broadcast => write!(f, "broadcast"),
            ProtocolKind::BroadcastHw => write!(f, "broadcast_hw"),
            ProtocolKind::Compete(k, SourcePlacement::Uniform) => write!(f, "compete({k})"),
            ProtocolKind::Compete(k, placement) => write!(f, "compete({k},{placement})"),
            ProtocolKind::LeaderElection => write!(f, "leader_election"),
            ProtocolKind::Bgi => write!(f, "bgi"),
            ProtocolKind::Truncated => write!(f, "truncated"),
            ProtocolKind::Decay(k) => write!(f, "decay({k})"),
            ProtocolKind::DecayTrunc(k) => write!(f, "decay_trunc({k})"),
            ProtocolKind::BinsearchLe(p) => write!(f, "binsearch_le({})", p.as_str()),
        }
    }
}

impl FromStr for ProtocolKind {
    type Err = RegistryError;

    fn from_str(s: &str) -> Result<ProtocolKind, RegistryError> {
        let s = s.trim();
        let (family, arg) = match s.find('(') {
            Some(open) if s.ends_with(')') => (&s[..open], Some(s[open + 1..s.len() - 1].trim())),
            Some(_) => {
                return Err(RegistryError::new(format!("{s:?} is missing a closing parenthesis")))
            }
            None => (s, None),
        };
        let count = |arg: Option<&str>| -> Result<usize, RegistryError> {
            let a =
                arg.ok_or_else(|| RegistryError::new(format!("{family} needs a source count")))?;
            let k: usize = a
                .parse()
                .map_err(|_| RegistryError::new(format!("{family}: {a:?} is not an integer")))?;
            if k == 0 {
                return Err(RegistryError::new(format!("{family} needs at least one source")));
            }
            Ok(k)
        };
        match (family, arg) {
            ("broadcast", None) => Ok(ProtocolKind::Broadcast),
            ("broadcast_hw", None) => Ok(ProtocolKind::BroadcastHw),
            ("leader_election", None) => Ok(ProtocolKind::LeaderElection),
            ("bgi", None) => Ok(ProtocolKind::Bgi),
            ("truncated", None) => Ok(ProtocolKind::Truncated),
            ("compete", arg) => {
                // `compete(K)` or `compete(K,POLICY)` — split off an
                // optional placement policy before the count parser.
                let (k_arg, policy) = match arg.map(|a| a.split_once(',')) {
                    Some(Some((k, p))) => (Some(k.trim()), Some(p.trim())),
                    _ => (arg, None),
                };
                let placement = match policy {
                    None => SourcePlacement::Uniform,
                    Some(p) => p.parse().map_err(RegistryError::new)?,
                };
                Ok(ProtocolKind::Compete(count(k_arg)?, placement))
            }
            ("decay", arg) => Ok(ProtocolKind::Decay(count(arg)?)),
            ("decay_trunc", arg) => Ok(ProtocolKind::DecayTrunc(count(arg)?)),
            ("binsearch_le", Some(probe)) => {
                let p = match probe {
                    "bgi" => ProbeSpec::Bgi,
                    "cd17" => ProbeSpec::Cd17,
                    "beep" => ProbeSpec::Beep,
                    other => {
                        return Err(RegistryError::new(format!(
                            "unknown binsearch_le probe {other:?} (bgi | cd17 | beep)"
                        )))
                    }
                };
                Ok(ProtocolKind::BinsearchLe(p))
            }
            _ => Err(RegistryError::new(format!(
                "unknown protocol {s:?} (known: {})",
                ProtocolSpec::all()
                    .iter()
                    .map(ProtocolSpec::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))),
        }
    }
}

/// A [`CompeteParams`] field addressable from a `{key=value}` override.
///
/// Keys are deliberately short — they live inside scenario strings. Flag
/// keys take `0`/`1`; integer keys take non-negative integers; the rest take
/// any finite float.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverrideKey {
    /// `curtail` — main-process curtailment multiplier `curtail_const`.
    Curtail,
    /// `bg_curtail` — background curtailment multiplier `bg_curtail_const`.
    BgCurtail,
    /// `mu` — background density multiplier `bg_beta_factor` (the μ of the
    /// practical-scale correction, `β_bg = μ·D^-bg_exp`).
    Mu,
    /// `coarse_exp` — coarse clustering exponent `coarse_beta_exp`.
    CoarseExp,
    /// `bg_exp` — background clustering exponent `bg_beta_exp`.
    BgExp,
    /// `jmin` — fine-clustering range fraction `j_frac_min`.
    JMin,
    /// `jmax` — fine-clustering range fraction `j_frac_max`.
    JMax,
    /// `copies_exp` — fine clusterings per `j`, `fine_copies_exp`.
    CopiesExp,
    /// `copies_cap` — hard cap on fine clusterings per `j` (integer ≥ 1).
    CopiesCap,
    /// `seq_exp` — clustering-sequence length exponent `seq_len_exp`.
    SeqExp,
    /// `background` — run the Compete background process (flag).
    Background,
    /// `icp_bg` — run the ICP background process (flag).
    IcpBg,
    /// `foreign` — Algorithm-4 receivers merge foreign-cluster values
    /// (flag).
    Foreign,
    /// `max_rounds` — safety budget factor `max_rounds_factor` (integer
    /// ≥ 1).
    MaxRounds,
}

impl OverrideKey {
    /// Every key, in listing order (for `--list` help output).
    pub const ALL: &'static [OverrideKey] = &[
        OverrideKey::Curtail,
        OverrideKey::BgCurtail,
        OverrideKey::Mu,
        OverrideKey::CoarseExp,
        OverrideKey::BgExp,
        OverrideKey::JMin,
        OverrideKey::JMax,
        OverrideKey::CopiesExp,
        OverrideKey::CopiesCap,
        OverrideKey::SeqExp,
        OverrideKey::Background,
        OverrideKey::IcpBg,
        OverrideKey::Foreign,
        OverrideKey::MaxRounds,
    ];

    /// The key's string form.
    pub fn as_str(self) -> &'static str {
        match self {
            OverrideKey::Curtail => "curtail",
            OverrideKey::BgCurtail => "bg_curtail",
            OverrideKey::Mu => "mu",
            OverrideKey::CoarseExp => "coarse_exp",
            OverrideKey::BgExp => "bg_exp",
            OverrideKey::JMin => "jmin",
            OverrideKey::JMax => "jmax",
            OverrideKey::CopiesExp => "copies_exp",
            OverrideKey::CopiesCap => "copies_cap",
            OverrideKey::SeqExp => "seq_exp",
            OverrideKey::Background => "background",
            OverrideKey::IcpBg => "icp_bg",
            OverrideKey::Foreign => "foreign",
            OverrideKey::MaxRounds => "max_rounds",
        }
    }

    /// One-line description of the targeted parameter (for `--list`).
    pub fn about(self) -> &'static str {
        match self {
            OverrideKey::Curtail => "main-process curtailment multiplier",
            OverrideKey::BgCurtail => "background curtailment multiplier",
            OverrideKey::Mu => "background density multiplier (bg_beta_factor)",
            OverrideKey::CoarseExp => "coarse clustering exponent",
            OverrideKey::BgExp => "background clustering exponent",
            OverrideKey::JMin => "fine-clustering j range lower fraction",
            OverrideKey::JMax => "fine-clustering j range upper fraction",
            OverrideKey::CopiesExp => "fine clusterings per j (exponent)",
            OverrideKey::CopiesCap => "fine clusterings per j (hard cap, int)",
            OverrideKey::SeqExp => "clustering-sequence length exponent",
            OverrideKey::Background => "Compete background process (0|1)",
            OverrideKey::IcpBg => "ICP background process (0|1)",
            OverrideKey::Foreign => "accept foreign-cluster values (0|1)",
            OverrideKey::MaxRounds => "safety budget factor (int)",
        }
    }

    fn parse_key(s: &str) -> Result<OverrideKey, RegistryError> {
        OverrideKey::ALL.iter().copied().find(|k| k.as_str() == s).ok_or_else(|| {
            RegistryError::new(format!(
                "unknown override key {s:?} (known: {})",
                OverrideKey::ALL.iter().map(|k| k.as_str()).collect::<Vec<_>>().join(", ")
            ))
        })
    }

    /// Validates `value` for this key's class.
    fn validate(self, value: f64) -> Result<(), RegistryError> {
        let name = self.as_str();
        if !value.is_finite() {
            return Err(RegistryError::new(format!("{name}: value must be finite")));
        }
        match self {
            OverrideKey::Background | OverrideKey::IcpBg | OverrideKey::Foreign
                if value != 0.0 && value != 1.0 =>
            {
                Err(RegistryError::new(format!("{name} is a flag: use 0 or 1")))
            }
            OverrideKey::CopiesCap | OverrideKey::MaxRounds
                if value < 1.0 || value.fract() != 0.0 =>
            {
                Err(RegistryError::new(format!("{name} takes an integer ≥ 1")))
            }
            _ => Ok(()),
        }
    }

    fn apply(self, value: f64, p: &mut CompeteParams) {
        match self {
            OverrideKey::Curtail => p.curtail_const = value,
            OverrideKey::BgCurtail => p.bg_curtail_const = value,
            OverrideKey::Mu => p.bg_beta_factor = value,
            OverrideKey::CoarseExp => p.coarse_beta_exp = value,
            OverrideKey::BgExp => p.bg_beta_exp = value,
            OverrideKey::JMin => p.j_frac_min = value,
            OverrideKey::JMax => p.j_frac_max = value,
            OverrideKey::CopiesExp => p.fine_copies_exp = value,
            OverrideKey::CopiesCap => p.fine_copies_cap = value as u32,
            OverrideKey::SeqExp => p.seq_len_exp = value,
            OverrideKey::Background => p.background_process = value != 0.0,
            OverrideKey::IcpBg => p.icp_background = value != 0.0,
            OverrideKey::Foreign => p.alg4_accept_foreign = value != 0.0,
            OverrideKey::MaxRounds => p.max_rounds_factor = value as u64,
        }
    }
}

/// An ordered list of per-cell [`CompeteParams`] overrides, written
/// `{key=value,key=value}` after a protocol name. Values display in Rust's
/// shortest-round-trip float form, so `parse(display(x)) == x` exactly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Overrides(Vec<(OverrideKey, f64)>);

impl Overrides {
    /// No overrides (the default for every plain protocol name).
    pub fn none() -> Overrides {
        Overrides(Vec::new())
    }

    /// Builds from `(key, value)` pairs.
    ///
    /// # Errors
    ///
    /// [`RegistryError`] on an invalid value for a key's class or a
    /// duplicated key.
    pub fn try_from_pairs(
        pairs: impl IntoIterator<Item = (OverrideKey, f64)>,
    ) -> Result<Overrides, RegistryError> {
        let mut out: Vec<(OverrideKey, f64)> = Vec::new();
        for (k, v) in pairs {
            k.validate(v)?;
            if out.iter().any(|&(seen, _)| seen == k) {
                return Err(RegistryError::new(format!("duplicate override key {:?}", k.as_str())));
            }
            out.push((k, v));
        }
        Ok(Overrides(out))
    }

    /// Whether there are no overrides.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The override pairs, in spec order.
    pub fn pairs(&self) -> &[(OverrideKey, f64)] {
        &self.0
    }

    /// Applies every override to `p`.
    pub fn apply(&self, p: &mut CompeteParams) {
        for &(k, v) in &self.0 {
            k.apply(v, p);
        }
    }

    /// Parses the inside of a brace list (`key=value,key=value`).
    fn parse_inner(s: &str) -> Result<Overrides, RegistryError> {
        if s.trim().is_empty() {
            return Err(RegistryError::new("empty override list {} (omit the braces instead)"));
        }
        let mut pairs = Vec::new();
        for item in s.split(',') {
            let item = item.trim();
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| RegistryError::new(format!("override {item:?} is not key=value")))?;
            let k = OverrideKey::parse_key(key.trim())?;
            let v: f64 = value.trim().parse().map_err(|_| {
                RegistryError::new(format!("{}: {value:?} is not a number", k.as_str()))
            })?;
            pairs.push((k, v));
        }
        Overrides::try_from_pairs(pairs)
    }
}

impl fmt::Display for Overrides {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return Ok(());
        }
        write!(f, "{{")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}={v}", k.as_str())?;
        }
        write!(f, "}}")
    }
}

/// A protocol from the registry, in declarative form: a [`ProtocolKind`]
/// plus optional per-cell parameter [`Overrides`]. `Display` and `FromStr`
/// round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolSpec {
    /// The protocol family and arity.
    pub kind: ProtocolKind,
    /// Per-cell [`CompeteParams`] overrides (empty for most specs; only
    /// Compete-family kinds accept any).
    pub overrides: Overrides,
}

impl From<ProtocolKind> for ProtocolSpec {
    fn from(kind: ProtocolKind) -> ProtocolSpec {
        ProtocolSpec { kind, overrides: Overrides::none() }
    }
}

impl ProtocolSpec {
    /// A spec with no overrides.
    pub fn plain(kind: ProtocolKind) -> ProtocolSpec {
        kind.into()
    }

    /// Every protocol in the registry, one canonical instance per family
    /// (parameterized forms use their default arity, no overrides). The
    /// list is checked exhaustive against the enum by
    /// [`ProtocolKind::family_index`].
    pub fn all() -> Vec<ProtocolSpec> {
        [
            ProtocolKind::Broadcast,
            ProtocolKind::BroadcastHw,
            ProtocolKind::Compete(4, SourcePlacement::Uniform),
            ProtocolKind::Compete(4, SourcePlacement::Clustered),
            ProtocolKind::Compete(4, SourcePlacement::Corner),
            ProtocolKind::LeaderElection,
            ProtocolKind::Bgi,
            ProtocolKind::Truncated,
            ProtocolKind::Decay(4),
            ProtocolKind::DecayTrunc(4),
            ProtocolKind::BinsearchLe(ProbeSpec::Bgi),
            ProtocolKind::BinsearchLe(ProbeSpec::Cd17),
            ProtocolKind::BinsearchLe(ProbeSpec::Beep),
        ]
        .into_iter()
        .map(ProtocolSpec::plain)
        .collect()
    }

    /// The [`CompeteParams`] this spec resolves to: the kind's base
    /// configuration with the overrides applied.
    pub fn params(&self) -> CompeteParams {
        let mut p = match self.kind {
            ProtocolKind::BroadcastHw => CompeteParams::haeupler_wajc(),
            _ => CompeteParams::default(),
        };
        self.overrides.apply(&mut p);
        p
    }

    /// Instantiates the matching [`Runnable`] from its home crate. The
    /// returned object's [`Runnable::name`] equals `self.to_string()`.
    pub fn instantiate(&self) -> Box<dyn Runnable> {
        match self.kind {
            ProtocolKind::Broadcast | ProtocolKind::BroadcastHw => {
                Box::new(BroadcastScenario::with_params(self.params(), self.to_string()))
            }
            ProtocolKind::Compete(k, placement) => Box::new(CompeteScenario::with_placement(
                k,
                placement,
                self.params(),
                self.to_string(),
            )),
            ProtocolKind::LeaderElection => {
                Box::new(LeaderElectionScenario::with_params(self.params(), self.to_string()))
            }
            ProtocolKind::Bgi => Box::new(BgiScenario),
            ProtocolKind::Truncated => Box::new(TruncatedScenario),
            ProtocolKind::Decay(k) => Box::new(DecayScenario::new(k)),
            ProtocolKind::DecayTrunc(k) => Box::new(DecayScenario::truncated(k)),
            ProtocolKind::BinsearchLe(probe) => {
                Box::new(BinarySearchLeScenario { kind: probe.kind() })
            }
        }
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.kind, self.overrides)
    }
}

impl FromStr for ProtocolSpec {
    type Err = RegistryError;

    fn from_str(s: &str) -> Result<ProtocolSpec, RegistryError> {
        let s = s.trim();
        let (kind_str, overrides) = match s.find('{') {
            Some(open) if s.ends_with('}') => {
                (&s[..open], Overrides::parse_inner(&s[open + 1..s.len() - 1])?)
            }
            Some(_) => return Err(RegistryError::new(format!("{s:?} is missing a closing brace"))),
            None => (s, Overrides::none()),
        };
        let kind: ProtocolKind = kind_str.parse()?;
        if !overrides.is_empty() && !kind.accepts_overrides() {
            return Err(RegistryError::new(format!(
                "{kind} takes no {{...}} overrides (only the Compete-family protocols \
                 broadcast, broadcast_hw, compete(K) and leader_election do)"
            )));
        }
        Ok(ProtocolSpec { kind, overrides })
    }
}

/// A full scenario: `protocol@topology` with an optional fault suffix, e.g.
/// `leader_election@torus(32x32)`, `bgi@rgg(1600,0.05)!jam(3,0.5)` or
/// `broadcast{curtail=1e6}@grid(24x24)!jam(3,0.5)!drop(0.01)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The protocol half (before `@`).
    pub protocol: ProtocolSpec,
    /// The topology half (after `@`, before any `!`).
    pub topology: TopologySpec,
    /// Fault plan from the `!jam(K,P)` / `!drop(P)` suffixes
    /// ([`FaultPlan::none`] when absent).
    pub faults: FaultPlan,
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.protocol, self.topology)?;
        if !self.faults.is_none() {
            write!(f, "!{}", self.faults)?;
        }
        Ok(())
    }
}

impl FromStr for ScenarioSpec {
    type Err = RegistryError;

    fn from_str(s: &str) -> Result<ScenarioSpec, RegistryError> {
        let (proto, rest) = s
            .split_once('@')
            .ok_or_else(|| RegistryError::new(format!("{s:?} must be protocol@topology")))?;
        let (topo, faults) = match rest.split_once('!') {
            Some((topo, faults)) => {
                let plan: FaultPlan = faults
                    .parse()
                    .map_err(|e: rn_sim::FaultError| RegistryError::new(e.to_string()))?;
                (topo, plan)
            }
            None => (rest, FaultPlan::none()),
        };
        let spec = ScenarioSpec {
            protocol: proto.parse()?,
            topology: topo
                .trim()
                .parse()
                .map_err(|e: rn_graph::TopologySpecError| RegistryError::new(e.to_string()))?,
            faults,
        };
        // Placement preconditions are checkable right here, because node
        // counts are static per topology family — reject instead of letting
        // a trial panic (or silently clamp) later.
        let n = spec.topology.nodes();
        let need = spec.protocol.kind.required_nodes();
        if need > n {
            return Err(RegistryError::new(format!(
                "{} needs {need} distinct source nodes but {} has only {n}",
                spec.protocol.kind, spec.topology
            )));
        }
        if spec.faults.jammers() > n {
            return Err(RegistryError::new(format!(
                "fault plan {} wants {} jammers but {} has only {n} nodes",
                spec.faults,
                spec.faults.jammers(),
                spec.topology
            )));
        }
        Ok(spec)
    }
}

/// Stable string form of a collision model (`nocd` / `cd`).
pub fn model_name(model: CollisionModel) -> &'static str {
    match model {
        CollisionModel::NoCollisionDetection => "nocd",
        CollisionModel::CollisionDetection => "cd",
    }
}

/// Parses a collision-model name (`nocd` / `cd`).
///
/// # Errors
///
/// [`RegistryError`] on anything else.
pub fn parse_model(s: &str) -> Result<CollisionModel, RegistryError> {
    match s.trim() {
        "nocd" => Ok(CollisionModel::NoCollisionDetection),
        "cd" => Ok(CollisionModel::CollisionDetection),
        other => Err(RegistryError::new(format!("unknown collision model {other:?} (nocd | cd)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_every_protocol_family() {
        let all = ProtocolSpec::all();
        let mut seen = vec![false; ProtocolKind::FAMILIES];
        for spec in &all {
            seen[spec.kind.family_index()] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "ProtocolSpec::all() must cover every family: coverage {seen:?}"
        );
    }

    #[test]
    fn every_protocol_round_trips_and_names_match_runnable() {
        for spec in ProtocolSpec::all() {
            let s = spec.to_string();
            let back: ProtocolSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(back, spec, "parse(display) round trip for {s}");
            assert_eq!(
                spec.instantiate().name(),
                s,
                "registry name and Runnable::name must agree for {s}"
            );
        }
    }

    #[test]
    fn override_specs_round_trip_and_name_their_runnable() {
        for s in [
            "broadcast{curtail=1e6}",
            "broadcast_hw{curtail=2.5,mu=0.2}",
            "compete(4){mu=0.2}",
            "leader_election{background=0,max_rounds=128}",
        ] {
            let spec: ProtocolSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(!spec.overrides.is_empty());
            let back: ProtocolSpec = spec.to_string().parse().expect("reparses");
            assert_eq!(back, spec, "value round trip for {s}");
            assert_eq!(spec.instantiate().name(), spec.to_string());
        }
        // Display is the shortest float form: 1e6 renders as 1000000 but
        // parses back to the same value.
        let spec: ProtocolSpec = "broadcast{curtail=1e6}".parse().expect("parses");
        assert_eq!(spec.to_string(), "broadcast{curtail=1000000}");
        assert_eq!(spec.params().curtail_const, 1e6);
    }

    #[test]
    fn overrides_change_the_resolved_params() {
        let spec: ProtocolSpec =
            "compete(4){mu=0.2,background=0,copies_cap=3}".parse().expect("parses");
        let p = spec.params();
        assert_eq!(p.bg_beta_factor, 0.2);
        assert!(!p.background_process);
        assert_eq!(p.fine_copies_cap, 3);
        // Untouched fields keep their defaults.
        assert_eq!(p.curtail_const, CompeteParams::default().curtail_const);
        // broadcast_hw overrides stack on the HW base, not the default.
        let hw: ProtocolSpec = "broadcast_hw{mu=0.5}".parse().expect("parses");
        assert_eq!(hw.params().curtail_mode, CompeteParams::haeupler_wajc().curtail_mode);
    }

    #[test]
    fn override_parse_rejects_malformed_lists() {
        for bad in [
            "broadcast{}",
            "broadcast{curtail}",
            "broadcast{curtail=}",
            "broadcast{curtail=abc}",
            "broadcast{nosuch=1}",
            "broadcast{curtail=1,curtail=2}",
            "broadcast{background=2}",
            "broadcast{copies_cap=0}",
            "broadcast{copies_cap=1.5}",
            "broadcast{max_rounds=inf}",
            "broadcast{curtail=1",
            "bgi{curtail=1}",
            "decay(4){mu=0.2}",
            "binsearch_le(bgi){curtail=1}",
        ] {
            assert!(bad.parse::<ProtocolSpec>().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn compete_placement_specs_round_trip_and_validate() {
        // Canonical forms: uniform is elided, other policies are spelled.
        for (s, kind) in [
            ("compete(4)", ProtocolKind::Compete(4, SourcePlacement::Uniform)),
            ("compete(4,clustered)", ProtocolKind::Compete(4, SourcePlacement::Clustered)),
            ("compete(4,corner)", ProtocolKind::Compete(4, SourcePlacement::Corner)),
        ] {
            let spec: ProtocolSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.kind, kind);
            assert_eq!(spec.to_string(), s, "canonical form is stable");
            assert_eq!(spec.instantiate().name(), s, "Runnable names match the spec");
        }
        // `uniform` may be written explicitly; it canonicalizes away.
        let spec: ProtocolSpec = "compete(4,uniform)".parse().expect("parses");
        assert_eq!(spec.to_string(), "compete(4)");
        // Placement composes with overrides and scenario suffixes.
        let spec: ScenarioSpec =
            "compete(4,corner){mu=0.2}@grid(8x8)!drop(0.1)".parse().expect("parses");
        assert_eq!(spec.to_string(), "compete(4,corner){mu=0.2}@grid(8x8)!drop(0.1)");
        // Parse-time validation: unknown policies and bad counts rejected.
        for bad in ["compete(4,nearby)", "compete(4,)", "compete(0,clustered)", "compete(,corner)"]
        {
            let err = bad.parse::<ProtocolSpec>().unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?} must be rejected");
        }
        // Placement does not relax the K ≤ n placement precondition.
        assert!("compete(10,corner)@grid(3x3)".parse::<ScenarioSpec>().is_err());
    }

    #[test]
    fn scenario_spec_round_trips() {
        for s in [
            "leader_election@torus(32x32)",
            "broadcast@rgg(500,0.08)!jam(5,0.5)",
            "bgi@grid(8x8)!drop(0.1)",
            "broadcast{curtail=5}@grid(8x8)!jam(2,0.5)!drop(0.01)",
        ] {
            let spec: ScenarioSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.to_string(), s);
        }
        let spec: ScenarioSpec = "leader_election@torus(32x32)".parse().expect("parses");
        assert_eq!(spec.protocol, ProtocolSpec::plain(ProtocolKind::LeaderElection));
        assert!(spec.faults.is_none());
        let spec: ScenarioSpec = "broadcast@rgg(500,0.08)!jam(5,0.5)".parse().expect("parses");
        assert_eq!(spec.faults, rn_sim::FaultPlan::jam(5, 0.5));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nosuch",
            "compete",
            "compete(0)",
            "compete(x)",
            "binsearch_le",
            "binsearch_le(zz)",
            "broadcast(3)",
            "decay(3",
        ] {
            assert!(bad.parse::<ProtocolSpec>().is_err(), "{bad:?} must be rejected");
        }
        for bad in [
            "broadcast",
            "broadcast@",
            "@grid(3x3)",
            "broadcast@nosuch(1)",
            "broadcast@grid(3x3)!",
            "broadcast@grid(3x3)!flood(1)",
            "broadcast@grid(3x3)!jam(0,0.5)",
            "broadcast@grid(3x3)!jam(2,1.5)",
            "broadcast@grid(3x3)!jam(2,0.5)!jam(2,0.5)",
        ] {
            assert!(bad.parse::<ScenarioSpec>().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn placement_preconditions_are_checked_at_parse_time() {
        // compete(K) with K > n: rejected up front, not clamped or panicked.
        let err = "compete(10)@grid(3x3)".parse::<ScenarioSpec>().unwrap_err();
        assert!(err.to_string().contains("10 distinct source nodes"), "{err}");
        assert!("compete(9)@grid(3x3)".parse::<ScenarioSpec>().is_ok(), "K = n is fine");
        // More jammers than nodes: same treatment.
        let err = "broadcast@grid(3x3)!jam(10,0.5)".parse::<ScenarioSpec>().unwrap_err();
        assert!(err.to_string().contains("10 jammers"), "{err}");
        assert!("broadcast@grid(3x3)!jam(9,0.5)".parse::<ScenarioSpec>().is_ok());
    }

    #[test]
    fn model_names_round_trip() {
        for m in [CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection] {
            assert_eq!(parse_model(model_name(m)).expect("round trips"), m);
        }
        assert!(parse_model("loud").is_err());
    }
}
