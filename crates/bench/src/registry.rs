//! The scenario registry: every [`Runnable`] protocol in the workspace,
//! addressable by a stable string form, plus the combined
//! `protocol@topology` scenario spec.
//!
//! The registry is the seam that makes workloads data instead of code: a
//! campaign (or the `experiments --scenario` CLI) names protocols and
//! topologies as strings, and the registry instantiates the matching
//! [`Runnable`] from `rn_core`, `rn_baselines` or `rn_decay`. Adding an
//! algorithm means implementing `Runnable` in its home crate and adding one
//! arm here — no experiment code changes anywhere.

use rn_baselines::{BgiScenario, BinarySearchLeScenario, BroadcastKind, TruncatedScenario};
use rn_core::{BroadcastScenario, CompeteScenario, LeaderElectionScenario};
use rn_decay::DecayScenario;
use rn_graph::TopologySpec;
use rn_sim::{CollisionModel, Runnable};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A protocol from the registry, in declarative form with a stable string
/// representation (`Display` and `FromStr` round-trip).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolSpec {
    /// `broadcast` — the paper's broadcast (Theorem 5.1, default params).
    Broadcast,
    /// `broadcast_hw` — same pipeline under Haeupler–Wajc curtailment.
    BroadcastHw,
    /// `compete(K)` — Compete(S) with `K` random sources (Theorem 4.1).
    Compete(usize),
    /// `leader_election` — Algorithm 6 (Theorem 5.2).
    LeaderElection,
    /// `bgi` — BGI'92 decay broadcast baseline.
    Bgi,
    /// `truncated` — CR/KP-style truncated decay baseline.
    Truncated,
    /// `decay(K)` — raw multi-source decay with `K` spread sources.
    Decay(usize),
    /// `decay_trunc(K)` — truncated multi-source decay.
    DecayTrunc(usize),
    /// `binsearch_le(PROBE)` — the classical leader-election reduction over
    /// probe `bgi`, `cd17` or `beep`.
    BinsearchLe(ProbeSpec),
}

/// The probe of the binary-search leader-election reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeSpec {
    /// BGI decay broadcast probe (the classical setup).
    Bgi,
    /// This paper's Compete broadcast as the probe.
    Cd17,
    /// A beep wave in the collision-detection model (`D + 1` per probe).
    Beep,
}

impl ProbeSpec {
    fn as_str(self) -> &'static str {
        match self {
            ProbeSpec::Bgi => "bgi",
            ProbeSpec::Cd17 => "cd17",
            ProbeSpec::Beep => "beep",
        }
    }

    fn kind(self) -> BroadcastKind {
        match self {
            ProbeSpec::Bgi => BroadcastKind::Bgi,
            ProbeSpec::Cd17 => BroadcastKind::CzumajDavies,
            ProbeSpec::Beep => BroadcastKind::BeepWaveCd,
        }
    }
}

/// Error from parsing a [`ProtocolSpec`] or [`ScenarioSpec`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryError {
    msg: String,
}

impl RegistryError {
    fn new(msg: impl Into<String>) -> RegistryError {
        RegistryError { msg: msg.into() }
    }
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario spec: {}", self.msg)
    }
}

impl Error for RegistryError {}

impl ProtocolSpec {
    /// Every protocol in the registry, one canonical instance per family
    /// (parameterized forms use their default arity). The list is checked
    /// exhaustive against the enum by [`ProtocolSpec::family_index`].
    pub fn all() -> Vec<ProtocolSpec> {
        vec![
            ProtocolSpec::Broadcast,
            ProtocolSpec::BroadcastHw,
            ProtocolSpec::Compete(4),
            ProtocolSpec::LeaderElection,
            ProtocolSpec::Bgi,
            ProtocolSpec::Truncated,
            ProtocolSpec::Decay(4),
            ProtocolSpec::DecayTrunc(4),
            ProtocolSpec::BinsearchLe(ProbeSpec::Bgi),
            ProtocolSpec::BinsearchLe(ProbeSpec::Cd17),
            ProtocolSpec::BinsearchLe(ProbeSpec::Beep),
        ]
    }

    /// Dense index of the protocol *family* (ignoring parameters). The
    /// exhaustive match here is the registry's completeness guard: adding an
    /// enum variant without registering it in [`ProtocolSpec::all`] fails
    /// the `registry_lists_every_protocol_family` test.
    pub fn family_index(&self) -> usize {
        match self {
            ProtocolSpec::Broadcast => 0,
            ProtocolSpec::BroadcastHw => 1,
            ProtocolSpec::Compete(_) => 2,
            ProtocolSpec::LeaderElection => 3,
            ProtocolSpec::Bgi => 4,
            ProtocolSpec::Truncated => 5,
            ProtocolSpec::Decay(_) => 6,
            ProtocolSpec::DecayTrunc(_) => 7,
            ProtocolSpec::BinsearchLe(_) => 8,
        }
    }

    /// Number of protocol families (the range of
    /// [`ProtocolSpec::family_index`]).
    pub const FAMILIES: usize = 9;

    /// Instantiates the matching [`Runnable`] from its home crate. The
    /// returned object's [`Runnable::name`] equals `self.to_string()`.
    pub fn instantiate(&self) -> Box<dyn Runnable> {
        match *self {
            ProtocolSpec::Broadcast => Box::new(BroadcastScenario::czumaj_davies()),
            ProtocolSpec::BroadcastHw => Box::new(BroadcastScenario::haeupler_wajc()),
            ProtocolSpec::Compete(k) => Box::new(CompeteScenario::new(k)),
            ProtocolSpec::LeaderElection => Box::new(LeaderElectionScenario::new()),
            ProtocolSpec::Bgi => Box::new(BgiScenario),
            ProtocolSpec::Truncated => Box::new(TruncatedScenario),
            ProtocolSpec::Decay(k) => Box::new(DecayScenario::new(k)),
            ProtocolSpec::DecayTrunc(k) => Box::new(DecayScenario::truncated(k)),
            ProtocolSpec::BinsearchLe(probe) => {
                Box::new(BinarySearchLeScenario { kind: probe.kind() })
            }
        }
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProtocolSpec::Broadcast => write!(f, "broadcast"),
            ProtocolSpec::BroadcastHw => write!(f, "broadcast_hw"),
            ProtocolSpec::Compete(k) => write!(f, "compete({k})"),
            ProtocolSpec::LeaderElection => write!(f, "leader_election"),
            ProtocolSpec::Bgi => write!(f, "bgi"),
            ProtocolSpec::Truncated => write!(f, "truncated"),
            ProtocolSpec::Decay(k) => write!(f, "decay({k})"),
            ProtocolSpec::DecayTrunc(k) => write!(f, "decay_trunc({k})"),
            ProtocolSpec::BinsearchLe(p) => write!(f, "binsearch_le({})", p.as_str()),
        }
    }
}

impl FromStr for ProtocolSpec {
    type Err = RegistryError;

    fn from_str(s: &str) -> Result<ProtocolSpec, RegistryError> {
        let s = s.trim();
        let (family, arg) = match s.find('(') {
            Some(open) if s.ends_with(')') => (&s[..open], Some(s[open + 1..s.len() - 1].trim())),
            Some(_) => {
                return Err(RegistryError::new(format!("{s:?} is missing a closing parenthesis")))
            }
            None => (s, None),
        };
        let count = |arg: Option<&str>| -> Result<usize, RegistryError> {
            let a =
                arg.ok_or_else(|| RegistryError::new(format!("{family} needs a source count")))?;
            let k: usize = a
                .parse()
                .map_err(|_| RegistryError::new(format!("{family}: {a:?} is not an integer")))?;
            if k == 0 {
                return Err(RegistryError::new(format!("{family} needs at least one source")));
            }
            Ok(k)
        };
        match (family, arg) {
            ("broadcast", None) => Ok(ProtocolSpec::Broadcast),
            ("broadcast_hw", None) => Ok(ProtocolSpec::BroadcastHw),
            ("leader_election", None) => Ok(ProtocolSpec::LeaderElection),
            ("bgi", None) => Ok(ProtocolSpec::Bgi),
            ("truncated", None) => Ok(ProtocolSpec::Truncated),
            ("compete", arg) => Ok(ProtocolSpec::Compete(count(arg)?)),
            ("decay", arg) => Ok(ProtocolSpec::Decay(count(arg)?)),
            ("decay_trunc", arg) => Ok(ProtocolSpec::DecayTrunc(count(arg)?)),
            ("binsearch_le", Some(probe)) => {
                let p = match probe {
                    "bgi" => ProbeSpec::Bgi,
                    "cd17" => ProbeSpec::Cd17,
                    "beep" => ProbeSpec::Beep,
                    other => {
                        return Err(RegistryError::new(format!(
                            "unknown binsearch_le probe {other:?} (bgi | cd17 | beep)"
                        )))
                    }
                };
                Ok(ProtocolSpec::BinsearchLe(p))
            }
            _ => Err(RegistryError::new(format!(
                "unknown protocol {s:?} (known: {})",
                ProtocolSpec::all()
                    .iter()
                    .map(ProtocolSpec::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))),
        }
    }
}

/// A full scenario: `protocol@topology`, e.g.
/// `leader_election@torus(32x32)` or `bgi@rgg(1600,0.05)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The protocol half (before `@`).
    pub protocol: ProtocolSpec,
    /// The topology half (after `@`).
    pub topology: TopologySpec,
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.protocol, self.topology)
    }
}

impl FromStr for ScenarioSpec {
    type Err = RegistryError;

    fn from_str(s: &str) -> Result<ScenarioSpec, RegistryError> {
        let (proto, topo) = s
            .split_once('@')
            .ok_or_else(|| RegistryError::new(format!("{s:?} must be protocol@topology")))?;
        Ok(ScenarioSpec {
            protocol: proto.parse()?,
            topology: topo
                .trim()
                .parse()
                .map_err(|e: rn_graph::TopologySpecError| RegistryError::new(e.to_string()))?,
        })
    }
}

/// Stable string form of a collision model (`nocd` / `cd`).
pub fn model_name(model: CollisionModel) -> &'static str {
    match model {
        CollisionModel::NoCollisionDetection => "nocd",
        CollisionModel::CollisionDetection => "cd",
    }
}

/// Parses a collision-model name (`nocd` / `cd`).
///
/// # Errors
///
/// [`RegistryError`] on anything else.
pub fn parse_model(s: &str) -> Result<CollisionModel, RegistryError> {
    match s.trim() {
        "nocd" => Ok(CollisionModel::NoCollisionDetection),
        "cd" => Ok(CollisionModel::CollisionDetection),
        other => Err(RegistryError::new(format!("unknown collision model {other:?} (nocd | cd)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_every_protocol_family() {
        let all = ProtocolSpec::all();
        let mut seen = vec![false; ProtocolSpec::FAMILIES];
        for spec in &all {
            seen[spec.family_index()] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "ProtocolSpec::all() must cover every family: coverage {seen:?}"
        );
    }

    #[test]
    fn every_protocol_round_trips_and_names_match_runnable() {
        for spec in ProtocolSpec::all() {
            let s = spec.to_string();
            let back: ProtocolSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(back, spec, "parse(display) round trip for {s}");
            assert_eq!(
                spec.instantiate().name(),
                s,
                "registry name and Runnable::name must agree for {s}"
            );
        }
    }

    #[test]
    fn scenario_spec_round_trips() {
        let s = "leader_election@torus(32x32)";
        let spec: ScenarioSpec = s.parse().expect("parses");
        assert_eq!(spec.to_string(), s);
        assert_eq!(spec.protocol, ProtocolSpec::LeaderElection);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nosuch",
            "compete",
            "compete(0)",
            "compete(x)",
            "binsearch_le",
            "binsearch_le(zz)",
            "broadcast(3)",
            "decay(3",
        ] {
            assert!(bad.parse::<ProtocolSpec>().is_err(), "{bad:?} must be rejected");
        }
        for bad in ["broadcast", "broadcast@", "@grid(3x3)", "broadcast@nosuch(1)"] {
            assert!(bad.parse::<ScenarioSpec>().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn model_names_round_trip() {
        for m in [CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection] {
            assert_eq!(parse_model(model_name(m)).expect("round trips"), m);
        }
        assert!(parse_model("loud").is_err());
    }
}
