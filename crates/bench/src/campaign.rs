//! The campaign data model: the declarative cross of topology × protocol ×
//! collision model × fault plan × trial plan, its **plan** (the pure
//! enumeration of cells to run), and the aggregated results that render as a
//! markdown table and as a versioned, machine-readable JSON document for
//! cross-PR performance tracking.
//!
//! Execution is split into a plan/execute/sink pipeline:
//!
//! * [`Campaign::plan_cells`] enumerates the cross product into [`CellSpec`]s —
//!   pure data, instantly testable, carrying every derived seed;
//! * [`crate::executor`] runs the planned cells on a work-queue of worker
//!   threads, sharing one built graph per topology;
//! * a [`crate::CampaignSink`] receives finished [`CellResult`]s in plan
//!   order — in memory ([`Campaign::run`]) or streamed incrementally to a
//!   JSON writer so huge sweeps never hold every record at once.
//!
//! A [`Campaign`] is pure data — strings for protocols and topologies — so
//! defining a new workload never touches experiment code. Running one is
//! deterministic in the master seed *and independent of the thread count*:
//! topologies, per-trial seeds and cell order all derive from the seed, and
//! [`CampaignResult::to_json`] renders through the order-preserving
//! [`crate::json`] writer, so the same `(campaign, seed)` pair always
//! produces a byte-identical results file.

use crate::executor;
use crate::harness::Table;
use crate::json::Json;
use crate::registry::{model_name, ProtocolSpec, ScenarioSpec};
use crate::sink::MemorySink;
pub use crate::stats::CellStats;
use crate::stats::TrialAccumulator;
use rn_graph::TopologySpec;
use rn_sim::{rng, CollisionModel, FaultPlan, NetParams, TrialRecord};

/// Schema tag written into every results file; bump on breaking changes.
pub const RESULTS_SCHEMA: &str = "rn-bench-results/v1";

/// How many trials each cell runs (the "trial plan" axis of a campaign).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialPlan {
    /// Trials per cell (each trial gets an independent derived seed).
    pub trials: u64,
}

impl TrialPlan {
    /// A plan with `trials` trials per cell (at least 1).
    pub fn new(trials: u64) -> TrialPlan {
        TrialPlan { trials: trials.max(1) }
    }
}

/// A declarative experiment campaign: the full cross product of its axes.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Identifier used in output headers and the JSON `id` field.
    pub id: String,
    /// Topology axis.
    pub topologies: Vec<TopologySpec>,
    /// Protocol axis.
    pub protocols: Vec<ProtocolSpec>,
    /// Collision-model axis.
    pub models: Vec<CollisionModel>,
    /// Fault axis (jammers / dropout per cell); use
    /// [`Campaign::no_faults`] for the sunny-day-only default.
    pub faults: Vec<FaultPlan>,
    /// Trial plan shared by every cell.
    pub plan: TrialPlan,
}

impl Campaign {
    /// The single-entry fault axis meaning "no faults" — what every
    /// non-fault campaign uses.
    pub fn no_faults() -> Vec<FaultPlan> {
        vec![FaultPlan::none()]
    }

    /// A one-cell campaign from a `protocol@topology[!faults]` scenario
    /// spec.
    pub fn single(scenario: &ScenarioSpec, trials: u64) -> Campaign {
        Campaign {
            id: scenario.to_string(),
            topologies: vec![scenario.topology.clone()],
            protocols: vec![scenario.protocol.clone()],
            models: vec![CollisionModel::NoCollisionDetection],
            faults: vec![scenario.faults],
            plan: TrialPlan::new(trials),
        }
    }

    /// Number of axis-cross positions (topologies × protocols × models ×
    /// fault plans); an upper bound on emitted cells, since positions whose
    /// effective model duplicates an earlier one are skipped (see
    /// [`Campaign::run`]).
    pub fn num_cells(&self) -> usize {
        self.topologies.len() * self.protocols.len() * self.models.len() * self.faults.len()
    }

    /// Checks the cross-axis placement preconditions that scenario-string
    /// parsing enforces (`compete(K)` sources and jammer counts must fit
    /// every topology), for campaigns assembled programmatically — e.g. a
    /// preset whose fault axis was replaced from the command line. Without
    /// this, an oversized plan panics mid-run inside a trial worker.
    ///
    /// # Errors
    ///
    /// A description of the first violated pairing.
    pub fn validate(&self) -> Result<(), String> {
        for topo in &self.topologies {
            let n = topo.nodes();
            for proto in &self.protocols {
                let need = proto.required_nodes();
                if need > n {
                    return Err(format!(
                        "{} needs {need} distinct source nodes but {topo} has only {n}",
                        proto.base()
                    ));
                }
            }
            for fault in &self.faults {
                if fault.jammers() > n {
                    return Err(format!(
                        "fault plan {fault} wants {} jammers but {topo} has only {n} nodes",
                        fault.jammers()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Enumerates the full axis cross into the ordered list of cells to run
    /// — a pure function of the campaign and the master seed, with no graph
    /// building or trial execution.
    ///
    /// The enumeration preserves the original runner's semantics exactly:
    ///
    /// * **seed streams** — every axis position (topology × protocol × model
    ///   × fault, in nested-loop order) owns one slot of the cell-seed
    ///   stream whether or not it runs, so adding a model or fault plan
    ///   never reseeds later cells;
    /// * **model dedup** — axis values whose [`rn_sim::Runnable::
    ///   effective_model`] collapses onto an already-planned model for the
    ///   same (topology, protocol) are skipped (their seed slot is still
    ///   consumed), keeping `(topology, protocol, model, faults)` keys
    ///   unique.
    pub fn plan_cells(&self, master_seed: u64) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.num_cells());
        let mut cell_index = 0u64;
        for (ti, topo) in self.topologies.iter().enumerate() {
            for proto in &self.protocols {
                let runnable = proto.instantiate();
                let mut models_run = Vec::with_capacity(self.models.len());
                for &requested in &self.models {
                    let model = runnable.effective_model(requested);
                    let duplicate = models_run.contains(&model);
                    if !duplicate {
                        models_run.push(model);
                    }
                    for &fault in &self.faults {
                        let cell_seed = rng::derive(master_seed, CELL_STREAM + cell_index);
                        cell_index += 1;
                        if duplicate {
                            continue;
                        }
                        cells.push(CellSpec {
                            order: cells.len(),
                            topology_index: ti,
                            topology: topo.clone(),
                            topology_seed: rng::derive(master_seed, TOPOLOGY_STREAM + ti as u64),
                            protocol: proto.clone(),
                            model,
                            faults: fault,
                            cell_seed,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Runs every cell in memory with the default thread budget (see
    /// [`crate::executor::resolve_threads`]) and returns the aggregated
    /// result. Convenience wrapper over [`Campaign::run_with_threads`].
    pub fn run(&self, master_seed: u64) -> CampaignResult {
        self.run_with_threads(master_seed, executor::resolve_threads(None))
    }

    /// Runs every cell on `threads` worker threads, collecting results in
    /// memory. The output is a pure function of `(self, master_seed)` —
    /// byte-identical JSON for any thread count.
    ///
    /// Cells *and* trials share one work queue: a single-cell campaign still
    /// saturates the budget, and a wide sweep overlaps cells. Each topology
    /// is built once (from a seed derived off `master_seed` and the
    /// topology's position) and shared by all its cells; each trial seed
    /// derives from the cell seed and the trial index, so any single trial
    /// can be reproduced in isolation. Faulted cells run through
    /// [`rn_sim::Runnable::run_trial_under_faults`], so the same fault
    /// schedule semantics apply to every protocol uniformly.
    ///
    /// To stream cells to a sink instead of collecting them (bounded
    /// memory), use [`crate::executor::execute`] directly.
    pub fn run_with_threads(&self, master_seed: u64, threads: usize) -> CampaignResult {
        let mut sink = MemorySink::new();
        executor::execute(self, master_seed, threads, &mut sink)
            .expect("the in-memory sink cannot fail");
        sink.into_result()
    }
}

/// Seed stream for building the topology at a given axis position.
pub(crate) const TOPOLOGY_STREAM: u64 = 0x7070_0000;
/// Seed stream for the cell at a given axis-cross index.
pub(crate) const CELL_STREAM: u64 = 0xCE11_0000;

/// One planned campaign cell: pure data describing *what* to run — produced
/// by [`Campaign::plan_cells`], consumed by [`crate::executor`]. Carries
/// every derived seed so a cell (or any single trial inside it) can be
/// reproduced in isolation.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Position in the deterministic plan order (results are emitted in
    /// this order regardless of completion order).
    pub order: usize,
    /// Index into [`Campaign::topologies`] — cells sharing it share one
    /// built graph.
    pub topology_index: usize,
    /// The topology to build.
    pub topology: TopologySpec,
    /// Seed the topology is built from.
    pub topology_seed: u64,
    /// The protocol to instantiate.
    pub protocol: ProtocolSpec,
    /// The *effective* collision model the cell runs under.
    pub model: CollisionModel,
    /// The fault plan applied to every trial.
    pub faults: FaultPlan,
    /// Seed of the cell's trial stream (trial `i` runs under
    /// `rng::derive(cell_seed, i)`).
    pub cell_seed: u64,
}

/// Aggregated outcome of one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Topology spec string.
    pub topology: String,
    /// Protocol registry name.
    pub protocol: String,
    /// Collision model (`nocd` / `cd`).
    pub model: &'static str,
    /// Fault plan string (`none`, `jam(3,0.5)`, `drop(0.1)`, …).
    pub faults: String,
    /// Number of nodes of the built graph.
    pub n: usize,
    /// Diameter handed to protocols (double-sweep estimate).
    pub diameter: u32,
    /// Trials run.
    pub trials: u64,
    /// Trials that reached their goal within budget.
    pub completed: u64,
    /// Rounds per trial (including charged precomputation).
    pub rounds: CellStats,
    /// Successful receptions per trial. Meaningful only when
    /// [`CellResult::metrics_present`].
    pub deliveries: CellStats,
    /// Listener-side collisions per trial. Meaningful only when
    /// [`CellResult::metrics_present`].
    pub collisions: CellStats,
    /// Node transmissions per trial. Meaningful only when
    /// [`CellResult::metrics_present`].
    pub transmissions: CellStats,
    /// Whether the channel-metric distributions are real samples. `false`
    /// for rounds-only scenarios (e.g. `binsearch_le`), whose records carry
    /// zeroed placeholder [`rn_sim::Metrics`] — those cells omit the three
    /// metric objects from JSON and render `-` in tables instead of
    /// reporting fake 0-means. Also `false` for empty (zero-trial) cells.
    pub metrics_present: bool,
    /// Total wall-clock spent running this cell's trials, in milliseconds,
    /// summed over workers (so it measures CPU-time-like cost, not
    /// end-to-end latency). `None` unless the run opted into timing
    /// ([`crate::executor::ExecOptions::timing`]): wall-clock is
    /// machine-dependent, so it must stay out of byte-pinned baselines.
    pub elapsed_ms: Option<u64>,
    /// Per-trial wall-clock distribution in milliseconds — the tail view of
    /// [`CellResult::elapsed_ms`]. `None` unless the run opted into timing,
    /// for the same byte-stability reason.
    pub trial_elapsed_ms: Option<CellStats>,
}

impl CellResult {
    /// Assembles the cell from a completed [`TrialAccumulator`] — the
    /// executor's streaming path. Timing annotations come from the
    /// accumulator itself (populated only when it was constructed timed).
    pub(crate) fn from_accum(
        topology: String,
        protocol: String,
        model: CollisionModel,
        faults: FaultPlan,
        net: NetParams,
        acc: &TrialAccumulator,
    ) -> CellResult {
        CellResult {
            topology,
            protocol,
            model: model_name(model),
            faults: faults.to_string(),
            n: net.n(),
            diameter: net.diameter(),
            trials: acc.folded(),
            completed: acc.completed(),
            rounds: acc.rounds_stats(),
            deliveries: acc.deliveries_stats(),
            collisions: acc.collisions_stats(),
            transmissions: acc.transmissions_stats(),
            metrics_present: acc.metrics_present(),
            elapsed_ms: acc.elapsed_ms(),
            trial_elapsed_ms: acc.trial_elapsed_stats(),
        }
    }

    /// Aggregates one cell's trial records in slice (= trial) order — the
    /// convenience path for pre-collected records (zero-trial cells, tests).
    /// Statistically identical to folding the same records through
    /// [`TrialAccumulator`] one at a time.
    pub(crate) fn aggregate(
        topology: String,
        protocol: String,
        model: CollisionModel,
        faults: FaultPlan,
        net: NetParams,
        records: &[TrialRecord],
        elapsed_ms: Option<u64>,
    ) -> CellResult {
        let mut acc = TrialAccumulator::new(records.len() as u64, false);
        for (i, r) in records.iter().enumerate() {
            acc.push(i as u64, *r, None);
        }
        let mut cell = CellResult::from_accum(topology, protocol, model, faults, net, &acc);
        cell.elapsed_ms = elapsed_ms;
        cell
    }

    /// The cell's JSON record (one element of the results file's `cells`
    /// array; the streaming sink emits these one at a time).
    pub(crate) fn to_json(&self) -> Json {
        let mut fields = vec![
            ("topology", Json::Str(self.topology.clone())),
            ("protocol", Json::Str(self.protocol.clone())),
            ("model", Json::Str(self.model.to_string())),
            ("faults", Json::Str(self.faults.clone())),
            ("n", Json::UInt(self.n as u64)),
            ("diameter", Json::UInt(self.diameter as u64)),
            ("trials", Json::UInt(self.trials)),
            ("completed", Json::UInt(self.completed)),
            ("rounds", self.rounds.to_json()),
        ];
        // The channel-metric trio is emitted only when the records carried
        // real simulator metrics: rounds-only cells would otherwise report
        // fabricated all-zero distributions.
        if self.metrics_present {
            fields.push(("deliveries", self.deliveries.to_json()));
            fields.push(("collisions", self.collisions.to_json()));
            fields.push(("transmissions", self.transmissions.to_json()));
        }
        // Additive v1 fields, emitted only on timed runs: untimed documents
        // (including the committed byte-pinned baselines) stay bit-for-bit
        // unchanged run to run.
        if let Some(ms) = self.elapsed_ms {
            fields.push(("elapsed_ms", Json::UInt(ms)));
        }
        if let Some(dist) = self.trial_elapsed_ms {
            fields.push(("trial_elapsed_ms", dist.to_json()));
        }
        Json::obj(fields)
    }
}

/// All cell results of one campaign run, renderable as markdown or JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Campaign identifier.
    pub id: String,
    /// The master seed the run derived everything from.
    pub master_seed: u64,
    /// Trials per cell.
    pub trials_per_cell: u64,
    /// One aggregate per cell, in deterministic axis order.
    pub cells: Vec<CellResult>,
}

impl CampaignResult {
    /// Renders the campaign as one markdown [`Table`] (the human half of the
    /// output; [`CampaignResult::to_json`] is the machine half).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Campaign {} (seed {}, {} trials/cell)",
                self.id, self.master_seed, self.trials_per_cell
            ),
            &[
                "topology",
                "protocol",
                "model",
                "faults",
                "n",
                "D",
                "ok",
                "rounds mean",
                "rounds p50/p95/p99",
                "rounds min..max",
                "deliveries",
                "collisions",
            ],
        );
        for c in &self.cells {
            // Channel-metric columns are dashes for rounds-only cells: their
            // zeroed Metrics are placeholders, not samples.
            let metric = |s: &CellStats| {
                if c.metrics_present {
                    format!("{:.0}", s.mean)
                } else {
                    "-".to_string()
                }
            };
            t.row(&[
                c.topology.clone(),
                c.protocol.clone(),
                c.model.to_string(),
                c.faults.clone(),
                c.n.to_string(),
                c.diameter.to_string(),
                format!("{}/{}", c.completed, c.trials),
                format!("{:.1}", c.rounds.mean),
                format!("{:.1}/{:.1}/{:.1}", c.rounds.p50, c.rounds.p95, c.rounds.p99),
                format!("{}..{}", c.rounds.min, c.rounds.max),
                metric(&c.deliveries),
                metric(&c.collisions),
            ]);
        }
        t.note(format!(
            "Machine-readable form: schema {RESULTS_SCHEMA}; reproduce any cell with \
             --seed {}. Quantiles are streaming P² estimates (exact for ≤ 5 trials).",
            self.master_seed
        ));
        t
    }

    /// Renders the versioned JSON results document (compact, byte-stable
    /// for a fixed campaign and master seed).
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("schema", Json::Str(RESULTS_SCHEMA.into())),
            ("id", Json::Str(self.id.clone())),
            ("master_seed", Json::UInt(self.master_seed)),
            ("trials_per_cell", Json::UInt(self.trials_per_cell)),
            ("cells", Json::Arr(self.cells.iter().map(CellResult::to_json).collect())),
        ])
        .render()
    }
}

/// Validates a parsed results document against the v1 schema, returning a
/// short human summary (`id`, cell count) on success. Used by the CLI
/// `--check` flag and the CI campaign-smoke job.
///
/// # Errors
///
/// A description of the first schema violation.
pub fn validate_results(doc: &Json) -> Result<String, String> {
    let schema = doc.get("schema").and_then(Json::as_str).ok_or("missing schema field")?;
    if schema != RESULTS_SCHEMA {
        return Err(format!("unknown schema {schema:?} (expected {RESULTS_SCHEMA})"));
    }
    let id = doc.get("id").and_then(Json::as_str).ok_or("missing id field")?;
    doc.get("master_seed").and_then(Json::as_u64).ok_or("missing master_seed field")?;
    let cells = doc.get("cells").and_then(Json::as_arr).ok_or("missing cells array")?;
    if cells.is_empty() {
        return Err("results file has no cells".into());
    }
    for (i, cell) in cells.iter().enumerate() {
        for key in ["topology", "protocol", "model"] {
            cell.get(key)
                .and_then(Json::as_str)
                .ok_or(format!("cell {i}: missing string field {key:?}"))?;
        }
        // Additive v1 field: absent in pre-fault-axis files, a string (and
        // a parseable fault plan) when present.
        if let Some(f) = cell.get("faults") {
            let s = f.as_str().ok_or(format!("cell {i}: faults field must be a string"))?;
            s.parse::<rn_sim::FaultPlan>().map_err(|e| format!("cell {i}: faults field: {e}"))?;
        }
        for key in ["n", "diameter", "trials", "completed"] {
            cell.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("cell {i}: missing integer field {key:?}"))?;
        }
        // Additive v1 field: absent on untimed runs, a millisecond count
        // when the run opted into `--timing`.
        if let Some(ms) = cell.get("elapsed_ms") {
            ms.as_u64().ok_or(format!("cell {i}: elapsed_ms must be an integer"))?;
        }
        let check_stats = |key: &str, stats: &Json| -> Result<(), String> {
            for sub in ["mean", "min", "max"] {
                stats
                    .get(sub)
                    .and_then(Json::as_f64)
                    .ok_or(format!("cell {i}: {key}.{sub} missing or non-numeric"))?;
            }
            // Additive v1 fields: stddev predates the quantiles, and both
            // generations of old files must keep validating — bench-diff
            // falls back to a zero band / ungated quantiles without them.
            for sub in ["stddev", "p50", "p95", "p99"] {
                if let Some(v) = stats.get(sub) {
                    v.as_f64().ok_or(format!("cell {i}: {key}.{sub} must be numeric"))?;
                }
            }
            Ok(())
        };
        check_stats(
            "rounds",
            cell.get("rounds").ok_or(format!("cell {i}: missing stats field \"rounds\""))?,
        )?;
        // The channel-metric trio is all-or-nothing: rounds-only cells omit
        // all three (their Metrics are placeholders); packet-level cells
        // carry all three.
        let metric_keys = ["deliveries", "collisions", "transmissions"];
        let present = metric_keys.iter().filter(|k| cell.get(k).is_some()).count();
        if present != 0 && present != metric_keys.len() {
            return Err(format!(
                "cell {i}: channel metrics must be all present or all absent \
                 ({present} of {} found)",
                metric_keys.len()
            ));
        }
        for key in metric_keys {
            if let Some(stats) = cell.get(key) {
                check_stats(key, stats)?;
            }
        }
        // Additive v1 field: the per-trial wall-clock distribution of timed
        // runs.
        if let Some(stats) = cell.get("trial_elapsed_ms") {
            check_stats("trial_elapsed_ms", stats)?;
        }
    }
    Ok(format!("{id}: {} cell(s), schema {RESULTS_SCHEMA}", cells.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        Campaign {
            id: "unit".into(),
            topologies: vec![TopologySpec::Path(16), TopologySpec::Star(9)],
            protocols: vec![ProtocolSpec::parse("bgi"), ProtocolSpec::parse("decay(2)")],
            models: vec![CollisionModel::NoCollisionDetection],
            faults: Campaign::no_faults(),
            plan: TrialPlan::new(2),
        }
    }

    #[test]
    fn campaign_runs_all_cells_in_axis_order() {
        let r = tiny_campaign().run(5);
        assert_eq!(r.cells.len(), 4);
        assert_eq!(r.cells[0].topology, "path(16)");
        assert_eq!(r.cells[0].protocol, "bgi");
        assert_eq!(r.cells[1].protocol, "decay(2)");
        assert_eq!(r.cells[2].topology, "star(9)");
        for c in &r.cells {
            assert_eq!(c.trials, 2);
            assert_eq!(c.completed, 2, "{}/{} must complete", c.topology, c.protocol);
            assert!(c.rounds.min <= c.rounds.max);
            assert!(c.rounds.mean > 0.0);
        }
    }

    #[test]
    fn campaign_json_validates_and_table_renders() {
        let r = tiny_campaign().run(5);
        let doc = Json::parse(&r.to_json()).expect("own JSON parses");
        let summary = validate_results(&doc).expect("schema-valid");
        assert!(summary.contains("4 cell(s)"), "{summary}");
        let md = r.to_table().to_markdown();
        assert!(md.contains("path(16)") && md.contains("bgi"));
    }

    #[test]
    fn single_scenario_campaign_from_spec_string() {
        let spec: ScenarioSpec = "binsearch_le(beep)@grid(6x6)".parse().expect("parses");
        assert_eq!(spec.protocol, ProtocolSpec::parse("binsearch_le(beep)"));
        let r = Campaign::single(&spec, 2).run(9);
        assert_eq!(r.cells.len(), 1);
        assert_eq!(r.cells[0].protocol, "binsearch_le(beep)");
        assert_eq!(r.cells[0].faults, "none");
        assert_eq!(r.cells[0].completed, 2);
    }

    #[test]
    fn fault_axis_produces_labeled_cells_that_degrade() {
        let campaign = Campaign {
            id: "faulted".into(),
            topologies: vec![TopologySpec::Grid { w: 6, h: 6 }],
            protocols: vec![ProtocolSpec::parse("bgi")],
            models: vec![CollisionModel::NoCollisionDetection],
            faults: vec![FaultPlan::none(), FaultPlan::jam(36, 1.0)],
            plan: TrialPlan::new(2),
        };
        let r = campaign.run(8);
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.cells[0].faults, "none");
        assert_eq!(r.cells[1].faults, "jam(36,1)");
        assert_eq!(r.cells[0].completed, 2, "sunny-day cell completes");
        assert_eq!(r.cells[1].completed, 0, "total jamming defeats broadcast");
        // The JSON carries the fault axis and stays schema-valid.
        let doc = Json::parse(&r.to_json()).expect("parses");
        validate_results(&doc).expect("schema-valid with fault fields");
        let cells = doc.get("cells").and_then(Json::as_arr).expect("cells");
        assert_eq!(cells[1].get("faults").and_then(Json::as_str), Some("jam(36,1)"));
    }

    #[test]
    fn validate_catches_cross_axis_placement_violations() {
        let mut campaign = tiny_campaign();
        assert!(campaign.validate().is_ok());
        // star(9) has 9 nodes: 10 jammers cannot be placed.
        campaign.faults = vec![FaultPlan::jam(10, 0.5)];
        let err = campaign.validate().unwrap_err();
        assert!(err.contains("10 jammers") && err.contains("star(9)"), "{err}");
        // Same guard for compete(K) sources, whatever the placement.
        campaign.faults = Campaign::no_faults();
        campaign.protocols = vec![ProtocolSpec::parse("compete(10,corner)")];
        let err = campaign.validate().unwrap_err();
        assert!(err.contains("10 distinct source nodes"), "{err}");
    }

    #[test]
    fn model_axis_collapsing_onto_one_effective_model_dedupes_cells() {
        // Both axis values remap to CD for a beep probe: one cell, not two
        // identically-keyed ones.
        let campaign = Campaign {
            id: "dedup".into(),
            topologies: vec![TopologySpec::Grid { w: 6, h: 6 }],
            protocols: vec![ProtocolSpec::parse("binsearch_le(beep)"), ProtocolSpec::parse("bgi")],
            models: vec![CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection],
            faults: Campaign::no_faults(),
            plan: TrialPlan::new(1),
        };
        let r = campaign.run(4);
        assert_eq!(r.cells.len(), 3, "beep collapses to one cell, bgi keeps both models");
        assert_eq!((r.cells[0].protocol.as_str(), r.cells[0].model), ("binsearch_le(beep)", "cd"));
        assert_eq!((r.cells[1].protocol.as_str(), r.cells[1].model), ("bgi", "nocd"));
        assert_eq!((r.cells[2].protocol.as_str(), r.cells[2].model), ("bgi", "cd"));
        // Keys are unique across the whole result.
        let mut keys: Vec<_> =
            r.cells.iter().map(|c| (c.topology.clone(), c.protocol.clone(), c.model)).collect();
        keys.dedup();
        assert_eq!(keys.len(), r.cells.len());
    }

    #[test]
    fn plan_preserves_axis_order_seed_streams_and_dedup() {
        // Same dedup shape as the model-collapsing test above, but checked
        // on the pure plan: beep remaps both axis values onto CD (one cell),
        // bgi keeps both. Seed slots are burned per axis *position* —
        // including the skipped duplicate — in nested-loop order.
        let campaign = Campaign {
            id: "plan".into(),
            topologies: vec![TopologySpec::Grid { w: 6, h: 6 }],
            protocols: vec![ProtocolSpec::parse("binsearch_le(beep)"), ProtocolSpec::parse("bgi")],
            models: vec![CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection],
            faults: Campaign::no_faults(),
            plan: TrialPlan::new(1),
        };
        let plan = campaign.plan_cells(4);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[0].protocol.to_string(), "binsearch_le(beep)");
        assert_eq!(plan[0].model, CollisionModel::CollisionDetection);
        // Axis positions 0..4; position 1 (beep × cd, a duplicate) consumed
        // its seed slot without planning a cell.
        assert_eq!(plan[0].cell_seed, rng::derive(4, CELL_STREAM));
        assert_eq!(plan[1].cell_seed, rng::derive(4, CELL_STREAM + 2));
        assert_eq!(plan[2].cell_seed, rng::derive(4, CELL_STREAM + 3));
        // Emit order and topology sharing are explicit in the spec.
        assert!(plan.iter().enumerate().all(|(i, c)| c.order == i));
        assert!(plan.iter().all(|c| c.topology_index == 0));
        assert_eq!(plan[0].topology_seed, rng::derive(4, TOPOLOGY_STREAM));
    }

    #[test]
    fn degenerate_cell_stats_stay_well_defined() {
        // The heavy single-pass / quantile coverage lives in crate::stats;
        // this pins the degenerate shapes the campaign layer leans on.
        assert_eq!(
            CellStats::over(std::iter::empty()),
            CellStats { mean: 0.0, min: 0, max: 0, stddev: 0.0, p50: 0.0, p95: 0.0, p99: 0.0 }
        );
        let one = CellStats::over([42u64]);
        assert_eq!((one.mean, one.min, one.max, one.stddev), (42.0, 42, 42, 0.0));
        assert_eq!((one.p50, one.p95, one.p99), (42.0, 42.0, 42.0));
    }

    #[test]
    fn distribution_fields_are_recorded_in_the_json_stats() {
        let r = tiny_campaign().run(5);
        let doc = Json::parse(&r.to_json()).expect("parses");
        let cells = doc.get("cells").and_then(Json::as_arr).expect("cells");
        let rounds = cells[0].get("rounds").expect("rounds stats");
        let sd = rounds.get("stddev").and_then(Json::as_f64).expect("stddev present");
        assert!(sd >= 0.0);
        let p50 = rounds.get("p50").and_then(Json::as_f64).expect("p50 present");
        let p99 = rounds.get("p99").and_then(Json::as_f64).expect("p99 present");
        let stat = |k: &str| rounds.get(k).and_then(Json::as_f64).expect("numeric");
        assert!(stat("min") <= p50 && p50 <= p99 && p99 <= stat("max"));
        validate_results(&doc).expect("distribution fields are schema-valid");
        // Malformed additive fields are rejected.
        for field in ["\"stddev\":", "\"p95\":"] {
            let bad = r.to_json().replacen(field, &format!("{field}\"x\",\"old\":"), 1);
            let doc = Json::parse(&bad).expect("parses");
            assert!(validate_results(&doc).is_err(), "non-numeric {field} must fail");
        }
        // The table renders the percentile column for every cell.
        let md = r.to_table().to_markdown();
        assert!(md.contains("rounds p50/p95/p99"), "{md}");
    }

    #[test]
    fn rounds_only_cells_omit_channel_metrics() {
        let spec: ScenarioSpec = "binsearch_le(beep)@grid(6x6)".parse().expect("parses");
        let r = Campaign::single(&spec, 3).run(9);
        assert!(!r.cells[0].metrics_present, "binsearch_le accounts rounds only");
        let json = r.to_json();
        for key in ["deliveries", "collisions", "transmissions"] {
            assert!(!json.contains(key), "placeholder metrics must not be serialized: {key}");
        }
        let doc = Json::parse(&json).expect("parses");
        validate_results(&doc).expect("metric-less cells are schema-valid");
        // The table shows dashes, not fabricated 0-means.
        let md = r.to_table().to_markdown();
        let row = md
            .lines()
            .find(|l| l.starts_with('|') && l.contains("binsearch_le"))
            .expect("data row");
        let dashes = row.split('|').filter(|cell| cell.trim() == "-").count();
        assert_eq!(dashes, 2, "deliveries and collisions are dashes: {row}");
        // A partially present trio is rejected (all-or-nothing).
        let bad = json.replacen(
            "\"rounds\":",
            "\"collisions\":{\"mean\":0,\"min\":0,\"max\":0},\"rounds\":",
            1,
        );
        assert!(validate_results(&Json::parse(&bad).expect("parses")).is_err());
    }

    #[test]
    fn validate_rejects_broken_documents() {
        for bad in [
            r#"{}"#,
            r#"{"schema":"other/v9","id":"x","master_seed":1,"cells":[{}]}"#,
            r#"{"schema":"rn-bench-results/v1","id":"x","master_seed":1,"cells":[]}"#,
            r#"{"schema":"rn-bench-results/v1","id":"x","master_seed":1,"cells":[{"topology":"p"}]}"#,
            r#"{"schema":"rn-bench-results/v1","id":"x","master_seed":1,"cells":[{"topology":"p","protocol":"q","model":"nocd","faults":"zap(1)"}]}"#,
            r#"{"schema":"rn-bench-results/v1","id":"x","master_seed":1,"cells":[{"topology":"p","protocol":"q","model":"nocd","faults":7}]}"#,
        ] {
            let doc = Json::parse(bad).expect("well-formed JSON");
            assert!(validate_results(&doc).is_err(), "{bad} must fail validation");
        }
    }
}
