//! The preset registry the `experiments` binary dispatches through.
//!
//! Two preset kinds coexist:
//!
//! * **table presets** — the paper-reproduction experiments `e1`…`e12`
//!   (`EXPERIMENTS.md`), kept verbatim as functions in
//!   [`crate::experiments`] and registered here by id;
//! * **campaign presets** — declarative topology × protocol × model sweeps
//!   built on [`Campaign`], which additionally emit the versioned JSON
//!   results file for cross-PR perf tracking.
//!
//! `experiments --list` prints this registry; `experiments <id>` runs any
//! entry of either kind.

use crate::campaign::{Campaign, TrialPlan};
use crate::experiments;
use crate::harness::Table;
use crate::registry::ProtocolSpec;
use rn_graph::TopologySpec;
use rn_sim::{CollisionModel, FaultPlan};

/// Shorthand: parse a statically known protocol spec.
fn p(spec: &str) -> ProtocolSpec {
    ProtocolSpec::parse(spec)
}

/// What a preset id resolves to.
pub enum PresetKind {
    /// A legacy markdown-table experiment: a pure function of the seed.
    Tables(fn(u64) -> Vec<Table>),
    /// A declarative campaign (tables + JSON results).
    Campaign(fn() -> Campaign),
}

/// One registry entry.
pub struct Preset {
    /// The id accepted on the command line (`e7`, `smoke`, …).
    pub id: &'static str,
    /// One-line description for `--list`.
    pub about: &'static str,
    /// How to run it.
    pub kind: PresetKind,
}

impl Preset {
    /// `"tables"` or `"campaign"`, for `--list` output.
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            PresetKind::Tables(_) => "tables",
            PresetKind::Campaign(_) => "campaign",
        }
    }
}

macro_rules! table_preset {
    ($id:literal, $f:path, $about:literal) => {
        Preset { id: $id, about: $about, kind: PresetKind::Tables($f) }
    };
}

/// The full preset registry, in listing order.
pub fn presets() -> Vec<Preset> {
    vec![
        table_preset!("e1", experiments::e1_decay_success, "Lemma 3.1: single decay-round success"),
        table_preset!(
            "e2",
            experiments::e2_partition_properties,
            "Lemma 2.1: Partition(β) radius/cut"
        ),
        table_preset!(
            "e3",
            experiments::e3_theorem_2_2,
            "Theorem 2.2: distance to cluster centers"
        ),
        table_preset!("e4", experiments::e4_section6, "Section 6 quantities on real layer vectors"),
        table_preset!(
            "e5",
            experiments::e5_bad_subpaths,
            "Lemmas 4.3/4.4: clusters near nodes, bad subpaths"
        ),
        table_preset!(
            "e6",
            experiments::e6_schedule_contract,
            "Lemma 2.3: intra-cluster schedule contract"
        ),
        table_preset!(
            "e7",
            experiments::e7_broadcast_scaling,
            "Theorem 5.1: broadcast scaling in D"
        ),
        table_preset!("e8", experiments::e8_comparison, "§1.3 table: ours vs BGI / CR-KP / HW"),
        table_preset!("e9", experiments::e9_leader_election, "Theorem 5.2: LE ≈ broadcast"),
        table_preset!("e10", experiments::e10_compete_sources, "Theorem 4.1: Compete cost vs |S|"),
        table_preset!("e11", experiments::e11_ablations, "Design-choice ablations"),
        table_preset!("e12", experiments::e12_model, "Model sanity: collisions, spontaneity, CD"),
        Preset {
            id: "smoke",
            about: "tiny registry cross (2 topologies × 2 protocols); the CI artifact",
            kind: PresetKind::Campaign(smoke),
        },
        Preset {
            id: "sweep_broadcast",
            about: "broadcast family vs baselines across shapes incl. torus/ring-of-cliques",
            kind: PresetKind::Campaign(sweep_broadcast),
        },
        Preset {
            id: "sweep_le",
            about: "leader election (Alg 6) vs the binary-search reduction",
            kind: PresetKind::Campaign(sweep_le),
        },
        Preset {
            id: "sweep_models",
            about: "collision-model ablation: the same protocols under nocd and cd",
            kind: PresetKind::Campaign(sweep_models),
        },
        Preset {
            id: "sweep_faults",
            about: "robustness axis: broadcast family vs baselines under jamming and dropout",
            kind: PresetKind::Campaign(sweep_faults),
        },
        Preset {
            id: "sweep_placement",
            about: "compete(K) source geometry: uniform vs clustered vs corner placement",
            kind: PresetKind::Campaign(sweep_placement),
        },
        Preset {
            id: "sweep_cd",
            about: "CD ablation: nocd-tolerant protocols vs the CD-exploiting *_cd variants",
            kind: PresetKind::Campaign(sweep_cd),
        },
        Preset {
            id: "sweep_subprotocols",
            about: "sub-protocol primitives: Partition(beta) and schedule passes across shapes",
            kind: PresetKind::Campaign(sweep_subprotocols),
        },
        Preset {
            id: "sweep_tails",
            about: "tail telemetry: p50/p95/p99 round distributions at 100 trials/cell",
            kind: PresetKind::Campaign(sweep_tails),
        },
    ]
}

/// Looks a preset up by id.
pub fn find(id: &str) -> Option<Preset> {
    presets().into_iter().find(|p| p.id == id)
}

fn nocd() -> Vec<CollisionModel> {
    vec![CollisionModel::NoCollisionDetection]
}

fn smoke() -> Campaign {
    Campaign {
        id: "smoke".into(),
        topologies: vec![
            TopologySpec::Grid { w: 8, h: 8 },
            TopologySpec::RingOfCliques { cliques: 4, size: 6 },
        ],
        protocols: vec![p("broadcast"), p("bgi")],
        models: nocd(),
        faults: Campaign::no_faults(),
        plan: TrialPlan::new(3),
    }
}

fn sweep_broadcast() -> Campaign {
    Campaign {
        id: "sweep_broadcast".into(),
        topologies: vec![
            TopologySpec::Grid { w: 24, h: 24 },
            TopologySpec::Torus { w: 24, h: 24 },
            TopologySpec::Path(512),
            TopologySpec::RingOfCliques { cliques: 12, size: 24 },
            TopologySpec::Barbell { clique: 64, bridge: 64 },
            TopologySpec::Rgg { n: 1024, radius: 0.06 },
        ],
        protocols: vec![p("broadcast"), p("broadcast_hw"), p("bgi"), p("truncated"), p("decay(4)")],
        models: nocd(),
        faults: Campaign::no_faults(),
        plan: TrialPlan::new(5),
    }
}

fn sweep_le() -> Campaign {
    Campaign {
        id: "sweep_le".into(),
        topologies: vec![
            TopologySpec::Grid { w: 16, h: 16 },
            TopologySpec::Torus { w: 16, h: 16 },
            TopologySpec::RingOfCliques { cliques: 8, size: 16 },
        ],
        protocols: vec![p("leader_election"), p("binsearch_le(bgi)"), p("binsearch_le(beep)")],
        models: nocd(),
        faults: Campaign::no_faults(),
        plan: TrialPlan::new(3),
    }
}

fn sweep_models() -> Campaign {
    Campaign {
        id: "sweep_models".into(),
        topologies: vec![TopologySpec::Grid { w: 16, h: 16 }, TopologySpec::Star(256)],
        protocols: vec![p("broadcast"), p("bgi"), p("decay(8)")],
        models: vec![CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection],
        faults: Campaign::no_faults(),
        plan: TrialPlan::new(3),
    }
}

fn sweep_faults() -> Campaign {
    Campaign {
        id: "sweep_faults".into(),
        topologies: vec![
            TopologySpec::Grid { w: 16, h: 16 },
            TopologySpec::RingOfCliques { cliques: 8, size: 16 },
            TopologySpec::Rgg { n: 400, radius: 0.1 },
        ],
        protocols: vec![p("broadcast"), p("bgi"), p("decay(4)")],
        models: nocd(),
        faults: vec![FaultPlan::none(), FaultPlan::jam(3, 0.5), FaultPlan::drop(0.02)],
        plan: TrialPlan::new(3),
    }
}

fn sweep_placement() -> Campaign {
    Campaign {
        id: "sweep_placement".into(),
        topologies: vec![
            TopologySpec::Grid { w: 16, h: 16 },
            TopologySpec::Path(256),
            TopologySpec::RingOfCliques { cliques: 8, size: 16 },
        ],
        protocols: vec![p("compete(4)"), p("compete(4,clustered)"), p("compete(4,corner)")],
        models: nocd(),
        faults: Campaign::no_faults(),
        plan: TrialPlan::new(3),
    }
}

fn sweep_cd() -> Campaign {
    Campaign {
        id: "sweep_cd".into(),
        topologies: vec![
            TopologySpec::Grid { w: 16, h: 16 },
            TopologySpec::Rgg { n: 400, radius: 0.1 },
        ],
        protocols: vec![
            p("broadcast"),
            p("broadcast_cd"),
            p("bgi"),
            p("compete(4)"),
            p("compete_cd(4)"),
        ],
        models: vec![CollisionModel::NoCollisionDetection, CollisionModel::CollisionDetection],
        faults: Campaign::no_faults(),
        plan: TrialPlan::new(3),
    }
}

fn sweep_subprotocols() -> Campaign {
    Campaign {
        id: "sweep_subprotocols".into(),
        topologies: vec![
            TopologySpec::Grid { w: 24, h: 24 },
            TopologySpec::Torus { w: 24, h: 24 },
            TopologySpec::Rgg { n: 400, radius: 0.1 },
        ],
        protocols: vec![
            p("partition(0.5)"),
            p("partition(0.125)"),
            p("schedule(downcast)"),
            p("schedule(upcast)"),
        ],
        models: nocd(),
        faults: Campaign::no_faults(),
        plan: TrialPlan::new(3),
    }
}

/// Tail telemetry: enough trials per cell (100) for the streaming
/// p50/p95/p99 estimates to mean something — the paper's guarantees are
/// w.h.p. round bounds, so the tail is the quantity to watch. CI's
/// campaign-smoke lane runs this with a reduced `--trials` override.
fn sweep_tails() -> Campaign {
    Campaign {
        id: "sweep_tails".into(),
        topologies: vec![
            TopologySpec::Rgg { n: 2000, radius: 0.05 },
            TopologySpec::Grid { w: 32, h: 32 },
        ],
        protocols: vec![p("decay(16)"), p("bgi"), p("broadcast")],
        models: nocd(),
        faults: Campaign::no_faults(),
        plan: TrialPlan::new(100),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_table_ids_and_campaigns() {
        let ids: Vec<&str> = presets().iter().map(|p| p.id).collect();
        for e in experiments::ALL_IDS {
            assert!(ids.contains(&e), "table preset {e} must stay registered");
        }
        for c in [
            "smoke",
            "sweep_broadcast",
            "sweep_le",
            "sweep_models",
            "sweep_faults",
            "sweep_placement",
            "sweep_cd",
            "sweep_subprotocols",
            "sweep_tails",
        ] {
            assert!(ids.contains(&c), "campaign preset {c} must be registered");
        }
        // Ids are unique.
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate preset ids");
    }

    #[test]
    fn campaign_presets_build_nonempty_crosses() {
        for p in presets() {
            if let PresetKind::Campaign(build) = p.kind {
                let c = build();
                assert!(c.num_cells() > 0, "{} has no cells", p.id);
                assert_eq!(c.id, p.id, "campaign id must match preset id");
            }
        }
    }

    #[test]
    fn find_resolves_known_and_rejects_unknown() {
        assert!(find("e7").is_some());
        assert!(find("smoke").is_some());
        assert!(find("e99").is_none());
    }
}
