//! The campaign executor: a work-queue of worker threads over *trial units*
//! of a planned campaign.
//!
//! [`execute`] turns a [`Campaign`]'s plan (see [`Campaign::plan_cells`])
//! into `cells × trials` work units claimed off a single atomic cursor, so
//! parallelism covers both axes at once: a one-cell `--scenario` run
//! saturates the thread budget with its trials, while a wide sweep overlaps
//! many cells. Each topology's graph is built exactly once (lazily, by the
//! first worker to need it) and shared read-only by every cell on it.
//!
//! Determinism: every trial's seed comes from the plan
//! (`derive(cell_seed, trial)`), never from execution order, and each cell
//! folds its records into a streaming [`TrialAccumulator`] whose own
//! reorder buffer guarantees trial-index fold order — so results (moments
//! *and* P² quantile sketches, both order-sensitive in floating point) are
//! byte-identical for any thread count, while per-cell memory stays
//! O(out-of-order window) instead of O(trials). Finished cells pass through
//! a second reorder buffer that releases them to the [`CampaignSink`] in
//! plan order as soon as they are contiguous, keeping sink memory
//! proportional to the cells in flight rather than the whole sweep.
//!
//! Fault injection on this path is **explicit**: the worker resolves the
//! cell's [`rn_sim::FaultPlan`] per trial and the schedule travels by
//! parameter into [`rn_sim::Runnable::run_trial_scheduled`] — no
//! thread-local ambient state, so trials are safe to run from any worker.

use crate::campaign::{Campaign, CellResult};
use crate::sink::{CampaignSink, RunHeader};
use crate::stats::TrialAccumulator;
use rn_graph::Graph;
use rn_sim::{rng, NetParams, Runnable};
use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Environment variable consulted by [`resolve_threads`] when no explicit
/// budget is given (the `--threads` CLI flag wins over it).
pub const THREADS_ENV: &str = "RN_BENCH_THREADS";

/// Resolves the worker-thread budget: an explicit request (CLI `--threads`)
/// wins, then a positive integer in [`THREADS_ENV`], then the machine's
/// available parallelism capped at 16. Always at least 1; malformed
/// environment values are ignored.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(t) = explicit {
        return t.max(1);
    }
    if let Some(t) = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
    {
        return t;
    }
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(16)
}

/// Knobs for [`execute_with`] beyond the campaign itself.
///
/// Defaults reproduce [`execute`] exactly, so plain runs (and every
/// committed byte-pinned baseline) are unaffected by new options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Record per-cell wall-clock as [`CellResult::elapsed_ms`] (the sum of
    /// trial durations across workers). Off by default: timing is
    /// machine-dependent, so it must never leak into byte-compared output.
    pub timing: bool,
}

/// The in-order release valve between out-of-order cell completion and the
/// strictly ordered sink.
struct Emitter<'s> {
    next: usize,
    pending: BTreeMap<usize, CellResult>,
    sink: &'s mut dyn CampaignSink,
    error: Option<io::Error>,
}

impl Emitter<'_> {
    fn push(&mut self, order: usize, cell: CellResult) {
        self.pending.insert(order, cell);
        while let Some(ready) = self.pending.remove(&self.next) {
            self.next += 1;
            if self.error.is_none() {
                if let Err(e) = self.sink.cell(&ready) {
                    // Keep draining (workers must not deadlock on a full
                    // buffer) but stop writing; the first error surfaces
                    // from execute().
                    self.error = Some(e);
                }
            }
        }
    }
}

/// Runs `campaign` on `threads` workers, emitting cells to `sink` in plan
/// order. Returns the number of cells emitted.
///
/// Output is a pure function of `(campaign, master_seed)` — the thread count
/// affects wall-clock only. See the [module docs](self) for the execution
/// model.
///
/// # Errors
///
/// The first sink I/O error. The work queue is drained on error — each
/// worker finishes at most its in-flight trial — so a full disk does not
/// burn the rest of a large sweep.
///
/// # Panics
///
/// Propagates panics from trial workers (a protocol bug or an invalid
/// campaign assembled without [`Campaign::validate`]).
pub fn execute(
    campaign: &Campaign,
    master_seed: u64,
    threads: usize,
    sink: &mut dyn CampaignSink,
) -> io::Result<usize> {
    execute_with(campaign, master_seed, threads, sink, ExecOptions::default())
}

/// [`execute`] with explicit [`ExecOptions`] (the CLI's `--timing` flag
/// lands here). Same determinism contract: the simulation results are a pure
/// function of `(campaign, master_seed)`; only the optional `elapsed_ms`
/// annotation varies run to run.
///
/// # Errors
///
/// The first sink I/O error, as for [`execute`].
///
/// # Panics
///
/// Propagates panics from trial workers, as for [`execute`].
pub fn execute_with(
    campaign: &Campaign,
    master_seed: u64,
    threads: usize,
    sink: &mut dyn CampaignSink,
    options: ExecOptions,
) -> io::Result<usize> {
    let plan = campaign.plan_cells(master_seed);
    sink.begin(&RunHeader {
        id: campaign.id.clone(),
        master_seed,
        trials_per_cell: campaign.plan.trials,
    })?;
    let trials = usize::try_from(campaign.plan.trials).expect("trial count fits in memory");
    let total = plan.len() * trials;
    let emitted = plan.len();

    // `TrialPlan::new` guarantees ≥ 1 trial, but the field is public: with
    // zero trials there are no work units, so emit every cell's (empty,
    // zero-stat) aggregate directly — the pre-executor runner's behavior.
    if trials == 0 {
        for spec in &plan {
            let g = spec.topology.build(spec.topology_seed);
            let net = NetParams::new(g.n(), g.diameter_double_sweep());
            let cell = CellResult::aggregate(
                spec.topology.to_string(),
                spec.protocol.instantiate().name(),
                spec.model,
                spec.faults,
                net,
                &[],
                options.timing.then_some(0),
            );
            sink.cell(&cell)?;
        }
        sink.finish()?;
        return Ok(emitted);
    }

    // One lazily built graph per topology axis position, shared by all its
    // cells; OnceLock makes the first worker to need it the builder.
    let graphs: Vec<OnceLock<(Graph, NetParams)>> =
        (0..campaign.topologies.len()).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    // One streaming accumulator per cell: workers fold records incrementally
    // (O(1)-ish state per cell), instead of buffering every TrialRecord and
    // aggregating at the end.
    let accums: Vec<Mutex<TrialAccumulator>> = plan
        .iter()
        .map(|_| Mutex::new(TrialAccumulator::new(campaign.plan.trials, options.timing)))
        .collect();
    let emitter = Mutex::new(Emitter { next: 0, pending: BTreeMap::new(), sink, error: None });

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1).min(total.max(1)) {
            scope.spawn(|| {
                // Per-worker steady-state: one TrialPool for the worker's
                // whole life (scenario-type and graph-size switches re-arm
                // it in place) and the current cell's instantiated scenario,
                // so consecutive trials of a cell — the common unit order —
                // reuse both instead of re-allocating per trial.
                let mut pool = rn_sim::TrialPool::new();
                let mut current: Option<(usize, Box<dyn Runnable>)> = None;
                loop {
                    let unit = cursor.fetch_add(1, Ordering::Relaxed);
                    if unit >= total {
                        break;
                    }
                    let (ci, ti) = (unit / trials, unit % trials);
                    let spec = &plan[ci];
                    let (g, net) = graphs[spec.topology_index].get_or_init(|| {
                        let g = spec.topology.build(spec.topology_seed);
                        let net = NetParams::new(g.n(), g.diameter_double_sweep());
                        (g, net)
                    });
                    if current.as_ref().map(|&(c, _)| c) != Some(ci) {
                        current = Some((ci, spec.protocol.instantiate()));
                    }
                    let runnable = &current.as_ref().expect("slot was just filled").1;
                    // rn-lint: allow(no-wall-clock) — opt-in timing telemetry, stripped from diffable result bytes
                    let started = options.timing.then(Instant::now);
                    let record = runnable.run_trial_under_faults_pooled(
                        g,
                        *net,
                        spec.model,
                        rng::derive(spec.cell_seed, ti as u64),
                        &spec.faults,
                        &mut pool,
                    );
                    let trial_time = started.map(|t| t.elapsed());
                    let complete = {
                        // The accumulator's reorder buffer folds in trial-index
                        // order whatever order workers finish in — the moments
                        // and quantile sketches are order-sensitive in floating
                        // point. A duplicate claim panics inside push().
                        let mut acc = accums[ci].lock().expect("cell accumulator lock");
                        acc.push(ti as u64, record, trial_time);
                        acc.is_complete()
                            .then(|| std::mem::replace(&mut *acc, TrialAccumulator::new(0, false)))
                    };
                    if let Some(acc) = complete {
                        let cell = CellResult::from_accum(
                            spec.topology.to_string(),
                            runnable.name(),
                            spec.model,
                            spec.faults,
                            *net,
                            &acc,
                        );
                        let failed = {
                            let mut em = emitter.lock().expect("emitter lock");
                            em.push(spec.order, cell);
                            em.error.is_some()
                        };
                        if failed {
                            // Drain the queue: nothing written past the first
                            // error is useful, so stop handing out units.
                            cursor.store(total, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let Emitter { pending, error, next, .. } = emitter.into_inner().expect("emitter lock");
    if let Some(e) = error {
        return Err(e);
    }
    debug_assert!(pending.is_empty() && next == emitted, "every planned cell must be emitted");
    sink.finish()?;
    Ok(emitted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::TrialPlan;
    use crate::registry::ProtocolSpec;
    use rn_graph::TopologySpec;
    use rn_sim::{CollisionModel, FaultPlan};

    fn campaign() -> Campaign {
        Campaign {
            id: "executor-unit".into(),
            topologies: vec![TopologySpec::Grid { w: 5, h: 5 }, TopologySpec::Path(20)],
            protocols: vec![ProtocolSpec::parse("bgi"), ProtocolSpec::parse("decay(3)")],
            models: vec![CollisionModel::NoCollisionDetection],
            faults: vec![FaultPlan::none(), FaultPlan::drop(0.05)],
            plan: TrialPlan::new(5),
        }
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let c = campaign();
        let baseline = c.run_with_threads(42, 1).to_json();
        for threads in [2, 3, 8, 32] {
            assert_eq!(
                c.run_with_threads(42, threads).to_json(),
                baseline,
                "thread count {threads} must not change the bytes"
            );
        }
    }

    #[test]
    fn single_cell_campaigns_still_use_the_full_budget() {
        // cells × trials work units: one cell with 8 trials yields 8 units,
        // so an 8-thread run must produce the same record set as serial.
        let c = Campaign {
            id: "one-cell".into(),
            topologies: vec![TopologySpec::Grid { w: 6, h: 6 }],
            protocols: vec![ProtocolSpec::parse("bgi")],
            models: vec![CollisionModel::NoCollisionDetection],
            faults: Campaign::no_faults(),
            plan: TrialPlan::new(8),
        };
        assert_eq!(c.run_with_threads(7, 8).to_json(), c.run_with_threads(7, 1).to_json());
    }

    #[test]
    fn resolve_threads_prefers_explicit_then_env() {
        assert_eq!(resolve_threads(Some(5)), 5);
        assert_eq!(resolve_threads(Some(0)), 1, "explicit budgets clamp to ≥ 1");
        // No explicit budget: whatever the source, the result is positive.
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn zero_trial_plans_emit_zeroed_cells_instead_of_hanging_the_plan() {
        // TrialPlan::new clamps to ≥ 1, but the field is public; a raw zero
        // must still emit every planned cell (with empty-trial stats), as
        // the pre-executor runner did.
        let c = Campaign { plan: TrialPlan { trials: 0 }, ..campaign() };
        let r = c.run_with_threads(3, 4);
        assert_eq!(r.cells.len(), 8, "every planned cell is emitted");
        assert!(r.cells.iter().all(|cell| cell.trials == 0 && cell.rounds.mean == 0.0));
        assert_eq!(r.to_json(), c.run_with_threads(3, 1).to_json());
    }

    #[test]
    fn timing_is_opt_in_and_additive() {
        use crate::campaign::validate_results;
        use crate::json::Json;
        use crate::sink::MemorySink;

        let c = campaign();
        // Default path: no elapsed_ms anywhere — the committed baselines
        // depend on this staying byte-stable.
        let plain = c.run_with_threads(11, 2);
        assert!(plain.cells.iter().all(|cell| cell.elapsed_ms.is_none()));
        assert!(plain.cells.iter().all(|cell| cell.trial_elapsed_ms.is_none()));
        assert!(!plain.to_json().contains("elapsed_ms"));

        // Timed path: every cell annotated (sum + per-trial distribution),
        // simulation results unchanged, and the document still
        // schema-validates.
        let mut sink = MemorySink::new();
        execute_with(&c, 11, 2, &mut sink, ExecOptions { timing: true }).expect("in-memory run");
        let timed = sink.into_result();
        assert!(timed.cells.iter().all(|cell| cell.elapsed_ms.is_some()));
        assert!(timed.cells.iter().all(|cell| cell.trial_elapsed_ms.is_some()));
        let json = timed.to_json();
        assert!(json.contains("\"elapsed_ms\":"));
        assert!(json.contains("\"trial_elapsed_ms\":"));
        validate_results(&Json::parse(&json).expect("own JSON parses")).expect("schema-valid");
        let strip = |r: &crate::campaign::CampaignResult| {
            let mut r = r.clone();
            for cell in &mut r.cells {
                cell.elapsed_ms = None;
                cell.trial_elapsed_ms = None;
            }
            r
        };
        assert_eq!(strip(&timed), strip(&plain), "timing must not perturb results");
    }

    #[test]
    fn oversized_thread_budgets_are_harmless() {
        let c = Campaign { plan: TrialPlan::new(1), ..campaign() };
        // 64 threads for 8 units: workers beyond the unit count idle out.
        let r = c.run_with_threads(3, 64);
        assert_eq!(r.cells.len(), 8);
    }
}
